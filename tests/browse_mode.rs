//! §3.2: with dirty reads (browse/chaos isolation), the H_wr pattern —
//! and hence the recovery problem — arises even when a single database
//! object occupies a whole cache line. IFA must still hold.

use smdb::core::{DbConfig, DbError, ProtocolKind, SmDb};
use smdb::sim::NodeId;

const X: NodeId = NodeId(0);
const Y: NodeId = NodeId(1);

/// One record per line (126-byte payloads in 128-byte lines).
fn one_rec_per_line(p: ProtocolKind) -> SmDb {
    let cfg = DbConfig::small(4, p).with_rec_data_size(126);
    let db = SmDb::new(cfg);
    assert_eq!(db.record_layout().records_per_line(), 1);
    db
}

#[test]
fn dirty_read_sees_uncommitted_value() {
    let mut db = one_rec_per_line(ProtocolKind::VolatileSelectiveRedo);
    let t = db.begin(X).unwrap();
    db.update(t, 5, b"uncommitted!").unwrap();
    // A browse-mode reader on another node sees it (no lock conflict).
    let v = db.read_dirty(Y, 5).unwrap();
    assert_eq!(&v[..12], b"uncommitted!");
    db.abort(t).unwrap();
    let v = db.read_dirty(Y, 5).unwrap();
    assert_eq!(&v[..12], &[0u8; 12][..], "abort visible to browsers too");
}

#[test]
fn dirty_read_replicates_line_and_crash_of_writer_still_undone() {
    for p in ProtocolKind::ifa_protocols() {
        let mut db = one_rec_per_line(p);
        // Committed baseline.
        let setup = db.begin(Y).unwrap();
        db.update(setup, 5, b"committed").unwrap();
        db.commit(setup).unwrap();
        // Writer on x, uncommitted; browser on y replicates the line
        // (H_wr with a single object in the line!).
        let t = db.begin(X).unwrap();
        db.update(t, 5, b"dirty").unwrap();
        let v = db.read_dirty(Y, 5).unwrap();
        assert_eq!(&v[..5], b"dirty", "{p:?}");
        // Crash the writer: its uncommitted value lives on in y's cache
        // and must be undone even though x's volatile log is gone.
        let outcome = db.crash_and_recover(&[X]).unwrap();
        assert_eq!(outcome.aborted, vec![t], "{p:?}");
        assert_eq!(&db.current_value(5).unwrap()[..9], b"committed", "{p:?}");
        db.check_ifa(Y).assert_ok();
    }
}

#[test]
fn dirty_read_then_crash_of_reader_loses_nothing() {
    for p in ProtocolKind::ifa_protocols() {
        let mut db = one_rec_per_line(p);
        let t = db.begin(X).unwrap();
        db.update(t, 5, b"mine").unwrap();
        let _ = db.read_dirty(Y, 5).unwrap(); // replicate to y
        db.crash_and_recover(&[Y]).unwrap();
        // The writer keeps its uncommitted update (a copy survived on x,
        // or was redone from x's intact log).
        db.check_ifa(X).assert_ok();
        db.commit(t).unwrap();
        assert_eq!(&db.current_value(5).unwrap()[..4], b"mine", "{p:?}");
    }
}

#[test]
fn dirty_read_on_crashed_node_rejected() {
    let mut db = one_rec_per_line(ProtocolKind::VolatileSelectiveRedo);
    db.crash_and_recover(&[Y]).unwrap();
    assert!(db.read_dirty(Y, 5).is_err());
}

/// Range lookups see committed entries, hide uncommitted delete marks of
/// other transactions, and survive a crash of a contributor node.
#[test]
fn range_lookup_across_crash() {
    let mut db = SmDb::new(DbConfig::small(4, ProtocolKind::VolatileSelectiveRedo));
    for i in 0..30u64 {
        let t = db.begin(NodeId((i % 4) as u16)).unwrap();
        db.insert(t, i * 10, (i).to_le_bytes()).unwrap();
        db.commit(t).unwrap();
    }
    // A committed-range scan first.
    let reader = db.begin(X).unwrap();
    let r = db.range_lookup(reader, 50, 100).unwrap();
    let keys: Vec<u64> = r.iter().map(|(k, _)| *k).collect();
    assert_eq!(keys, vec![50, 60, 70, 80, 90, 100]);
    db.commit(reader).unwrap();
    // An uncommitted insert by node 3 inside the range: a serializable
    // scan now *conflicts* on the inserted key's lock (no dirty read).
    let doomed = db.begin(NodeId(3)).unwrap();
    db.insert(doomed, 55, [9u8; 8]).unwrap();
    let blocked = db.begin(X).unwrap();
    assert!(matches!(
        db.range_lookup(blocked, 50, 100),
        Err(DbError::WouldBlock { lock, .. }) if lock == 55 * 2 + 3
    ));
    db.abort(blocked).unwrap();
    db.crash_and_recover(&[NodeId(3)]).unwrap();
    db.check_ifa(X).assert_ok();
    let reader2 = db.begin(X).unwrap();
    let r = db.range_lookup(reader2, 50, 100).unwrap();
    let keys: Vec<u64> = r.iter().map(|(k, _)| *k).collect();
    assert_eq!(keys, vec![50, 60, 70, 80, 90, 100], "doomed insert undone");
    db.commit(reader2).unwrap();
}
