//! Buffer-management durability matrix: no-force, steal, eviction,
//! checkpoints, and the §4.2.2 stall-on-lost hardware option — across
//! protocols.

use smdb::core::{DbConfig, DbError, ProtocolKind, SmDb};
use smdb::sim::{MemError, NodeId};

const N0: NodeId = NodeId(0);
const N1: NodeId = NodeId(1);
const N2: NodeId = NodeId(2);

/// No-force: commit does not write the page; the stable database still
/// holds the old image until a flush, yet the data is durable through the
/// log.
#[test]
fn no_force_commit_leaves_stable_db_stale() {
    let mut db = SmDb::new(DbConfig::small(4, ProtocolKind::VolatileSelectiveRedo));
    let t = db.begin(N0).unwrap();
    db.update(t, 0, b"in-cache-only").unwrap();
    db.commit(t).unwrap();
    assert_eq!(db.stats().page_flushes, 0, "no-force: commit flushed nothing");
    // Crash everything: the committed value must come back from the log.
    let all: Vec<NodeId> = (0..4).map(NodeId).collect();
    db.crash_and_recover(&all).unwrap();
    assert_eq!(&db.current_value(0).unwrap()[..13], b"in-cache-only");
}

/// Steal + eviction round trip: a flushed page can be evicted from every
/// cache and faulted back on demand.
#[test]
fn evicted_page_faults_back_in() {
    let mut db = SmDb::new(DbConfig::small(4, ProtocolKind::VolatileSelectiveRedo));
    let t = db.begin(N0).unwrap();
    db.update(t, 0, b"flush-me").unwrap();
    db.commit(t).unwrap();
    let page = db.record_layout().rec_of_global(0).page;
    db.flush_page(N0, page).unwrap();
    db.evict_page(page);
    // A read from another node faults the page in from the stable db.
    let t2 = db.begin(N1).unwrap();
    let v = db.read(t2, 0).unwrap();
    assert_eq!(&v[..8], b"flush-me");
    db.commit(t2).unwrap();
}

/// WAL under steal: flushing an uncommitted update forces the updater's
/// log first, so the undo information is durable before the steal.
#[test]
fn wal_forces_before_steal() {
    for p in [ProtocolKind::VolatileSelectiveRedo, ProtocolKind::VolatileRedoAll] {
        let mut db = SmDb::new(DbConfig::small(4, p));
        let t = db.begin(N1).unwrap();
        db.update(t, 0, b"uncommitted").unwrap();
        assert_eq!(db.logs().log(N1).stable_lsn().0, 0, "nothing forced yet");
        let page = db.record_layout().rec_of_global(0).page;
        db.flush_page(N2, page).unwrap();
        assert!(
            db.logs().log(N1).stable_lsn().0 > 0,
            "{p:?}: steal must force the updater's log (WAL)"
        );
        db.abort(t).unwrap();
    }
}

/// Checkpoints bound recovery: after a checkpoint and quiescence, a total
/// crash recovers with zero redo.
#[test]
fn checkpoint_then_total_crash_needs_no_redo() {
    let mut db = SmDb::new(DbConfig::small(4, ProtocolKind::VolatileSelectiveRedo));
    for i in 0..20u64 {
        let t = db.begin(NodeId((i % 4) as u16)).unwrap();
        db.update(t, i, &i.to_le_bytes()).unwrap();
        db.commit(t).unwrap();
    }
    db.checkpoint(N0).unwrap();
    let all: Vec<NodeId> = (0..4).map(NodeId).collect();
    let outcome = db.crash_and_recover(&all).unwrap();
    assert_eq!(outcome.redo_applied, 0, "checkpoint made everything stable");
    for i in 0..20u64 {
        assert_eq!(&db.current_value(i).unwrap()[..8], &i.to_le_bytes());
    }
}

/// §4.2.2 stall option: references to lines destroyed by a crash stall
/// instead of observing invalid data.
#[test]
fn stall_on_lost_surfaces_stalls_not_loss() {
    let mut cfg = DbConfig::small(4, ProtocolKind::VolatileSelectiveRedo);
    cfg.stall_on_lost = true;
    let mut db = SmDb::new(cfg);
    let t = db.begin(N2).unwrap();
    db.update(t, 0, b"doomed").unwrap();
    // Raw crash without recovery: inject via the public API but observe
    // the stall in the engine's error.
    // (crash_and_recover runs recovery immediately, so we approximate by
    // reading after a recovery that left node 2's *private untouched*
    // slots unrecovered — not possible; instead verify the config knob is
    // plumbed through to the machine.)
    assert!(db.machine().config().stall_on_lost);
    db.abort(t).unwrap();
}

/// Aborting after WouldBlock cleans up queued waiters even across a
/// subsequent crash of the lock holder.
#[test]
fn queued_waiter_cancellation_and_holder_crash() {
    let mut db = SmDb::new(DbConfig::small(4, ProtocolKind::VolatileSelectiveRedo));
    let holder = db.begin(N0).unwrap();
    db.update(holder, 5, b"held").unwrap();
    let waiter = db.begin(N1).unwrap();
    assert!(matches!(db.update(waiter, 5, b"want"), Err(DbError::WouldBlock { .. })));
    // The waiter gives up.
    db.abort(waiter).unwrap();
    // The holder's node crashes.
    db.crash_and_recover(&[N0]).unwrap();
    db.check_ifa(N1).assert_ok();
    // The record is free: no ghost holder, no ghost waiter.
    let t = db.begin(N2).unwrap();
    db.update(t, 5, b"mine").unwrap();
    db.commit(t).unwrap();
    assert_eq!(&db.current_value(5).unwrap()[..4], b"mine");
}

/// Reading your own uncommitted write.
#[test]
fn read_your_own_writes() {
    let mut db = SmDb::new(DbConfig::small(4, ProtocolKind::VolatileSelectiveRedo));
    let t = db.begin(N0).unwrap();
    db.update(t, 3, b"own").unwrap();
    let v = db.read(t, 3).unwrap();
    assert_eq!(&v[..3], b"own");
    db.commit(t).unwrap();
}

/// MemError surfaces sensibly when addressing outside the heap.
#[test]
fn out_of_range_slot_rejected() {
    let mut db = SmDb::new(DbConfig::small(4, ProtocolKind::VolatileSelectiveRedo));
    let t = db.begin(N0).unwrap();
    assert!(matches!(db.read(t, 1 << 40), Err(DbError::NoSuchRecord { .. })));
    assert!(matches!(db.update(t, 1 << 40, b"x"), Err(DbError::NoSuchRecord { .. })));
    db.commit(t).unwrap();
    let _ = MemError::NotResident { line: smdb::sim::LineId(0) }; // silence unused import paths
}

/// Operations on finished transactions are rejected.
#[test]
fn finished_txn_rejected() {
    let mut db = SmDb::new(DbConfig::small(4, ProtocolKind::VolatileSelectiveRedo));
    let t = db.begin(N0).unwrap();
    db.commit(t).unwrap();
    assert!(matches!(db.update(t, 0, b"x"), Err(DbError::TxnNotActive { .. })));
    assert!(matches!(db.commit(t), Err(DbError::TxnNotActive { .. })));
    assert!(matches!(db.abort(t), Err(DbError::TxnNotActive { .. })));
}

/// Beginning a transaction on a crashed node fails until reboot.
#[test]
fn begin_on_crashed_node() {
    let mut db = SmDb::new(DbConfig::small(4, ProtocolKind::VolatileSelectiveRedo));
    db.crash_and_recover(&[N2]).unwrap();
    assert!(matches!(db.begin(N2), Err(DbError::NodeDown { .. })));
    db.reboot(N2);
    let t = db.begin(N2).unwrap();
    db.update(t, 9, b"back").unwrap();
    db.commit(t).unwrap();
}

/// Checkpoints reclaim log space without harming recovery — repeated
/// cycles of work + checkpoint keep the retained log bounded, and a crash
/// after truncation still recovers correctly.
#[test]
fn checkpoint_truncates_logs_and_recovery_still_works() {
    let mut db = SmDb::new(DbConfig::small(4, ProtocolKind::VolatileSelectiveRedo));
    let mut retained = Vec::new();
    for round in 0..4u64 {
        for i in 0..12u64 {
            let t = db.begin(NodeId((i % 4) as u16)).unwrap();
            db.update(t, i, &(round * 100 + i).to_le_bytes()).unwrap();
            db.commit(t).unwrap();
        }
        db.checkpoint(N0).unwrap();
        retained.push(db.logs().log(N0).len());
    }
    // The retained log does not grow round over round (reclamation works).
    assert!(
        retained.windows(2).all(|w| w[1] <= w[0] + 2),
        "retained log lengths kept growing: {retained:?}"
    );
    // An open transaction pins the truncation point...
    let pin = db.begin(N1).unwrap();
    db.update(pin, 50, b"pinned").unwrap();
    for i in 0..12u64 {
        let t = db.begin(N2).unwrap();
        db.update(t, 60 + i, b"more").unwrap();
        db.commit(t).unwrap();
    }
    db.checkpoint(N0).unwrap();
    assert!(
        db.logs().log(N1).records().iter().any(|r| r.payload.txn() == Some(pin)),
        "active transaction's records must survive truncation"
    );
    // ...and recovery after all this is still exact.
    db.crash_and_recover(&[NodeId(3)]).unwrap();
    db.check_ifa(N0).assert_ok();
    db.commit(pin).unwrap();
    let all: Vec<NodeId> = (0..4).map(NodeId).collect();
    db.crash_and_recover(&all).unwrap();
    assert_eq!(&db.current_value(50).unwrap()[..6], b"pinned");
    for i in 0..12u64 {
        assert_eq!(&db.current_value(i).unwrap()[..8], &(300 + i).to_le_bytes());
    }
}

/// The IFA oracle is not a rubber stamp: destroying committed data behind
/// the engine's back (evicting an unflushed page) must be *detected*.
#[test]
fn oracle_detects_real_violations() {
    let mut db = SmDb::new(DbConfig::small(4, ProtocolKind::VolatileSelectiveRedo));
    let t = db.begin(N0).unwrap();
    db.update(t, 0, b"precious").unwrap();
    db.commit(t).unwrap();
    // Misuse: evict the page without flushing it first. The committed
    // value existed only in cache; the stale stable image resurfaces.
    let page = db.record_layout().rec_of_global(0).page;
    db.evict_page(page);
    let r = db.check_ifa(N0);
    assert!(!r.ok(), "the oracle must flag the lost committed value");
    assert!(r.violations.iter().any(|v| v.contains("record 0")), "{:?}", r.violations);
}
