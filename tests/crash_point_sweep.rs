//! Deterministic crash-point sweep: for a fixed workload, crash at every
//! k-th transaction boundary under every protocol and verify IFA each
//! time. Complements the randomized property tests with exhaustive
//! coverage of one trace.

use smdb::core::{DbConfig, ProtocolKind, SmDb};
use smdb::sim::NodeId;
use smdb::workload::{run_mix_with_crash, CrashPlan, MixParams};

fn sweep(protocol: ProtocolKind, crash_nodes: Vec<NodeId>) {
    for crash_after in (0..30).step_by(5) {
        let mut db = SmDb::new(DbConfig::small(4, protocol));
        let params = MixParams {
            txns: 30,
            sharing: 0.7,
            read_fraction: 0.2,
            index_fraction: 0.3,
            seed: 0xC0FFEE,
            ..Default::default()
        };
        let plan = CrashPlan { after_txns: crash_after, nodes: crash_nodes.clone() };
        let (report, recovery) =
            run_mix_with_crash(&mut db, params, Some(plan)).expect("recovery succeeds");
        assert!(recovery.is_some(), "{protocol:?}@{crash_after}: crash did not fire");
        assert!(
            report.committed >= 25,
            "{protocol:?}@{crash_after}: too few commits ({})",
            report.committed
        );
        let survivor = db.machine().surviving_nodes()[0];
        let r = db.check_ifa(survivor);
        assert!(r.ok(), "{protocol:?}@{crash_after}: {:?}", r.violations);
    }
}

#[test]
fn sweep_volatile_selective() {
    sweep(ProtocolKind::VolatileSelectiveRedo, vec![NodeId(1)]);
}

#[test]
fn sweep_volatile_redo_all() {
    sweep(ProtocolKind::VolatileRedoAll, vec![NodeId(1)]);
}

#[test]
fn sweep_stable_eager() {
    sweep(ProtocolKind::StableEager, vec![NodeId(1)]);
}

#[test]
fn sweep_stable_triggered() {
    sweep(ProtocolKind::StableTriggered, vec![NodeId(1)]);
}

#[test]
fn sweep_fa_only() {
    sweep(ProtocolKind::FaOnly, vec![NodeId(1)]);
}

#[test]
fn sweep_two_node_crashes() {
    sweep(ProtocolKind::VolatileSelectiveRedo, vec![NodeId(1), NodeId(2)]);
}

/// Crash at every transaction boundary (finer sweep, one protocol) with
/// a checkpoint in the middle, exercising truncated-log recovery at every
/// point.
#[test]
fn fine_sweep_with_checkpoint() {
    for crash_after in 0..20 {
        let mut db = SmDb::new(DbConfig::small(4, ProtocolKind::VolatileSelectiveRedo));
        // First half of the workload + checkpoint.
        let params = MixParams {
            txns: 10,
            sharing: 0.5,
            seed: 0xBEEF,
            index_fraction: 0.2,
            ..Default::default()
        };
        run_mix_with_crash(&mut db, params.clone(), None).expect("mix runs");
        db.checkpoint(NodeId(0)).unwrap();
        // Second half with the crash somewhere inside.
        let plan = CrashPlan { after_txns: crash_after, nodes: vec![NodeId(2)] };
        let (_, recovery) = run_mix_with_crash(
            &mut db,
            MixParams { txns: 20, seed: 0xBEEF ^ 1, ..params },
            Some(plan),
        )
        .expect("recovery succeeds");
        assert!(recovery.is_some());
        let survivor = db.machine().surviving_nodes()[0];
        let r = db.check_ifa(survivor);
        assert!(r.ok(), "@{crash_after}: {:?}", r.violations);
    }
}
