//! End-to-end crash-point sweep: the fault-injection subsystem's main
//! integration harness.
//!
//! For each Table-1 protocol, a seeded workload is dry-run once with a
//! counting injector to enumerate every crash point it visits (WAL record
//! forces, line migrations and invalidations, stable-page line flushes,
//! commit-path points, recovery-phase boundaries). The sweep driver then
//! replays the scenario once per sampled point — the victim node dies
//! mid-operation with whatever partial state the layer left behind — and
//! once per sampled (primary, secondary) pair, where a second node dies
//! while recovery from the first crash is still in flight. After every
//! schedule three oracles run: `check_ifa` (records + index + lock space
//! vs the shadow model), the B+-tree structural invariants, and the
//! committed-data check. Every failure is a one-line repro: scenario
//! label, seed, and the `site#hit` plan.
//!
//! Bounded by default so tier-1 stays fast; `SMDB_FULL_SWEEP=1` (see
//! `scripts/crash_sweep.sh`) sweeps every enumerated point.

use smdb::core::fault::sweep::{sweep, RunMode, RunOutput, SweepConfig, SweepReport};
use smdb::core::fault::{CrashPoint, FaultInjector, FaultPlan, Mode, SiteVisits};
use smdb::core::{
    DbConfig, DbError, ProtocolKind, SmDb, FAULT_COMMIT_DEP, FAULT_REDO_BACKGROUND,
    FAULT_REDO_ON_DEMAND,
};
use smdb::sim::NodeId;
use smdb::wal::{FAULT_CHECKPOINT_RECORD, FAULT_TRUNCATE};
use smdb::workload::{run_mix_with_crash, MixParams};

const SEED: u64 = 0x5EED_CAFE;

/// Coherence-directory stripe count for every sweep engine, from
/// `SMDB_SIM_SHARDS` (default 1, the unsharded directory). CI re-runs
/// the bounded sweep once at 8 stripes: the serial driver is unchanged —
/// striping must be behavior-invisible — so the same crash points replay
/// through the sharded directory and recovery paths.
fn sweep_shards() -> usize {
    std::env::var("SMDB_SIM_SHARDS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(1)
}

fn params(seed: u64) -> MixParams {
    MixParams {
        txns: 16,
        ops_per_txn: 4,
        sharing: 0.6,
        read_fraction: 0.2,
        index_fraction: 0.25,
        seed,
        // Exercise the checkpoint + truncation paths (and their crash
        // points) in every sweep scenario.
        checkpoint_every: 5,
        ..Default::default()
    }
}

/// The early-lock-release variant of the sweep workload: the pipelined
/// group-commit driver over polling locks, so commit records sit
/// unforced while successors already run on violated locks — the window
/// the `core.commit.dep` crash point (and the cascade-abort machinery
/// behind it) exists for. Index ops stay off: the pipelined driver's
/// deadlock freedom relies on sorted record-lock acquisition.
fn elr_params(seed: u64) -> MixParams {
    MixParams {
        index_fraction: 0.0,
        read_fraction: 0.0,
        commit_window: 4,
        drain_every: 3,
        ..params(seed)
    }
}

/// Encode the sweep scenario in the fuzzer's `cfg=` syntax so a printed
/// `FAIL` line carries enough context to replay it directly (protocol,
/// node count, workload shape, pipelining knobs). The fraction knobs are
/// percentages of the `params`/`elr_params` values above.
fn scenario_context(protocol: ProtocolKind, elr: bool) -> String {
    let tag = match protocol {
        ProtocolKind::FaOnly => "FA",
        ProtocolKind::VolatileRedoAll => "VRA",
        ProtocolKind::VolatileSelectiveRedo => "VSR",
        ProtocolKind::StableEager => "SE",
        ProtocolKind::StableTriggered => "ST",
    };
    if elr {
        format!("p:{tag},n:4,t:16,o:4,rf:0,sh:60,ix:0,ck:5,w:4,d:3,elr:1,co:1")
    } else {
        format!("p:{tag},n:4,t:16,o:4,rf:20,sh:60,ix:25,ck:5,w:1,d:0,elr:0,co:1")
    }
}

/// Drive crash + recovery after an injected fire. Nested fires — the
/// recovery node itself dying mid-restart — surface as further
/// `FaultCrash` errors out of `recover`: crash the new victim and recover
/// again from a fresh survivor until the restart converges.
fn drive_recovery(db: &mut SmDb, first: DbError) -> Result<(), String> {
    let mut err = first;
    for _ in 0..8 {
        let Some(c) = err.fault_crash().copied() else {
            return Err(format!("non-crash error out of scenario: {err}"));
        };
        db.crash(&[NodeId(c.node)]);
        match db.recover() {
            Ok(_) => return Ok(()),
            Err(e) => err = e,
        }
    }
    Err("recovery did not converge after 8 nested crashes".into())
}

/// The post-schedule oracles. Any violation becomes the one-line repro's
/// message.
fn check_oracles(db: &mut SmDb) -> Result<(), String> {
    let survivors = db.machine().surviving_nodes();
    let scan = *survivors.first().ok_or("no survivors after recovery")?;
    // IFA oracle: physical record values, live index contents, and the
    // lock space, all compared against the shadow model.
    let r = db.check_ifa(scan);
    if !r.ok() {
        return Err(format!("IFA: {}", r.violations.join("; ")));
    }
    // B+-tree oracle: structural invariants (sorted leaf chain, branch
    // separator ranges). `check_invariants` panics with a description.
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| db.check_index_invariants(scan)))
    {
        Ok(Ok(())) => {}
        Ok(Err(e)) => return Err(format!("btree oracle unreadable: {e}")),
        Err(p) => {
            let msg = p
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic".into());
            return Err(format!("btree invariant: {msg}"));
        }
    }
    // Committed-data oracle: once no transaction is active (recovery
    // aborted the doomed one; everything else committed), every record
    // must physically hold its committed value.
    if db.active_txns(None).is_empty() {
        for slot in 0..db.record_count() as u64 {
            let got = db.current_value(slot).map_err(|e| format!("slot {slot}: {e}"))?;
            let want = db.read_committed(slot).map_err(|e| format!("slot {slot}: {e}"))?;
            if got != want {
                return Err(format!(
                    "committed data: slot {slot} expected {:?}…, found {:?}…",
                    &want[..want.len().min(8)],
                    &got[..got.len().min(8)]
                ));
            }
        }
    }
    Ok(())
}

/// One scenario execution in the given sweep mode: fresh database, seeded
/// workload, crash driving on fire, oracles, injector snapshot.
fn run_scenario(protocol: ProtocolKind, seed: u64, mode: &RunMode) -> Result<RunOutput, String> {
    run_scenario_cfg(protocol, seed, mode, false)
}

/// Same scenario with early lock release + the pipelined driver.
fn run_scenario_elr(
    protocol: ProtocolKind,
    seed: u64,
    mode: &RunMode,
) -> Result<RunOutput, String> {
    run_scenario_cfg(protocol, seed, mode, true)
}

fn run_scenario_cfg(
    protocol: ProtocolKind,
    seed: u64,
    mode: &RunMode,
    elr: bool,
) -> Result<RunOutput, String> {
    // Coalesced (group) log forces stay on for every sweep scenario: the
    // sweep is the proof that deferring force requests into the pending
    // window preserves recovery semantics at every crash point.
    let mut cfg =
        DbConfig::small(4, protocol).with_coalesced_forces().with_sim_shards(sweep_shards());
    if elr {
        cfg = cfg.with_early_lock_release().with_lock_polling();
    }
    let mut db = SmDb::new(cfg);
    let f = FaultInjector::new();
    db.set_fault_injector(f.clone());
    match mode {
        RunMode::Count => f.start_counting(),
        RunMode::Replay(plan) => f.arm(plan.clone()),
        RunMode::CountDuringRecovery(plan) => f.arm_then_count(plan.clone()),
    }
    let p = if elr { elr_params(seed) } else { params(seed) };
    match run_mix_with_crash(&mut db, p, None) {
        Ok(_) => {}
        Err(e) => drive_recovery(&mut db, e)?,
    }
    // A crash that cut the pipelined run short also skipped the driver's
    // final drain, stranding surviving commit records unacknowledged
    // (appended, locks violated away, no covering force). Drain them now
    // — the group-commit daemon catching up after restart. The drain can
    // itself land on a still-armed crash point; drive recovery and retry.
    while db.pending_commit_count() > 0 {
        match db.drain_commit_pipeline() {
            Ok(0) => break,
            Ok(_) => {}
            Err(e) => drive_recovery(&mut db, e)?,
        }
    }
    // Snapshot the injector BEFORE the oracle scans: enumeration must not
    // include oracle-only visits, and an armed point the perturbed path
    // never reached must not fire mid-oracle.
    let expected = match mode {
        RunMode::Count => 0,
        RunMode::Replay(p) | RunMode::CountDuringRecovery(p) => p.points.len(),
    };
    let all_fired = f.fired().len() == expected;
    let visits = if f.mode() == Mode::Counting {
        f.take_visits()
    } else {
        f.off();
        Vec::new()
    };
    check_oracles(&mut db)?;
    Ok(RunOutput { visits, all_fired })
}

fn sweep_protocol(protocol: ProtocolKind, label: &str) -> SweepReport {
    let full = std::env::var("SMDB_FULL_SWEEP").map(|v| v == "1").unwrap_or(false);
    let cfg = SweepConfig {
        label: label.to_string(),
        seed: SEED,
        max_single: if full { usize::MAX } else { 60 },
        max_nested: if full { 200 } else { 15 },
        nested_primaries: if full { 12 } else { 5 },
        context: scenario_context(protocol, false),
    };
    let report = sweep(&cfg, |mode| run_scenario(protocol, SEED, mode));
    println!(
        "{label}: {} points, {} single + {} nested replays, {} unfired",
        report.points_enumerated, report.single_runs, report.nested_runs, report.unfired
    );
    assert!(report.passed(), "{}", report.failures.join("\n"));
    report
}

/// Per-protocol floors: 4 × 50 single replays and 4 × 13 nested replays
/// keep the suite above 200 distinct single crash points and 50 nested
/// schedules across the four Table-1 protocols.
fn assert_coverage(r: &SweepReport) {
    assert!(r.single_runs >= 50, "{}: only {} single replays", r.label, r.single_runs);
    assert!(r.nested_runs >= 13, "{}: only {} nested replays", r.label, r.nested_runs);
}

#[test]
fn sweep_volatile_selective_redo() {
    assert_coverage(&sweep_protocol(ProtocolKind::VolatileSelectiveRedo, "volatile_selective"));
}

#[test]
fn sweep_volatile_redo_all() {
    assert_coverage(&sweep_protocol(ProtocolKind::VolatileRedoAll, "volatile_redo_all"));
}

#[test]
fn sweep_stable_eager() {
    assert_coverage(&sweep_protocol(ProtocolKind::StableEager, "stable_eager"));
}

#[test]
fn sweep_stable_triggered() {
    assert_coverage(&sweep_protocol(ProtocolKind::StableTriggered, "stable_triggered"));
}

/// The same four-protocol sweep with **early lock release** and the
/// pipelined group-commit driver: commit records pile up unforced while
/// successors already run on violated locks, so every crash point now
/// lands on top of live violation edges and pending acknowledgements.
/// The oracles prove the cascade-abort + dependency-filtered recovery
/// machinery restores exactly the durably-committed state anyway.
fn sweep_protocol_elr(protocol: ProtocolKind, label: &str) -> SweepReport {
    let full = std::env::var("SMDB_FULL_SWEEP").map(|v| v == "1").unwrap_or(false);
    let cfg = SweepConfig {
        label: label.to_string(),
        seed: SEED,
        max_single: if full { usize::MAX } else { 40 },
        max_nested: if full { 200 } else { 10 },
        nested_primaries: if full { 12 } else { 4 },
        context: scenario_context(protocol, true),
    };
    let report = sweep(&cfg, |mode| run_scenario_elr(protocol, SEED, mode));
    println!(
        "{label}: {} points, {} single + {} nested replays, {} unfired",
        report.points_enumerated, report.single_runs, report.nested_runs, report.unfired
    );
    assert!(report.passed(), "{}", report.failures.join("\n"));
    assert!(report.single_runs >= 30, "{label}: only {} single replays", report.single_runs);
    assert!(report.nested_runs >= 8, "{label}: only {} nested replays", report.nested_runs);
    report
}

#[test]
fn sweep_elr_volatile_selective_redo() {
    sweep_protocol_elr(ProtocolKind::VolatileSelectiveRedo, "elr_volatile_selective");
}

#[test]
fn sweep_elr_volatile_redo_all() {
    sweep_protocol_elr(ProtocolKind::VolatileRedoAll, "elr_volatile_redo_all");
}

#[test]
fn sweep_elr_stable_eager() {
    sweep_protocol_elr(ProtocolKind::StableEager, "elr_stable_eager");
}

#[test]
fn sweep_elr_stable_triggered() {
    sweep_protocol_elr(ProtocolKind::StableTriggered, "elr_stable_triggered");
}

/// The controlled-lock-violation crash point, swept **exhaustively**: a
/// node dies right after `commit_pipelined` appended the commit record
/// and released the write locks, before any covering force. Every
/// enumerated visit of `core.commit.dep` is replayed as a single failure
/// for each Table-1 protocol — the window where successors may already
/// hold violated locks and must be cascade-aborted by recovery.
#[test]
fn commit_dep_crash_point_swept_exhaustively() {
    for protocol in ProtocolKind::ifa_protocols() {
        let out =
            run_scenario_elr(protocol, SEED, &RunMode::Count).expect("count run is crash-free");
        let mut points: Vec<CrashPoint> = Vec::new();
        for sv in &out.visits {
            if sv.site == FAULT_COMMIT_DEP {
                for k in 0..sv.nodes.len() as u64 {
                    points.push(CrashPoint::new(sv.site, k));
                }
            }
        }
        assert!(
            !points.is_empty(),
            "{protocol:?}: pipelined workload never visited {FAULT_COMMIT_DEP}"
        );
        for point in points {
            run_scenario_elr(protocol, SEED, &RunMode::Replay(FaultPlan::single(point)))
                .unwrap_or_else(|e| panic!("{protocol:?} plan={point} :: {e}"));
        }
    }
}

/// The checkpoint-machinery crash points, swept **exhaustively** (the
/// bounded stride-sample above may skip them): every enumerated visit of
/// `wal.checkpoint.record` (node dies before writing its checkpoint
/// marker — torn checkpoint, metadata never installed) and `wal.truncate`
/// (node dies after metadata install with truncation incomplete) is
/// replayed as a single failure for each Table-1 protocol.
#[test]
fn checkpoint_and_truncate_crash_points_swept_exhaustively() {
    for protocol in ProtocolKind::ifa_protocols() {
        let out = run_scenario(protocol, SEED, &RunMode::Count).expect("count run is crash-free");
        let mut points: Vec<CrashPoint> = Vec::new();
        for sv in &out.visits {
            if sv.site == FAULT_CHECKPOINT_RECORD || sv.site == FAULT_TRUNCATE {
                for k in 0..sv.nodes.len() as u64 {
                    points.push(CrashPoint::new(sv.site, k));
                }
            }
        }
        assert!(
            points.iter().any(|p| p.site == FAULT_CHECKPOINT_RECORD)
                && points.iter().any(|p| p.site == FAULT_TRUNCATE),
            "{protocol:?}: workload never visited the checkpoint crash points"
        );
        for point in points {
            run_scenario(protocol, SEED, &RunMode::Replay(FaultPlan::single(point)))
                .unwrap_or_else(|e| panic!("{protocol:?} plan={point} :: {e}"));
        }
    }
}

/// One instant-restart scenario: seeded mix, node 0 dies with the mix's
/// committed effects in its cache, recovery opens early with deferred
/// redo pending, then the forward path (a locked scan of every record,
/// driving the on-demand hook) and a background drain retire the plan.
/// An armed `restart.redo.*` point kills the acting node mid-retire; the
/// loops recover (the re-derived plan re-opens the window) and resume
/// until the window closes, then the standing oracles run.
fn run_instant_scenario(
    protocol: ProtocolKind,
    plan: Option<&FaultPlan>,
) -> Result<Vec<SiteVisits>, String> {
    let cfg = DbConfig::small(4, protocol)
        .with_coalesced_forces()
        .with_instant_restart()
        .with_sim_shards(sweep_shards());
    let mut db = SmDb::new(cfg);
    let f = FaultInjector::new();
    db.set_fault_injector(f.clone());
    run_mix_with_crash(&mut db, params(SEED), None).map_err(|e| format!("mix: {e}"))?;
    // The mix's trailing checkpoint leaves almost no redo candidates, so
    // commit a post-checkpoint tail on the doomed node: these updates sit
    // only in node 0's cache when it dies, guaranteeing the instant
    // recovery actually defers a plan for the window loops to exercise.
    for (i, slot) in [1u64, 5, 9, 13, 17, 21].into_iter().enumerate() {
        let t = db.begin(NodeId(0)).map_err(|e| format!("tail begin: {e}"))?;
        db.update(t, slot, format!("tail-{i}").as_bytes())
            .map_err(|e| format!("tail update: {e}"))?;
        db.commit(t).map_err(|e| format!("tail commit: {e}"))?;
    }
    match plan {
        Some(p) => f.arm(p.clone()),
        None => f.start_counting(),
    }
    db.crash(&[NodeId(0)]);
    if let Err(e) = db.recover() {
        drive_recovery(&mut db, e)?;
    }
    // One single-entry background batch up front: the full forward scan
    // below retires every remaining entry on-demand, so without this the
    // background site would go unvisited on plans the scan fully covers.
    if db.redo_pending() > 0 {
        let node = *db.machine().surviving_nodes().first().ok_or("no survivors")?;
        if let Err(e) = db.drain_redo(node, 1) {
            drive_recovery(&mut db, e)?;
        }
    }
    // Forward path during the drain window: every record read under locks,
    // so each line with pending redo walks the on-demand hook.
    let total = db.record_count() as u64;
    let mut slot = 0u64;
    while slot < total {
        let node = *db.machine().surviving_nodes().first().ok_or("no survivors")?;
        let t = match db.begin(node) {
            Ok(t) => t,
            Err(e) => {
                drive_recovery(&mut db, e)?;
                continue;
            }
        };
        match db.read(t, slot) {
            Ok(_) => {
                db.commit(t).map_err(|e| format!("slot {slot} commit: {e}"))?;
                slot += 1;
            }
            // The reader died mid-access (on-demand crash point): recover
            // and retry the same slot on a fresh transaction.
            Err(e) => drive_recovery(&mut db, e)?,
        }
    }
    // Background drain to completion; a mid-drain crash replans.
    while db.redo_pending() > 0 {
        let node = *db.machine().surviving_nodes().first().ok_or("no survivors")?;
        if let Err(e) = db.drain_redo(node, 4) {
            drive_recovery(&mut db, e)?;
        }
    }
    let visits = if f.mode() == Mode::Counting {
        f.take_visits()
    } else {
        f.off();
        Vec::new()
    };
    check_oracles(&mut db)?;
    Ok(visits)
}

/// The instant-restart drain-window crash points, swept **exhaustively**:
/// every enumerated visit of `restart.redo.on_demand` (the accessing node
/// dies before the inline redo of a first-touch line) and
/// `restart.redo.background` (the draining node dies mid-batch) is
/// replayed as a single failure for each Table-1 protocol — the second
/// recovery must re-derive the deferred plan from the same stable log and
/// still converge to the committed state.
#[test]
fn instant_drain_crash_points_swept_exhaustively() {
    for protocol in ProtocolKind::ifa_protocols() {
        let visits = run_instant_scenario(protocol, None).expect("count run is crash-free");
        let mut points: Vec<CrashPoint> = Vec::new();
        for sv in &visits {
            if sv.site == FAULT_REDO_ON_DEMAND || sv.site == FAULT_REDO_BACKGROUND {
                for k in 0..sv.nodes.len() as u64 {
                    points.push(CrashPoint::new(sv.site, k));
                }
            }
        }
        assert!(
            points.iter().any(|p| p.site == FAULT_REDO_ON_DEMAND),
            "{protocol:?}: forward scan never hit the on-demand redo point"
        );
        assert!(
            points.iter().any(|p| p.site == FAULT_REDO_BACKGROUND),
            "{protocol:?}: background drain never hit its crash point"
        );
        for point in points {
            run_instant_scenario(protocol, Some(&FaultPlan::single(point)))
                .unwrap_or_else(|e| panic!("{protocol:?} plan={point} :: {e}"));
        }
    }
}

/// The FA-only baseline recovers with a full restart; sweep it lightly to
/// keep the crash points on that path honest too.
#[test]
fn sweep_fa_only_baseline() {
    let cfg = SweepConfig {
        label: "fa_only".to_string(),
        seed: SEED,
        max_single: 20,
        max_nested: 4,
        nested_primaries: 2,
        context: scenario_context(ProtocolKind::FaOnly, false),
    };
    let report = sweep(&cfg, |mode| run_scenario(ProtocolKind::FaOnly, SEED, mode));
    assert!(report.passed(), "{}", report.failures.join("\n"));
    assert!(report.single_runs >= 15, "fa_only: only {} single replays", report.single_runs);
}
