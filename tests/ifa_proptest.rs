//! Property-based IFA validation: random workloads × random crash sets ×
//! every protocol. The invariant (§3.3): after crash-and-recover, all
//! effects of crashed-node transactions are gone and no effect of any
//! surviving node's transaction is lost — checked record-by-record,
//! index-key-by-key, and lock-by-lock by the engine's shadow oracle.

use proptest::prelude::*;
use smdb::core::{DbConfig, ProtocolKind, SmDb};
use smdb::sim::NodeId;
use smdb::workload::{run_mix_with_crash, spawn_active, CrashPlan, MixParams};

fn protocol_strategy() -> impl Strategy<Value = ProtocolKind> {
    prop_oneof![
        Just(ProtocolKind::FaOnly),
        Just(ProtocolKind::VolatileRedoAll),
        Just(ProtocolKind::VolatileSelectiveRedo),
        Just(ProtocolKind::StableEager),
        Just(ProtocolKind::StableTriggered),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Committed work survives any single-node crash; in-flight work on
    /// survivors persists; in-flight work on the crashed node vanishes.
    #[test]
    fn ifa_holds_for_random_mixes(
        protocol in protocol_strategy(),
        seed in any::<u64>(),
        sharing in 0.0f64..=1.0,
        read_fraction in 0.0f64..=0.8,
        index_fraction in 0.0f64..=0.6,
        txns in 10usize..60,
        crash_node in 0u16..4,
        actives_per_node in 0usize..3,
    ) {
        let mut db = SmDb::new(DbConfig::small(4, protocol));
        let params = MixParams {
            txns,
            sharing,
            read_fraction,
            index_fraction,
            seed,
            ..Default::default()
        };
        let (report, _) = run_mix_with_crash(&mut db, params, None);
        prop_assert!(report.committed > 0 || txns == 0);
        let actives = spawn_active(&mut db, actives_per_node, 2, true, seed ^ 0xABCD);
        let outcome = db.crash_and_recover(&[NodeId(crash_node)]).expect("recovery");
        // Abort-set exactness.
        if protocol.guarantees_ifa() {
            let expected: Vec<_> = actives
                .iter()
                .copied()
                .filter(|t| t.node() == NodeId(crash_node))
                .collect();
            prop_assert_eq!(outcome.aborted.clone(), expected);
        } else {
            prop_assert_eq!(outcome.aborted.len(), actives.len());
        }
        // Full state check against the shadow model.
        let survivor = db.machine().surviving_nodes()[0];
        let r = db.check_ifa(survivor);
        prop_assert!(r.ok(), "IFA violated under {:?}: {:?}", protocol, r.violations);
    }

    /// Same, crashing in the *middle* of the workload and continuing after.
    #[test]
    fn ifa_holds_for_mid_stream_crashes(
        protocol in protocol_strategy(),
        seed in any::<u64>(),
        sharing in 0.0f64..=1.0,
        crash_after in 5usize..25,
        crash_node in 0u16..4,
    ) {
        let mut db = SmDb::new(DbConfig::small(4, protocol));
        let params = MixParams { txns: 40, sharing, seed, ..Default::default() };
        let plan = CrashPlan { after_txns: crash_after, nodes: vec![NodeId(crash_node)] };
        let (report, recovery) = run_mix_with_crash(&mut db, params, Some(plan));
        prop_assert!(recovery.is_some());
        prop_assert!(report.committed > 30, "survivors kept committing");
        let survivor = db.machine().surviving_nodes()[0];
        let r = db.check_ifa(survivor);
        prop_assert!(r.ok(), "IFA violated under {:?}: {:?}", protocol, r.violations);
    }

    /// Parallel (multi-node) transactions — §9: a crash of *any*
    /// participant aborts the whole transaction; bystander crashes spare
    /// it.
    #[test]
    fn ifa_holds_with_parallel_txns(
        protocol in protocol_strategy(),
        seed in any::<u64>(),
        home in 0u16..4,
        participant in 0u16..4,
        crash_node in 0u16..4,
        slots in proptest::collection::vec(0u64..200, 1..5),
    ) {
        prop_assume!(home != participant);
        let mut db = SmDb::new(DbConfig::small(4, protocol));
        // Background committed state.
        run_mix_with_crash(
            &mut db,
            MixParams { txns: 15, seed, ..Default::default() },
            None,
        );
        let t = db.begin(NodeId(home)).expect("begin");
        db.attach(t, NodeId(participant)).expect("attach");
        for (i, &slot) in slots.iter().enumerate() {
            let node = if i % 2 == 0 { NodeId(home) } else { NodeId(participant) };
            match db.update_on(t, node, slot, &slot.to_le_bytes()) {
                Ok(()) => {}
                Err(smdb::core::DbError::WouldBlock { .. }) => {} // tolerated
                Err(e) => return Err(TestCaseError::fail(format!("update_on: {e}"))),
            }
        }
        let outcome = db.crash_and_recover(&[NodeId(crash_node)]).expect("recovery");
        let doomed = crash_node == home || crash_node == participant;
        if protocol.guarantees_ifa() {
            prop_assert_eq!(
                outcome.aborted.contains(&t),
                doomed,
                "parallel txn aborted iff a participant crashed"
            );
        }
        let survivor = db.machine().surviving_nodes()[0];
        let r = db.check_ifa(survivor);
        prop_assert!(r.ok(), "IFA violated under {:?}: {:?}", protocol, r.violations);
        if !doomed && protocol.guarantees_ifa() {
            db.commit(t).expect("commit after bystander crash");
            let r = db.check_ifa(survivor);
            prop_assert!(r.ok(), "post-commit: {:?}", r.violations);
        }
    }

    /// Multi-node and repeated crashes.
    #[test]
    fn ifa_holds_for_multi_node_crashes(
        protocol in protocol_strategy(),
        seed in any::<u64>(),
        sharing in 0.0f64..=1.0,
        crash_a in 0u16..6,
        crash_b in 0u16..6,
    ) {
        let mut db = SmDb::new(DbConfig::small(6, protocol));
        run_mix_with_crash(
            &mut db,
            MixParams { txns: 25, sharing, seed, ..Default::default() },
            None,
        );
        let _ = spawn_active(&mut db, 1, 2, true, seed ^ 0x1234);
        db.crash_and_recover(&[NodeId(crash_a)]).expect("first recovery");
        let survivor = db.machine().surviving_nodes()[0];
        let r = db.check_ifa(survivor);
        prop_assert!(r.ok(), "after first crash, {:?}: {:?}", protocol, r.violations);
        // Second crash (possibly the same node — then it's a no-op).
        db.crash_and_recover(&[NodeId(crash_b)]).expect("second recovery");
        let survivor = db.machine().surviving_nodes()[0];
        let r = db.check_ifa(survivor);
        prop_assert!(r.ok(), "after second crash, {:?}: {:?}", protocol, r.violations);
    }
}
