//! Property-based IFA validation: random workloads × random crash sets ×
//! every protocol. The invariant (§3.3): after crash-and-recover, all
//! effects of crashed-node transactions are gone and no effect of any
//! surviving node's transaction is lost — checked record-by-record,
//! index-key-by-key, and lock-by-lock by the engine's shadow oracle.

use proptest::prelude::*;
use smdb::core::{DbConfig, ProtocolKind, SmDb};
use smdb::sim::NodeId;
use smdb::workload::{run_mix_with_crash, spawn_active, CrashPlan, MixParams};

fn protocol_strategy() -> impl Strategy<Value = ProtocolKind> {
    prop_oneof![
        Just(ProtocolKind::FaOnly),
        Just(ProtocolKind::VolatileRedoAll),
        Just(ProtocolKind::VolatileSelectiveRedo),
        Just(ProtocolKind::StableEager),
        Just(ProtocolKind::StableTriggered),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Committed work survives any single-node crash; in-flight work on
    /// survivors persists; in-flight work on the crashed node vanishes.
    #[test]
    fn ifa_holds_for_random_mixes(
        protocol in protocol_strategy(),
        seed in any::<u64>(),
        sharing in 0.0f64..=1.0,
        read_fraction in 0.0f64..=0.8,
        index_fraction in 0.0f64..=0.6,
        txns in 10usize..60,
        crash_node in 0u16..4,
        actives_per_node in 0usize..3,
    ) {
        let mut db = SmDb::new(DbConfig::small(4, protocol));
        let params = MixParams {
            txns,
            sharing,
            read_fraction,
            index_fraction,
            seed,
            ..Default::default()
        };
        let (report, _) = run_mix_with_crash(&mut db, params, None).expect("mix runs");
        prop_assert!(report.committed > 0 || txns == 0);
        let actives = spawn_active(&mut db, actives_per_node, 2, true, seed ^ 0xABCD);
        let outcome = db.crash_and_recover(&[NodeId(crash_node)]).expect("recovery");
        // Abort-set exactness.
        if protocol.guarantees_ifa() {
            let expected: Vec<_> = actives
                .iter()
                .copied()
                .filter(|t| t.node() == NodeId(crash_node))
                .collect();
            prop_assert_eq!(outcome.aborted.clone(), expected);
        } else {
            prop_assert_eq!(outcome.aborted.len(), actives.len());
        }
        // Full state check against the shadow model.
        let survivor = db.machine().surviving_nodes()[0];
        let r = db.check_ifa(survivor);
        prop_assert!(r.ok(), "IFA violated under {:?}: {:?}", protocol, r.violations);
    }

    /// Same, crashing in the *middle* of the workload and continuing after.
    #[test]
    fn ifa_holds_for_mid_stream_crashes(
        protocol in protocol_strategy(),
        seed in any::<u64>(),
        sharing in 0.0f64..=1.0,
        crash_after in 5usize..25,
        crash_node in 0u16..4,
    ) {
        let mut db = SmDb::new(DbConfig::small(4, protocol));
        let params = MixParams { txns: 40, sharing, seed, ..Default::default() };
        let plan = CrashPlan { after_txns: crash_after, nodes: vec![NodeId(crash_node)] };
        let (report, recovery) =
            run_mix_with_crash(&mut db, params, Some(plan)).expect("recovery succeeds");
        prop_assert!(recovery.is_some());
        prop_assert!(report.committed > 30, "survivors kept committing");
        let survivor = db.machine().surviving_nodes()[0];
        let r = db.check_ifa(survivor);
        prop_assert!(r.ok(), "IFA violated under {:?}: {:?}", protocol, r.violations);
    }

    /// Parallel (multi-node) transactions — §9: a crash of *any*
    /// participant aborts the whole transaction; bystander crashes spare
    /// it.
    #[test]
    fn ifa_holds_with_parallel_txns(
        protocol in protocol_strategy(),
        seed in any::<u64>(),
        home in 0u16..4,
        participant in 0u16..4,
        crash_node in 0u16..4,
        slots in proptest::collection::vec(0u64..200, 1..5),
    ) {
        prop_assume!(home != participant);
        let mut db = SmDb::new(DbConfig::small(4, protocol));
        // Background committed state.
        run_mix_with_crash(
            &mut db,
            MixParams { txns: 15, seed, ..Default::default() },
            None,
        ).expect("mix runs");
        let t = db.begin(NodeId(home)).expect("begin");
        db.attach(t, NodeId(participant)).expect("attach");
        for (i, &slot) in slots.iter().enumerate() {
            let node = if i % 2 == 0 { NodeId(home) } else { NodeId(participant) };
            match db.update_on(t, node, slot, &slot.to_le_bytes()) {
                Ok(()) => {}
                Err(smdb::core::DbError::WouldBlock { .. }) => {} // tolerated
                Err(e) => return Err(TestCaseError::fail(format!("update_on: {e}"))),
            }
        }
        let outcome = db.crash_and_recover(&[NodeId(crash_node)]).expect("recovery");
        let doomed = crash_node == home || crash_node == participant;
        if protocol.guarantees_ifa() {
            prop_assert_eq!(
                outcome.aborted.contains(&t),
                doomed,
                "parallel txn aborted iff a participant crashed"
            );
        }
        let survivor = db.machine().surviving_nodes()[0];
        let r = db.check_ifa(survivor);
        prop_assert!(r.ok(), "IFA violated under {:?}: {:?}", protocol, r.violations);
        if !doomed && protocol.guarantees_ifa() {
            db.commit(t).expect("commit after bystander crash");
            let r = db.check_ifa(survivor);
            prop_assert!(r.ok(), "post-commit: {:?}", r.violations);
        }
    }

    /// Random fault-injection schedules: a random crash point — possibly
    /// a nested pair whose second point strikes while recovery from the
    /// first is still in flight — is armed over a random mix. Wherever
    /// the crashes land (mid-migration, mid-force, mid-flush, either side
    /// of the commit point, between recovery phases), driving
    /// crash+recover to convergence must restore an IFA-consistent state.
    #[test]
    fn ifa_holds_under_random_fault_schedules(
        protocol in protocol_strategy(),
        seed in any::<u64>(),
        sharing in 0.0f64..=1.0,
        site_a in 0usize..5,
        hit_a in 0u64..120,
        nested in any::<bool>(),
        site_b in 0usize..5,
        hit_b in 0u64..8,
    ) {
        use smdb::core::fault::{CrashPoint, FaultInjector, FaultPlan};
        const SITES: [&str; 5] = [
            smdb::sim::FAULT_MIGRATE,
            smdb::sim::FAULT_INVALIDATE,
            smdb::wal::FAULT_FORCE_RECORD,
            smdb::storage::FAULT_FLUSH_LINE,
            smdb::core::FAULT_COMMIT,
        ];
        // Secondary points favour the recovery path; low ordinals so they
        // actually land inside the (short) restart.
        const REC_SITES: [&str; 5] = [
            smdb::core::FAULT_RECOVERY_PHASE,
            smdb::core::FAULT_RECOVERY_PHASE,
            smdb::sim::FAULT_MIGRATE,
            smdb::wal::FAULT_FORCE_RECORD,
            smdb::storage::FAULT_FLUSH_LINE,
        ];
        let mut db = SmDb::new(DbConfig::small(4, protocol));
        let f = FaultInjector::new();
        db.set_fault_injector(f.clone());
        let point_a = CrashPoint::new(SITES[site_a], hit_a);
        let plan = if nested {
            FaultPlan::nested(point_a, CrashPoint::new(REC_SITES[site_b], hit_b))
        } else {
            FaultPlan::single(point_a)
        };
        f.arm(plan.clone());
        let params = MixParams {
            txns: 12,
            sharing,
            index_fraction: 0.25,
            seed,
            ..Default::default()
        };
        match run_mix_with_crash(&mut db, params, None) {
            Ok(_) => {} // ordinal beyond the run's visits: nothing fired
            Err(mut e) => {
                let mut converged = false;
                for _ in 0..8 {
                    let Some(c) = e.fault_crash().copied() else {
                        return Err(TestCaseError::fail(format!("non-crash error: {e}")));
                    };
                    db.crash(&[NodeId(c.node)]);
                    match db.recover() {
                        Ok(_) => { converged = true; break; }
                        Err(e2) => e = e2,
                    }
                }
                prop_assert!(converged, "recovery did not converge under plan={plan}");
            }
        }
        // Disarm before the oracle: an armed point the perturbed run never
        // reached must not fire during the oracle's own coherent scans.
        f.off();
        let survivor = db.machine().surviving_nodes()[0];
        let r = db.check_ifa(survivor);
        prop_assert!(
            r.ok(),
            "IFA violated under {:?} plan={}: {:?}", protocol, plan, r.violations
        );
    }

    /// Instant restart's availability contract, as a property: with the
    /// database opened right after analysis and the whole redo plan still
    /// deferred, a transaction reading *any* record — before a single
    /// background batch has run — observes exactly the committed
    /// pre-crash value the shadow oracle predicts. The on-demand hook is
    /// what stands between the reader and the stale pre-crash heap image,
    /// so every mismatch here is a hole in that hook. Afterwards the
    /// window is drained to empty and the full IFA check must pass.
    #[test]
    fn instant_drain_window_reads_serve_committed_values(
        protocol in prop_oneof![
            Just(ProtocolKind::VolatileRedoAll),
            Just(ProtocolKind::VolatileSelectiveRedo),
            Just(ProtocolKind::StableEager),
            Just(ProtocolKind::StableTriggered),
        ],
        seed in any::<u64>(),
        sharing in 0.0f64..=1.0,
        read_fraction in 0.0f64..=0.5,
        txns in 10usize..40,
        crash_node in 0u16..4,
        probes in proptest::collection::vec(any::<u64>(), 1..10),
    ) {
        let mut db = SmDb::new(DbConfig::small(4, protocol).with_instant_restart());
        let params = MixParams { txns, sharing, read_fraction, seed, ..Default::default() };
        run_mix_with_crash(&mut db, params, None).expect("mix runs");
        db.crash_and_recover(&[NodeId(crash_node)]).expect("recovery");
        let reader = db.machine().surviving_nodes()[0];
        let records = db.record_count() as u64;
        for probe in probes {
            let slot = probe % records;
            let want = db.read_committed(slot).expect("shadow value");
            let t = db.begin(reader).expect("begin in drain window");
            let got = db.read(t, slot).expect("read in drain window");
            db.commit(t).expect("commit in drain window");
            prop_assert_eq!(
                got, want,
                "{:?}: slot {} served a non-committed value mid-window", protocol, slot
            );
        }
        while db.redo_pending() > 0 {
            db.drain_redo(reader, 3).expect("drain");
        }
        let r = db.check_ifa(reader);
        prop_assert!(r.ok(), "post-drain IFA under {:?}: {:?}", protocol, r.violations);
    }

    /// Multi-node and repeated crashes. The historical failure this found
    /// is pinned as the deterministic
    /// [`sequential_crash_of_both_mix_nodes_stable_eager`] below — keep
    /// that test in sync if this property's body changes.
    #[test]
    fn ifa_holds_for_multi_node_crashes(
        protocol in protocol_strategy(),
        seed in any::<u64>(),
        sharing in 0.0f64..=1.0,
        crash_a in 0u16..6,
        crash_b in 0u16..6,
    ) {
        let mut db = SmDb::new(DbConfig::small(6, protocol));
        run_mix_with_crash(
            &mut db,
            MixParams { txns: 25, sharing, seed, ..Default::default() },
            None,
        ).expect("mix runs");
        let _ = spawn_active(&mut db, 1, 2, true, seed ^ 0x1234);
        db.crash_and_recover(&[NodeId(crash_a)]).expect("first recovery");
        let survivor = db.machine().surviving_nodes()[0];
        let r = db.check_ifa(survivor);
        prop_assert!(r.ok(), "after first crash, {:?}: {:?}", protocol, r.violations);
        // Second crash (possibly the same node — then it's a no-op).
        db.crash_and_recover(&[NodeId(crash_b)]).expect("second recovery");
        let survivor = db.machine().surviving_nodes()[0];
        let r = db.check_ifa(survivor);
        prop_assert!(r.ok(), "after second crash, {:?}: {:?}", protocol, r.violations);
    }
}

/// Deterministic pin of the shrunk case in
/// `ifa_proptest.proptest-regressions` (StableEager, seed 0, sharing 0.0,
/// crash node 1 then node 0): with zero sharing the mix lands
/// transactions round-robin, so the two crashes take down exactly the two
/// nodes that did all the committing, back to back. The second recovery
/// re-analyses the first crash's stable log with the first node still
/// down, which historically re-undid already-settled transactions. Runs
/// on every `cargo test` without proptest in the loop.
#[test]
fn sequential_crash_of_both_mix_nodes_stable_eager() {
    let mut db = SmDb::new(DbConfig::small(6, ProtocolKind::StableEager));
    run_mix_with_crash(
        &mut db,
        MixParams { txns: 25, sharing: 0.0, seed: 0, ..Default::default() },
        None,
    )
    .expect("mix runs");
    let _ = spawn_active(&mut db, 1, 2, true, 0x1234); // seed 0 ^ 0x1234
    db.crash_and_recover(&[NodeId(1)]).expect("first recovery");
    let survivor = db.machine().surviving_nodes()[0];
    db.check_ifa(survivor).assert_ok();
    db.crash_and_recover(&[NodeId(0)]).expect("second recovery");
    let survivor = db.machine().surviving_nodes()[0];
    db.check_ifa(survivor).assert_ok();
}
