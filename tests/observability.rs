//! Cross-layer observability: one global sequence numbering means events
//! from the coherence, lock, WAL, and recovery layers can be causally
//! ordered against each other on a single timeline.

use smdb::core::{DbConfig, ProtocolKind, SmDb};
use smdb::obs::{Event, ForceReason, Record};
use smdb::sim::NodeId;

/// Two uncommitted updates to records co-located in cache line 0, from
/// different nodes, under Stable-Triggered LBM — the second update
/// migrates the first updater's active line, forcing its log.
fn contended_line_scenario(enable_obs: bool) -> (SmDb, Vec<Record>) {
    let mut db = SmDb::new(DbConfig::small(4, ProtocolKind::StableTriggered));
    if enable_obs {
        db.observability().enable(8192);
    }
    let t0 = db.begin(NodeId(0)).unwrap();
    db.update(t0, 0, b"alice=100").unwrap();
    let t1 = db.begin(NodeId(1)).unwrap();
    db.update(t1, 1, b"bob=50").unwrap();
    db.commit(t0).unwrap();
    let records = db.observability().bus.snapshot();
    (db, records)
}

fn seq_of(records: &[Record], what: &str, pred: impl Fn(&Event) -> bool) -> u64 {
    records
        .iter()
        .find(|r| pred(&r.event))
        .unwrap_or_else(|| panic!("no {what} event on the bus"))
        .seq
}

#[test]
fn crash_timeline_is_causally_ordered_across_layers() {
    let (mut db, records) = contended_line_scenario(true);

    // The §5.2 causal chain, under one sequence numbering: node 0 line-
    // locks line 0 for its update; node 1's later acquisition of the same
    // line would migrate the active line, so the trigger forces node 0's
    // log (LbmTriggeredForce + WalForce) *before* node 1's LineLock.
    let lock0 =
        seq_of(&records, "LineLock(n0,l0)", |e| matches!(e, Event::LineLock { node: 0, line: 0 }));
    let trigger = seq_of(&records, "LbmTriggeredForce(owner 0,l0)", |e| {
        matches!(e, Event::LbmTriggeredForce { owner: 0, line: 0 })
    });
    let force = seq_of(&records, "WalForce(n0,Lbm)", |e| {
        matches!(e, Event::WalForce { node: 0, reason: ForceReason::Lbm, .. })
    });
    let lock1 =
        seq_of(&records, "LineLock(n1,l0)", |e| matches!(e, Event::LineLock { node: 1, line: 0 }));
    assert!(lock0 < trigger, "owner's lock ({lock0}) precedes the trigger ({trigger})");
    assert!(trigger < force, "trigger ({trigger}) precedes the log force ({force})");
    assert!(force < lock1, "log forced ({force}) before the taker's lock ({lock1})");

    // Forced records are counted: the update wrote >= 1 log record.
    let forced = records
        .iter()
        .find_map(|r| match r.event {
            Event::WalForce { node: 0, records, reason: ForceReason::Lbm } => Some(records),
            _ => None,
        })
        .unwrap();
    assert!(forced >= 1, "the triggered force made {forced} records durable");

    // Crash node 1 and recover: the tail of the same timeline carries the
    // crash and the recovery phases, still in order.
    let outcome = db.crash_and_recover(&[NodeId(1)]).unwrap();
    db.check_ifa(NodeId(0)).assert_ok();
    let records = db.observability().bus.snapshot();

    let crash = seq_of(&records, "CrashInjected", |e| matches!(e, Event::CrashInjected { .. }));
    let begin = seq_of(&records, "RecoveryBegin", |e| matches!(e, Event::RecoveryBegin { .. }));
    let end = seq_of(&records, "RecoveryEnd", |e| matches!(e, Event::RecoveryEnd { .. }));
    assert!(lock1 < crash && crash < begin && begin < end);

    // Phase begin/end events nest between RecoveryBegin and RecoveryEnd,
    // in the canonical phase order.
    let phase_names: Vec<&str> = records
        .iter()
        .filter(|r| r.seq > begin && r.seq < end)
        .filter_map(|r| match r.event {
            Event::RecoveryPhaseBegin { phase } => Some(phase),
            _ => None,
        })
        .collect();
    assert_eq!(
        phase_names,
        ["stable_undo", "reinstall", "cache_discard", "redo", "undo", "lock_recovery", "txn_table"]
    );

    // The outcome's phase timings mirror the bus events.
    let timed: Vec<&str> = outcome.phases.iter().map(|p| p.phase).collect();
    assert_eq!(timed, phase_names);
    let phase_sum: u64 = outcome.phases.iter().map(|p| p.sim_cycles).sum();
    assert!(
        phase_sum <= outcome.recovery_cycles,
        "phases ({phase_sum}) are sub-spans of the whole recovery ({})",
        outcome.recovery_cycles
    );
}

#[test]
fn metrics_cover_every_layer() {
    let (mut db, _) = contended_line_scenario(true);
    db.crash_and_recover(&[NodeId(1)]).unwrap();
    let obs = db.observability();

    for h in
        ["lock.hold_cycles", "wal.force_records", "engine.update_cycles", "recovery.total_cycles"]
    {
        let snap = obs.metrics.histogram(h).unwrap_or_else(|| panic!("histogram {h} missing"));
        assert!(snap.count >= 1, "{h} has samples");
    }
    // Per-phase histograms exist for all seven phases.
    for p in
        ["stable_undo", "reinstall", "cache_discard", "redo", "undo", "lock_recovery", "txn_table"]
    {
        let name = format!("recovery.phase.{p}");
        assert!(obs.metrics.histogram(&name).is_some(), "{name} missing");
    }
    let csv = obs.metrics.snapshot().to_csv();
    assert!(csv.contains("histogram,recovery.total_cycles,"));
}

/// The perf contract of the single-pass restart: each recovery performs
/// **exactly one** analysis scan over the stable logs (counted at the
/// scan itself, not inferred), and the restart counters mirror the
/// recovery outcome.
#[test]
fn recovery_performs_exactly_one_analysis_scan() {
    let (mut db, _) = contended_line_scenario(true);
    assert_eq!(db.observability().metrics.counter("restart.analysis_scans"), 0);

    let outcome = db.crash_and_recover(&[NodeId(1)]).unwrap();
    let obs = db.observability();
    assert_eq!(obs.metrics.counter("restart.analysis_scans"), 1, "one scan per recovery");
    assert!(outcome.scan_records > 0, "the scan visited the retained records");
    assert_eq!(obs.metrics.counter("restart.scan_records"), outcome.scan_records);
    assert_eq!(obs.metrics.counter("restart.redo_applied"), outcome.redo_applied);
    assert_eq!(
        obs.metrics.counter("restart.redo_skipped"),
        outcome.redo_skipped_cached + outcome.redo_skipped_stable + outcome.redo_superseded
    );
    assert_eq!(obs.metrics.gauge("restart.ckpt_bound_lsn"), Some(outcome.ckpt_bound_lsn as i64));

    // A second, independent recovery adds exactly one more scan.
    let o2 = db.crash_and_recover(&[NodeId(2)]).unwrap();
    let obs = db.observability();
    assert_eq!(obs.metrics.counter("restart.analysis_scans"), 2);
    assert_eq!(obs.metrics.counter("restart.scan_records"), outcome.scan_records + o2.scan_records);
    db.check_ifa(NodeId(0)).assert_ok();
}

/// Coalesced (group) log forces under Stable-Eager: per-update force
/// *requests* are absorbed into the pending window and the commit-time
/// force makes the whole window durable in one physical force. The
/// `wal.physical_forces` / `wal.forces_coalesced` counters expose the
/// split, and the records made durable are identical either way.
#[test]
fn stable_eager_coalescing_absorbs_physical_forces() {
    let run = |coalesce: bool| {
        let mut cfg = DbConfig::small(4, ProtocolKind::StableEager);
        if coalesce {
            cfg = cfg.with_coalesced_forces();
        }
        let mut db = SmDb::new(cfg);
        db.observability().enable(8192);
        let t = db.begin(NodeId(0)).unwrap();
        for slot in 0..6 {
            db.update(t, slot, b"coalesce-me").unwrap();
        }
        db.commit(t).unwrap();
        db.check_ifa(NodeId(0)).assert_ok();
        let physical = db.observability().metrics.counter("wal.physical_forces");
        let coalesced = db.observability().metrics.counter("wal.forces_coalesced");
        (physical, coalesced, db.logs().total_records_forced())
    };
    let (phys_off, coal_off, records_off) = run(false);
    let (phys_on, coal_on, records_on) = run(true);

    // Eager mode without coalescing forces on every update; with
    // coalescing those become window requests and only the commit-time
    // force is physical.
    assert_eq!(coal_off, 0, "coalescing off absorbs nothing");
    assert!(coal_on >= 6, "every per-update request is absorbed, got {coal_on}");
    assert!(phys_on < phys_off, "coalescing must reduce physical forces ({phys_on} vs {phys_off})");

    // Durability volume is unchanged: the same records reach the stable
    // log, just in fewer (batched) forces.
    assert_eq!(records_on, records_off, "coalescing must not change durable records");
}

#[test]
fn disabled_observability_records_nothing_but_phases_still_time() {
    let (mut db, records) = contended_line_scenario(false);
    assert!(records.is_empty(), "disabled bus buffers no events");
    let outcome = db.crash_and_recover(&[NodeId(1)]).unwrap();
    assert_eq!(db.observability().bus.len(), 0);
    assert!(db.observability().metrics.histogram("lock.hold_cycles").is_none());
    // Phase timings feed the E3 bench report, so they are captured even
    // with observability off.
    assert_eq!(outcome.phases.len(), 7);
}
