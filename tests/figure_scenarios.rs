//! F1/F2: the paper's figures and §3 histories, validated end to end
//! through the facade crate.

use smdb::core::{DbConfig, ProtocolKind, SmDb};
use smdb::sim::{LineId, Machine, NodeId, SimConfig};

const X: NodeId = NodeId(0);
const Y: NodeId = NodeId(1);
const Z: NodeId = NodeId(2);

/// Figure 1: the instantiated model has per-node caches and logs, shared
/// stable storage, and isolates node failures.
#[test]
fn figure1_system_model() {
    let cfg = DbConfig::small(4, ProtocolKind::VolatileSelectiveRedo);
    let db = SmDb::new(cfg);
    assert_eq!(db.machine().node_count(), 4);
    assert_eq!(db.logs().len(), 4);
    assert!(db.record_layout().records_per_line() > 1, "records co-locate in lines");
    // The unit of coherence (line) is smaller than the unit of I/O (page).
    assert!(db.record_layout().geometry.line_size < db.record_layout().geometry.page_size());
}

/// §3.2 histories at the machine level.
#[test]
fn history_ww1_migration() {
    let mut m = Machine::new(SimConfig::new(3));
    let l = LineId(5);
    m.create_line_at(X, l, &[0]).unwrap();
    m.write(X, l, 0, &[1]).unwrap(); // w_x[l]
    m.write(Y, l, 0, &[2]).unwrap(); // w_y[l]
    assert_eq!(m.exclusive_owner(l), Some(Y), "line migrated directly x→y");
}

#[test]
fn history_ww2_shared_interlude() {
    let mut m = Machine::new(SimConfig::new(3));
    let l = LineId(5);
    m.create_line_at(X, l, &[0]).unwrap();
    m.write(X, l, 0, &[1]).unwrap();
    let mut b = [0u8];
    m.read_into(X, l, 0, &mut b).unwrap(); // r_x[l]*
    m.read_into(Z, l, 0, &mut b).unwrap(); // r_x̄[l]
    m.read_into(Y, l, 0, &mut b).unwrap(); // r*[l]
    assert!(m.holders(l).len() >= 3, "line replicated during the read interlude");
    m.write(Y, l, 0, &[2]).unwrap(); // w_y[l]
    assert_eq!(m.holders(l), vec![Y], "write invalidated every other copy");
}

#[test]
fn history_wr_replication() {
    let mut m = Machine::new(SimConfig::new(2));
    let l = LineId(5);
    m.create_line_at(X, l, &[0]).unwrap();
    m.write(X, l, 0, &[1]).unwrap();
    let mut b = [0u8];
    m.read_into(Y, l, 0, &mut b).unwrap(); // r_y[l]
    assert_eq!(m.holders(l), vec![X, Y], "line valid on both nodes after w_x; r_y");
    // Crash of x leaves the (uncommitted, in DB terms) data on y.
    m.crash(&[X]);
    assert!(!m.is_lost(l));
    assert_eq!(m.exclusive_owner(l), Some(Y));
}

/// Figure 2, end to end, under every IFA protocol (both crash cases are
/// covered in the core integration tests; here we run the H_wr variant —
/// replication instead of migration — which the paper stresses matters
/// even with one object per line when dirty reads are allowed).
#[test]
fn figure2_hwr_variant_crash_of_writer() {
    for p in ProtocolKind::ifa_protocols() {
        let mut db = SmDb::new(DbConfig::small(4, p));
        // Baseline.
        let t = db.begin(X).unwrap();
        db.update(t, 0, b"committed").unwrap();
        db.commit(t).unwrap();
        // Writer on x, uncommitted.
        let tx = db.begin(X).unwrap();
        db.update(tx, 0, b"uncommitted").unwrap();
        // Reader on y touches a co-located record — replicating the line
        // (serializable mode: no dirty read of record 0 itself).
        let ty = db.begin(Y).unwrap();
        let _ = db.read(ty, 1).unwrap();
        // Crash the writer's node: its update lives on in y's cache and
        // must be undone there.
        let outcome = db.crash_and_recover(&[X]).unwrap();
        assert_eq!(outcome.aborted, vec![tx], "{p:?}");
        assert_eq!(&db.current_value(0).unwrap()[..9], b"committed", "{p:?}");
        db.check_ifa(Y).assert_ok();
        db.commit(ty).unwrap();
    }
}

/// §3.1's lock-table variant through the full engine: see
/// `examples/lock_table_crash.rs` for the narrated version.
#[test]
fn lock_info_loss_is_recovered() {
    let mut db = SmDb::new(DbConfig::small(4, ProtocolKind::VolatileSelectiveRedo));
    let tx = db.begin(X).unwrap();
    db.read(tx, 9).unwrap();
    let ty = db.begin(Y).unwrap();
    db.read(ty, 9).unwrap(); // LCB line now on y
    db.crash_and_recover(&[Y]).unwrap();
    db.check_ifa(X).assert_ok();
    // x's shared lock survives: an exclusive request conflicts.
    let tz = db.begin(Z).unwrap();
    assert!(db.update(tz, 9, b"x").is_err());
}
