//! # smdb — shared-memory database recovery protocols
//!
//! Facade crate re-exporting the full reproduction of *Recovery Protocols
//! for Shared Memory Database Systems* (Molesky & Ramamritham, SIGMOD
//! 1995). See the README for an architecture overview and `DESIGN.md` for
//! the paper-to-module map.

pub use smdb_btree as btree;
pub use smdb_core as core;
pub use smdb_fault as fault;
pub use smdb_lock as lock;
pub use smdb_obs as obs;
pub use smdb_sim as sim;
pub use smdb_storage as storage;
pub use smdb_vopr as vopr;
pub use smdb_wal as wal;
pub use smdb_workload as workload;
