//! Quickstart: build the Figure-1 system model, run transactions on
//! several nodes, crash one, and watch IFA recovery preserve everyone
//! else.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use smdb::core::{DbConfig, ProtocolKind, SmDb};
use smdb::sim::NodeId;

fn main() {
    // Figure 1: an SM multiprocessor — processor/cache *nodes* over a
    // coherent interconnect, each with its own (volatile, in-cache) log,
    // all connected to shared disks holding the stable database and the
    // stable logs.
    let cfg = DbConfig::small(4, ProtocolKind::VolatileSelectiveRedo);
    println!("=== Figure 1: system model ===");
    println!("nodes:                {}", cfg.nodes);
    println!("cache line size:      {} B", cfg.line_size);
    println!("page size:            {} B", cfg.line_size * cfg.lines_per_page);
    println!(
        "records:              {} ({} per cache line)",
        cfg.records,
        cfg.line_size / (cfg.rec_data_size + 2)
    );
    println!("recovery protocol:    {:?} (LBM: {:?})", cfg.protocol, cfg.protocol.lbm_mode());
    println!("coherence:            {:?}", cfg.coherence);
    let mut db = SmDb::new(cfg);

    // Independent transactions, each on its own node (the paper's
    // workload model).
    println!("\n=== normal operation ===");
    let t0 = db.begin(NodeId(0)).expect("begin");
    db.update(t0, 0, b"alice=100").expect("update");
    db.update(t0, 1, b"bob=50").expect("update");
    db.commit(t0).expect("commit");
    println!("n0 committed a transfer (records 0, 1)");

    let t1 = db.begin(NodeId(1)).expect("begin");
    db.update(t1, 2, b"carol=75").expect("update");
    println!("n1 has an in-flight transaction (record 2, uncommitted)");

    let t2 = db.begin(NodeId(2)).expect("begin");
    db.insert(t2, 42, *b"idx-row!").expect("insert");
    println!("n2 has an in-flight index insert (key 42, uncommitted)");

    // Crash node 3 — a bystander — then node 2, which holds uncommitted
    // work.
    println!("\n=== crash node 3 (bystander) ===");
    let outcome = db.crash_and_recover(&[NodeId(3)]).expect("recovery");
    println!("aborted: {:?} (nothing ran there)", outcome.aborted);
    println!("preserved in-flight: {:?}", outcome.preserved_active);
    db.check_ifa(NodeId(0)).assert_ok();
    println!("IFA check: ok");

    println!("\n=== crash node 2 (in-flight index insert) ===");
    let outcome = db.crash_and_recover(&[NodeId(2)]).expect("recovery");
    println!("aborted: {:?}", outcome.aborted);
    assert_eq!(outcome.aborted, vec![t2]);
    db.check_ifa(NodeId(0)).assert_ok();
    println!("IFA check: ok — t1 still in flight, committed data intact");

    // Survivors continue.
    db.commit(t1).expect("commit");
    println!("\nn1 committed after two crashes.");
    println!("record 0: {:?}", String::from_utf8_lossy(&db.current_value(0).expect("read")[..9]));
    println!("record 2: {:?}", String::from_utf8_lossy(&db.current_value(2).expect("read")[..8]));
    let live = db.index_scan(NodeId(0)).expect("scan");
    println!(
        "index live keys: {:?} (the uncommitted 42 was undone)",
        live.iter().map(|(k, _)| *k).collect::<Vec<_>>()
    );

    let s = db.stats();
    println!("\n=== engine stats ===");
    println!(
        "commits: {}  crash aborts: {}  log forces: {}",
        s.commits,
        s.crash_aborts,
        db.total_log_forces()
    );
}
