//! Figure 2 walkthrough: uncommitted data migration and local logging.
//!
//! Two records share one cache line. Transaction t_x (node x) updates r1;
//! transaction t_y (node y) updates r2 — under write-invalidate the *only
//! copy* of the line, including t_x's uncommitted update, now resides on
//! node y. The paper's two crash cases follow:
//!
//!  * crash x — t_x's control state and volatile log die, but its
//!    uncommitted update lives on in y's cache and must be *undone*;
//!  * crash y — the line (with t_x's update) is destroyed, and t_x's
//!    update must be *redone* from x's intact volatile log.
//!
//! ```text
//! cargo run --example figure2_migration
//! ```

use smdb::core::{DbConfig, ProtocolKind, SmDb};
use smdb::sim::{LineId, NodeId};

fn line_of_slot(db: &SmDb, slot: u64) -> LineId {
    let layout = db.record_layout();
    let rec = layout.rec_of_global(slot);
    let (line_idx, _) = layout.line_and_offset(rec.slot);
    LineId(layout.geometry.line_addr(rec.page, line_idx))
}

fn run_case(crash_x: bool) {
    let x = NodeId(0);
    let y = NodeId(1);
    let mut db = SmDb::new(DbConfig::small(4, ProtocolKind::VolatileSelectiveRedo));
    assert_eq!(db.record_layout().records_per_line(), 3, "r1 and r2 co-locate");

    // Committed baseline for r1 so the undo has something to restore.
    let setup = db.begin(x).expect("begin");
    db.update(setup, 0, b"r1-committed").expect("update");
    db.commit(setup).expect("commit");

    let tx = db.begin(x).expect("begin");
    db.update(tx, 0, b"r1-by-tx").expect("update");
    let line = line_of_slot(&db, 0);
    println!("after w_x[r1]: line holders = {:?}", db.machine().holders(line));

    let ty = db.begin(y).expect("begin");
    db.update(ty, 1, b"r2-by-ty").expect("update");
    println!(
        "after w_y[r2]: line holders = {:?}  (H_ww1: migrated to y)",
        db.machine().holders(line)
    );
    assert_eq!(db.machine().exclusive_owner(line), Some(y));

    if crash_x {
        println!("\n--- crash case 1: node x crashes ---");
        let outcome = db.crash_and_recover(&[x]).expect("recovery");
        println!(
            "aborted: {:?}; undo ops applied: {}",
            outcome.aborted, outcome.undo_records_applied
        );
        let v = db.current_value(0).expect("read");
        println!("r1 after recovery: {:?}", String::from_utf8_lossy(&v[..12]));
        assert_eq!(&v[..12], b"r1-committed", "t_x's migrated update undone");
        let v = db.current_value(1).expect("read");
        assert_eq!(&v[..8], b"r2-by-ty", "t_y's in-flight update preserved");
        db.check_ifa(y).assert_ok();
        db.commit(ty).expect("commit");
        println!("t_y committed after the crash. IFA held.");
    } else {
        println!("\n--- crash case 2: node y crashes ---");
        let outcome = db.crash_and_recover(&[y]).expect("recovery");
        println!(
            "aborted: {:?}; lost lines: {}; redo ops applied: {}",
            outcome.aborted, outcome.lost_lines, outcome.redo_applied
        );
        let v = db.current_value(0).expect("read");
        println!("r1 after recovery: {:?}", String::from_utf8_lossy(&v[..8]));
        assert_eq!(&v[..8], b"r1-by-tx", "t_x's update redone from x's volatile log");
        db.check_ifa(x).assert_ok();
        db.commit(tx).expect("commit");
        println!("t_x committed after the crash. IFA held.");
    }
}

fn main() {
    println!("=== Figure 2: uncommitted data migration and local logging ===\n");
    run_case(true);
    println!();
    run_case(false);
}
