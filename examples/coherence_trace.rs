//! Watch the §3.2 data-sharing histories happen, event by event, using
//! the simulator's coherence trace.
//!
//! ```text
//! cargo run --example coherence_trace
//! ```

use smdb::core::{DbConfig, ProtocolKind, SmDb};
use smdb::sim::{NodeId, TraceEvent};

fn print_events(db: &mut SmDb, label: &str) {
    println!("--- {label} ---");
    for (seq, ev) in db.machine_mut_for_trace().take_trace() {
        match ev {
            TraceEvent::WriteTake { node, line, invalidated, migration } => {
                println!(
                    "  [{seq:>4}] {node} takes {line:?} (invalidated {invalidated} cop{}, {})",
                    if invalidated == 1 { "y" } else { "ies" },
                    if migration { "H_ww migration" } else { "upgrade from shared" }
                );
            }
            TraceEvent::ReadRemote { node, line, downgraded } => {
                println!(
                    "  [{seq:>4}] {node} fetches {line:?} remotely{}",
                    if downgraded { " (H_wr: downgraded an exclusive owner)" } else { "" }
                );
            }
            TraceEvent::LineLock { node, line } => {
                println!("  [{seq:>4}] {node} getline {line:?}");
            }
            TraceEvent::LineUnlock { node, line } => {
                println!("  [{seq:>4}] {node} releaseline {line:?}");
            }
            TraceEvent::Crash { nodes, lost } => {
                println!("  [{seq:>4}] CRASH of {nodes:?}: {lost} lines destroyed");
            }
            TraceEvent::Install { node, line } => {
                println!("  [{seq:>4}] {node} installs {line:?} (page fault or recovery)");
            }
            _ => {}
        }
    }
}

fn main() {
    let mut db = SmDb::new(DbConfig::small(4, ProtocolKind::VolatileSelectiveRedo));
    db.machine_mut_for_trace().enable_trace(512);

    // H_ww1: w_x[l]; w_y[l] — records 0 and 1 share a line.
    let tx = db.begin(NodeId(0)).expect("begin");
    db.update(tx, 0, b"by-x").expect("update");
    let ty = db.begin(NodeId(1)).expect("begin");
    db.update(ty, 1, b"by-y").expect("update");
    print_events(&mut db, "H_ww1: x writes r0, then y writes r1 (same line)");

    // H_wr: w_x[l]; r_y[l] — a browse-mode read replicates the line.
    db.update(tx, 30, b"hot!").expect("update");
    let _ = db.read_dirty(NodeId(1), 30).expect("dirty read");
    print_events(&mut db, "H_wr: x writes r30, y browse-reads it");

    // Crash y and watch recovery's installs.
    let outcome = db.crash_and_recover(&[NodeId(1)]).expect("recovery");
    print_events(&mut db, "crash of y + restart recovery");
    println!(
        "\nrecovery: aborted {:?}, redo {}, undo {}",
        outcome.aborted, outcome.redo_applied, outcome.undo_records_applied
    );
    db.check_ifa(NodeId(0)).assert_ok();
    db.commit(tx).expect("commit");
    println!("t_x survived the crash of y and committed. IFA held.");
}
