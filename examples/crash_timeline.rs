//! Observability tour: record a cross-layer event timeline through normal
//! operation, a migration-triggered log force, a crash, and the seven
//! phases of IFA recovery — then print it, the per-phase cost breakdown,
//! and the metrics registry.
//!
//! ```text
//! cargo run --example crash_timeline
//! ```

use smdb::core::{DbConfig, ProtocolKind, SmDb};
use smdb::obs::Event;
use smdb::sim::NodeId;

fn main() {
    // Stable LBM with coherence-triggered forcing (§5.2): migrating an
    // active dirty line out of its updater's cache forces that node's log
    // first, which is exactly the causal chain the timeline should show.
    let cfg = DbConfig::small(4, ProtocolKind::StableTriggered);
    let mut db = SmDb::new(cfg);

    // Switch the shared observability handle on before any traffic.
    let obs = db.observability();
    obs.enable(4096);

    // Records 0 and 1 co-locate in cache line 0 (40-byte records, 128-byte
    // lines), so the two uncommitted updates below contend on one line:
    // node 1's write migrates node 0's active line, triggering a force of
    // node 0's log before the line may leave its cache.
    let t0 = db.begin(NodeId(0)).expect("begin t0");
    db.update(t0, 0, b"alice=100").expect("update r0");

    let t1 = db.begin(NodeId(1)).expect("begin t1");
    db.update(t1, 1, b"bob=50").expect("update r1");

    db.commit(t0).expect("commit t0");
    // t1 stays in flight on node 1 — and node 1 is about to crash.

    println!("=== crash node 1, recover the rest ===\n");
    let outcome = db.crash_and_recover(&[NodeId(1)]).expect("recovery");
    db.check_ifa(NodeId(0)).assert_ok();

    println!("aborted:   {:?}", outcome.aborted);
    println!("preserved: {:?}", outcome.preserved_active);
    println!(
        "redo applied / skipped-cached: {} / {}",
        outcome.redo_applied, outcome.redo_skipped_cached
    );

    // --- the timeline ------------------------------------------------
    // One global sequence numbering across every layer: coherence traffic,
    // line locks, lock manager, WAL appends/forces, crash injection, and
    // the recovery phases all interleave in causal order.
    println!("\n=== cross-layer event timeline (bus) ===\n");
    let records = obs.bus.snapshot();
    let interesting = |e: &Event| {
        !matches!(e, Event::ReadHit { .. } | Event::WriteLocal { .. } | Event::ReadRemote { .. })
    };
    let shown: Vec<_> = records.iter().filter(|r| interesting(&r.event)).collect();
    let skipped = records.len() - shown.len();
    for r in &shown {
        println!("{r}");
    }
    println!("\n({} events total, {skipped} routine cache hits/fills elided)", records.len());

    // --- per-phase recovery cost ------------------------------------
    println!("\n=== IFA recovery, per-phase breakdown ===\n");
    println!("{:<16} {:>12} {:>12}", "phase", "sim cycles", "wall µs");
    for p in &outcome.phases {
        println!("{:<16} {:>12} {:>12.1}", p.phase, p.sim_cycles, p.wall_ns as f64 / 1000.0);
    }
    println!("{:<16} {:>12}", "total", outcome.recovery_cycles);

    // --- metrics registry -------------------------------------------
    println!("\n=== metrics (CSV export) ===\n");
    print!("{}", obs.metrics.snapshot().to_csv());
}
