//! Observability tour: record a cross-layer event timeline through normal
//! operation, a migration-triggered log force, a crash, and the seven
//! phases of IFA recovery — then print it, the per-phase cost breakdown,
//! the per-transaction span attribution, the availability timeline with
//! time-to-first-transaction, and the metrics registry, and write the
//! whole run as a Chrome trace (open `target/crash_timeline.trace.json`
//! in Perfetto or `chrome://tracing`).
//!
//! ```text
//! cargo run --example crash_timeline
//! ```

use smdb::core::{DbConfig, ProtocolKind, SmDb};
use smdb::obs::{Event, Stage};
use smdb::sim::NodeId;

fn main() {
    // Stable LBM with coherence-triggered forcing (§5.2): migrating an
    // active dirty line out of its updater's cache forces that node's log
    // first, which is exactly the causal chain the timeline should show.
    let cfg = DbConfig::small(4, ProtocolKind::StableTriggered);
    let mut db = SmDb::new(cfg);

    // Switch the shared observability handle on before any traffic.
    let obs = db.observability();
    obs.enable(4096);

    // Records 0 and 1 co-locate in cache line 0 (40-byte records, 128-byte
    // lines), so the two uncommitted updates below contend on one line:
    // node 1's write migrates node 0's active line, triggering a force of
    // node 0's log before the line may leave its cache.
    let t0 = db.begin(NodeId(0)).expect("begin t0");
    db.update(t0, 0, b"alice=100").expect("update r0");

    let t1 = db.begin(NodeId(1)).expect("begin t1");
    db.update(t1, 1, b"bob=50").expect("update r1");

    db.commit(t0).expect("commit t0");
    // t1 stays in flight on node 1 — and node 1 is about to crash.

    println!("=== crash node 1, recover the rest ===\n");
    let outcome = db.crash_and_recover(&[NodeId(1)]).expect("recovery");
    db.check_ifa(NodeId(0)).assert_ok();

    println!("aborted:   {:?}", outcome.aborted);
    println!("preserved: {:?}", outcome.preserved_active);
    println!(
        "redo applied / skipped-cached: {} / {}",
        outcome.redo_applied, outcome.redo_skipped_cached
    );

    // --- the timeline ------------------------------------------------
    // One global sequence numbering across every layer: coherence traffic,
    // line locks, lock manager, WAL appends/forces, crash injection, and
    // the recovery phases all interleave in causal order.
    println!("\n=== cross-layer event timeline (bus) ===\n");
    let records = obs.bus.snapshot();
    let interesting = |e: &Event| {
        !matches!(e, Event::ReadHit { .. } | Event::WriteLocal { .. } | Event::ReadRemote { .. })
    };
    let shown: Vec<_> = records.iter().filter(|r| interesting(&r.event)).collect();
    let skipped = records.len() - shown.len();
    for r in &shown {
        println!("{r}");
    }
    println!("\n({} events total, {skipped} routine cache hits/fills elided)", records.len());

    // --- per-phase recovery cost ------------------------------------
    println!("\n=== IFA recovery, per-phase breakdown ===\n");
    println!("{:<16} {:>12} {:>12}", "phase", "sim cycles", "wall µs");
    for p in &outcome.phases {
        println!("{:<16} {:>12} {:>12.1}", p.phase, p.sim_cycles, p.wall_ns as f64 / 1000.0);
    }
    println!("{:<16} {:>12}", "total", outcome.recovery_cycles);

    // --- first transaction after recovery ---------------------------
    // The availability clock stops at the first post-recovery commit:
    // run one so `time_to_first_txn` resolves.
    let t2 = db.begin(NodeId(0)).expect("begin t2");
    db.update(t2, 2, b"carol=75").expect("update r2");
    db.commit(t2).expect("commit t2");

    // --- per-transaction spans --------------------------------------
    println!("\n=== transaction spans (cycles by stage) ===\n");
    let agg = obs.spans.aggregate();
    println!("finished: {} ({} committed, {} aborted)", agg.finished, agg.committed, agg.aborted);
    for stage in Stage::ALL {
        println!("{:<12} {:>12}", stage.name(), agg.stage_cycles[stage.index()]);
    }
    let lat = agg.latency.snapshot();
    println!("latency p50/p99: {} / {} cycles", lat.p50, lat.p99);

    // --- availability timeline --------------------------------------
    println!("\n=== availability timeline ===\n");
    print!("{}", obs.timeline.to_csv());
    if let (Some(crash), Some(up)) =
        (obs.timeline.last_crash_at(), obs.timeline.last_recovery_end())
    {
        println!("\ncrash at {crash}, recovery done at {up} (+{} cycles)", up - crash);
    }
    if let Some(ttft) = obs.timeline.time_to_first_txn() {
        println!("time to first post-recovery commit: {ttft} cycles");
    }

    // --- metrics registry -------------------------------------------
    println!("\n=== metrics (CSV export) ===\n");
    print!("{}", obs.metrics.snapshot().to_csv());

    // --- Chrome trace export ----------------------------------------
    let path = "target/crash_timeline.trace.json";
    std::fs::write(path, obs.export_chrome_trace()).expect("write trace");
    println!("\nwrote {path} (load in Perfetto / chrome://tracing)");
}
