//! Run the same TP1 workload under all five recovery protocols and
//! compare normal-operation cost, log-force behaviour, and what a crash
//! does to the in-flight population — the paper's Table 1 and §3.3
//! motivation in one screen.
//!
//! ```text
//! cargo run --release --example protocol_comparison
//! ```

use smdb::core::{DbConfig, ProtocolKind, SmDb};
use smdb::sim::NodeId;
use smdb::workload::{run_tp1, spawn_active, Tp1Params};

fn main() {
    println!(
        "{:<24} {:>8} {:>9} {:>8} {:>8} {:>10} {:>8}",
        "protocol", "commits", "cyc/txn", "forces", "LBM", "tag wr", "aborts*"
    );
    println!("{}", "-".repeat(80));
    for p in ProtocolKind::all() {
        let mut db = SmDb::new(DbConfig::bench(8, p));
        let report = run_tp1(&mut db, Tp1Params { txns: 200, ..Default::default() });
        let stats = db.stats();
        // Populate in-flight work, then crash one node.
        let actives = spawn_active(&mut db, 3, 2, true, 99);
        let outcome = db.crash_and_recover(&[NodeId(7)]).expect("recovery");
        db.check_ifa(NodeId(0)).assert_ok();
        println!(
            "{:<24} {:>8} {:>9} {:>8} {:>8} {:>10} {:>5}/{:<2}",
            format!("{p:?}"),
            report.committed,
            report.sim_cycles / report.committed.max(1),
            db.total_log_forces(),
            stats.lbm_forces,
            stats.undo_tag_writes,
            outcome.aborted.len(),
            actives.len(),
        );
    }
    println!(
        "\n* aborts = transactions killed by one node crash, out of the in-flight population."
    );
    println!("  FA-only kills everyone; the IFA protocols kill exactly the crashed node's three.");
}
