//! A shared-memory B+-tree under concurrent inserts/deletes and a crash
//! (§4.2.1): logical deletes, early-committed splits, undo tags.
//!
//! ```text
//! cargo run --release --example btree_workload
//! ```

use smdb::core::{DbConfig, ProtocolKind, SmDb};
use smdb::sim::NodeId;

fn main() {
    let mut db = SmDb::new(DbConfig::bench(4, ProtocolKind::VolatileSelectiveRedo));

    // Phase 1: bulk load from all four nodes (interleaved keys, shared
    // leaf lines, early-committed splits).
    println!("=== bulk load: 600 keys from 4 nodes ===");
    for i in 0..600u64 {
        let node = NodeId((i % 4) as u16);
        let t = db.begin(node).expect("begin");
        db.insert(t, i * 3 + 1, (i * 7).to_le_bytes()).expect("insert");
        db.commit(t).expect("commit");
    }
    let ts = db.tree_stats();
    println!("inserts: {}  splits: {}  root grows: {}", ts.inserts, ts.splits, ts.root_grows);

    // Phase 2: logical deletes from node 1 (committed) and node 2
    // (in flight at crash time).
    println!("\n=== deletes: committed on n1, in-flight on n2 ===");
    let td = db.begin(NodeId(1)).expect("begin");
    for k in [1u64, 4, 7, 10] {
        db.delete(td, k).expect("delete");
    }
    db.commit(td).expect("commit");
    let doomed = db.begin(NodeId(2)).expect("begin");
    for k in [13u64, 16, 19] {
        db.delete(doomed, k).expect("delete");
    }
    // And an in-flight insert on n2.
    db.insert(doomed, 9_999_999, [0xAB; 8]).expect("insert");
    // Replicate those leaf lines to a survivor (H_wr) so the crash leaves
    // the uncommitted marks behind, forcing explicit undo.
    let probe = db.begin(NodeId(0)).expect("begin");
    for k in [13u64, 16, 19] {
        let _ = db.lookup(probe, k + 1);
    }
    db.commit(probe).expect("commit");

    println!("\n=== crash n2 ===");
    let outcome = db.crash_and_recover(&[NodeId(2)]).expect("recovery");
    println!(
        "btree recovery: {} pages reinstalled, {} undo-inserts, {} undo-deletes, {} tags cleared",
        outcome.btree_recovery.pages_reinstalled,
        outcome.btree_recovery.undo_inserts,
        outcome.btree_recovery.undo_deletes,
        outcome.btree_recovery.tags_cleared
    );
    db.check_ifa(NodeId(0)).assert_ok();

    let live = db.index_scan(NodeId(0)).expect("scan");
    let keys: Vec<u64> = live.iter().map(|(k, _)| *k).collect();
    assert!(!keys.contains(&1) && !keys.contains(&4), "committed deletes stay deleted");
    assert!(
        keys.contains(&13) && keys.contains(&16) && keys.contains(&19),
        "in-flight deletes unmarked"
    );
    assert!(!keys.contains(&9_999_999), "in-flight insert removed");
    println!(
        "live keys: {} (committed deletes gone; n2's in-flight delete-marks unmarked; its insert undone)",
        keys.len()
    );
    println!("IFA held.");
}
