//! The §3.1 / §4.2.2 lock-table scenario, end to end.
//!
//! Two transactions on different nodes hold the *same* lock in shared
//! mode. The lock control block lives in shared memory, so the last
//! acquirer's cache holds the only copy. Whichever node crashes, the
//! paper's guarantees must hold:
//!
//!  * locks of crashed transactions are **released** (undo), and
//!  * locks of surviving transactions are **restored** from the lock log
//!    — which is why read locks are logged at all (Table 1).
//!
//! ```text
//! cargo run --example lock_table_crash
//! ```

use smdb::core::{DbConfig, DbError, ProtocolKind, SmDb};
use smdb::sim::NodeId;

fn main() {
    let mut db = SmDb::new(DbConfig::small(4, ProtocolKind::VolatileSelectiveRedo));
    let record = 7u64;

    // Two shared-mode readers of the same record, on different nodes.
    let tx = db.begin(NodeId(1)).expect("begin");
    db.read(tx, record).expect("read");
    let ty = db.begin(NodeId(2)).expect("begin");
    db.read(ty, record).expect("read");
    println!("t_x (n1) and t_y (n2) both hold a shared lock on record {record}");
    println!(
        "read-lock log records: n1={} n2={}",
        db.logs().log(NodeId(1)).stats().read_lock_records,
        db.logs().log(NodeId(2)).stats().read_lock_records
    );

    // n2 acquired last, so the LCB line lives in n2's cache. Crash n2:
    // the LCB — including *n1's* grant — is destroyed.
    println!("\n=== crash n2 (holds the only LCB copy) ===");
    let outcome = db.crash_and_recover(&[NodeId(2)]).expect("recovery");
    println!(
        "lock recovery: {} LCBs reconstructed, {} survivor entries restored, {} crashed entries released",
        outcome.lock_recovery.lcbs_reconstructed,
        outcome.lock_recovery.survivor_entries_restored,
        outcome.lock_recovery.crashed_entries_released
    );
    db.check_ifa(NodeId(0)).assert_ok();

    // Proof that t_x's shared lock was restored: a writer must conflict...
    let tw = db.begin(NodeId(3)).expect("begin");
    match db.update(tw, record, b"overwrite") {
        Err(DbError::WouldBlock { .. }) => {
            println!("writer on n3 blocks against t_x's restored shared lock ✓")
        }
        other => panic!("expected a conflict, got {other:?}"),
    }
    db.abort(tw).expect("abort");

    // ...and that t_y's lock is gone: after t_x finishes, the writer
    // sails through.
    db.commit(tx).expect("commit");
    let tw2 = db.begin(NodeId(3)).expect("begin");
    db.update(tw2, record, b"overwrite").expect("update succeeds: no ghost lock from t_y");
    db.commit(tw2).expect("commit");
    println!("after t_x commits, the writer proceeds — t_y's crashed lock was released ✓");

    db.check_ifa(NodeId(0)).assert_ok();
    println!("\nIFA held throughout.");
}
