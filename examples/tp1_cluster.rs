//! A TP1 (debit-credit) cluster under fire: eight nodes run the classic
//! account/teller/branch workload; halfway through, two nodes fail.
//! IFA recovery keeps the survivors' work intact and money conserved.
//!
//! ```text
//! cargo run --release --example tp1_cluster
//! ```

use smdb::core::{DbConfig, ProtocolKind, SmDb};
use smdb::sim::NodeId;
use smdb::workload::{run_tp1, Tp1Params};

fn total_balance(db: &SmDb, lo: u64, hi: u64) -> i64 {
    (lo..hi)
        .map(|s| {
            let v = db.current_value(s).expect("readable");
            i64::from_le_bytes(v[..8].try_into().expect("8 bytes"))
        })
        .sum()
}

fn main() {
    let mut db = SmDb::new(DbConfig::bench(8, ProtocolKind::VolatileSelectiveRedo));
    let params = Tp1Params { txns: 300, branches: 8, ..Default::default() };

    println!("=== phase 1: 300 TP1 transactions over 8 nodes ===");
    let r1 = run_tp1(&mut db, params.clone());
    println!(
        "committed {} (conflict aborts {}), {:.1} txns per Mcycle",
        r1.committed, r1.conflict_aborts, r1.tps_per_mcycle
    );
    let branches_total = total_balance(&db, 0, 8);
    println!("sum of branch balances: {branches_total}");

    println!("\n=== nodes 5 and 6 fail ===");
    let outcome = db.crash_and_recover(&[NodeId(5), NodeId(6)]).expect("recovery");
    println!(
        "recovery: {} lines lost, {} redo, {} undo, {} stable patches, {} sim-cycles",
        outcome.lost_lines,
        outcome.redo_applied,
        outcome.undo_records_applied,
        outcome.stable_undo_patches,
        outcome.recovery_cycles
    );
    db.check_ifa(NodeId(0)).assert_ok();
    assert_eq!(total_balance(&db, 0, 8), branches_total, "money conserved across the crash");
    println!("IFA check: ok; branch total unchanged");

    println!("\n=== phase 2: survivors keep serving ===");
    let r2 = run_tp1(&mut db, Tp1Params { txns: 200, seed: 1234, ..params });
    println!("committed {} more on the 6 surviving nodes", r2.committed);
    db.check_ifa(NodeId(0)).assert_ok();

    println!("\n=== rebooted nodes rejoin ===");
    db.reboot(NodeId(5));
    db.reboot(NodeId(6));
    let r3 = run_tp1(&mut db, Tp1Params { txns: 100, seed: 777, ..Tp1Params::default() });
    println!("committed {} with the full cluster back", r3.committed);
    db.check_ifa(NodeId(0)).assert_ok();

    let s = db.stats();
    let m = db.machine().stats();
    println!("\n=== totals ===");
    println!("commits:            {}", s.commits);
    println!("crash aborts:       {}", s.crash_aborts);
    println!("line migrations:    {}", m.migrations);
    println!("line replications:  {}", m.replications);
    println!("log forces:         {}", db.total_log_forces());
    println!("simulated makespan: {} cycles", db.max_clock());
}
