#!/usr/bin/env bash
# Exhaustive crash-point sweep (DESIGN §8): replay the seeded workload
# once per *every* enumerated crash point under each protocol, plus the
# full nested-schedule budget. The bounded variant runs in tier-1 CI
# (scripts/ci.sh); this one is for local soak runs and release gates.
#
# Every failure prints a one-line repro:
#   FAIL scenario=<label> seed=<seed> plan=<site#hit[+site#hit]> :: <msg>
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true
export SMDB_FULL_SWEEP=1

cargo test --release --test crash_sweep -- --nocapture
