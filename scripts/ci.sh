#!/usr/bin/env bash
# Full CI gate, runnable offline: the workspace resolves every third-party
# dependency to the stand-ins under vendor/, so no network or crates.io
# cache is needed. Mirrors .github/workflows/ci.yml.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

echo "== build (release) =="
cargo build --release --workspace

echo "== tests (SMDB_THREADS=1) =="
SMDB_THREADS=1 cargo test -q --workspace

echo "== tests (SMDB_THREADS=4) =="
# Same binaries, multicore default: tests that read SMDB_THREADS drive
# four OS threads through the epoch scheduler, and the determinism gates
# assert the results stay byte-identical to the serial run.
SMDB_THREADS=4 cargo test -q --workspace

echo "== crash-point sweep (bounded) =="
# Deterministic fault-injection sweep over all protocols (DESIGN §8);
# release build keeps the bounded sweep fast. The checkpoint-machinery
# crash points (wal.checkpoint.record, wal.truncate) are replayed
# exhaustively even in this bounded run. The exhaustive variant of the
# whole sweep is scripts/crash_sweep.sh.
cargo test --release -q --test crash_sweep

echo "== crash-point sweep (bounded, striped directory) =="
# The same bounded sweep once more with the coherence directory split
# into 8 stripes (DESIGN §15). The driver stays serial — striping must be
# behavior-invisible outside the epoch scheduler — so every crash point
# also replays through the sharded directory and its recovery paths.
SMDB_SIM_SHARDS=8 cargo test --release -q --test crash_sweep

echo "== schedule fuzz (bounded, fixed seed) =="
# Deterministic VOPR-style schedule fuzz (DESIGN §13): one fixed master
# seed, so this step replays the same schedules on every run. A failure
# prints shrunk one-line repros (and scripts/fuzz.sh collects them in
# results/fuzz_failures.txt); replay any line with
#   cargo run -q --release -p smdb-bench --bin fuzz -- --replay "LINE"
# The larger multi-seed battery is scripts/fuzz.sh.
SMDB_FUZZ_BUDGET="${SMDB_FUZZ_BUDGET:-500}" scripts/fuzz.sh 0xC0DE

echo "== rustfmt =="
if cargo fmt --version >/dev/null 2>&1; then
    cargo fmt --all --check
else
    echo "rustfmt not installed; skipping"
fi

echo "== clippy =="
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets -- -D warnings
else
    echo "clippy not installed; skipping"
fi

echo "== bench trajectory (non-blocking) =="
# Wall-clock is machine-dependent; a regression here warns but never
# fails the gate. See scripts/bench.sh for the blocking local variant.
if ! scripts/bench.sh; then
    echo "bench gate failed (non-blocking): inspect BENCH_report.json" >&2
fi

echo "== E8 forward-path report (non-blocking) =="
# Refresh the forward-path fast-lane CSV (DESIGN §10). The blocking
# acceptance gate is the e8_forward integration test, already run by the
# workspace test step above; this render is informational only.
if ! ./target/release/report --e8fwd --fast --csv > /dev/null; then
    echo "e8fwd report failed (non-blocking): rerun report --e8fwd" >&2
fi

echo "== E9-lat latency report (non-blocking) =="
# Refresh the transaction-latency breakdown CSV (DESIGN §11). The
# blocking gates are the e9_latency / exporter_golden / metric_names
# integration tests, already run by the workspace test step above.
if ! ./target/release/report --e9lat --fast --csv > /dev/null; then
    echo "e9lat report failed (non-blocking): rerun report --e9lat" >&2
fi

echo "== E10-elr early-lock-release report (non-blocking) =="
# Refresh the controlled-lock-violation CSV (DESIGN §12). The blocking
# acceptance gate is the e10_elr integration test (speedup, lock-wait
# reduction, durability parity), already run by the workspace test step.
if ! ./target/release/report --e10elr --fast --csv > /dev/null; then
    echo "e10elr report failed (non-blocking): rerun report --e10elr" >&2
fi

echo "== E11 instant-restart report (non-blocking) =="
# Refresh the instant-restart CSV (DESIGN §14). The blocking acceptance
# gate is the e11_instant integration test (TTFT speedup, drained-state
# digest equality, redo parity), already run by the workspace test step.
if ! ./target/release/report --e11instant --fast --csv > /dev/null; then
    echo "e11instant report failed (non-blocking): rerun report --e11instant" >&2
fi

echo "== E12 multicore scaling report (non-blocking) =="
# Refresh the multicore scaling CSV (DESIGN §15). The blocking gates are
# the e12_multicore / mt_determinism integration tests, already run by
# the workspace test steps; the ≥1.6× wall-clock gate self-skips on
# hosts with fewer than four cores.
if ! ./target/release/report --e12mt --fast --csv > /dev/null; then
    echo "e12mt report failed (non-blocking): rerun report --e12mt" >&2
fi

echo "== observability overhead smoke (non-blocking) =="
# The disabled-path contract (one relaxed load + branch per emission
# site) is wall-clock sensitive; run the bench in test mode so broken
# instrumentation fails loudly without gating on timings.
if ! cargo bench -q -p smdb-bench --bench obs_overhead -- --test > /dev/null; then
    echo "obs_overhead smoke failed (non-blocking)" >&2
fi

echo "CI OK"
