#!/usr/bin/env bash
# Deterministic schedule-fuzzer sweep (DESIGN §13).
#
#   scripts/fuzz.sh [seed...]
#
# Runs `SMDB_FUZZ_BUDGET` schedules (default 500) for each master seed
# given on the command line (default: a fixed four-seed battery). Every
# run is fully reproducible: the same seed and budget always execute the
# same schedules and reach the same verdicts. Failures print shrunk
# one-line repros and are collected in results/fuzz_failures.txt — feed
# any line back through
#
#   cargo run -q --release -p smdb-bench --bin fuzz -- --replay "LINE"
#
# to re-execute it byte-identically.
set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

BUDGET="${SMDB_FUZZ_BUDGET:-500}"
SHRINK="${SMDB_FUZZ_SHRINK_BUDGET:-400}"
SEEDS=("$@")
if [ ${#SEEDS[@]} -eq 0 ]; then
    SEEDS=(0xC0DE 0xBEEF 0x5EED 0xD00D1234)
fi

cargo build --release -q -p smdb-bench --bin fuzz

mkdir -p results
: > results/fuzz_failures.txt

status=0
for seed in "${SEEDS[@]}"; do
    echo "== fuzz seed $seed budget $BUDGET =="
    if ! ./target/release/fuzz --seed "$seed" --budget "$BUDGET" \
            --shrink-budget "$SHRINK" | tee /tmp/smdb_fuzz_out.txt; then
        status=1
        grep '^VOPR ' /tmp/smdb_fuzz_out.txt >> results/fuzz_failures.txt || true
    fi
done

if [ "$status" -ne 0 ]; then
    echo "fuzz FAILED; shrunk repro lines in results/fuzz_failures.txt" >&2
fi
exit "$status"
