#!/usr/bin/env bash
# Bench-trajectory gate: run the experiment report in fast mode, record
# the machine-readable BENCH_report.json, and fail when total wall-clock
# regresses more than 25% against the checked-in baseline
# (scripts/bench_baseline.json).
#
# Wall-clock on shared CI runners is noisy, so the CI wiring treats this
# gate as NON-BLOCKING (continue-on-error); locally it is the fastest way
# to notice a hot-path regression. Refresh the baseline intentionally
# with: scripts/bench.sh --update-baseline
#
# Usage: scripts/bench.sh [--jobs N] [--update-baseline]

set -euo pipefail
cd "$(dirname "$0")/.."

export CARGO_NET_OFFLINE=true

JOBS="${BENCH_JOBS:-$(nproc 2>/dev/null || echo 1)}"
UPDATE=0
while [ $# -gt 0 ]; do
    case "$1" in
        --jobs) JOBS="$2"; shift 2 ;;
        --jobs=*) JOBS="${1#--jobs=}"; shift ;;
        --update-baseline) UPDATE=1; shift ;;
        *) echo "unknown argument: $1" >&2; exit 2 ;;
    esac
done

BASELINE=scripts/bench_baseline.json
REPORT=BENCH_report.json

echo "== bench: report --fast --jobs $JOBS =="
cargo build -q --release -p smdb-bench
./target/release/report --fast --jobs "$JOBS" --json "$REPORT" > /dev/null

extract_wall_ms() {
    # total_wall_ms, truncated to an integer (no jq/bc in minimal images).
    sed -n 's/.*"total_wall_ms": \([0-9]*\)\(\.[0-9]*\)\?.*/\1/p' "$1" | head -1
}

extract_jobs() {
    # The worker count the report ran with (recorded in the JSON header).
    sed -n 's/.*"jobs": \([0-9]*\).*/\1/p' "$1" | head -1
}

NEW_MS="$(extract_wall_ms "$REPORT")"
if [ -z "$NEW_MS" ]; then
    echo "bench: could not parse total_wall_ms from $REPORT" >&2
    exit 1
fi
echo "total wall-clock: ${NEW_MS} ms (jobs=$JOBS)"

if [ "$UPDATE" = 1 ]; then
    cp "$REPORT" "$BASELINE"
    echo "baseline updated: $BASELINE"
    exit 0
fi

if [ ! -f "$BASELINE" ]; then
    echo "bench: no baseline at $BASELINE; run scripts/bench.sh --update-baseline" >&2
    exit 1
fi

# Wall-clock is only comparable within one configuration: a baseline
# recorded at --jobs 1 says nothing about a --jobs 4 run (and vice
# versa). Gate per-configuration instead of comparing across them.
BASE_JOBS="$(extract_jobs "$BASELINE")"
: "${BASE_JOBS:=1}"
if [ "$BASE_JOBS" != "$JOBS" ]; then
    echo "bench: baseline recorded at jobs=$BASE_JOBS, this run used jobs=$JOBS — gate skipped"
    echo "       (refresh for this configuration: BENCH_JOBS=$JOBS scripts/bench.sh --update-baseline)"
    exit 0
fi

BASE_MS="$(extract_wall_ms "$BASELINE")"
LIMIT_MS=$(( BASE_MS * 125 / 100 ))
echo "baseline: ${BASE_MS} ms, regression limit (+25%): ${LIMIT_MS} ms"
if [ "$NEW_MS" -gt "$LIMIT_MS" ]; then
    echo "bench: REGRESSION — ${NEW_MS} ms > ${LIMIT_MS} ms" >&2
    exit 1
fi
echo "bench OK"
