//! Instant restart: the engine opens for transactions right after the
//! analysis pass, with heap redo deferred to first access (on-demand)
//! and a background drain. These tests pin the contract: the open-early
//! database serves exactly the committed pre-crash values, the drained
//! end state is byte-identical to an eager recovery of the same history,
//! and the safety interlocks (checkpoint drain, oracle gate, total
//! failure) hold.

use smdb_core::{DbConfig, DbError, ProtocolKind, SmDb};
use smdb_sim::NodeId;

const N0: NodeId = NodeId(0);
const N1: NodeId = NodeId(1);
const N2: NodeId = NodeId(2);
const N3: NodeId = NodeId(3);

fn mk(p: ProtocolKind, instant: bool) -> SmDb {
    let cfg = DbConfig::small(4, p);
    SmDb::new(if instant { cfg.with_instant_restart() } else { cfg })
}

/// A fixed history whose committed effects live in N0's cache when N0
/// crashes: recovering them requires redo, which instant restart defers.
fn seed_history(db: &mut SmDb) {
    for (slot, val) in [(0u64, b"n0-commit-a" as &[u8]), (5, b"n0-commit-b"), (9, b"n0-commit-c")] {
        let t = db.begin(N0).unwrap();
        db.update(t, slot, val).unwrap();
        db.commit(t).unwrap();
    }
    // A committed update on a survivor too — its line is not lost, so it
    // must not be disturbed by the deferred plan.
    let t = db.begin(N1).unwrap();
    db.update(t, 20, b"n1-commit").unwrap();
    db.commit(t).unwrap();
}

fn drain_all(db: &mut SmDb, node: NodeId) {
    while db.redo_pending() > 0 {
        db.drain_redo(node, 2).unwrap();
    }
}

#[test]
fn instant_recovery_defers_redo_then_drains_to_eager_state() {
    for p in ProtocolKind::ifa_protocols() {
        let mut eager = mk(p, false);
        let mut instant = mk(p, true);
        seed_history(&mut eager);
        seed_history(&mut instant);
        eager.crash_and_recover(&[N0]).unwrap();
        instant.crash_and_recover(&[N0]).unwrap();
        assert_eq!(eager.redo_pending(), 0, "{p:?}: eager must not defer");
        assert!(
            instant.redo_pending() > 0,
            "{p:?}: instant recovery should leave deferred heap redo"
        );
        drain_all(&mut instant, N1);
        for slot in 0..instant.record_count() as u64 {
            assert_eq!(
                eager.current_value(slot).unwrap(),
                instant.current_value(slot).unwrap(),
                "{p:?}: slot {slot} diverged from eager recovery"
            );
        }
        eager.check_ifa(N1).assert_ok();
        instant.check_ifa(N1).assert_ok();
        let c = instant.instant_redo_counters();
        assert_eq!(
            c.planned,
            c.on_demand + c.background + c.skipped_stable,
            "{p:?}: every planned entry must retire exactly once"
        );
        assert!(c.background > 0, "{p:?}: the drain should have retired entries");
    }
}

#[test]
fn on_demand_redo_serves_committed_value_before_any_drain() {
    for p in ProtocolKind::ifa_protocols() {
        let mut db = mk(p, true);
        seed_history(&mut db);
        db.crash_and_recover(&[N0]).unwrap();
        assert!(db.redo_pending() > 0, "{p:?}");
        // First forward-path access: the record lock grant applies the
        // line's pending redo inline before the coherent read.
        let t = db.begin(N1).unwrap();
        let got = db.read(t, 0).unwrap();
        assert_eq!(&got[..11], b"n0-commit-a", "{p:?}");
        db.commit(t).unwrap();
        assert!(db.instant_redo_counters().on_demand > 0, "{p:?}");
        drain_all(&mut db, N1);
        db.check_ifa(N1).assert_ok();
    }
}

#[test]
fn dirty_read_applies_pending_redo_without_locks() {
    let mut db = mk(ProtocolKind::VolatileRedoAll, true);
    seed_history(&mut db);
    db.crash_and_recover(&[N0]).unwrap();
    assert!(db.redo_pending() > 0);
    let got = db.read_dirty(N1, 5).unwrap();
    assert_eq!(&got[..11], b"n0-commit-b");
    assert!(db.instant_redo_counters().on_demand > 0);
    drain_all(&mut db, N1);
    db.check_ifa(N1).assert_ok();
}

#[test]
fn degraded_read_stays_available_and_never_recovers_lines() {
    let mut db = mk(ProtocolKind::VolatileSelectiveRedo, true);
    seed_history(&mut db);
    db.crash_and_recover(&[N0]).unwrap();
    let before = db.redo_pending();
    assert!(before > 0);
    // Degraded reads trade freshness for availability: no inline redo.
    for slot in 0..db.record_count() as u64 {
        db.read_degraded(N1, slot).unwrap();
    }
    assert_eq!(db.redo_pending(), before, "degraded reads must not touch the plan");
    drain_all(&mut db, N1);
    db.check_ifa(N1).assert_ok();
}

#[test]
fn checkpoint_drains_all_pending_redo_first() {
    for p in ProtocolKind::ifa_protocols() {
        let mut db = mk(p, true);
        seed_history(&mut db);
        db.crash_and_recover(&[N0]).unwrap();
        assert!(db.redo_pending() > 0, "{p:?}");
        db.checkpoint(N1).unwrap();
        assert_eq!(db.redo_pending(), 0, "{p:?}: checkpoint must not orphan deferred redo");
        db.check_ifa(N1).assert_ok();
    }
}

#[test]
fn check_ifa_refuses_to_compare_while_redo_is_pending() {
    let mut db = mk(ProtocolKind::VolatileRedoAll, true);
    seed_history(&mut db);
    db.crash_and_recover(&[N0]).unwrap();
    assert!(db.redo_pending() > 0);
    let report = db.check_ifa(N1);
    assert!(
        report.violations.iter().any(|v| v.contains("redo entries pending")),
        "expected a pending-redo refusal, got {:?}",
        report.violations
    );
    drain_all(&mut db, N1);
    db.check_ifa(N1).assert_ok();
}

#[test]
fn total_failure_always_recovers_eagerly() {
    let mut db = mk(ProtocolKind::StableEager, true);
    seed_history(&mut db);
    db.crash_and_recover(&[N0, N1, N2, N3]).unwrap();
    assert_eq!(db.redo_pending(), 0, "total failure must not open early");
    assert_eq!(&db.current_value(0).unwrap()[..11], b"n0-commit-a");
    db.check_ifa(db.machine().surviving_nodes()[0]).assert_ok();
}

#[test]
fn crash_during_drain_window_replans_and_still_converges() {
    for p in ProtocolKind::ifa_protocols() {
        let mut eager = mk(p, false);
        let mut instant = mk(p, true);
        seed_history(&mut eager);
        seed_history(&mut instant);
        eager.crash_and_recover(&[N0]).unwrap();
        eager.crash_and_recover(&[N2]).unwrap();
        instant.crash_and_recover(&[N0]).unwrap();
        assert!(instant.redo_pending() > 0, "{p:?}");
        // Retire one batch, then lose another node mid-drain: the plan is
        // dropped and re-derived by the second recovery.
        instant.drain_redo(N1, 1).unwrap();
        instant.crash_and_recover(&[N2]).unwrap();
        drain_all(&mut instant, N1);
        for slot in 0..instant.record_count() as u64 {
            assert_eq!(
                eager.current_value(slot).unwrap(),
                instant.current_value(slot).unwrap(),
                "{p:?}: slot {slot} diverged after crash-mid-drain"
            );
        }
        instant.check_ifa(N1).assert_ok();
    }
}

#[test]
fn surviving_active_txn_commits_through_the_drain_window() {
    for p in ProtocolKind::ifa_protocols() {
        let mut db = mk(p, true);
        seed_history(&mut db);
        // An in-flight survivor txn holding an updated record across the
        // crash: its commit's tag clear must not bypass pending redo.
        let t = db.begin(N1).unwrap();
        db.update(t, 30, b"survivor-wip").unwrap();
        db.crash_and_recover(&[N0]).unwrap();
        db.commit(t).unwrap();
        // The committed update may itself still sit in the deferred plan
        // (non-tagging commits never touch the heap): a coherent read
        // must observe it regardless, via the on-demand hook.
        let r = db.begin(N2).unwrap();
        let got = db.read(r, 30).unwrap();
        assert_eq!(&got[..12], b"survivor-wip", "{p:?}");
        db.commit(r).unwrap();
        drain_all(&mut db, N1);
        assert_eq!(&db.current_value(30).unwrap()[..12], b"survivor-wip", "{p:?}");
        db.check_ifa(N1).assert_ok();
    }
}

#[test]
fn surviving_active_txn_aborts_through_the_drain_window() {
    for p in ProtocolKind::ifa_protocols() {
        let mut db = mk(p, true);
        let setup = db.begin(N1).unwrap();
        db.update(setup, 30, b"pre-crash").unwrap();
        db.commit(setup).unwrap();
        seed_history(&mut db);
        let t = db.begin(N1).unwrap();
        db.update(t, 30, b"wip-undone").unwrap();
        db.crash_and_recover(&[N0]).unwrap();
        db.abort(t).unwrap();
        assert_eq!(&db.current_value(30).unwrap()[..9], b"pre-crash", "{p:?}");
        drain_all(&mut db, N1);
        db.check_ifa(N1).assert_ok();
    }
}

#[test]
fn drain_refuses_crashed_nodes_and_noops_when_empty() {
    let mut db = mk(ProtocolKind::VolatileRedoAll, true);
    seed_history(&mut db);
    db.crash(&[N0]);
    db.recover().unwrap();
    assert!(matches!(db.drain_redo(N0, 8), Err(DbError::NodeDown { .. })));
    drain_all(&mut db, N1);
    assert_eq!(db.drain_redo(N1, 8).unwrap(), 0);
}

#[test]
fn instant_restart_reaches_first_txn_faster_than_eager() {
    // The availability claim at its smallest: on an identical history the
    // open point (recover() return) comes earlier in simulated time under
    // instant restart, because deferred redo cycles are not charged
    // before open. Measured with the engine's own availability timeline.
    let mut eager = mk(ProtocolKind::VolatileRedoAll, false);
    let mut instant = mk(ProtocolKind::VolatileRedoAll, true);
    for db in [&mut eager, &mut instant] {
        db.enable_observability(0);
        // Symmetric load: every node's clock advances comparably, so the
        // makespan-based timeline sees the recovery work (TTFT markers
        // are taken at max-clock; skewed load would hide it).
        for round in 0..6u64 {
            for (n, node) in [N0, N1, N2, N3].into_iter().enumerate() {
                let slot = (n as u64) * 20 + round * 3;
                let t = db.begin(node).unwrap();
                db.update(t, slot, format!("r{round}n{n}").as_bytes()).unwrap();
                db.commit(t).unwrap();
            }
        }
        db.crash_and_recover(&[N0]).unwrap();
        let t = db.begin(N1).unwrap();
        db.read(t, 0).unwrap();
        db.commit(t).unwrap();
    }
    let ttft_eager = eager
        .observability()
        .timeline
        .time_to_first_txn()
        .expect("eager timeline records a first txn");
    let ttft_instant = instant
        .observability()
        .timeline
        .time_to_first_txn()
        .expect("instant timeline records a first txn");
    assert!(
        ttft_instant < ttft_eager,
        "instant TTFT {ttft_instant} should beat eager TTFT {ttft_eager}"
    );
    drain_all(&mut instant, N1);
    eager.check_ifa(N1).assert_ok();
    instant.check_ifa(N1).assert_ok();
}
