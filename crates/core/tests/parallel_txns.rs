//! Parallel (multi-node) transactions — the §9 extension: *"For a
//! parallel transaction (one which executes on multiple nodes), the
//! recovery measures are similar to those for independent transactions.
//! However, if one of the nodes executing this transaction were to crash,
//! the entire transaction must be aborted."*

use smdb_core::{DbConfig, DbError, ProtocolKind, SmDb};
use smdb_sim::NodeId;

const N0: NodeId = NodeId(0);
const N1: NodeId = NodeId(1);
const N2: NodeId = NodeId(2);
const N3: NodeId = NodeId(3);

fn mk(p: ProtocolKind) -> SmDb {
    SmDb::new(DbConfig::small(4, p))
}

#[test]
fn parallel_commit_spans_nodes() {
    for p in ProtocolKind::all() {
        let mut db = mk(p);
        let t = db.begin(N0).unwrap();
        db.attach(t, N1).unwrap();
        db.attach(t, N2).unwrap();
        db.update_on(t, N0, 0, b"from-n0").unwrap();
        db.update_on(t, N1, 30, b"from-n1").unwrap();
        db.update_on(t, N2, 60, b"from-n2").unwrap();
        db.commit(t).unwrap();
        for (slot, v) in [(0u64, b"from-n0"), (30, b"from-n1"), (60, b"from-n2")] {
            assert_eq!(&db.current_value(slot).unwrap()[..7], v, "{p:?}");
        }
        db.check_ifa(N0).assert_ok();
    }
}

#[test]
fn parallel_commit_is_durable_on_any_participant_crash() {
    for p in ProtocolKind::ifa_protocols() {
        for crash in [N0, N1] {
            let mut db = mk(p);
            let t = db.begin(N0).unwrap();
            db.attach(t, N1).unwrap();
            db.update_on(t, N0, 0, b"home-part").unwrap();
            db.update_on(t, N1, 30, b"away-part").unwrap();
            db.commit(t).unwrap();
            db.crash_and_recover(&[crash]).unwrap();
            assert_eq!(&db.current_value(0).unwrap()[..9], b"home-part", "{p:?}/{crash}");
            assert_eq!(&db.current_value(30).unwrap()[..9], b"away-part", "{p:?}/{crash}");
            db.check_ifa(N2).assert_ok();
        }
    }
}

#[test]
fn crash_of_remote_participant_dooms_whole_txn() {
    for p in ProtocolKind::ifa_protocols() {
        let mut db = mk(p);
        // Committed baselines.
        let setup = db.begin(N3).unwrap();
        db.update(setup, 0, b"base-a").unwrap();
        db.update(setup, 30, b"base-b").unwrap();
        db.commit(setup).unwrap();
        // Parallel transaction: home n0, participant n1.
        let t = db.begin(N0).unwrap();
        db.attach(t, N1).unwrap();
        db.update_on(t, N0, 0, b"dirty-a").unwrap();
        db.update_on(t, N1, 30, b"dirty-b").unwrap();
        // Independent survivor transaction on n2.
        let indep = db.begin(N2).unwrap();
        db.update(indep, 60, b"indep!").unwrap();
        // Crash the *participant*: the whole parallel transaction dies,
        // including its home-node effects.
        let outcome = db.crash_and_recover(&[N1]).unwrap();
        assert_eq!(outcome.aborted, vec![t], "{p:?}");
        assert_eq!(&db.current_value(0).unwrap()[..6], b"base-a", "{p:?}: home effect undone");
        assert_eq!(&db.current_value(30).unwrap()[..6], b"base-b", "{p:?}: remote effect undone");
        assert_eq!(&db.current_value(60).unwrap()[..6], b"indep!", "{p:?}: bystander preserved");
        db.check_ifa(N2).assert_ok();
        db.commit(indep).unwrap();
    }
}

#[test]
fn crash_of_home_dooms_participant_effects() {
    for p in ProtocolKind::ifa_protocols() {
        let mut db = mk(p);
        let setup = db.begin(N3).unwrap();
        db.update(setup, 30, b"before").unwrap();
        db.commit(setup).unwrap();
        let t = db.begin(N0).unwrap();
        db.attach(t, N1).unwrap();
        db.update_on(t, N1, 30, b"after!").unwrap();
        let outcome = db.crash_and_recover(&[N0]).unwrap();
        assert_eq!(outcome.aborted, vec![t], "{p:?}");
        assert_eq!(&db.current_value(30).unwrap()[..6], b"before", "{p:?}");
        db.check_ifa(N1).assert_ok();
    }
}

#[test]
fn doomed_parallel_txn_releases_its_locks() {
    let mut db = mk(ProtocolKind::VolatileSelectiveRedo);
    let t = db.begin(N0).unwrap();
    db.attach(t, N1).unwrap();
    db.update_on(t, N0, 5, b"aaa").unwrap();
    db.update_on(t, N1, 6, b"bbb").unwrap();
    // Crash the remote participant: home survives, so its LCB entries
    // must be released explicitly by recovery.
    db.crash_and_recover(&[N1]).unwrap();
    db.check_ifa(N2).assert_ok();
    // Both records are lockable again.
    let t2 = db.begin(N2).unwrap();
    db.update(t2, 5, b"ccc").unwrap();
    db.update(t2, 6, b"ddd").unwrap();
    db.commit(t2).unwrap();
    assert_eq!(&db.current_value(5).unwrap()[..3], b"ccc");
}

#[test]
fn bystander_crash_spares_parallel_txn() {
    for p in ProtocolKind::ifa_protocols() {
        let mut db = mk(p);
        let t = db.begin(N0).unwrap();
        db.attach(t, N1).unwrap();
        db.update_on(t, N0, 0, b"keep-a").unwrap();
        db.update_on(t, N1, 30, b"keep-b").unwrap();
        // A node the transaction does not run on crashes.
        let outcome = db.crash_and_recover(&[N2]).unwrap();
        assert!(outcome.aborted.is_empty(), "{p:?}");
        db.check_ifa(N0).assert_ok();
        db.commit(t).unwrap();
        assert_eq!(&db.current_value(0).unwrap()[..6], b"keep-a");
        assert_eq!(&db.current_value(30).unwrap()[..6], b"keep-b");
    }
}

#[test]
fn parallel_reads_on_participants() {
    let mut db = mk(ProtocolKind::VolatileSelectiveRedo);
    let setup = db.begin(N2).unwrap();
    db.update(setup, 9, b"shared-val").unwrap();
    db.commit(setup).unwrap();
    let t = db.begin(N0).unwrap();
    db.attach(t, N1).unwrap();
    let a = db.read_on(t, N0, 9).unwrap();
    let b = db.read_on(t, N1, 9).unwrap();
    assert_eq!(a, b);
    assert_eq!(&a[..10], b"shared-val");
    db.commit(t).unwrap();
}

#[test]
fn op_on_unattached_node_requires_attach() {
    let mut db = mk(ProtocolKind::VolatileSelectiveRedo);
    let t = db.begin(N0).unwrap();
    let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _ = db.update_on(t, N1, 0, b"x");
    }));
    assert!(r.is_err(), "acting on a non-participant node is a usage error");
}

#[test]
fn attach_to_crashed_node_rejected() {
    let mut db = mk(ProtocolKind::VolatileSelectiveRedo);
    db.crash_and_recover(&[N3]).unwrap();
    let t = db.begin(N0).unwrap();
    assert_eq!(db.attach(t, N3), Err(DbError::NodeDown { node: N3 }));
}

#[test]
fn voluntary_abort_of_parallel_txn() {
    let mut db = mk(ProtocolKind::VolatileSelectiveRedo);
    let setup = db.begin(N2).unwrap();
    db.update(setup, 0, b"orig-a").unwrap();
    db.update(setup, 30, b"orig-b").unwrap();
    db.commit(setup).unwrap();
    let t = db.begin(N0).unwrap();
    db.attach(t, N1).unwrap();
    db.update_on(t, N0, 0, b"tmp-a").unwrap();
    db.update_on(t, N1, 30, b"tmp-b").unwrap();
    db.abort(t).unwrap();
    assert_eq!(&db.current_value(0).unwrap()[..6], b"orig-a");
    assert_eq!(&db.current_value(30).unwrap()[..6], b"orig-b");
    db.check_ifa(N0).assert_ok();
}
