//! End-to-end engine + recovery scenarios, including the paper's Figure 2
//! crash cases, under every protocol.

use smdb_core::{DbConfig, DbError, ProtocolKind, SmDb};
use smdb_sim::NodeId;

const N0: NodeId = NodeId(0);
const N1: NodeId = NodeId(1);
const N2: NodeId = NodeId(2);
const N3: NodeId = NodeId(3);

fn mk(protocol: ProtocolKind) -> SmDb {
    SmDb::new(DbConfig::small(4, protocol))
}

/// Slots 0,1,2 share one cache line with the small config (3 records per
/// 128-byte line).
fn assert_colocated(db: &SmDb) {
    assert_eq!(db.record_layout().records_per_line(), 3);
}

#[test]
fn basic_commit_and_read_back() {
    for p in ProtocolKind::all() {
        let mut db = mk(p);
        let t = db.begin(N0).unwrap();
        db.update(t, 5, b"hello").unwrap();
        db.commit(t).unwrap();
        assert_eq!(&db.current_value(5).unwrap()[..5], b"hello");
        db.check_ifa(N0).assert_ok();
    }
}

#[test]
fn voluntary_abort_restores_before_image() {
    for p in ProtocolKind::all() {
        let mut db = mk(p);
        let t0 = db.begin(N0).unwrap();
        db.update(t0, 5, b"first").unwrap();
        db.commit(t0).unwrap();
        let t1 = db.begin(N1).unwrap();
        db.update(t1, 5, b"secnd").unwrap();
        db.abort(t1).unwrap();
        assert_eq!(&db.current_value(5).unwrap()[..5], b"first");
        db.check_ifa(N0).assert_ok();
    }
}

#[test]
fn no_wait_conflict_surfaces_would_block() {
    let mut db = mk(ProtocolKind::VolatileSelectiveRedo);
    let t0 = db.begin(N0).unwrap();
    db.update(t0, 5, b"aa").unwrap();
    let t1 = db.begin(N1).unwrap();
    match db.update(t1, 5, b"bb") {
        Err(DbError::WouldBlock { .. }) => {}
        other => panic!("expected WouldBlock, got {other:?}"),
    }
    db.abort(t1).unwrap();
    db.commit(t0).unwrap();
    // After t0 commits and t1's queued request was cancelled, a new
    // transaction can take the lock.
    let t2 = db.begin(N1).unwrap();
    db.update(t2, 5, b"cc").unwrap();
    db.commit(t2).unwrap();
    assert_eq!(&db.current_value(5).unwrap()[..2], b"cc");
    db.check_ifa(N0).assert_ok();
}

/// Figure 2 / §3.1, crash case 1: node x (the updater) crashes after its
/// uncommitted update migrated to node y. The update must be undone even
/// though x's volatile log is gone.
#[test]
fn figure2_crash_of_updater_undoes_migrated_update() {
    for p in ProtocolKind::ifa_protocols() {
        let mut db = mk(p);
        assert_colocated(&db);
        // Committed baseline value for slot 0.
        let t = db.begin(N0).unwrap();
        db.update(t, 0, b"base0").unwrap();
        db.commit(t).unwrap();
        // t_x on n0 updates r0 (uncommitted)...
        let tx = db.begin(N0).unwrap();
        db.update(tx, 0, b"dirty").unwrap();
        // ...t_y on n1 updates r1 in the same line: the line migrates to n1.
        let ty = db.begin(N1).unwrap();
        db.update(ty, 1, b"other").unwrap();
        // Crash x. Its uncommitted "dirty" lives only on n1 now.
        let outcome = db.crash_and_recover(&[N0]).unwrap();
        assert_eq!(outcome.aborted, vec![tx], "{p:?}");
        assert_eq!(&db.current_value(0).unwrap()[..5], b"base0", "{p:?}: undo failed");
        // t_y's in-flight update survives (IFA) and can commit.
        assert_eq!(&db.current_value(1).unwrap()[..5], b"other", "{p:?}");
        db.check_ifa(N1).assert_ok();
        db.commit(ty).unwrap();
        assert_eq!(&db.current_value(1).unwrap()[..5], b"other");
    }
}

/// Figure 2 / §3.1, crash case 2: node y (holding the migrated line)
/// crashes. t_x's update was destroyed with y's cache and must be redone
/// from x's intact volatile log.
#[test]
fn figure2_crash_of_line_holder_redoes_survivor_update() {
    for p in ProtocolKind::ifa_protocols() {
        let mut db = mk(p);
        assert_colocated(&db);
        let tx = db.begin(N0).unwrap();
        db.update(tx, 0, b"mine!").unwrap();
        let ty = db.begin(N1).unwrap();
        db.update(ty, 1, b"yours").unwrap();
        // Line now exclusively on n1. Crash n1.
        let outcome = db.crash_and_recover(&[N1]).unwrap();
        assert_eq!(outcome.aborted, vec![ty], "{p:?}");
        assert!(outcome.lost_lines > 0, "{p:?}: the shared line should have died");
        // t_x's uncommitted update was redone; t_y's was undone.
        assert_eq!(&db.current_value(0).unwrap()[..5], b"mine!", "{p:?}: redo failed");
        assert_eq!(&db.current_value(1).unwrap()[..5], &[0u8; 5][..], "{p:?}: undo failed");
        db.check_ifa(N0).assert_ok();
        db.commit(tx).unwrap();
    }
}

/// Committed data whose only cached copy dies with its node must be
/// redone from the (forced-at-commit) stable log — durability under
/// no-force.
#[test]
fn committed_update_survives_crash_of_its_node() {
    for p in ProtocolKind::all() {
        let mut db = mk(p);
        let t = db.begin(N2).unwrap();
        db.update(t, 10, b"gold!").unwrap();
        db.commit(t).unwrap();
        db.crash_and_recover(&[N2]).unwrap();
        assert_eq!(&db.current_value(10).unwrap()[..5], b"gold!", "{p:?}: durability violated");
        db.check_ifa(N0).assert_ok();
    }
}

/// Steal: a page with an uncommitted update is flushed; the transaction's
/// node then crashes. The stolen value must be rolled back in the stable
/// database (WAL guarantees the undo record was forced by the flush).
#[test]
fn stolen_uncommitted_update_is_undone_in_stable_db() {
    for p in ProtocolKind::ifa_protocols() {
        let mut db = mk(p);
        let t0 = db.begin(N0).unwrap();
        db.update(t0, 0, b"commd").unwrap();
        db.commit(t0).unwrap();
        let tx = db.begin(N1).unwrap();
        db.update(tx, 0, b"thief").unwrap();
        // Steal: flush the page containing the uncommitted update.
        let page = db.record_layout().rec_of_global(0).page;
        db.flush_page(N1, page).unwrap();
        let stable = db.stats();
        assert!(
            stable.wal_flush_forces >= 1
                || p.lbm_mode().forces_eagerly()
                || p.lbm_mode().uses_triggers(),
            "{p:?}: WAL must have forced the updater's log at flush"
        );
        let outcome = db.crash_and_recover(&[N1]).unwrap();
        assert_eq!(outcome.aborted, vec![tx]);
        assert_eq!(&db.current_value(0).unwrap()[..5], b"commd", "{p:?}");
        db.check_ifa(N0).assert_ok();
    }
}

/// The FA-only baseline aborts every active transaction on any crash —
/// the behaviour IFA avoids.
#[test]
fn fa_only_aborts_all_actives() {
    let mut db = mk(ProtocolKind::FaOnly);
    let t0 = db.begin(N0).unwrap();
    db.update(t0, 0, b"zero!").unwrap();
    let t1 = db.begin(N1).unwrap();
    db.update(t1, 30, b"one!!").unwrap();
    let t2 = db.begin(N2).unwrap();
    db.update(t2, 60, b"two!!").unwrap();
    let tc = db.begin(N3).unwrap();
    db.update(tc, 90, b"comm!").unwrap();
    db.commit(tc).unwrap();
    let outcome = db.crash_and_recover(&[N3]).unwrap();
    let mut aborted = outcome.aborted.clone();
    aborted.sort();
    assert_eq!(aborted, vec![t0, t1, t2], "all actives aborted, even on surviving nodes");
    // Committed data survives; uncommitted is gone.
    assert_eq!(&db.current_value(90).unwrap()[..5], b"comm!");
    assert_eq!(&db.current_value(0).unwrap()[..5], &[0u8; 5][..]);
    db.check_ifa(N0).assert_ok();
}

/// IFA protocols abort exactly the crashed node's transactions.
#[test]
fn ifa_aborts_only_crashed_nodes_txns() {
    for p in ProtocolKind::ifa_protocols() {
        let mut db = mk(p);
        let mut txns = Vec::new();
        for n in 0..4u16 {
            let t = db.begin(NodeId(n)).unwrap();
            db.update(t, 30 * n as u64, format!("val{n}").as_bytes()).unwrap();
            txns.push(t);
        }
        let outcome = db.crash_and_recover(&[N2]).unwrap();
        assert_eq!(outcome.aborted, vec![txns[2]], "{p:?}");
        assert_eq!(outcome.preserved_active.len(), 3, "{p:?}");
        db.check_ifa(N0).assert_ok();
        // Survivors can all still commit.
        for (n, t) in txns.iter().enumerate() {
            if n != 2 {
                db.commit(*t).unwrap();
            }
        }
        db.check_ifa(N0).assert_ok();
    }
}

#[test]
fn multi_node_crash() {
    for p in ProtocolKind::ifa_protocols() {
        let mut db = mk(p);
        let t0 = db.begin(N0).unwrap();
        db.update(t0, 0, b"n0own").unwrap();
        let t1 = db.begin(N1).unwrap();
        db.update(t1, 1, b"n1own").unwrap();
        let t3 = db.begin(N3).unwrap();
        db.update(t3, 2, b"n3own").unwrap();
        let outcome = db.crash_and_recover(&[N0, N1]).unwrap();
        let mut aborted = outcome.aborted.clone();
        aborted.sort();
        assert_eq!(aborted, vec![t0, t1], "{p:?}");
        assert_eq!(&db.current_value(2).unwrap()[..5], b"n3own", "{p:?}");
        assert_eq!(&db.current_value(0).unwrap()[..5], &[0u8; 5][..], "{p:?}");
        db.check_ifa(N3).assert_ok();
        db.commit(t3).unwrap();
    }
}

#[test]
fn total_failure_recovers_committed_state() {
    for p in ProtocolKind::all() {
        let mut db = mk(p);
        let t = db.begin(N0).unwrap();
        db.update(t, 7, b"keep!").unwrap();
        db.commit(t).unwrap();
        let t2 = db.begin(N1).unwrap();
        db.update(t2, 8, b"lose!").unwrap();
        let all: Vec<NodeId> = (0..4).map(NodeId).collect();
        let outcome = db.crash_and_recover(&all).unwrap();
        assert_eq!(outcome.aborted, vec![t2], "{p:?}");
        assert_eq!(&db.current_value(7).unwrap()[..5], b"keep!", "{p:?}");
        assert_eq!(&db.current_value(8).unwrap()[..5], &[0u8; 5][..], "{p:?}");
    }
}

#[test]
fn checkpoint_bounds_recovery_and_preserves_state() {
    for p in ProtocolKind::ifa_protocols() {
        let mut db = mk(p);
        for i in 0..10u64 {
            let t = db.begin(N0).unwrap();
            db.update(t, i, format!("v{i}").as_bytes()).unwrap();
            db.commit(t).unwrap();
        }
        db.checkpoint(N0).unwrap();
        let t = db.begin(N1).unwrap();
        db.update(t, 3, b"newer").unwrap();
        db.commit(t).unwrap();
        let outcome = db.crash_and_recover(&[N0, N1]).unwrap();
        // Pre-checkpoint updates are all in the stable db: no redo needed
        // for them.
        assert!(
            outcome.redo_applied <= 2,
            "{p:?}: checkpoint should bound redo, got {}",
            outcome.redo_applied
        );
        assert_eq!(&db.current_value(3).unwrap()[..5], b"newer", "{p:?}");
        for i in [0u64, 1, 2, 4, 5, 9] {
            assert_eq!(&db.current_value(i).unwrap()[..2], format!("v{i}").as_bytes(), "{p:?}");
        }
        db.check_ifa(N2).assert_ok();
    }
}

#[test]
fn index_insert_survives_foreign_crash_and_crashed_insert_undone() {
    for p in ProtocolKind::ifa_protocols() {
        let mut db = mk(p);
        // Committed entry.
        let t = db.begin(N0).unwrap();
        db.insert(t, 100, *b"COMMITED").unwrap();
        db.commit(t).unwrap();
        // Active survivor insert + active doomed insert.
        let ts = db.begin(N1).unwrap();
        db.insert(ts, 200, *b"SURVIVOR").unwrap();
        let td = db.begin(N2).unwrap();
        db.insert(td, 300, *b"DOOMED!!").unwrap();
        let outcome = db.crash_and_recover(&[N2]).unwrap();
        assert_eq!(outcome.aborted, vec![td], "{p:?}");
        let live = db.index_scan(N0).unwrap();
        let keys: Vec<u64> = live.iter().map(|(k, _)| *k).collect();
        assert!(keys.contains(&100), "{p:?}: committed entry lost");
        assert!(keys.contains(&200), "{p:?}: survivor's active entry lost");
        assert!(!keys.contains(&300), "{p:?}: doomed entry not undone");
        db.check_ifa(N0).assert_ok();
        db.commit(ts).unwrap();
    }
}

#[test]
fn index_delete_unmarked_when_deleter_crashes() {
    for p in ProtocolKind::ifa_protocols() {
        let mut db = mk(p);
        let t = db.begin(N0).unwrap();
        db.insert(t, 55, [7u8; 8]).unwrap();
        db.commit(t).unwrap();
        let td = db.begin(N1).unwrap();
        db.delete(td, 55).unwrap();
        let outcome = db.crash_and_recover(&[N1]).unwrap();
        assert_eq!(outcome.aborted, vec![td], "{p:?}");
        let live = db.index_scan(N0).unwrap();
        assert!(live.iter().any(|(k, v)| *k == 55 && *v == [7u8; 8]), "{p:?}: delete not unmarked");
        db.check_ifa(N0).assert_ok();
    }
}

#[test]
fn index_committed_delete_stays_deleted_across_crash() {
    for p in ProtocolKind::ifa_protocols() {
        let mut db = mk(p);
        let t = db.begin(N0).unwrap();
        db.insert(t, 55, [7u8; 8]).unwrap();
        db.commit(t).unwrap();
        let td = db.begin(N1).unwrap();
        db.delete(td, 55).unwrap();
        db.commit(td).unwrap();
        db.crash_and_recover(&[N1]).unwrap();
        let live = db.index_scan(N0).unwrap();
        assert!(!live.iter().any(|(k, _)| *k == 55), "{p:?}: committed delete resurrected");
        db.check_ifa(N0).assert_ok();
    }
}

#[test]
fn survivor_lock_state_preserved_and_usable_after_crash() {
    for p in ProtocolKind::ifa_protocols() {
        let mut db = mk(p);
        let ts = db.begin(N1).unwrap();
        db.update(ts, 42, b"locky").unwrap();
        // A transaction on n2 touches the *lock table line* by locking a
        // colliding name... simplest: lock another record and crash n2.
        let td = db.begin(N2).unwrap();
        db.update(td, 43, b"dmmy!").unwrap();
        db.crash_and_recover(&[N2]).unwrap();
        db.check_ifa(N1).assert_ok();
        // ts still holds its lock: another txn must conflict.
        let t2 = db.begin(N3).unwrap();
        assert!(matches!(db.update(t2, 42, b"steal"), Err(DbError::WouldBlock { .. })), "{p:?}");
        db.abort(t2).unwrap();
        db.commit(ts).unwrap();
        // Now the lock is free.
        let t3 = db.begin(N3).unwrap();
        db.update(t3, 42, b"after").unwrap();
        db.commit(t3).unwrap();
    }
}

#[test]
fn sequential_crashes_with_reboot() {
    for p in ProtocolKind::ifa_protocols() {
        let mut db = mk(p);
        let t = db.begin(N0).unwrap();
        db.update(t, 1, b"first").unwrap();
        db.commit(t).unwrap();
        db.crash_and_recover(&[N0]).unwrap();
        db.check_ifa(N1).assert_ok();
        db.reboot(N0);
        // The rebooted node can run transactions again.
        let t2 = db.begin(N0).unwrap();
        db.update(t2, 2, b"again").unwrap();
        db.commit(t2).unwrap();
        // And crash again.
        db.crash_and_recover(&[N1]).unwrap();
        assert_eq!(&db.current_value(1).unwrap()[..5], b"first", "{p:?}");
        assert_eq!(&db.current_value(2).unwrap()[..5], b"again", "{p:?}");
        db.check_ifa(N0).assert_ok();
    }
}

#[test]
fn write_broadcast_crash_needs_no_redo_for_replicated_lines() {
    use smdb_sim::CoherenceKind;
    let cfg = DbConfig::small(4, ProtocolKind::VolatileSelectiveRedo)
        .with_coherence(CoherenceKind::WriteBroadcast);
    let mut db = SmDb::new(cfg);
    // Two nodes write records in the same line: under write-broadcast both
    // keep valid copies.
    let t0 = db.begin(N0).unwrap();
    db.update(t0, 0, b"alpha").unwrap();
    db.commit(t0).unwrap();
    let t1 = db.begin(N1).unwrap();
    db.update(t1, 1, b"betaa").unwrap();
    db.commit(t1).unwrap();
    let outcome = db.crash_and_recover(&[N1]).unwrap();
    // Nothing was lost (n0 still holds a valid updated copy): redo-free.
    assert_eq!(outcome.redo_applied, 0, "write-broadcast should need no redo");
    assert_eq!(&db.current_value(0).unwrap()[..5], b"alpha");
    assert_eq!(&db.current_value(1).unwrap()[..5], b"betaa");
    db.check_ifa(N0).assert_ok();
}

#[test]
fn redo_all_discards_more_than_selective() {
    // Same scenario under both volatile protocols: Redo All performs at
    // least as many redo operations.
    let mut counts = Vec::new();
    for p in [ProtocolKind::VolatileRedoAll, ProtocolKind::VolatileSelectiveRedo] {
        let mut db = mk(p);
        for i in 0..30u64 {
            let t = db.begin(NodeId((i % 3) as u16)).unwrap();
            db.update(t, i, format!("x{i}").as_bytes()).unwrap();
            db.commit(t).unwrap();
        }
        let outcome = db.crash_and_recover(&[N3]).unwrap();
        db.check_ifa(N0).assert_ok();
        counts.push((
            p,
            outcome.redo_applied + outcome.redo_skipped_stable,
            outcome.redo_skipped_cached,
        ));
    }
    let (_, redo_all_considered, _) = counts[0];
    let (_, _sel_considered, sel_skipped_cached) = counts[1];
    assert!(sel_skipped_cached > 0, "selective should skip cached lines");
    assert!(redo_all_considered > 0);
}

#[test]
fn stable_eager_forces_on_every_update() {
    let mut db = mk(ProtocolKind::StableEager);
    let t = db.begin(N0).unwrap();
    for i in 0..5u64 {
        db.update(t, i, b"x").unwrap();
    }
    assert!(db.stats().lbm_forces >= 5, "eager: one force per update");
    let mut vdb = mk(ProtocolKind::VolatileSelectiveRedo);
    let t = vdb.begin(N0).unwrap();
    for i in 0..5u64 {
        vdb.update(t, i, b"x").unwrap();
    }
    assert_eq!(vdb.stats().lbm_forces, 0, "volatile: no LBM forces");
}

#[test]
fn stable_triggered_forces_only_on_sharing() {
    let mut db = mk(ProtocolKind::StableTriggered);
    let t = db.begin(N0).unwrap();
    // Updates with no inter-node sharing: no LBM forces.
    for i in 0..5u64 {
        db.update(t, 30 + i, b"x").unwrap();
    }
    assert_eq!(db.stats().lbm_forces, 0, "no sharing → no triggered forces");
    db.commit(t).unwrap();
    // Now a remote node touches the just-updated line: if the update were
    // still active the trigger would fire. Uncommitted case:
    let t1 = db.begin(N0).unwrap();
    db.update(t1, 0, b"hot").unwrap();
    let forces_before = db.stats().lbm_forces;
    let t2 = db.begin(N1).unwrap();
    let _ = db.read(t2, 1); // same line (slots 0..2 co-located)
    assert!(db.stats().lbm_forces > forces_before, "remote touch of active line must force");
}

#[test]
fn undo_tags_only_under_selective_volatile() {
    for p in ProtocolKind::all() {
        let mut db = mk(p);
        let t = db.begin(N0).unwrap();
        db.update(t, 0, b"x").unwrap();
        let tagged = db.current_tag(0).unwrap() == 0;
        assert_eq!(tagged, p.uses_undo_tags(), "{p:?}");
        db.commit(t).unwrap();
        assert_eq!(db.current_tag(0).unwrap(), u16::MAX, "{p:?}: tag cleared at commit");
    }
}

// ---------------------------------------------------------------------------
// Fault injection: interrupted and nested recovery.
// ---------------------------------------------------------------------------

use smdb_core::fault::{CrashPoint, FaultInjector, FaultPlan};
use smdb_core::{FAULT_COMMIT, FAULT_RECOVERY_PHASE};
use smdb_sim::TxnId;

/// A small shared workload for the interrupted-recovery tests: committed
/// values on slots 0/1/7, an index entry, an active survivor update on n1
/// and an active doomed update on n2.
fn seed_workload(db: &mut SmDb) -> (TxnId, TxnId) {
    for (node, slot, val) in [(N0, 0u64, b"base0"), (N1, 1, b"base1"), (N3, 7, b"base7")] {
        let t = db.begin(node).unwrap();
        db.update(t, slot, val).unwrap();
        db.commit(t).unwrap();
    }
    let t = db.begin(N0).unwrap();
    db.insert(t, 500, *b"IDXENTRY").unwrap();
    db.commit(t).unwrap();
    let ts = db.begin(N1).unwrap();
    db.update(ts, 4, b"survr").unwrap();
    let td = db.begin(N2).unwrap();
    db.update(td, 0, b"doomd").unwrap();
    (ts, td)
}

fn assert_converged(db: &mut SmDb, ts: TxnId, p: ProtocolKind, ctx: &str) {
    db.check_ifa(N1).assert_ok();
    assert_eq!(&db.current_value(0).unwrap()[..5], b"base0", "{p:?} {ctx}: undo failed");
    assert_eq!(&db.current_value(7).unwrap()[..5], b"base7", "{p:?} {ctx}: committed data lost");
    assert_eq!(&db.current_value(4).unwrap()[..5], b"survr", "{p:?} {ctx}: survivor lost");
    let live = db.index_scan(N1).unwrap();
    assert!(live.iter().any(|(k, _)| *k == 500), "{p:?} {ctx}: committed index entry lost");
    // The preserved survivor transaction can still commit.
    db.commit(ts).unwrap();
    db.check_ifa(N1).assert_ok();
}

/// Crash node B (the recovery node) after *each* phase of node A's
/// restart, then finish recovery from a fresh survivor. Every interruption
/// point must converge to the same IFA-consistent state.
#[test]
fn recovery_interrupted_after_each_phase_converges() {
    for p in ProtocolKind::ifa_protocols() {
        // Phases 1..=6 end with a `recovery.phase` crash point
        // (ordinals 0..=5).
        for k in 0..6u64 {
            let mut db = mk(p);
            let f = FaultInjector::new();
            db.set_fault_injector(f.clone());
            let (ts, _td) = seed_workload(&mut db);
            db.crash(&[N2]);
            f.arm(FaultPlan::single(CrashPoint::new(FAULT_RECOVERY_PHASE, k)));
            let err = db.recover().expect_err("armed phase point must fire");
            let c = *err.fault_crash().unwrap_or_else(|| panic!("{p:?} phase {k}: {err}"));
            assert_eq!(c.site, FAULT_RECOVERY_PHASE);
            // The recovery node itself died mid-restart; recovery stays
            // pending until a fresh survivor finishes the job.
            assert!(db.recovery_pending(), "{p:?} phase {k}");
            db.crash(&[NodeId(c.node)]);
            let outcome = db.recover().unwrap_or_else(|e| panic!("{p:?} phase {k}: {e}"));
            assert_ne!(outcome.recovery_node, NodeId(c.node), "{p:?} phase {k}");
            assert_converged(&mut db, ts, p, &format!("phase {k}"));
        }
    }
}

/// Acceptance scenario, named: recovery of node A is interrupted (the
/// recovery node dies), and the restart is re-run from a *different*
/// survivor. The second attempt must converge even though the first left
/// partially reinstalled state behind.
#[test]
fn interrupted_recovery_restarted_from_new_survivor_converges() {
    for p in ProtocolKind::ifa_protocols() {
        let mut db = mk(p);
        let f = FaultInjector::new();
        db.set_fault_injector(f.clone());
        let (ts, _td) = seed_workload(&mut db);
        db.crash(&[N2]);
        // Interrupt after phase 2 (reinstall): stale stable images now sit
        // in the recovery node's cache — the hardest point to re-enter.
        f.arm(FaultPlan::single(CrashPoint::new(FAULT_RECOVERY_PHASE, 1)));
        let err = db.recover().expect_err("armed phase point must fire");
        let first_recovery_node = NodeId(err.fault_crash().unwrap().node);
        db.crash(&[first_recovery_node]);
        let outcome = db.recover().unwrap_or_else(|e| panic!("{p:?}: {e}"));
        assert_ne!(
            outcome.recovery_node, first_recovery_node,
            "{p:?}: a new survivor must host the second attempt"
        );
        // Both crashed nodes' doomed transactions are gone and the second
        // attempt's outcome covers both.
        let mut crashed = outcome.crashed.clone();
        crashed.sort();
        let mut expected = vec![first_recovery_node, N2];
        expected.sort();
        assert_eq!(crashed, expected, "{p:?}");
        assert_converged(&mut db, ts, p, "new survivor");
    }
}

/// Total failure *during* recovery: every node is down, the rebooted host
/// dies mid full-restart, and the next attempt must still run the full
/// restart (the outage is latched) and reach the committed state.
#[test]
fn total_failure_interrupted_mid_restart_still_full_restarts() {
    for p in ProtocolKind::all() {
        let mut db = mk(p);
        let f = FaultInjector::new();
        db.set_fault_injector(f.clone());
        let t = db.begin(N0).unwrap();
        db.update(t, 7, b"keep!").unwrap();
        db.commit(t).unwrap();
        let t2 = db.begin(N1).unwrap();
        db.update(t2, 8, b"lose!").unwrap();
        let all: Vec<NodeId> = (0..4).map(NodeId).collect();
        db.crash(&all);
        // The full restart has one mid-rebuild crash point.
        f.arm(FaultPlan::single(CrashPoint::new(FAULT_RECOVERY_PHASE, 0)));
        let err = db.recover().expect_err("armed full-restart point must fire");
        let victim = NodeId(err.fault_crash().unwrap_or_else(|| panic!("{p:?}: {err}")).node);
        db.crash(&[victim]);
        let outcome = db.recover().unwrap_or_else(|e| panic!("{p:?}: {e}"));
        assert_eq!(outcome.aborted, vec![t2], "{p:?}: outage must doom every active txn");
        assert_eq!(&db.current_value(7).unwrap()[..5], b"keep!", "{p:?}");
        assert_eq!(&db.current_value(8).unwrap()[..5], &[0u8; 5][..], "{p:?}");
        db.check_ifa(db.machine().surviving_nodes()[0]).assert_ok();
    }
}

/// A node can die *after* forcing its commit record but before post-commit
/// bookkeeping. The commit point is the durable record: the transaction is
/// committed, recovery must redo — not undo — it.
#[test]
fn crash_after_durable_commit_record_promotes_txn() {
    for p in ProtocolKind::ifa_protocols() {
        let mut db = mk(p);
        let f = FaultInjector::new();
        db.set_fault_injector(f.clone());
        let t = db.begin(N2).unwrap();
        db.update(t, 10, b"gold!").unwrap();
        // `core.commit` is visited twice per commit: before the commit
        // record exists (ordinal 0) and after it is durable (ordinal 1).
        f.arm(FaultPlan::single(CrashPoint::new(FAULT_COMMIT, 1)));
        let err = db.commit(t).expect_err("armed commit point must fire");
        let victim = NodeId(err.fault_crash().unwrap().node);
        assert_eq!(victim, N2, "{p:?}");
        let outcome = db.crash_and_recover(&[victim]).unwrap();
        assert!(outcome.aborted.is_empty(), "{p:?}: durably committed txn was doomed");
        assert_eq!(&db.current_value(10).unwrap()[..5], b"gold!", "{p:?}: commit lost");
        db.check_ifa(N0).assert_ok();
    }
}

/// The mirror case: the node dies *before* its commit record is forced.
/// The transaction never reached its commit point and must be undone.
#[test]
fn crash_before_commit_record_dooms_txn() {
    for p in ProtocolKind::ifa_protocols() {
        let mut db = mk(p);
        let f = FaultInjector::new();
        db.set_fault_injector(f.clone());
        let t = db.begin(N2).unwrap();
        db.update(t, 10, b"never").unwrap();
        f.arm(FaultPlan::single(CrashPoint::new(FAULT_COMMIT, 0)));
        let err = db.commit(t).expect_err("armed commit point must fire");
        let outcome = db.crash_and_recover(&[NodeId(err.fault_crash().unwrap().node)]).unwrap();
        assert_eq!(outcome.aborted, vec![t], "{p:?}: unforced commit must be doomed");
        assert_eq!(&db.current_value(10).unwrap()[..5], &[0u8; 5][..], "{p:?}");
        db.check_ifa(N0).assert_ok();
    }
}

// ---------------------------------------------------------------------------
// check_ifa between crash and recover (quiescent-point masking).
// ---------------------------------------------------------------------------

/// Between `crash` and a completed `recover` the physical state still
/// carries doomed residue: `check_ifa` must report the pending recovery as
/// a single violation instead of a storm of value mismatches, and go green
/// again once recovery completes.
#[test]
fn check_ifa_reports_pending_recovery_between_crash_and_recover() {
    for p in ProtocolKind::ifa_protocols() {
        let mut db = mk(p);
        let (ts, _td) = seed_workload(&mut db);
        db.crash(&[N2]);
        let r = db.check_ifa(N0);
        assert!(!r.ok(), "{p:?}: pending recovery must not pass");
        assert_eq!(r.violations.len(), 1, "{p:?}: exactly one violation, got {:?}", r.violations);
        assert!(r.violations[0].contains("recovery pending"), "{p:?}: {:?}", r.violations);
        db.recover().unwrap();
        db.check_ifa(N0).assert_ok();
        db.commit(ts).unwrap();
        db.check_ifa(N0).assert_ok();
    }
}

/// After recovery, transactions still active on surviving nodes are masked
/// *into* the expectation: their uncommitted effects in place are correct,
/// not violations.
#[test]
fn check_ifa_masks_surviving_active_txns() {
    for p in ProtocolKind::ifa_protocols() {
        let mut db = mk(p);
        let (ts, _td) = seed_workload(&mut db);
        db.crash_and_recover(&[N2]).unwrap();
        // ts is still active with an in-flight update on slot 4; the check
        // must accept its pending value as the expectation.
        assert_eq!(&db.current_value(4).unwrap()[..5], b"survr", "{p:?}");
        db.check_ifa(N1).assert_ok();
        db.abort(ts).unwrap();
        // After the abort the slot reverts and the check still holds.
        assert_eq!(&db.current_value(4).unwrap()[..5], &[0u8; 5][..], "{p:?}");
        db.check_ifa(N1).assert_ok();
    }
}

/// Build the controlled-lock-violation chain T1 → T2 → T3 on one hot
/// slot: each commit record is appended via `commit_pipelined`, ELR frees
/// the exclusive lock at append, and each successor acquires it without
/// blocking while inheriting a commit-LSN dependency on its predecessor.
/// Returns the three transaction ids; no drain has run when it returns.
fn chain_three_on_hot_slot(db: &mut SmDb) -> [smdb_sim::TxnId; 3] {
    let t1 = db.begin(N0).unwrap();
    db.update(t1, 0, b"t1.hot..").unwrap();
    db.commit_pipelined(t1).unwrap();
    let t2 = db.begin(N1).unwrap();
    db.update(t2, 0, b"t2.hot..").unwrap();
    db.commit_pipelined(t2).unwrap();
    let t3 = db.begin(N2).unwrap();
    db.update(t3, 0, b"t3.hot..").unwrap();
    db.commit_pipelined(t3).unwrap();
    assert_eq!(db.pending_commit_count(), 3);
    assert!(db.stats().commit_deps >= 2, "chain recorded dependencies");
    [t1, t2, t3]
}

/// Controlled lock violation, the failure half: none of the chain's commit
/// records reach the stable log, so crashing T1's home node dooms T1 the
/// ordinary way and the violation edges must cascade the doom through both
/// dependents — even though their home nodes survived. Stable-Triggered is
/// excluded: its coherence-triggered forces make predecessors durable at
/// line migration (see the contrast test below).
#[test]
fn crash_before_force_cascades_through_violation_chain() {
    for p in [
        ProtocolKind::VolatileSelectiveRedo,
        ProtocolKind::VolatileRedoAll,
        ProtocolKind::StableEager,
    ] {
        let mut db = SmDb::new(DbConfig::small(4, p).with_early_lock_release());
        // A plainly committed control value the episode must not disturb.
        let t0 = db.begin(N3).unwrap();
        db.update(t0, 9, b"control.").unwrap();
        db.commit(t0).unwrap();
        let before = db.current_value(0).unwrap();

        let [t1, t2, t3] = chain_three_on_hot_slot(&mut db);

        // No drain ran: T1's commit record lives only in node 0's volatile
        // tail (Stable-Eager forces at *update* time, before the commit
        // record exists). Crash it.
        let outcome = db.crash_and_recover(&[N0]).unwrap();
        for t in [t1, t2, t3] {
            assert!(outcome.aborted.contains(&t), "{p:?}: {t:?} must abort");
        }
        assert_eq!(db.stats().dep_aborts, 2, "{p:?}: exactly T2 and T3 cascade");
        assert_eq!(db.pending_commit_count(), 0, "{p:?}: pipeline settled");

        // The hot slot reverted to its pre-chain image; the control value
        // and the IFA invariant are intact.
        assert_eq!(db.current_value(0).unwrap(), before, "{p:?}");
        assert_eq!(&db.read_committed(9).unwrap()[..8], b"control.", "{p:?}");
        db.check_ifa(N1).assert_ok();
    }
}

/// The same chain under Stable-Triggered LBM commits instead of cascading:
/// migrating the hot line to the successor's node forces the predecessor's
/// whole log — commit record included — so by the time node 0 crashes, T1
/// and T2 are durable and recovery promotes them. Only T3's unforced
/// record is still pending, and the next drain acknowledges it.
#[test]
fn stable_triggered_migration_forces_make_chain_durable() {
    let p = ProtocolKind::StableTriggered;
    let mut db = SmDb::new(DbConfig::small(4, p).with_early_lock_release());
    let [_t1, _t2, t3] = chain_three_on_hot_slot(&mut db);

    let outcome = db.crash_and_recover(&[N0]).unwrap();
    assert!(outcome.aborted.is_empty(), "nothing dooms: {:?}", outcome.aborted);
    assert_eq!(db.stats().dep_aborts, 0);
    assert_eq!(db.pending_commit_count(), 1, "only T3 still awaits its force");

    assert_eq!(db.drain_commit_pipeline().unwrap(), 1);
    assert!(!db.active_txns(None).contains(&t3), "T3 acknowledged and retired");
    assert_eq!(&db.read_committed(0).unwrap()[..8], b"t3.hot..");
    db.check_ifa(N1).assert_ok();
}
