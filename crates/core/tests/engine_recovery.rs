//! End-to-end engine + recovery scenarios, including the paper's Figure 2
//! crash cases, under every protocol.

use smdb_core::{DbConfig, DbError, ProtocolKind, SmDb};
use smdb_sim::NodeId;

const N0: NodeId = NodeId(0);
const N1: NodeId = NodeId(1);
const N2: NodeId = NodeId(2);
const N3: NodeId = NodeId(3);

fn mk(protocol: ProtocolKind) -> SmDb {
    SmDb::new(DbConfig::small(4, protocol))
}

/// Slots 0,1,2 share one cache line with the small config (3 records per
/// 128-byte line).
fn assert_colocated(db: &SmDb) {
    assert_eq!(db.record_layout().records_per_line(), 3);
}

#[test]
fn basic_commit_and_read_back() {
    for p in ProtocolKind::all() {
        let mut db = mk(p);
        let t = db.begin(N0).unwrap();
        db.update(t, 5, b"hello").unwrap();
        db.commit(t).unwrap();
        assert_eq!(&db.current_value(5).unwrap()[..5], b"hello");
        db.check_ifa(N0).assert_ok();
    }
}

#[test]
fn voluntary_abort_restores_before_image() {
    for p in ProtocolKind::all() {
        let mut db = mk(p);
        let t0 = db.begin(N0).unwrap();
        db.update(t0, 5, b"first").unwrap();
        db.commit(t0).unwrap();
        let t1 = db.begin(N1).unwrap();
        db.update(t1, 5, b"secnd").unwrap();
        db.abort(t1).unwrap();
        assert_eq!(&db.current_value(5).unwrap()[..5], b"first");
        db.check_ifa(N0).assert_ok();
    }
}

#[test]
fn no_wait_conflict_surfaces_would_block() {
    let mut db = mk(ProtocolKind::VolatileSelectiveRedo);
    let t0 = db.begin(N0).unwrap();
    db.update(t0, 5, b"aa").unwrap();
    let t1 = db.begin(N1).unwrap();
    match db.update(t1, 5, b"bb") {
        Err(DbError::WouldBlock { .. }) => {}
        other => panic!("expected WouldBlock, got {other:?}"),
    }
    db.abort(t1).unwrap();
    db.commit(t0).unwrap();
    // After t0 commits and t1's queued request was cancelled, a new
    // transaction can take the lock.
    let t2 = db.begin(N1).unwrap();
    db.update(t2, 5, b"cc").unwrap();
    db.commit(t2).unwrap();
    assert_eq!(&db.current_value(5).unwrap()[..2], b"cc");
    db.check_ifa(N0).assert_ok();
}

/// Figure 2 / §3.1, crash case 1: node x (the updater) crashes after its
/// uncommitted update migrated to node y. The update must be undone even
/// though x's volatile log is gone.
#[test]
fn figure2_crash_of_updater_undoes_migrated_update() {
    for p in ProtocolKind::ifa_protocols() {
        let mut db = mk(p);
        assert_colocated(&db);
        // Committed baseline value for slot 0.
        let t = db.begin(N0).unwrap();
        db.update(t, 0, b"base0").unwrap();
        db.commit(t).unwrap();
        // t_x on n0 updates r0 (uncommitted)...
        let tx = db.begin(N0).unwrap();
        db.update(tx, 0, b"dirty").unwrap();
        // ...t_y on n1 updates r1 in the same line: the line migrates to n1.
        let ty = db.begin(N1).unwrap();
        db.update(ty, 1, b"other").unwrap();
        // Crash x. Its uncommitted "dirty" lives only on n1 now.
        let outcome = db.crash_and_recover(&[N0]).unwrap();
        assert_eq!(outcome.aborted, vec![tx], "{p:?}");
        assert_eq!(&db.current_value(0).unwrap()[..5], b"base0", "{p:?}: undo failed");
        // t_y's in-flight update survives (IFA) and can commit.
        assert_eq!(&db.current_value(1).unwrap()[..5], b"other", "{p:?}");
        db.check_ifa(N1).assert_ok();
        db.commit(ty).unwrap();
        assert_eq!(&db.current_value(1).unwrap()[..5], b"other");
    }
}

/// Figure 2 / §3.1, crash case 2: node y (holding the migrated line)
/// crashes. t_x's update was destroyed with y's cache and must be redone
/// from x's intact volatile log.
#[test]
fn figure2_crash_of_line_holder_redoes_survivor_update() {
    for p in ProtocolKind::ifa_protocols() {
        let mut db = mk(p);
        assert_colocated(&db);
        let tx = db.begin(N0).unwrap();
        db.update(tx, 0, b"mine!").unwrap();
        let ty = db.begin(N1).unwrap();
        db.update(ty, 1, b"yours").unwrap();
        // Line now exclusively on n1. Crash n1.
        let outcome = db.crash_and_recover(&[N1]).unwrap();
        assert_eq!(outcome.aborted, vec![ty], "{p:?}");
        assert!(outcome.lost_lines > 0, "{p:?}: the shared line should have died");
        // t_x's uncommitted update was redone; t_y's was undone.
        assert_eq!(&db.current_value(0).unwrap()[..5], b"mine!", "{p:?}: redo failed");
        assert_eq!(&db.current_value(1).unwrap()[..5], &[0u8; 5][..], "{p:?}: undo failed");
        db.check_ifa(N0).assert_ok();
        db.commit(tx).unwrap();
    }
}

/// Committed data whose only cached copy dies with its node must be
/// redone from the (forced-at-commit) stable log — durability under
/// no-force.
#[test]
fn committed_update_survives_crash_of_its_node() {
    for p in ProtocolKind::all() {
        let mut db = mk(p);
        let t = db.begin(N2).unwrap();
        db.update(t, 10, b"gold!").unwrap();
        db.commit(t).unwrap();
        db.crash_and_recover(&[N2]).unwrap();
        assert_eq!(&db.current_value(10).unwrap()[..5], b"gold!", "{p:?}: durability violated");
        db.check_ifa(N0).assert_ok();
    }
}

/// Steal: a page with an uncommitted update is flushed; the transaction's
/// node then crashes. The stolen value must be rolled back in the stable
/// database (WAL guarantees the undo record was forced by the flush).
#[test]
fn stolen_uncommitted_update_is_undone_in_stable_db() {
    for p in ProtocolKind::ifa_protocols() {
        let mut db = mk(p);
        let t0 = db.begin(N0).unwrap();
        db.update(t0, 0, b"commd").unwrap();
        db.commit(t0).unwrap();
        let tx = db.begin(N1).unwrap();
        db.update(tx, 0, b"thief").unwrap();
        // Steal: flush the page containing the uncommitted update.
        let page = db.record_layout().rec_of_global(0).page;
        db.flush_page(N1, page).unwrap();
        let stable = db.stats();
        assert!(
            stable.wal_flush_forces >= 1
                || p.lbm_mode().forces_eagerly()
                || p.lbm_mode().uses_triggers(),
            "{p:?}: WAL must have forced the updater's log at flush"
        );
        let outcome = db.crash_and_recover(&[N1]).unwrap();
        assert_eq!(outcome.aborted, vec![tx]);
        assert_eq!(&db.current_value(0).unwrap()[..5], b"commd", "{p:?}");
        db.check_ifa(N0).assert_ok();
    }
}

/// The FA-only baseline aborts every active transaction on any crash —
/// the behaviour IFA avoids.
#[test]
fn fa_only_aborts_all_actives() {
    let mut db = mk(ProtocolKind::FaOnly);
    let t0 = db.begin(N0).unwrap();
    db.update(t0, 0, b"zero!").unwrap();
    let t1 = db.begin(N1).unwrap();
    db.update(t1, 30, b"one!!").unwrap();
    let t2 = db.begin(N2).unwrap();
    db.update(t2, 60, b"two!!").unwrap();
    let tc = db.begin(N3).unwrap();
    db.update(tc, 90, b"comm!").unwrap();
    db.commit(tc).unwrap();
    let outcome = db.crash_and_recover(&[N3]).unwrap();
    let mut aborted = outcome.aborted.clone();
    aborted.sort();
    assert_eq!(aborted, vec![t0, t1, t2], "all actives aborted, even on surviving nodes");
    // Committed data survives; uncommitted is gone.
    assert_eq!(&db.current_value(90).unwrap()[..5], b"comm!");
    assert_eq!(&db.current_value(0).unwrap()[..5], &[0u8; 5][..]);
    db.check_ifa(N0).assert_ok();
}

/// IFA protocols abort exactly the crashed node's transactions.
#[test]
fn ifa_aborts_only_crashed_nodes_txns() {
    for p in ProtocolKind::ifa_protocols() {
        let mut db = mk(p);
        let mut txns = Vec::new();
        for n in 0..4u16 {
            let t = db.begin(NodeId(n)).unwrap();
            db.update(t, 30 * n as u64, format!("val{n}").as_bytes()).unwrap();
            txns.push(t);
        }
        let outcome = db.crash_and_recover(&[N2]).unwrap();
        assert_eq!(outcome.aborted, vec![txns[2]], "{p:?}");
        assert_eq!(outcome.preserved_active.len(), 3, "{p:?}");
        db.check_ifa(N0).assert_ok();
        // Survivors can all still commit.
        for (n, t) in txns.iter().enumerate() {
            if n != 2 {
                db.commit(*t).unwrap();
            }
        }
        db.check_ifa(N0).assert_ok();
    }
}

#[test]
fn multi_node_crash() {
    for p in ProtocolKind::ifa_protocols() {
        let mut db = mk(p);
        let t0 = db.begin(N0).unwrap();
        db.update(t0, 0, b"n0own").unwrap();
        let t1 = db.begin(N1).unwrap();
        db.update(t1, 1, b"n1own").unwrap();
        let t3 = db.begin(N3).unwrap();
        db.update(t3, 2, b"n3own").unwrap();
        let outcome = db.crash_and_recover(&[N0, N1]).unwrap();
        let mut aborted = outcome.aborted.clone();
        aborted.sort();
        assert_eq!(aborted, vec![t0, t1], "{p:?}");
        assert_eq!(&db.current_value(2).unwrap()[..5], b"n3own", "{p:?}");
        assert_eq!(&db.current_value(0).unwrap()[..5], &[0u8; 5][..], "{p:?}");
        db.check_ifa(N3).assert_ok();
        db.commit(t3).unwrap();
    }
}

#[test]
fn total_failure_recovers_committed_state() {
    for p in ProtocolKind::all() {
        let mut db = mk(p);
        let t = db.begin(N0).unwrap();
        db.update(t, 7, b"keep!").unwrap();
        db.commit(t).unwrap();
        let t2 = db.begin(N1).unwrap();
        db.update(t2, 8, b"lose!").unwrap();
        let all: Vec<NodeId> = (0..4).map(NodeId).collect();
        let outcome = db.crash_and_recover(&all).unwrap();
        assert_eq!(outcome.aborted, vec![t2], "{p:?}");
        assert_eq!(&db.current_value(7).unwrap()[..5], b"keep!", "{p:?}");
        assert_eq!(&db.current_value(8).unwrap()[..5], &[0u8; 5][..], "{p:?}");
    }
}

#[test]
fn checkpoint_bounds_recovery_and_preserves_state() {
    for p in ProtocolKind::ifa_protocols() {
        let mut db = mk(p);
        for i in 0..10u64 {
            let t = db.begin(N0).unwrap();
            db.update(t, i, format!("v{i}").as_bytes()).unwrap();
            db.commit(t).unwrap();
        }
        db.checkpoint(N0).unwrap();
        let t = db.begin(N1).unwrap();
        db.update(t, 3, b"newer").unwrap();
        db.commit(t).unwrap();
        let outcome = db.crash_and_recover(&[N0, N1]).unwrap();
        // Pre-checkpoint updates are all in the stable db: no redo needed
        // for them.
        assert!(
            outcome.redo_applied <= 2,
            "{p:?}: checkpoint should bound redo, got {}",
            outcome.redo_applied
        );
        assert_eq!(&db.current_value(3).unwrap()[..5], b"newer", "{p:?}");
        for i in [0u64, 1, 2, 4, 5, 9] {
            assert_eq!(&db.current_value(i).unwrap()[..2], format!("v{i}").as_bytes(), "{p:?}");
        }
        db.check_ifa(N2).assert_ok();
    }
}

#[test]
fn index_insert_survives_foreign_crash_and_crashed_insert_undone() {
    for p in ProtocolKind::ifa_protocols() {
        let mut db = mk(p);
        // Committed entry.
        let t = db.begin(N0).unwrap();
        db.insert(t, 100, *b"COMMITED").unwrap();
        db.commit(t).unwrap();
        // Active survivor insert + active doomed insert.
        let ts = db.begin(N1).unwrap();
        db.insert(ts, 200, *b"SURVIVOR").unwrap();
        let td = db.begin(N2).unwrap();
        db.insert(td, 300, *b"DOOMED!!").unwrap();
        let outcome = db.crash_and_recover(&[N2]).unwrap();
        assert_eq!(outcome.aborted, vec![td], "{p:?}");
        let live = db.index_scan(N0).unwrap();
        let keys: Vec<u64> = live.iter().map(|(k, _)| *k).collect();
        assert!(keys.contains(&100), "{p:?}: committed entry lost");
        assert!(keys.contains(&200), "{p:?}: survivor's active entry lost");
        assert!(!keys.contains(&300), "{p:?}: doomed entry not undone");
        db.check_ifa(N0).assert_ok();
        db.commit(ts).unwrap();
    }
}

#[test]
fn index_delete_unmarked_when_deleter_crashes() {
    for p in ProtocolKind::ifa_protocols() {
        let mut db = mk(p);
        let t = db.begin(N0).unwrap();
        db.insert(t, 55, [7u8; 8]).unwrap();
        db.commit(t).unwrap();
        let td = db.begin(N1).unwrap();
        db.delete(td, 55).unwrap();
        let outcome = db.crash_and_recover(&[N1]).unwrap();
        assert_eq!(outcome.aborted, vec![td], "{p:?}");
        let live = db.index_scan(N0).unwrap();
        assert!(live.iter().any(|(k, v)| *k == 55 && *v == [7u8; 8]), "{p:?}: delete not unmarked");
        db.check_ifa(N0).assert_ok();
    }
}

#[test]
fn index_committed_delete_stays_deleted_across_crash() {
    for p in ProtocolKind::ifa_protocols() {
        let mut db = mk(p);
        let t = db.begin(N0).unwrap();
        db.insert(t, 55, [7u8; 8]).unwrap();
        db.commit(t).unwrap();
        let td = db.begin(N1).unwrap();
        db.delete(td, 55).unwrap();
        db.commit(td).unwrap();
        db.crash_and_recover(&[N1]).unwrap();
        let live = db.index_scan(N0).unwrap();
        assert!(!live.iter().any(|(k, _)| *k == 55), "{p:?}: committed delete resurrected");
        db.check_ifa(N0).assert_ok();
    }
}

#[test]
fn survivor_lock_state_preserved_and_usable_after_crash() {
    for p in ProtocolKind::ifa_protocols() {
        let mut db = mk(p);
        let ts = db.begin(N1).unwrap();
        db.update(ts, 42, b"locky").unwrap();
        // A transaction on n2 touches the *lock table line* by locking a
        // colliding name... simplest: lock another record and crash n2.
        let td = db.begin(N2).unwrap();
        db.update(td, 43, b"dmmy!").unwrap();
        db.crash_and_recover(&[N2]).unwrap();
        db.check_ifa(N1).assert_ok();
        // ts still holds its lock: another txn must conflict.
        let t2 = db.begin(N3).unwrap();
        assert!(matches!(db.update(t2, 42, b"steal"), Err(DbError::WouldBlock { .. })), "{p:?}");
        db.abort(t2).unwrap();
        db.commit(ts).unwrap();
        // Now the lock is free.
        let t3 = db.begin(N3).unwrap();
        db.update(t3, 42, b"after").unwrap();
        db.commit(t3).unwrap();
    }
}

#[test]
fn sequential_crashes_with_reboot() {
    for p in ProtocolKind::ifa_protocols() {
        let mut db = mk(p);
        let t = db.begin(N0).unwrap();
        db.update(t, 1, b"first").unwrap();
        db.commit(t).unwrap();
        db.crash_and_recover(&[N0]).unwrap();
        db.check_ifa(N1).assert_ok();
        db.reboot(N0);
        // The rebooted node can run transactions again.
        let t2 = db.begin(N0).unwrap();
        db.update(t2, 2, b"again").unwrap();
        db.commit(t2).unwrap();
        // And crash again.
        db.crash_and_recover(&[N1]).unwrap();
        assert_eq!(&db.current_value(1).unwrap()[..5], b"first", "{p:?}");
        assert_eq!(&db.current_value(2).unwrap()[..5], b"again", "{p:?}");
        db.check_ifa(N0).assert_ok();
    }
}

#[test]
fn write_broadcast_crash_needs_no_redo_for_replicated_lines() {
    use smdb_sim::CoherenceKind;
    let cfg = DbConfig::small(4, ProtocolKind::VolatileSelectiveRedo)
        .with_coherence(CoherenceKind::WriteBroadcast);
    let mut db = SmDb::new(cfg);
    // Two nodes write records in the same line: under write-broadcast both
    // keep valid copies.
    let t0 = db.begin(N0).unwrap();
    db.update(t0, 0, b"alpha").unwrap();
    db.commit(t0).unwrap();
    let t1 = db.begin(N1).unwrap();
    db.update(t1, 1, b"betaa").unwrap();
    db.commit(t1).unwrap();
    let outcome = db.crash_and_recover(&[N1]).unwrap();
    // Nothing was lost (n0 still holds a valid updated copy): redo-free.
    assert_eq!(outcome.redo_applied, 0, "write-broadcast should need no redo");
    assert_eq!(&db.current_value(0).unwrap()[..5], b"alpha");
    assert_eq!(&db.current_value(1).unwrap()[..5], b"betaa");
    db.check_ifa(N0).assert_ok();
}

#[test]
fn redo_all_discards_more_than_selective() {
    // Same scenario under both volatile protocols: Redo All performs at
    // least as many redo operations.
    let mut counts = Vec::new();
    for p in [ProtocolKind::VolatileRedoAll, ProtocolKind::VolatileSelectiveRedo] {
        let mut db = mk(p);
        for i in 0..30u64 {
            let t = db.begin(NodeId((i % 3) as u16)).unwrap();
            db.update(t, i, format!("x{i}").as_bytes()).unwrap();
            db.commit(t).unwrap();
        }
        let outcome = db.crash_and_recover(&[N3]).unwrap();
        db.check_ifa(N0).assert_ok();
        counts.push((
            p,
            outcome.redo_applied + outcome.redo_skipped_stable,
            outcome.redo_skipped_cached,
        ));
    }
    let (_, redo_all_considered, _) = counts[0];
    let (_, _sel_considered, sel_skipped_cached) = counts[1];
    assert!(sel_skipped_cached > 0, "selective should skip cached lines");
    assert!(redo_all_considered > 0);
}

#[test]
fn stable_eager_forces_on_every_update() {
    let mut db = mk(ProtocolKind::StableEager);
    let t = db.begin(N0).unwrap();
    for i in 0..5u64 {
        db.update(t, i, b"x").unwrap();
    }
    assert!(db.stats().lbm_forces >= 5, "eager: one force per update");
    let mut vdb = mk(ProtocolKind::VolatileSelectiveRedo);
    let t = vdb.begin(N0).unwrap();
    for i in 0..5u64 {
        vdb.update(t, i, b"x").unwrap();
    }
    assert_eq!(vdb.stats().lbm_forces, 0, "volatile: no LBM forces");
}

#[test]
fn stable_triggered_forces_only_on_sharing() {
    let mut db = mk(ProtocolKind::StableTriggered);
    let t = db.begin(N0).unwrap();
    // Updates with no inter-node sharing: no LBM forces.
    for i in 0..5u64 {
        db.update(t, 30 + i, b"x").unwrap();
    }
    assert_eq!(db.stats().lbm_forces, 0, "no sharing → no triggered forces");
    db.commit(t).unwrap();
    // Now a remote node touches the just-updated line: if the update were
    // still active the trigger would fire. Uncommitted case:
    let t1 = db.begin(N0).unwrap();
    db.update(t1, 0, b"hot").unwrap();
    let forces_before = db.stats().lbm_forces;
    let t2 = db.begin(N1).unwrap();
    let _ = db.read(t2, 1); // same line (slots 0..2 co-located)
    assert!(db.stats().lbm_forces > forces_before, "remote touch of active line must force");
}

#[test]
fn undo_tags_only_under_selective_volatile() {
    for p in ProtocolKind::all() {
        let mut db = mk(p);
        let t = db.begin(N0).unwrap();
        db.update(t, 0, b"x").unwrap();
        let tagged = db.current_tag(0).unwrap() == 0;
        assert_eq!(tagged, p.uses_undo_tags(), "{p:?}");
        db.commit(t).unwrap();
        assert_eq!(db.current_tag(0).unwrap(), u16::MAX, "{p:?}: tag cleared at commit");
    }
}
