//! Cross-product coverage: every protocol × both coherence modes × a
//! battery of crash patterns, over one fixed multi-feature workload
//! (records + index + conflicts + steal + checkpoint).

use smdb_core::{DbConfig, DbError, ProtocolKind, SmDb};
use smdb_sim::{CoherenceKind, NodeId};

fn workload(db: &mut SmDb) {
    // Committed record work from all nodes, with overlap in the shared
    // low slots.
    for i in 0..24u64 {
        let node = NodeId((i % 4) as u16);
        let t = db.begin(node).unwrap();
        match db.update(t, i % 10, &i.to_le_bytes()) {
            Ok(()) => {
                db.update(t, 100 + i, &i.to_le_bytes()).unwrap();
                db.insert(t, 1000 + i, i.to_le_bytes()).unwrap();
                db.commit(t).unwrap();
            }
            Err(DbError::WouldBlock { .. }) => db.abort(t).unwrap(),
            Err(e) => panic!("{e}"),
        }
    }
    // A steal.
    let page = db.record_layout().rec_of_global(100).page;
    db.flush_page(NodeId(0), page).unwrap();
    // A checkpoint halfway.
    db.checkpoint(NodeId(1)).unwrap();
    // More work after the checkpoint.
    for i in 24..36u64 {
        let node = NodeId((i % 4) as u16);
        let t = db.begin(node).unwrap();
        match db.update(t, 100 + i, &i.to_le_bytes()) {
            Ok(()) => db.commit(t).unwrap(),
            Err(DbError::WouldBlock { .. }) => db.abort(t).unwrap(),
            Err(e) => panic!("{e}"),
        }
    }
    // In-flight work on every node (one will die with the crash).
    for n in 0..4u16 {
        let t = db.begin(NodeId(n)).unwrap();
        let _ = db.update(t, 200 + n as u64, b"inflight");
        let _ = db.delete(t, 1000 + n as u64);
    }
}

fn grid_case(protocol: ProtocolKind, coherence: CoherenceKind, crashes: &[Vec<NodeId>]) {
    let cfg = DbConfig::small(4, protocol).with_coherence(coherence);
    let mut db = SmDb::new(cfg);
    workload(&mut db);
    for crash in crashes {
        db.crash_and_recover(crash).unwrap();
        let survivor = db.machine().surviving_nodes()[0];
        let r = db.check_ifa(survivor);
        assert!(r.ok(), "{protocol:?}/{coherence:?} after crash {crash:?}: {:?}", r.violations);
    }
}

#[test]
fn full_grid_single_crash() {
    for protocol in ProtocolKind::all() {
        for coherence in [CoherenceKind::WriteInvalidate, CoherenceKind::WriteBroadcast] {
            grid_case(protocol, coherence, &[vec![NodeId(2)]]);
        }
    }
}

#[test]
fn full_grid_double_crash() {
    for protocol in ProtocolKind::all() {
        for coherence in [CoherenceKind::WriteInvalidate, CoherenceKind::WriteBroadcast] {
            grid_case(protocol, coherence, &[vec![NodeId(0), NodeId(3)]]);
        }
    }
}

#[test]
fn full_grid_sequential_crashes() {
    for protocol in ProtocolKind::ifa_protocols() {
        for coherence in [CoherenceKind::WriteInvalidate, CoherenceKind::WriteBroadcast] {
            grid_case(protocol, coherence, &[vec![NodeId(1)], vec![NodeId(2)]]);
        }
    }
}
