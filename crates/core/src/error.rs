//! Engine errors.

use smdb_btree::BtreeError;
use smdb_fault::FaultCrash;
use smdb_lock::LockError;
use smdb_sim::{MemError, TxnId};
use smdb_storage::PageId;
use std::fmt;

/// Errors surfaced by the [`crate::SmDb`] engine.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DbError {
    /// Underlying simulated-memory error.
    Mem(MemError),
    /// Lock-manager error.
    Lock(LockError),
    /// B-tree error.
    Btree(BtreeError),
    /// The lock request conflicts; under the engine's no-wait policy the
    /// caller should abort and retry the transaction. (The lock manager
    /// has queued the request and logged it; [`crate::SmDb::abort`]
    /// removes it.)
    WouldBlock {
        /// The blocked transaction.
        txn: TxnId,
        /// The contested lock name.
        lock: u64,
    },
    /// Operation on a transaction that is not active.
    TxnNotActive {
        /// The transaction.
        txn: TxnId,
    },
    /// Record slot outside the configured heap.
    NoSuchRecord {
        /// Global slot index requested.
        slot: u64,
    },
    /// Operation issued for a node that has crashed and not been rebooted.
    NodeDown {
        /// The node.
        node: smdb_sim::NodeId,
    },
    /// The engine was built without an index.
    NoIndex,
    /// An armed fault-injection point fired: the acting node must be
    /// treated as crashed at this instant. The crash driver catches this
    /// variant, calls [`crate::SmDb::crash`] on the victim, and then
    /// [`crate::SmDb::recover`]. Flattened out of every lower layer so one
    /// match arm suffices regardless of where the point fired.
    FaultCrash(FaultCrash),
    /// A page recovery relies on is missing from the stable database —
    /// the durable state itself is inconsistent. Previously a panic on the
    /// restart path.
    StablePageMissing {
        /// The missing page.
        page: PageId,
    },
    /// An internal invariant did not hold on a reachable engine path.
    /// Typed replacement for the `expect`/`unwrap` calls that used to sit
    /// on the forward and recovery paths: the shared structures they read
    /// (txn table, index handle) live in simulated shared memory that
    /// crashes mutate concurrently, so "checked three lines up" is not a
    /// proof — and a violation should surface as an error the caller can
    /// report, not take the whole process down mid-recovery.
    Invariant {
        /// The invariant that was violated.
        what: &'static str,
    },
}

/// `Option` → `Result` sugar for engine invariants:
/// `req(self.tree.as_mut(), "index op implies an index")?`.
pub(crate) fn req<T>(opt: Option<T>, what: &'static str) -> Result<T, DbError> {
    opt.ok_or(DbError::Invariant { what })
}

impl DbError {
    /// The injected crash, if this error is one (crash drivers match on
    /// this to distinguish "victim died as scheduled" from a real error).
    pub fn fault_crash(&self) -> Option<&FaultCrash> {
        match self {
            DbError::FaultCrash(c) => Some(c),
            _ => None,
        }
    }
}

impl From<FaultCrash> for DbError {
    fn from(c: FaultCrash) -> Self {
        DbError::FaultCrash(c)
    }
}

impl From<MemError> for DbError {
    fn from(e: MemError) -> Self {
        match e {
            MemError::FaultCrash(c) => DbError::FaultCrash(c),
            other => DbError::Mem(other),
        }
    }
}

impl From<LockError> for DbError {
    fn from(e: LockError) -> Self {
        match e {
            LockError::Mem(m) => DbError::from(m),
            other => DbError::Lock(other),
        }
    }
}

impl From<BtreeError> for DbError {
    fn from(e: BtreeError) -> Self {
        match e {
            BtreeError::Mem(m) => DbError::from(m),
            other => DbError::Btree(other),
        }
    }
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Mem(e) => write!(f, "memory: {e}"),
            DbError::Lock(e) => write!(f, "lock: {e}"),
            DbError::Btree(e) => write!(f, "btree: {e}"),
            DbError::WouldBlock { txn, lock } => {
                write!(f, "{txn} would block on lock {lock} (no-wait policy)")
            }
            DbError::TxnNotActive { txn } => write!(f, "{txn} is not active"),
            DbError::NoSuchRecord { slot } => write!(f, "no record slot {slot}"),
            DbError::NodeDown { node } => write!(f, "{node} is down"),
            DbError::NoIndex => write!(f, "engine configured without an index"),
            DbError::FaultCrash(c) => write!(f, "injected crash point fired: {c}"),
            DbError::StablePageMissing { page } => {
                write!(f, "stable database page {page} missing during recovery")
            }
            DbError::Invariant { what } => {
                write!(f, "internal invariant violated: {what}")
            }
        }
    }
}

impl std::error::Error for DbError {}

#[cfg(test)]
mod tests {
    use super::*;
    use smdb_sim::{LineId, NodeId};

    #[test]
    fn conversions_flatten_mem_errors() {
        let m = MemError::LineLost { line: LineId(4) };
        assert_eq!(DbError::from(LockError::Mem(m.clone())), DbError::Mem(m.clone()));
        assert_eq!(DbError::from(BtreeError::Mem(m.clone())), DbError::Mem(m));
    }

    #[test]
    fn fault_crash_flattens_from_every_layer() {
        let c = FaultCrash { site: "sim.migrate", hit: 3, node: 1 };
        assert_eq!(DbError::from(MemError::FaultCrash(c)), DbError::FaultCrash(c));
        assert_eq!(DbError::from(LockError::Mem(MemError::FaultCrash(c))), DbError::FaultCrash(c));
        assert_eq!(DbError::from(BtreeError::Mem(MemError::FaultCrash(c))), DbError::FaultCrash(c));
        assert_eq!(DbError::FaultCrash(c).fault_crash(), Some(&c));
        assert_eq!(DbError::NoIndex.fault_crash(), None);
    }

    #[test]
    fn display_mentions_txn() {
        let t = TxnId::new(NodeId(1), 2);
        let e = DbError::WouldBlock { txn: t, lock: 9 };
        assert!(e.to_string().contains("t1.2"));
    }
}
