//! The shared-memory database engine: normal (failure-free) operation.
//!
//! The update protocol follows §6 of the paper: after the record lock is
//! obtained, line locks are acquired on (a) the cache line containing the
//! Page-LSN of the page (by convention its first line) and (b) the cache
//! line containing the record; the record and Page-LSN are updated; the
//! log record is written; the line locks are released. Holding the line
//! locks across the update and the log write simultaneously enforces
//! **Volatile LBM** (the line cannot migrate before the log record exists)
//! and the **ordered update logging** rule (log order matches update
//! order).

use crate::config::{DbConfig, ProtocolKind};
use crate::error::{req, DbError};
use crate::oracle::ShadowDb;
use crate::record::{RecordLayout, NULL_TAG, TAG_SIZE};
use crate::restart::InstantRedoState;
use crate::stats::EngineStats;
use crate::txn::{TxnOp, TxnState, TxnStatus};
use bytes::Bytes;
use smdb_btree::{
    BTree, LineSpan, TreeCtx, APPEND_BYTES_COUNTER, COALESCED_FORCES_COUNTER,
    FORCE_RECORDS_HISTOGRAM, PHYSICAL_FORCES_COUNTER, VAL_SIZE,
};
use smdb_fault::{FaultInjector, Scheduler};
use smdb_lock::{LockManager, LockMode, LockOutcome, LockTable, ViolationTable};
use smdb_obs::{names, Event as ObsEvent, ForceReason, Obs, Stage};
use smdb_sim::{LineId, Machine, NodeId, SimConfig, TxnId};
use smdb_storage::{PageGeometry, PageId, StableDb};
use smdb_wal::{
    CheckpointMeta, CheckpointStore, CommitDep, LbmMode, LogPayload, LogSet, Lsn, PageLsnTable,
    RecId,
};
use std::collections::{BTreeMap, BTreeSet};

/// Slack between the page-backed line address range and the lock table.
const LOCK_TABLE_GAP: u64 = 4096;

/// Histogram of simulated cycles per completed record update.
pub const UPDATE_CYCLES_HISTOGRAM: &str = names::ENGINE_UPDATE_CYCLES;

/// Fault-injection site visited on the commit path: once before the commit
/// record is appended (a crash here dooms the transaction) and once after
/// the commit force succeeds but before post-commit processing (a crash
/// here must preserve the transaction — its commit record is durable).
pub const FAULT_COMMIT: &str = "core.commit";

/// Fault-injection site on the pipelined commit path with early lock
/// release: visited *after* the commit record is appended and the write
/// locks are released (violation edges recorded) but *before* any covering
/// force. A crash here loses the commit record, dooms the transaction, and
/// must cascade-abort every dependent that touched the violated names.
pub const FAULT_COMMIT_DEP: &str = "core.commit.dep";

/// One commit-LSN dependency a transaction inherited by acquiring a lock
/// name that a not-yet-durable committer released early.
#[derive(Clone, Copy, Debug)]
pub(crate) struct InheritedDep {
    /// The early-releasing predecessor.
    pub releaser: TxnId,
    /// LSN of the predecessor's commit record on its home log.
    pub commit_lsn: Lsn,
    /// The violated lock name the dependency was inherited through.
    pub name: u64,
}

/// A pipelined commit awaiting acknowledgement: its record is appended
/// (and under early lock release its locks are gone) but the
/// acknowledgement is deferred until a physical force covers `lsn` *and*
/// every dependency predecessor has itself been acknowledged.
#[derive(Clone, Debug)]
pub(crate) struct PendingCommit {
    pub txn: TxnId,
    pub node: NodeId,
    /// LSN of the commit record on the home log.
    pub lsn: Lsn,
    /// Dependencies recorded inside the commit record.
    pub deps: Vec<CommitDep>,
    /// Home-node clock when the append completed (force-wait attribution).
    pub appended_at: u64,
}

/// The shared-memory multi-node database engine.
///
/// See the crate-level docs for an overview and a usage example.
pub struct SmDb {
    pub(crate) cfg: DbConfig,
    pub(crate) m: Machine,
    pub(crate) sdb: StableDb,
    pub(crate) logs: LogSet,
    pub(crate) plt: PageLsnTable,
    pub(crate) ckpt: CheckpointStore,
    pub(crate) locks: LockManager,
    pub(crate) tree: Option<BTree>,
    pub(crate) txns: BTreeMap<TxnId, TxnState>,
    pub(crate) seqs: Vec<u64>,
    pub(crate) layout: RecordLayout,
    pub(crate) heap_pages: u32,
    pub(crate) gsn: u64,
    pub(crate) stats: EngineStats,
    pub(crate) shadow: ShadowDb,
    /// Lock names on which each transaction has a queued (waiting)
    /// request, so aborts can withdraw them (no-wait policy).
    pub(crate) pending_waits: BTreeMap<TxnId, Vec<u64>>,
    /// Fault-injection handle shared with the machine, log set, and stable
    /// database (disabled by default: one relaxed load per crash point).
    pub(crate) fault: FaultInjector,
    /// Schedule handle: ordering decisions the engine exposes to the
    /// deterministic fuzzer (disabled by default: every choice is 0, the
    /// historical order, at the cost of one relaxed load per decision).
    pub(crate) sched: Scheduler,
    /// Nodes crashed via [`SmDb::crash`] whose recovery has not completed.
    pub(crate) pending_recovery: BTreeSet<NodeId>,
    /// Cache lines destroyed by crashes since the last completed recovery.
    pub(crate) pending_lost_lines: u64,
    /// A crash took every node down; recovery must run the full restart
    /// even if a survivor has since been rebooted by an interrupted
    /// recovery attempt.
    pub(crate) pending_total_failure: bool,
    /// Heap lines reinstalled from (possibly stale) stable images by a
    /// recovery attempt that did not complete. A re-entered restart must
    /// not mistake them for coherent surviving copies: they are excluded
    /// from the Selective-Redo cached probe and carried into the
    /// reinstalled set of the next attempt. Cleared on completed recovery.
    pub(crate) stale_heap_lines: BTreeSet<LineId>,
    /// Index pages reinstalled/reloaded from stable images by an
    /// incomplete recovery attempt (same hazard as `stale_heap_lines`:
    /// their entries are stale until index redo completes).
    pub(crate) stale_tree_pages: BTreeSet<PageId>,
    /// Pipelined commits awaiting acknowledgement, in append order.
    pub(crate) pending_commits: Vec<PendingCommit>,
    /// Lock names released early by not-yet-acknowledged committers
    /// (controlled lock violation bookkeeping).
    pub(crate) violations: ViolationTable,
    /// Commit-LSN dependencies each transaction inherited by touching a
    /// violated name. Kept until the transaction is acknowledged or
    /// aborted — recovery's cascade analysis reads the violated names.
    pub(crate) inherited_deps: BTreeMap<TxnId, Vec<InheritedDep>>,
    /// Deferred heap redo of an instant restart (the plan remainder after
    /// the early open), drained on demand and in the background.
    pub(crate) instant: InstantRedoState,
    /// Epoch-parallel lane marker (see [`crate::mt`]). `Some` makes this
    /// engine an execution lane: the set holds every `(txn, lock name)`
    /// pair the deterministic epoch scheduler granted *serially* on the
    /// parent manager before the lane ran, so [`SmDb::lock_from`] treats
    /// membership as a grant without touching the (parent-owned) lock
    /// table, and treats a miss as a footprint violation to escalate.
    pub(crate) mt_granted: Option<BTreeSet<(TxnId, u64)>>,
}

/// Construct a [`TreeCtx`] over the engine's split-borrowed fields.
macro_rules! engine_ctx {
    ($self:expr) => {
        TreeCtx::new(
            &mut $self.m,
            &mut $self.sdb,
            &mut $self.logs,
            &mut $self.plt,
            $self.cfg.protocol.lbm_mode(),
            &mut $self.gsn,
        )
        .with_coalescing($self.cfg.coalesce_forces)
    };
}
pub(crate) use engine_ctx;

impl SmDb {
    /// Build and initialise an engine from a configuration: formats the
    /// stable database, creates the shared-memory lock table, and (if
    /// configured) the B+-tree index.
    pub fn new(cfg: DbConfig) -> Self {
        let geometry = PageGeometry::new(cfg.line_size, cfg.lines_per_page);
        let layout = RecordLayout::new(geometry, cfg.rec_data_size);
        let heap_pages = layout.pages_for(cfg.records);
        let total_pages = heap_pages + if cfg.with_index { cfg.index_pages } else { 0 };
        let sim_cfg = SimConfig {
            nodes: cfg.nodes,
            line_size: cfg.line_size,
            coherence: cfg.coherence,
            cost: cfg.cost.clone(),
            stall_on_lost: cfg.stall_on_lost,
            shards: cfg.sim_shards,
            stripe_lines: cfg.lines_per_page as u64,
        };
        let mut m = Machine::new(sim_cfg);
        let mut sdb = StableDb::new(geometry);
        sdb.format(total_pages);
        // Pre-set every record's undo tag to null in the stable images (a
        // zero tag would read as "tagged by node 0").
        for p in 0..heap_pages {
            for slot in 0..layout.records_per_page() as u16 {
                let off = layout.page_offset(slot);
                sdb.patch(PageId(p), off, &NULL_TAG.to_le_bytes());
            }
        }
        let mut logs = LogSet::new(cfg.nodes);
        logs.set_coalescing(cfg.coalesce_forces);
        let mut plt = PageLsnTable::new();
        let lock_base = total_pages as u64 * cfg.lines_per_page as u64 + LOCK_TABLE_GAP;
        let table =
            LockTable::create(&mut m, NodeId(0), lock_base, cfg.lock_buckets, cfg.lcb_geometry)
                .expect("lock table creation on a fresh machine cannot fail");
        let locks = LockManager::new(table);
        let mut gsn = 0u64;
        let tree = if cfg.with_index {
            let mut ctx = TreeCtx::new(
                &mut m,
                &mut sdb,
                &mut logs,
                &mut plt,
                cfg.protocol.lbm_mode(),
                &mut gsn,
            );
            Some(
                BTree::create(&mut ctx, NodeId(0), heap_pages, cfg.index_pages)
                    .expect("index creation on a fresh machine cannot fail"),
            )
        } else {
            None
        };
        let seqs = vec![0u64; cfg.nodes as usize];
        let ckpt = CheckpointStore::new(cfg.nodes);
        SmDb {
            cfg,
            m,
            sdb,
            logs,
            plt,
            ckpt,
            locks,
            tree,
            txns: BTreeMap::new(),
            seqs,
            layout,
            heap_pages,
            gsn,
            stats: EngineStats::default(),
            shadow: ShadowDb::new(),
            pending_waits: BTreeMap::new(),
            fault: FaultInjector::new(),
            sched: Scheduler::new(),
            pending_recovery: BTreeSet::new(),
            pending_lost_lines: 0,
            pending_total_failure: false,
            stale_heap_lines: BTreeSet::new(),
            stale_tree_pages: BTreeSet::new(),
            pending_commits: Vec::new(),
            violations: ViolationTable::new(),
            inherited_deps: BTreeMap::new(),
            instant: InstantRedoState::default(),
            mt_granted: None,
        }
    }

    /// Wire one fault injector through every layer: coherence traffic
    /// (`sim.migrate`/`sim.invalidate`), log forces (`wal.force.record`),
    /// stable-page flushes (`storage.flush.line`), the commit path
    /// (`core.commit`), and the restart phases (`recovery.phase`). All
    /// layers share the handle, so a single plan sequences crash points
    /// across them.
    pub fn set_fault_injector(&mut self, fault: FaultInjector) {
        self.m.set_fault_injector(fault.clone());
        self.logs.set_fault_injector(fault.clone());
        self.sdb.set_fault_injector(fault.clone());
        self.fault = fault;
    }

    /// A clone of the engine's fault-injection handle.
    pub fn fault_handle(&self) -> FaultInjector {
        self.fault.clone()
    }

    /// Wire a schedule handle into the engine's ordering decisions: the
    /// per-node force order of a pipeline drain (`core.drain.force`), which
    /// ready pending commit is acknowledged next (`core.ack.pick`), and
    /// which survivor hosts recovery (`core.recovery.host`). With the
    /// handle disabled (the default) every choice is 0 — exactly the
    /// engine's historical order — so production paths are unperturbed.
    pub fn set_scheduler(&mut self, sched: Scheduler) {
        self.sched = sched;
    }

    /// A clone of the engine's schedule handle.
    pub fn sched_handle(&self) -> Scheduler {
        self.sched.clone()
    }

    // ------------------------------------------------------------------
    // Accessors
    // ------------------------------------------------------------------

    /// The engine configuration.
    pub fn config(&self) -> &DbConfig {
        &self.cfg
    }

    /// The recovery protocol in force.
    pub fn protocol(&self) -> ProtocolKind {
        self.cfg.protocol
    }

    /// The simulated machine (read-only).
    pub fn machine(&self) -> &Machine {
        &self.m
    }

    /// Mutable machine access for trace control (enable/drain the
    /// coherence event trace). Not for issuing memory operations — the
    /// engine owns the access protocols.
    pub fn machine_mut_for_trace(&mut self) -> &mut Machine {
        &mut self.m
    }

    /// Engine counters. The `structural_early_commits` field is derived
    /// on the fly from the tree and lock-manager counters.
    pub fn stats(&self) -> EngineStats {
        let mut s = self.stats.clone();
        let t = self.tree_stats();
        s.structural_early_commits = t.splits + t.root_grows + self.locks.stats().overflow_allocs;
        s
    }

    /// Lock-manager counters.
    pub fn lock_stats(&self) -> &smdb_lock::LockStats {
        self.locks.stats()
    }

    /// B-tree counters (zeroed struct if no index).
    pub fn tree_stats(&self) -> smdb_btree::BtreeStats {
        self.tree.as_ref().map(|t| t.stats().clone()).unwrap_or_default()
    }

    /// The per-node logs (read-only).
    pub fn logs(&self) -> &LogSet {
        &self.logs
    }

    /// The sharp-checkpoint store (last installed checkpoint + count).
    pub fn checkpoint_store(&self) -> &CheckpointStore {
        &self.ckpt
    }

    /// Record layout.
    pub fn record_layout(&self) -> &RecordLayout {
        &self.layout
    }

    /// Number of heap record slots configured.
    pub fn record_count(&self) -> u32 {
        self.cfg.records
    }

    /// Number of heap pages.
    pub fn heap_pages(&self) -> u32 {
        self.heap_pages
    }

    /// Total simulated log forces so far (all causes).
    pub fn total_log_forces(&self) -> u64 {
        self.logs.total_forces()
    }

    /// The observability handle (cross-layer event bus + metrics
    /// registry), shared with the underlying machine: coherence, lock,
    /// WAL, buffer, and recovery events all land on one sequence-numbered
    /// timeline. Clone semantics — the returned handle observes the same
    /// state as the engine's own.
    pub fn observability(&self) -> Obs {
        self.m.obs_handle()
    }

    /// Convenience: switch on the event bus (ring of `bus_capacity`
    /// records; 0 means the default) and the metrics registry together.
    pub fn enable_observability(&self, bus_capacity: usize) {
        self.m.obs().enable(bus_capacity);
    }

    /// Records on `node`'s log not yet durable (counted *before* a force
    /// moves the stable pointer).
    fn unforced_records(&self, node: NodeId) -> u64 {
        let log = self.logs.log(node);
        log.last_lsn().0.saturating_sub(log.stable_lsn().0)
    }

    /// Observability hook for a physical log force on `node` that made
    /// `records` records durable.
    fn note_wal_force(&self, node: NodeId, records: u64, reason: ForceReason) {
        let obs = self.m.obs();
        obs.metrics.observe(FORCE_RECORDS_HISTOGRAM, records);
        obs.metrics.inc(PHYSICAL_FORCES_COUNTER);
        obs.bus.emit(self.m.now(node), || ObsEvent::WalForce { node: node.0, records, reason });
    }

    /// Deferred-force line handling (engine-side twin of
    /// `TreeCtx::after_update`'s shared-line rule, used by
    /// `StableTriggered` and coalesced `StableEager`): a write to a
    /// *shared* line (write-broadcast) has already published the
    /// uncommitted bytes, so the log is forced now; exclusively-held
    /// lines are marked active and defer to the coherence trigger.
    /// Returns the simulated cycles spent on the force (0 if none fired),
    /// so the caller can attribute them to the force-wait span stage.
    fn lbm_mark_or_force(&mut self, node: NodeId, touched: &[LineSpan]) -> Result<u64, DbError> {
        let obs_on = self.m.obs().is_enabled();
        let mut forced = false;
        let mut force_cycles = 0u64;
        for l in touched.iter().flat_map(LineSpan::iter) {
            if self.m.holder_count(l) > 1 {
                let pending = if obs_on { self.unforced_records(node) } else { 0 };
                if !forced && self.logs.force_all_checked(node)? {
                    let cost = self.m.config().cost.log_force;
                    self.m.advance(node, cost);
                    self.stats.lbm_forces += 1;
                    force_cycles += cost;
                    if obs_on {
                        self.note_wal_force(node, pending, ForceReason::Lbm);
                    }
                }
                forced = true;
            } else {
                self.m.set_active(l, node);
            }
        }
        Ok(force_cycles)
    }

    /// Machine-wide simulated makespan, cycles.
    pub fn max_clock(&self) -> u64 {
        self.m.max_clock()
    }

    /// Synchronise every live node's clock to the makespan (a barrier).
    /// Benchmarks call this before injecting a crash so the availability
    /// window (crash → first post-recovery commit) is measured from a
    /// common time origin rather than being offset by whatever clock skew
    /// the pre-crash workload left behind.
    pub fn sync_clocks(&mut self) {
        self.m.sync_clocks();
    }

    /// The built-in shadow model (for the IFA oracle).
    pub fn shadow(&self) -> &ShadowDb {
        &self.shadow
    }

    /// Transactions table (read-only view).
    pub fn txn(&self, txn: TxnId) -> Option<&TxnState> {
        self.txns.get(&txn)
    }

    /// Active transaction count (the timeline's in-flight gauge).
    fn in_flight(&self) -> u64 {
        self.txns.values().filter(|t| t.is_active()).count() as u64
    }

    /// Currently active transactions, optionally filtered by node.
    pub fn active_txns(&self, node: Option<NodeId>) -> Vec<TxnId> {
        self.txns
            .values()
            .filter(|t| t.is_active() && node.map(|n| t.id.node() == n).unwrap_or(true))
            .map(|t| t.id)
            .collect()
    }

    pub(crate) fn lock_name_for_rec(slot: u64) -> u64 {
        smdb_lock::names::name_for_rec(slot)
    }

    pub(crate) fn lock_name_for_key(key: u64) -> u64 {
        smdb_lock::names::name_for_key(key)
    }

    /// Whether a line address belongs to the record heap.
    pub(crate) fn is_heap_line(&self, line: LineId) -> bool {
        line.0 < self.heap_pages as u64 * self.cfg.lines_per_page as u64
    }

    fn check_active(&self, txn: TxnId) -> Result<(), DbError> {
        match self.txns.get(&txn) {
            // A pipelined commit in flight (`committing`) accepts no
            // further operations: its commit record is already appended.
            Some(t) if t.is_active() && !t.committing => Ok(()),
            _ => Err(DbError::TxnNotActive { txn }),
        }
    }

    fn check_slot(&self, slot: u64) -> Result<RecId, DbError> {
        if slot >= self.cfg.records as u64 {
            return Err(DbError::NoSuchRecord { slot });
        }
        Ok(self.layout.rec_of_global(slot))
    }

    /// Acquire a record/key lock for `txn` under the no-wait policy,
    /// acting on the home node.
    fn lock(&mut self, txn: TxnId, name: u64, mode: LockMode) -> Result<(), DbError> {
        self.lock_from(txn, name, mode, txn.node())
    }

    /// Acquire a record/key lock with the lock-table work on `acting`.
    fn lock_from(
        &mut self,
        txn: TxnId,
        name: u64,
        mode: LockMode,
        acting: NodeId,
    ) -> Result<(), DbError> {
        // Execution lane (epoch-parallel): every lock this lane's
        // transactions may touch was granted serially by the scheduler on
        // the parent manager before the lane ran, in its strongest needed
        // mode. Membership is the grant; the LCB lines stay parent-owned
        // and are never touched from a lane. A miss means the admitted
        // footprint was wrong — surface it as a conflict so the lane
        // aborts the transaction and the scheduler retries it serially.
        if let Some(granted) = &self.mt_granted {
            if granted.contains(&(txn, name)) {
                return Ok(());
            }
            self.stats.would_blocks += 1;
            return Err(DbError::WouldBlock { txn, lock: name });
        }
        let spans_on = self.m.obs().spans.is_enabled();
        let t0 = if spans_on { self.m.now(acting) } else { 0 };
        let outcome = if self.cfg.lock_poll {
            self.locks.poll_from(&mut self.m, &mut self.logs, txn, name, mode, acting)
        } else {
            self.locks.acquire_from(&mut self.m, &mut self.logs, txn, name, mode, acting)
        };
        if spans_on {
            let waited = self.m.now(acting).saturating_sub(t0);
            self.m.obs().spans.add(txn.0, Stage::LockWait, waited);
        }
        match outcome? {
            LockOutcome::Granted => {
                // Controlled lock violation: acquiring a name a
                // not-yet-durable committer released early inherits a
                // commit-LSN dependency on each such releaser.
                if self.cfg.early_lock_release {
                    let edges = self.violations.deps_for(name, txn);
                    if !edges.is_empty() {
                        let obs = self.m.obs();
                        if obs.metrics.is_enabled() {
                            obs.metrics.add(names::TXN_COMMIT_DEPS, edges.len() as u64);
                        }
                        self.stats.commit_deps += edges.len() as u64;
                        self.inherited_deps.entry(txn).or_default().extend(edges.into_iter().map(
                            |e| InheritedDep {
                                releaser: e.releaser,
                                commit_lsn: e.commit_lsn,
                                name,
                            },
                        ));
                    }
                }
                self.redo_on_lock(txn, name, acting)?;
                Ok(())
            }
            LockOutcome::AlreadyHeld => {
                self.redo_on_lock(txn, name, acting)?;
                Ok(())
            }
            LockOutcome::Waiting => {
                self.stats.would_blocks += 1;
                // A polled conflict parked nothing in the LCB, so there is
                // no queued request to remember (or cancel on abort).
                if !self.cfg.lock_poll {
                    self.pending_waits.entry(txn).or_default().push(name);
                }
                Err(DbError::WouldBlock { txn, lock: name })
            }
        }
    }

    /// Instant restart: a granted record lock must not let its holder
    /// bypass the record's pending redo — the line may still carry the
    /// stale pre-crash image. Apply the line's deferred entries inline,
    /// charging the cycles to the accessor's force-wait stage (the
    /// transaction is waiting on recovery work, not executing).
    fn redo_on_lock(&mut self, txn: TxnId, name: u64, acting: NodeId) -> Result<(), DbError> {
        if !self.instant_active() {
            return Ok(());
        }
        let Some(slot) = smdb_lock::names::rec_slot_of_name(name) else {
            return Ok(()); // key locks guard the (fully recovered) index
        };
        if slot >= self.cfg.records as u64 {
            return Ok(());
        }
        let line = self.rec_line(self.layout.rec_of_global(slot));
        let spans_on = self.m.obs().spans.is_enabled();
        let t0 = if spans_on { self.m.now(acting) } else { 0 };
        self.ensure_line_recovered(acting, line)?;
        if spans_on {
            let cycles = self.m.now(acting).saturating_sub(t0);
            if cycles > 0 {
                self.m.obs().spans.add(txn.0, Stage::ForceWait, cycles);
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Transaction API
    // ------------------------------------------------------------------

    /// Begin a transaction on `node`.
    pub fn begin(&mut self, node: NodeId) -> Result<TxnId, DbError> {
        if self.m.is_crashed(node) {
            return Err(DbError::NodeDown { node });
        }
        self.seqs[node.0 as usize] += 1;
        let txn = TxnId::new(node, self.seqs[node.0 as usize]);
        self.logs.append(node, LogPayload::Begin { txn });
        self.txns.insert(txn, TxnState::new(txn));
        self.stats.begins += 1;
        let obs = self.m.obs();
        if obs.spans.is_enabled() {
            obs.spans.begin(txn.0, node.0, self.m.now(node));
        }
        if obs.timeline.is_enabled() {
            obs.timeline.on_begin(self.m.max_clock(), self.in_flight());
        }
        Ok(txn)
    }

    /// Enlist another node in a (now parallel) transaction — §9. Its
    /// subsequent operations may execute on any participant via
    /// [`SmDb::read_on`]/[`SmDb::update_on`]; if *any* participant
    /// crashes, recovery aborts the whole transaction.
    pub fn attach(&mut self, txn: TxnId, node: NodeId) -> Result<(), DbError> {
        self.check_active(txn)?;
        if self.m.is_crashed(node) {
            return Err(DbError::NodeDown { node });
        }
        req(self.txns.get_mut(&txn), "txn checked active")?.participants.insert(node);
        Ok(())
    }

    /// Read record `slot` under a shared lock. Returns the payload bytes.
    pub fn read(&mut self, txn: TxnId, slot: u64) -> Result<Vec<u8>, DbError> {
        self.read_on(txn, txn.node(), slot)
    }

    /// [`SmDb::read`] executed on a participant node of a parallel
    /// transaction.
    pub fn read_on(&mut self, txn: TxnId, node: NodeId, slot: u64) -> Result<Vec<u8>, DbError> {
        self.check_active(txn)?;
        self.check_participant(txn, node)?;
        let rec = self.check_slot(slot)?;
        self.lock_from(txn, Self::lock_name_for_rec(slot), LockMode::Shared, node)?;
        let spans_on = self.m.obs().spans.is_enabled();
        let t0 = if spans_on { self.m.now(node) } else { 0 };
        let off = self.layout.payload_offset(rec.slot);
        let mut buf = vec![0u8; self.layout.data_size];
        let mut ctx = engine_ctx!(self);
        ctx.read(node, rec.page, off, &mut buf)?;
        self.stats.lbm_forces += ctx.trigger_forces;
        self.stats.lbm_force_requests += ctx.force_requests;
        self.stats.reads += 1;
        if spans_on {
            let cycles = self.m.now(node).saturating_sub(t0);
            self.m.obs().spans.add(txn.0, Stage::Execute, cycles);
        }
        Ok(buf)
    }

    fn check_participant(&self, txn: TxnId, node: NodeId) -> Result<(), DbError> {
        if self.m.is_crashed(node) {
            return Err(DbError::NodeDown { node });
        }
        let t = self.txns.get(&txn).ok_or(DbError::TxnNotActive { txn })?;
        assert!(t.runs_on(node), "{txn} does not run on {node}: attach() it first");
        Ok(())
    }

    /// Update record `slot` to `data` (padded to the record payload size)
    /// under an exclusive lock, following the §6 update protocol.
    pub fn update(&mut self, txn: TxnId, slot: u64, data: &[u8]) -> Result<(), DbError> {
        self.update_on(txn, txn.node(), slot, data)
    }

    /// [`SmDb::update`] executed on a participant node of a parallel
    /// transaction (§9). The log record goes to the *executing* node's
    /// log and the undo tag carries the executing node's id.
    pub fn update_on(
        &mut self,
        txn: TxnId,
        node: NodeId,
        slot: u64,
        data: &[u8],
    ) -> Result<(), DbError> {
        self.check_active(txn)?;
        self.check_participant(txn, node)?;
        let rec = self.check_slot(slot)?;
        assert!(data.len() <= self.layout.data_size, "payload too large");
        self.lock_from(txn, Self::lock_name_for_rec(slot), LockMode::Exclusive, node)?;
        let obs_on = self.m.obs().is_enabled();
        let update_t0 = if obs_on { self.m.now(node) } else { 0 };
        let tagging = self.cfg.protocol.uses_undo_tags();
        let mut payload = vec![0u8; self.layout.data_size];
        payload[..data.len()].copy_from_slice(data);

        let geometry = self.layout.geometry;
        let page_lsn_line = LineId(geometry.line_addr(rec.page, 0));
        let (line_idx, _) = self.layout.line_and_offset(rec.slot);
        let rec_line = LineId(geometry.line_addr(rec.page, line_idx));
        let rec_off = self.layout.page_offset(rec.slot);
        let payload_off = self.layout.payload_offset(rec.slot);

        let mut ctx = engine_ctx!(self);
        // Fault the page in before taking line locks.
        ctx.ensure_resident(node, rec.page)?;
        // §5.2 triggers must fire *before* the line locks migrate the
        // lines to this node.
        ctx.enforce_trigger(node, page_lsn_line, true)?;
        ctx.enforce_trigger(node, rec_line, true)?;
        // §6: line locks on the Page-LSN line and the record's line for
        // the duration of update + log write (ordered update logging +
        // volatile LBM).
        ctx.m.getline(node, page_lsn_line)?;
        if rec_line != page_lsn_line {
            ctx.m.getline(node, rec_line)?;
        }
        let mut append_cycles = 0u64;
        let result: Result<(u64, [LineSpan; 2], Bytes), DbError> = (|| {
            // Before image (the last committed value under strict 2PL —
            // or our own earlier write; the log keeps per-update images so
            // rollback replays them in reverse). Undo and redo images are
            // zero-copy views of one backing buffer: a single allocation
            // serves the log record and the rollback bookkeeping.
            let ds = self.layout.data_size;
            let mut img = vec![0u8; 2 * ds];
            ctx.read(node, rec.page, payload_off, &mut img[..ds])?;
            img[ds..].copy_from_slice(&payload);
            let backing = Bytes::from(img);
            let before = backing.slice(..ds);
            let gsn = ctx.next_gsn();
            let append_t0 = ctx.m.now(node);
            let lsn = ctx.logs.append(
                node,
                LogPayload::Update {
                    txn,
                    rec,
                    undo: before.clone(),
                    redo: backing.slice(ds..),
                    gsn,
                },
            );
            let at = ctx.m.now(node);
            append_cycles = at.saturating_sub(append_t0);
            if obs_on {
                ctx.m.obs().metrics.add(APPEND_BYTES_COUNTER, 2 * ds as u64);
            }
            ctx.m.obs().bus.emit(at, || ObsEvent::WalAppend { node: node.0, lsn: lsn.0 });
            // In-place update: tag + payload share the record's line.
            let tag = if tagging { node.0 } else { NULL_TAG };
            let rec_bytes = self.layout.encode(tag, &payload);
            let data_span = ctx.write(node, rec.page, rec_off, &rec_bytes)?;
            let lsn_span = ctx.note_update(node, rec.page, lsn)?;
            Ok((gsn, [data_span, lsn_span], before))
        })();
        // Release line locks before propagating errors.
        let _ = ctx.m.releaseline(node, page_lsn_line);
        if rec_line != page_lsn_line {
            let _ = ctx.m.releaseline(node, rec_line);
        }
        let trigger_forces = ctx.trigger_forces;
        let (_gsn, touched, before) = result?;
        self.stats.lbm_forces += trigger_forces;
        // LBM policy hook (eager force / coalesced force request /
        // active-bit marking). Forces advancing *this* node's clock are
        // collected for the force-wait span stage.
        let mut force_cycles = 0u64;
        match self.cfg.protocol.lbm_mode() {
            LbmMode::Volatile => {}
            LbmMode::StableEager => {
                if self.cfg.coalesce_forces {
                    // Group commit of LBM forces: raise the pending
                    // high-water mark instead of forcing, then defer the
                    // physical force to the coherence trigger exactly like
                    // StableTriggered. Commit/WAL/checkpoint forces drain
                    // the pending window when they cover it.
                    let last = self.logs.log(node).last_lsn();
                    if self.logs.request_force_to(node, last) {
                        self.stats.lbm_force_requests += 1;
                        if obs_on {
                            self.m.obs().metrics.inc(COALESCED_FORCES_COUNTER);
                        }
                    }
                    force_cycles += self.lbm_mark_or_force(node, &touched)?;
                } else {
                    let pending = if obs_on { self.unforced_records(node) } else { 0 };
                    if self.logs.force_all_checked(node)? {
                        let cost = self.m.config().cost.log_force;
                        self.m.advance(node, cost);
                        self.stats.lbm_forces += 1;
                        force_cycles += cost;
                        if obs_on {
                            self.note_wal_force(node, pending, ForceReason::Lbm);
                        }
                    }
                }
            }
            LbmMode::StableTriggered => {
                force_cycles += self.lbm_mark_or_force(node, &touched)?;
            }
        }
        if tagging {
            self.stats.undo_tag_writes += 1;
            self.stats.undo_tag_bytes += TAG_SIZE as u64;
        }
        self.stats.updates += 1;
        if obs_on {
            let cycles = self.m.now(node).saturating_sub(update_t0);
            let obs = self.m.obs();
            obs.metrics.observe(UPDATE_CYCLES_HISTOGRAM, cycles);
            // Stage attribution: the appends and forces measured above,
            // the remainder of this node's clock delta as execution —
            // stage sums stay within epsilon of the span's total latency.
            obs.spans.add(txn.0, Stage::LogAppend, append_cycles);
            obs.spans.add(txn.0, Stage::ForceWait, force_cycles);
            let execute = cycles.saturating_sub(append_cycles + force_cycles);
            obs.spans.add(txn.0, Stage::Execute, execute);
        }
        let t = req(self.txns.get_mut(&txn), "txn checked active")?;
        t.ops.push(TxnOp::Update { rec, before, node });
        self.shadow.note_update(txn, slot, payload);
        Ok(())
    }

    /// Insert `key → value` into the index under an exclusive key lock.
    pub fn insert(&mut self, txn: TxnId, key: u64, value: [u8; VAL_SIZE]) -> Result<(), DbError> {
        self.check_active(txn)?;
        if self.tree.is_none() {
            return Err(DbError::NoIndex);
        }
        self.lock(txn, Self::lock_name_for_key(key), LockMode::Exclusive)?;
        let spans_on = self.m.obs().spans.is_enabled();
        let t0 = if spans_on { self.m.now(txn.node()) } else { 0 };
        let tree = req(self.tree.as_mut(), "index op on an engine with an index")?;
        let mut ctx = TreeCtx::new(
            &mut self.m,
            &mut self.sdb,
            &mut self.logs,
            &mut self.plt,
            self.cfg.protocol.lbm_mode(),
            &mut self.gsn,
        )
        .with_coalescing(self.cfg.coalesce_forces)
        .with_attribution(txn.node());
        tree.insert(&mut ctx, txn, key, value)?;
        let force_cycles = ctx.attr_force_cycles;
        self.stats.lbm_forces += ctx.trigger_forces;
        self.stats.lbm_force_requests += ctx.force_requests;
        if self.cfg.protocol.uses_undo_tags() {
            self.stats.undo_tag_writes += 1;
            self.stats.undo_tag_bytes += TAG_SIZE as u64;
        }
        self.stats.index_inserts += 1;
        if spans_on {
            let cycles = self.m.now(txn.node()).saturating_sub(t0);
            let obs = self.m.obs();
            obs.spans.add(txn.0, Stage::ForceWait, force_cycles);
            obs.spans.add(txn.0, Stage::Execute, cycles.saturating_sub(force_cycles));
        }
        let t = req(self.txns.get_mut(&txn), "txn checked active")?;
        t.ops.push(TxnOp::IndexInsert { key });
        self.shadow.note_index_insert(txn, key, value);
        Ok(())
    }

    /// Look up `key` in the index under a shared key lock.
    pub fn lookup(&mut self, txn: TxnId, key: u64) -> Result<Option<[u8; VAL_SIZE]>, DbError> {
        self.check_active(txn)?;
        if self.tree.is_none() {
            return Err(DbError::NoIndex);
        }
        self.lock(txn, Self::lock_name_for_key(key), LockMode::Shared)?;
        let node = txn.node();
        let spans_on = self.m.obs().spans.is_enabled();
        let t0 = if spans_on { self.m.now(node) } else { 0 };
        let tree = req(self.tree.as_mut(), "index op on an engine with an index")?;
        let mut ctx = TreeCtx::new(
            &mut self.m,
            &mut self.sdb,
            &mut self.logs,
            &mut self.plt,
            self.cfg.protocol.lbm_mode(),
            &mut self.gsn,
        )
        .with_coalescing(self.cfg.coalesce_forces)
        .with_attribution(node);
        let hit = tree.search(&mut ctx, node, key)?;
        let force_cycles = ctx.attr_force_cycles;
        self.stats.lbm_forces += ctx.trigger_forces;
        self.stats.lbm_force_requests += ctx.force_requests;
        if spans_on {
            let cycles = self.m.now(node).saturating_sub(t0);
            let obs = self.m.obs();
            obs.spans.add(txn.0, Stage::ForceWait, force_cycles);
            obs.spans.add(txn.0, Stage::Execute, cycles.saturating_sub(force_cycles));
        }
        Ok(hit.map(|h| h.entry.value))
    }

    /// Range lookup over the index: returns the live `(key, value)` pairs
    /// in `[lo, hi]`, taking a shared lock on each returned key (committed
    /// read of current entries; phantom protection would need predicate
    /// locks, which the paper's model does not include).
    pub fn range_lookup(
        &mut self,
        txn: TxnId,
        lo: u64,
        hi: u64,
    ) -> Result<Vec<(u64, [u8; VAL_SIZE])>, DbError> {
        self.check_active(txn)?;
        if self.tree.is_none() {
            return Err(DbError::NoIndex);
        }
        let node = txn.node();
        let spans_on = self.m.obs().spans.is_enabled();
        let t0 = if spans_on { self.m.now(node) } else { 0 };
        let (hits, force_cycles) = {
            let tree = req(self.tree.as_mut(), "index op on an engine with an index")?;
            let mut ctx = TreeCtx::new(
                &mut self.m,
                &mut self.sdb,
                &mut self.logs,
                &mut self.plt,
                self.cfg.protocol.lbm_mode(),
                &mut self.gsn,
            )
            .with_coalescing(self.cfg.coalesce_forces)
            .with_attribution(node);
            let hits = tree.range_live(&mut ctx, node, lo, hi)?;
            (hits, ctx.attr_force_cycles)
        };
        if spans_on {
            let cycles = self.m.now(node).saturating_sub(t0);
            let obs = self.m.obs();
            obs.spans.add(txn.0, Stage::ForceWait, force_cycles);
            obs.spans.add(txn.0, Stage::Execute, cycles.saturating_sub(force_cycles));
        }
        for (key, _) in &hits {
            self.lock(txn, Self::lock_name_for_key(*key), LockMode::Shared)?;
        }
        Ok(hits)
    }

    /// Logically delete `key` from the index under an exclusive key lock.
    pub fn delete(&mut self, txn: TxnId, key: u64) -> Result<(), DbError> {
        self.check_active(txn)?;
        if self.tree.is_none() {
            return Err(DbError::NoIndex);
        }
        self.lock(txn, Self::lock_name_for_key(key), LockMode::Exclusive)?;
        let spans_on = self.m.obs().spans.is_enabled();
        let t0 = if spans_on { self.m.now(txn.node()) } else { 0 };
        let tree = req(self.tree.as_mut(), "index op on an engine with an index")?;
        let mut ctx = TreeCtx::new(
            &mut self.m,
            &mut self.sdb,
            &mut self.logs,
            &mut self.plt,
            self.cfg.protocol.lbm_mode(),
            &mut self.gsn,
        )
        .with_coalescing(self.cfg.coalesce_forces)
        .with_attribution(txn.node());
        tree.delete(&mut ctx, txn, key)?;
        let force_cycles = ctx.attr_force_cycles;
        self.stats.lbm_forces += ctx.trigger_forces;
        self.stats.lbm_force_requests += ctx.force_requests;
        if self.cfg.protocol.uses_undo_tags() {
            self.stats.undo_tag_writes += 1;
            self.stats.undo_tag_bytes += TAG_SIZE as u64;
        }
        self.stats.index_deletes += 1;
        if spans_on {
            let cycles = self.m.now(txn.node()).saturating_sub(t0);
            let obs = self.m.obs();
            obs.spans.add(txn.0, Stage::ForceWait, force_cycles);
            obs.spans.add(txn.0, Stage::Execute, cycles.saturating_sub(force_cycles));
        }
        let t = req(self.txns.get_mut(&txn), "txn checked active")?;
        t.ops.push(TxnOp::IndexDelete { key });
        self.shadow.note_index_delete(txn, key);
        Ok(())
    }

    /// Commit `txn`: force the log through the commit record (durability),
    /// clear undo tags, reclaim committed-delete space, release all locks
    /// (strict 2PL).
    pub fn commit(&mut self, txn: TxnId) -> Result<(), DbError> {
        self.check_active(txn)?;
        let node = txn.node();
        // Crash point: the node dies before its commit record exists —
        // the transaction must be doomed by recovery.
        if let Some(c) = self.fault.hit(FAULT_COMMIT, node.0) {
            return Err(DbError::FaultCrash(c));
        }
        // Parallel transactions (§9): every participant's updates must be
        // durable before the home node's commit record — force the other
        // participants' logs first.
        let participants: Vec<NodeId> = req(self.txns.get(&txn), "txn checked active")?
            .participants
            .iter()
            .copied()
            .filter(|n| *n != node)
            .collect();
        let obs_on = self.m.obs().is_enabled();
        let spans_on = self.m.obs().spans.is_enabled();
        // Participant forces advance the *participants'* clocks, not the
        // home node's, so they are outside the home-clock span total and
        // deliberately unattributed.
        let commit_t0 = if spans_on { self.m.now(node) } else { 0 };
        let mut force_wait = 0u64;
        for p in participants {
            let pending = if obs_on { self.unforced_records(p) } else { 0 };
            if self.logs.force_all_checked(p)? {
                let cost = self.m.config().cost.log_force;
                self.m.advance(p, cost);
                self.stats.commit_forces += 1;
                if obs_on {
                    self.note_wal_force(p, pending, ForceReason::Commit);
                }
            }
        }
        // A synchronous commit acknowledges immediately, so any inherited
        // commit dependencies (early lock release) must be durable *now*:
        // force each unacknowledged predecessor's home log through its
        // commit record before acknowledging on top of it.
        let deps = self.commit_deps_for(txn);
        for d in &deps {
            let pn = d.txn.node();
            if !self.m.is_crashed(pn) && self.logs.log(pn).durable_lsn() < d.lsn {
                let pending = if obs_on { self.unforced_records(pn) } else { 0 };
                if self.logs.force_to_checked(pn, d.lsn)? {
                    let cost = self.m.config().cost.log_force;
                    self.m.advance(pn, cost);
                    self.stats.commit_forces += 1;
                    if obs_on {
                        self.note_wal_force(pn, pending, ForceReason::Commit);
                    }
                }
            }
            if self.logs.log(pn).durable_lsn() < d.lsn {
                // The predecessor's commit is unrecoverable (its home is
                // down with the record unforced): this transaction saw
                // data that will never commit. Surface a retryable
                // conflict; the caller aborts and retries.
                self.inherited_deps.remove(&txn);
                return Err(DbError::WouldBlock { txn, lock: 0 });
            }
        }
        let lsn = self.logs.append(node, LogPayload::Commit { txn, deps });
        self.m
            .obs()
            .bus
            .emit(self.m.now(node), || ObsEvent::WalAppend { node: node.0, lsn: lsn.0 });
        let pending = if obs_on { self.unforced_records(node) } else { 0 };
        let had_window = self.logs.log(node).pending_force().is_some();
        if self.logs.force_to_checked(node, lsn)? {
            let cost = self.m.config().cost.log_force;
            self.m.advance(node, cost);
            self.stats.commit_forces += 1;
            force_wait += cost;
            // In an execution lane (see [`crate::mt`]) the per-node
            // appender stalled the committer to drain a pending
            // coalesced-force window it would otherwise have absorbed.
            if had_window && self.mt_granted.is_some() {
                self.m.obs().metrics.inc(names::WAL_APPENDER_STALLS);
            }
            if obs_on {
                self.note_wal_force(node, pending, ForceReason::Commit);
            }
        }
        // Crash point: the commit record is durable but post-commit
        // processing (tag clears, delete reclaim, lock release) has not
        // run — recovery must treat the transaction as committed.
        if let Some(c) = self.fault.hit(FAULT_COMMIT, node.0) {
            return Err(DbError::FaultCrash(c));
        }
        let t = req(self.txns.get(&txn), "txn checked active")?.clone();
        // Clear heap undo tags (the data is no longer active — §4.1.2:
        // "Once the data is no longer active, the node ID is assigned a
        // null value").
        if self.cfg.protocol.uses_undo_tags() {
            for rec in t.touched_records() {
                // The tag clear must land on a recovered line: applying a
                // deferred redo entry afterwards would resurrect the tag.
                self.ensure_line_recovered(node, self.rec_line(rec))?;
                let off = self.layout.page_offset(rec.slot);
                let mut ctx = engine_ctx!(self);
                ctx.write(node, rec.page, off, &NULL_TAG.to_le_bytes())?;
            }
        }
        // Index post-commit processing (tag clears + delete reclaim).
        if let Some(tree) = self.tree.as_mut() {
            let deleted: Vec<u64> = t
                .ops
                .iter()
                .filter_map(|op| match op {
                    TxnOp::IndexDelete { key } => Some(*key),
                    _ => None,
                })
                .collect();
            let mut ctx = TreeCtx::new(
                &mut self.m,
                &mut self.sdb,
                &mut self.logs,
                &mut self.plt,
                self.cfg.protocol.lbm_mode(),
                &mut self.gsn,
            )
            .with_coalescing(self.cfg.coalesce_forces);
            for key in t.index_keys() {
                // The physical reclaim of a committed delete is logged so
                // log replay converges to the same physical state.
                if deleted.contains(&key) {
                    let gsn = ctx.next_gsn();
                    ctx.logs.append(node, LogPayload::IndexRemove { txn, key, gsn });
                }
                tree.commit_key(&mut ctx, txn, key)?;
            }
        }
        self.locks.release_all(&mut self.m, &mut self.logs, txn)?;
        self.pending_waits.remove(&txn);
        req(self.txns.get_mut(&txn), "txn checked active")?.status = TxnStatus::Committed;
        self.shadow.commit(txn);
        self.stats.commits += 1;
        let mut latency = 0u64;
        if spans_on {
            let end_at = self.m.now(node);
            let total = end_at.saturating_sub(commit_t0);
            let obs = self.m.obs();
            obs.spans.add(txn.0, Stage::ForceWait, force_wait);
            obs.spans.add(txn.0, Stage::Commit, total.saturating_sub(force_wait));
            if let Some(span) = obs.spans.end(txn.0, end_at, true) {
                latency = span.latency();
                obs.metrics.observe(names::TXN_LATENCY_CYCLES, latency);
            }
        }
        if obs_on {
            self.m.obs().metrics.inc(names::TXN_COMMITTED);
        }
        let obs = self.m.obs();
        if obs.timeline.is_enabled() {
            obs.timeline.on_commit(self.m.max_clock(), latency, self.in_flight());
        }
        self.inherited_deps.remove(&txn);
        Ok(())
    }

    /// The not-yet-acknowledged commit-LSN dependencies `txn` inherited,
    /// deduplicated per predecessor. The per-name list stays in
    /// `inherited_deps` until acknowledgement or abort — recovery's
    /// cascade analysis needs the violated names.
    fn commit_deps_for(&self, txn: TxnId) -> Vec<CommitDep> {
        let mut deps: Vec<CommitDep> = Vec::new();
        if let Some(list) = self.inherited_deps.get(&txn) {
            for d in list {
                let unacked = self
                    .txns
                    .get(&d.releaser)
                    .map(|t| t.status != TxnStatus::Committed)
                    .unwrap_or(false);
                if unacked && !deps.iter().any(|c| c.txn == d.releaser) {
                    deps.push(CommitDep { txn: d.releaser, lsn: d.commit_lsn });
                }
            }
        }
        deps
    }

    /// Pipelined commit (group commit): append the commit record and
    /// return *without* forcing — acknowledgement is deferred to
    /// [`SmDb::drain_commit_pipeline`], which covers a whole batch with
    /// one physical force per node.
    ///
    /// Under [`DbConfig::early_lock_release`] the transaction's locks are
    /// released *now*, at append time (controlled lock violation): the
    /// released exclusive names are recorded as violation edges, so a
    /// successor acquiring one inherits a commit-LSN dependency instead of
    /// blocking until the force. The transaction stays `Active` with the
    /// `committing` flag set — a crash before the covering force dooms it
    /// (and cascades through its dependents) exactly like any active
    /// transaction.
    pub fn commit_pipelined(&mut self, txn: TxnId) -> Result<(), DbError> {
        self.check_active(txn)?;
        let node = txn.node();
        // Crash point: the node dies before its commit record exists.
        if let Some(c) = self.fault.hit(FAULT_COMMIT, node.0) {
            return Err(DbError::FaultCrash(c));
        }
        // Parallel transactions (§9): participants' updates must be
        // durable before the home node's commit record.
        let participants: Vec<NodeId> = req(self.txns.get(&txn), "txn checked active")?
            .participants
            .iter()
            .copied()
            .filter(|n| *n != node)
            .collect();
        let obs_on = self.m.obs().is_enabled();
        let spans_on = self.m.obs().spans.is_enabled();
        let commit_t0 = if spans_on { self.m.now(node) } else { 0 };
        for p in participants {
            let pending = if obs_on { self.unforced_records(p) } else { 0 };
            if self.logs.force_all_checked(p)? {
                let cost = self.m.config().cost.log_force;
                self.m.advance(p, cost);
                self.stats.commit_forces += 1;
                if obs_on {
                    self.note_wal_force(p, pending, ForceReason::Commit);
                }
            }
        }
        let deps = self.commit_deps_for(txn);
        let lsn = self.logs.append(node, LogPayload::Commit { txn, deps: deps.clone() });
        self.m
            .obs()
            .bus
            .emit(self.m.now(node), || ObsEvent::WalAppend { node: node.0, lsn: lsn.0 });
        if self.cfg.early_lock_release {
            let (released, promoted) =
                self.locks.early_release_all(&mut self.m, &mut self.logs, txn)?;
            let xnames: Vec<u64> = released
                .iter()
                .filter(|(_, m)| *m == LockMode::Exclusive)
                .map(|(n, _)| *n)
                .collect();
            self.stats.early_lock_releases += xnames.len() as u64;
            self.violations.record_release(txn, lsn, &xnames);
            self.pending_waits.remove(&txn);
            // A promoted waiter acquires the (possibly still violated)
            // name without passing through the `lock_from` inheritance
            // hook — inherit its dependencies here.
            for (name, entry) in promoted {
                let edges = self.violations.deps_for(name, entry.txn);
                if !edges.is_empty() {
                    let obs = self.m.obs();
                    if obs.metrics.is_enabled() {
                        obs.metrics.add(names::TXN_COMMIT_DEPS, edges.len() as u64);
                    }
                    self.stats.commit_deps += edges.len() as u64;
                    self.inherited_deps.entry(entry.txn).or_default().extend(
                        edges.into_iter().map(|e| InheritedDep {
                            releaser: e.releaser,
                            commit_lsn: e.commit_lsn,
                            name,
                        }),
                    );
                }
                if let Some(waits) = self.pending_waits.get_mut(&entry.txn) {
                    waits.retain(|n| *n != name);
                }
            }
        }
        // Crash point: commit record appended, locks (possibly) released,
        // no covering force yet — a crash here dooms the transaction and
        // must cascade through every dependent.
        if let Some(c) = self.fault.hit(FAULT_COMMIT_DEP, node.0) {
            return Err(DbError::FaultCrash(c));
        }
        if self.cfg.coalesce_forces {
            // Widen the coalescing window so a later physical force on
            // this log covers the commit record in the same sweep.
            self.logs.request_force_to(node, lsn);
        }
        let appended_at = self.m.now(node);
        if spans_on {
            self.m.obs().spans.add(txn.0, Stage::Commit, appended_at.saturating_sub(commit_t0));
        }
        req(self.txns.get_mut(&txn), "txn checked active")?.committing = true;
        self.pending_commits.push(PendingCommit { txn, node, lsn, deps, appended_at });
        Ok(())
    }

    /// Drain the commit pipeline: one physical group force per live home
    /// node (through its highest pending commit record), then acknowledge
    /// every pending commit whose record is durable and whose dependency
    /// predecessors are all acknowledged. Returns the number of commits
    /// acknowledged.
    pub fn drain_commit_pipeline(&mut self) -> Result<usize, DbError> {
        let obs_on = self.m.obs().is_enabled();
        let mut targets: BTreeMap<NodeId, Lsn> = BTreeMap::new();
        for p in &self.pending_commits {
            if !self.m.is_crashed(p.node) {
                let e = targets.entry(p.node).or_insert(p.lsn);
                if p.lsn > *e {
                    *e = p.lsn;
                }
            }
        }
        // Force order across home nodes is observable (forces advance node
        // clocks and fire crash points): schedulable, node order by default.
        let mut order: Vec<(NodeId, Lsn)> = targets.into_iter().collect();
        while !order.is_empty() {
            let (node, lsn) = order.remove(self.sched.choose("core.drain.force", order.len()));
            if self.logs.log(node).durable_lsn() >= lsn {
                continue;
            }
            let pending = if obs_on { self.unforced_records(node) } else { 0 };
            if self.logs.force_to_checked(node, lsn)? {
                let cost = self.m.config().cost.log_force;
                self.m.advance(node, cost);
                self.stats.commit_forces += 1;
                if obs_on {
                    self.note_wal_force(node, pending, ForceReason::Commit);
                }
            }
        }
        self.ack_scan()
    }

    /// Acknowledge every pending commit whose record is durable and whose
    /// dependency predecessors have all been acknowledged, iterating to a
    /// fixpoint so a whole dependency chain settles in one call once the
    /// covering forces are in.
    fn ack_scan(&mut self) -> Result<usize, DbError> {
        let mut acked = 0usize;
        loop {
            // Any durable pending commit with settled predecessors may be
            // acknowledged next; the ack order is observable (post-commit
            // processing touches shared pages), so the pick among ready
            // candidates is schedulable. Choice 0 = lowest index = append
            // order, the historical behavior.
            let mut ready: Vec<usize> = Vec::new();
            for (i, p) in self.pending_commits.iter().enumerate() {
                if self.logs.log(p.node).durable_lsn() < p.lsn {
                    continue;
                }
                let deps_ok = p.deps.iter().all(|d| {
                    self.txns.get(&d.txn).map(|t| t.status == TxnStatus::Committed).unwrap_or(true)
                });
                if deps_ok {
                    ready.push(i);
                    if !self.sched.is_enabled() {
                        break;
                    }
                }
            }
            if ready.is_empty() {
                break;
            }
            let i = ready[self.sched.choose("core.ack.pick", ready.len())];
            let p = self.pending_commits.remove(i);
            self.ack_commit(p)?;
            acked += 1;
        }
        Ok(acked)
    }

    /// Acknowledge one pipelined commit: its record is durable and every
    /// predecessor settled. Runs the post-commit processing the append
    /// deferred (tag clears, delete reclaim, lock release or violation
    /// resolution) and flips the transaction to `Committed`.
    fn ack_commit(&mut self, pc: PendingCommit) -> Result<(), DbError> {
        let PendingCommit { txn, node, appended_at, .. } = pc;
        let obs_on = self.m.obs().is_enabled();
        let spans_on = self.m.obs().spans.is_enabled();
        let ack_t0 = if spans_on { self.m.now(node) } else { 0 };
        let t = req(self.txns.get(&txn), "pending commit txn present in table")?.clone();
        if self.cfg.protocol.uses_undo_tags() {
            for rec in t.touched_records() {
                // A successor that inherited the record through early
                // lock release may have re-tagged it and still be in
                // flight: the tag is the successor's responsibility now.
                if self.cfg.early_lock_release {
                    let owned_elsewhere = self.txns.values().any(|o| {
                        o.id != txn
                            && o.is_active()
                            && o.ops
                                .iter()
                                .any(|op| matches!(op, TxnOp::Update { rec: r, .. } if *r == rec))
                    });
                    if owned_elsewhere {
                        continue;
                    }
                }
                self.ensure_line_recovered(node, self.rec_line(rec))?;
                let off = self.layout.page_offset(rec.slot);
                let mut ctx = engine_ctx!(self);
                ctx.write(node, rec.page, off, &NULL_TAG.to_le_bytes())?;
            }
        }
        if let Some(tree) = self.tree.as_mut() {
            let deleted: Vec<u64> = t
                .ops
                .iter()
                .filter_map(|op| match op {
                    TxnOp::IndexDelete { key } => Some(*key),
                    _ => None,
                })
                .collect();
            let mut ctx = TreeCtx::new(
                &mut self.m,
                &mut self.sdb,
                &mut self.logs,
                &mut self.plt,
                self.cfg.protocol.lbm_mode(),
                &mut self.gsn,
            )
            .with_coalescing(self.cfg.coalesce_forces);
            for key in t.index_keys() {
                if deleted.contains(&key) {
                    let gsn = ctx.next_gsn();
                    ctx.logs.append(node, LogPayload::IndexRemove { txn, key, gsn });
                }
                tree.commit_key(&mut ctx, txn, key)?;
            }
        }
        if self.cfg.early_lock_release {
            // Locks were already released at append time; settle the
            // violation edges so later acquirers stop inheriting.
            self.violations.resolve(txn);
        } else {
            self.locks.release_all(&mut self.m, &mut self.logs, txn)?;
            self.pending_waits.remove(&txn);
        }
        self.inherited_deps.remove(&txn);
        let ts = req(self.txns.get_mut(&txn), "pending commit txn present in table")?;
        ts.status = TxnStatus::Committed;
        ts.committing = false;
        self.shadow.commit(txn);
        self.stats.commits += 1;
        let mut latency = 0u64;
        if spans_on {
            let end_at = self.m.now(node);
            let obs = self.m.obs();
            obs.spans.add(txn.0, Stage::ForceWait, ack_t0.saturating_sub(appended_at));
            obs.spans.add(txn.0, Stage::Commit, end_at.saturating_sub(ack_t0));
            if let Some(span) = obs.spans.end(txn.0, end_at, true) {
                latency = span.latency();
                obs.metrics.observe(names::TXN_LATENCY_CYCLES, latency);
            }
        }
        if obs_on {
            self.m.obs().metrics.inc(names::TXN_COMMITTED);
        }
        let obs = self.m.obs();
        if obs.timeline.is_enabled() {
            obs.timeline.on_commit(self.m.max_clock(), latency, self.in_flight());
        }
        Ok(())
    }

    /// Pipelined commits currently awaiting acknowledgement.
    pub fn pending_commit_count(&self) -> usize {
        self.pending_commits.len()
    }

    /// Voluntarily abort `txn`: undo all its effects (installing before
    /// images — strict 2PL makes this sufficient), write compensation
    /// records, release locks.
    pub fn abort(&mut self, txn: TxnId) -> Result<(), DbError> {
        self.check_active(txn)?;
        let node = txn.node();
        let spans_on = self.m.obs().spans.is_enabled();
        // The whole rollback body is finalization work: attributed to the
        // commit/abort stage rather than re-execution.
        let abort_t0 = if spans_on { self.m.now(node) } else { 0 };
        let t = req(self.txns.get(&txn), "txn checked active")?.clone();
        for op in t.ops.iter().rev() {
            match op {
                TxnOp::Update { rec, before, node: op_node } => {
                    let node = if self.m.is_crashed(*op_node) { node } else { *op_node };
                    // The before-image restore (and the compensation
                    // record's read of the current value) must see a
                    // recovered line, and no deferred entry may land on
                    // top of the restored value afterwards.
                    self.ensure_line_recovered(node, self.rec_line(*rec))?;
                    let mut ctx = engine_ctx!(self);
                    let gsn = ctx.next_gsn();
                    let off = self.layout.page_offset(rec.slot);
                    // Compensation record: redo-image = the restored value.
                    let mut current = vec![0u8; self.layout.data_size];
                    ctx.read(node, rec.page, off + TAG_SIZE, &mut current)?;
                    let lsn = ctx.logs.append(
                        node,
                        LogPayload::Update {
                            txn,
                            rec: *rec,
                            undo: Bytes::copy_from_slice(&current),
                            redo: before.clone(),
                            gsn,
                        },
                    );
                    let rec_bytes = self.layout.encode(NULL_TAG, before);
                    ctx.write(node, rec.page, off, &rec_bytes)?;
                    let _ = ctx.note_update(node, rec.page, lsn)?;
                }
                TxnOp::IndexInsert { key } => {
                    let tree = req(self.tree.as_mut(), "logged op implies an index")?;
                    let mut ctx = TreeCtx::new(
                        &mut self.m,
                        &mut self.sdb,
                        &mut self.logs,
                        &mut self.plt,
                        self.cfg.protocol.lbm_mode(),
                        &mut self.gsn,
                    )
                    .with_coalescing(self.cfg.coalesce_forces);
                    let gsn = ctx.next_gsn();
                    ctx.logs.append(node, LogPayload::IndexRemove { txn, key: *key, gsn });
                    tree.undo_insert(&mut ctx, node, *key)?;
                }
                TxnOp::IndexDelete { key } => {
                    let tree = req(self.tree.as_mut(), "logged op implies an index")?;
                    let mut ctx = TreeCtx::new(
                        &mut self.m,
                        &mut self.sdb,
                        &mut self.logs,
                        &mut self.plt,
                        self.cfg.protocol.lbm_mode(),
                        &mut self.gsn,
                    )
                    .with_coalescing(self.cfg.coalesce_forces);
                    let gsn = ctx.next_gsn();
                    ctx.logs.append(node, LogPayload::IndexUnmark { txn, key: *key, gsn });
                    tree.undo_delete(&mut ctx, node, *key)?;
                }
            }
        }
        self.logs.append(node, LogPayload::Abort { txn });
        // Withdraw any queued lock requests, then release held locks.
        if let Some(waits) = self.pending_waits.remove(&txn) {
            for name in waits {
                self.locks.cancel_wait(&mut self.m, &mut self.logs, txn, name)?;
            }
        }
        self.locks.release_all(&mut self.m, &mut self.logs, txn)?;
        req(self.txns.get_mut(&txn), "txn checked active")?.status = TxnStatus::Aborted;
        // A voluntary abort restores every inherited value itself; its
        // commit dependencies die with it (it never appended a commit
        // record — `check_active` rejects committing transactions here).
        self.inherited_deps.remove(&txn);
        self.shadow.drop_pending(txn);
        self.stats.voluntary_aborts += 1;
        if spans_on {
            let end_at = self.m.now(node);
            let obs = self.m.obs();
            obs.spans.add(txn.0, Stage::Commit, end_at.saturating_sub(abort_t0));
            if let Some(span) = obs.spans.end(txn.0, end_at, false) {
                obs.metrics.observe(names::TXN_LATENCY_CYCLES, span.latency());
            }
        }
        let obs = self.m.obs();
        if obs.metrics.is_enabled() {
            obs.metrics.inc(names::TXN_ABORTED);
        }
        if obs.timeline.is_enabled() {
            obs.timeline.on_abort(self.m.max_clock(), self.in_flight());
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Buffer management (no-force / steal)
    // ------------------------------------------------------------------

    /// Flush one page to the stable database (a *steal* if it carries
    /// uncommitted data — permitted; the WAL rule forces the updaters'
    /// logs first). `node` performs (and is charged for) the I/O.
    pub fn flush_page(&mut self, node: NodeId, page: PageId) -> Result<(), DbError> {
        let mut ctx = engine_ctx!(self);
        let forces = ctx.flush_page(node, page)?;
        self.stats.wal_flush_forces += forces;
        self.stats.page_flushes += 1;
        // A flush that fired the WAL rule wrote back records with
        // unforced (hence uncommitted) updates: a buffer *steal*.
        self.m.obs().bus.emit(self.m.now(node), || {
            if forces > 0 {
                ObsEvent::BufSteal { node: node.0, page: page.0 as u64 }
            } else {
                ObsEvent::BufFlush { node: node.0, page: page.0 as u64 }
            }
        });
        Ok(())
    }

    /// Evict a page's lines from every cache (requires a prior flush; the
    /// stable image must be authoritative).
    pub fn evict_page(&mut self, page: PageId) {
        let mut ctx = engine_ctx!(self);
        ctx.evict_page(page);
    }

    /// Take a sharp checkpoint: flush every dirty page (WAL-safe), write a
    /// checkpoint record per node, force all logs, and durably install the
    /// checkpoint metadata.
    pub fn checkpoint(&mut self, node: NodeId) -> Result<(), DbError> {
        // A checkpoint advances the redo bound past the log records that
        // back any still-deferred instant-restart entries; drain them all
        // first so no pending redo is orphaned by log truncation.
        while self.redo_pending() > 0 {
            self.drain_redo(node, usize::MAX)?;
        }
        let dirty = self.plt.dirty_pages();
        for page in dirty {
            self.flush_page(node, page)?;
        }
        let mut lsns = Vec::with_capacity(self.cfg.nodes as usize);
        for n in 0..self.cfg.nodes {
            let n = NodeId(n);
            if self.m.is_crashed(n) {
                lsns.push(self.logs.log(n).stable_lsn());
                continue;
            }
            let lsn = self.logs.append_checkpoint_checked(n)?;
            let obs_on = self.m.obs().is_enabled();
            let pending = if obs_on { self.unforced_records(n) } else { 0 };
            if self.logs.force_to_checked(n, lsn)? {
                let cost = self.m.config().cost.log_force;
                self.m.advance(n, cost);
                if obs_on {
                    self.note_wal_force(n, pending, ForceReason::Checkpoint);
                }
            }
            lsns.push(lsn);
        }
        self.ckpt.install(CheckpointMeta { node_lsns: lsns.clone() });
        // Log reclamation: recovery never scans below the checkpoint for
        // redo (every page is flushed), and never needs undo information
        // below the first record of any still-active transaction. The
        // truncation point per node is the minimum of the two.
        for n in 0..self.cfg.nodes {
            let nid = NodeId(n);
            if self.m.is_crashed(nid) {
                continue;
            }
            let ckpt_lsn = lsns[n as usize];
            let mut cutoff = ckpt_lsn;
            // The log's incremental index knows where each transaction's
            // first record sits; no scan needed to find the undo floor.
            for t in self.txns.values().filter(|t| t.is_active()) {
                if let Some(first) = self.logs.log(nid).index().first_txn_lsn(t.id) {
                    cutoff = cutoff.min(Lsn(first.0.saturating_sub(1)));
                }
            }
            let cutoff = cutoff.min(self.logs.log(nid).stable_lsn());
            self.logs.truncate_through_checked(nid, cutoff)?;
        }
        self.stats.checkpoints += 1;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Non-transactional inspection (oracle, examples, tests)
    // ------------------------------------------------------------------

    /// The current value of record `slot` as recovery would see it: the
    /// coherent cached copy if any survives, else the stable image.
    /// Zero-cost (no coherence side effects).
    pub fn current_value(&self, slot: u64) -> Result<Vec<u8>, DbError> {
        let rec = self.check_slot(slot)?;
        let (line_idx, within) = self.layout.line_and_offset(rec.slot);
        let line = LineId(self.layout.geometry.line_addr(rec.page, line_idx));
        if let Some(bytes) = self.m.peek(line) {
            return Ok(bytes[within + TAG_SIZE..within + self.layout.rec_size()].to_vec());
        }
        let img = self
            .sdb
            .peek_page(rec.page)
            .unwrap_or_else(|| panic!("heap page {} missing", rec.page));
        let off = self.layout.payload_offset(rec.slot);
        Ok(img[off..off + self.layout.data_size].to_vec())
    }

    /// The current undo tag of record `slot` (same lookup rules as
    /// [`SmDb::current_value`]).
    pub fn current_tag(&self, slot: u64) -> Result<u16, DbError> {
        let rec = self.check_slot(slot)?;
        let (line_idx, within) = self.layout.line_and_offset(rec.slot);
        let line = LineId(self.layout.geometry.line_addr(rec.page, line_idx));
        if let Some(bytes) = self.m.peek(line) {
            return Ok(u16::from_le_bytes(bytes[within..within + 2].try_into().expect("tag")));
        }
        let img = self
            .sdb
            .peek_page(rec.page)
            .unwrap_or_else(|| panic!("heap page {} missing", rec.page));
        let off = self.layout.page_offset(rec.slot);
        Ok(u16::from_le_bytes(img[off..off + 2].try_into().expect("tag")))
    }

    /// Convenience: the committed value of `slot` per the shadow model.
    pub fn read_committed(&self, slot: u64) -> Result<Vec<u8>, DbError> {
        self.check_slot(slot)?;
        Ok(self.shadow.committed_value(slot, self.layout.data_size))
    }

    /// Live index contents, scanned by `node` (coherent reads).
    pub fn index_scan(&mut self, node: NodeId) -> Result<Vec<(u64, [u8; VAL_SIZE])>, DbError> {
        let tree = self.tree.as_mut().ok_or(DbError::NoIndex)?;
        let mut ctx = TreeCtx::new(
            &mut self.m,
            &mut self.sdb,
            &mut self.logs,
            &mut self.plt,
            self.cfg.protocol.lbm_mode(),
            &mut self.gsn,
        )
        .with_coalescing(self.cfg.coalesce_forces);
        Ok(tree.scan_live(&mut ctx, node)?)
    }

    /// Check the index's structural invariants (sorted leaf chain, branch
    /// separator ranges) via `node`'s coherent reads. Panics with a
    /// description on violation; no-op without an index. The B+-tree
    /// oracle of the crash-sweep harness.
    pub fn check_index_invariants(&mut self, node: NodeId) -> Result<(), DbError> {
        let Some(tree) = self.tree.as_mut() else {
            return Ok(());
        };
        let mut ctx = TreeCtx::new(
            &mut self.m,
            &mut self.sdb,
            &mut self.logs,
            &mut self.plt,
            self.cfg.protocol.lbm_mode(),
            &mut self.gsn,
        )
        .with_coalescing(self.cfg.coalesce_forces);
        tree.check_invariants(&mut ctx, node)?;
        Ok(())
    }

    /// Bring a crashed node back online (empty cache; it resumes logging
    /// after its stable prefix).
    pub fn reboot(&mut self, node: NodeId) {
        self.m.reboot_node(node);
    }

    /// Lockless *browse-mode* read (§3.2's dirty read, as in the `browse`
    /// / `chaos` isolation degrees): a coherent read of the record with no
    /// record lock, so it may observe uncommitted data — and, crucially,
    /// it **replicates the record's cache line** onto the reading node
    /// (the `H_wr` pattern). The paper's point: with dirty reads allowed,
    /// the recovery problems arise even when a single object is stored
    /// per cache line, so layout alone can never substitute for the
    /// recovery protocols.
    pub fn read_dirty(&mut self, node: NodeId, slot: u64) -> Result<Vec<u8>, DbError> {
        if self.m.is_crashed(node) {
            return Err(DbError::NodeDown { node });
        }
        let rec = self.check_slot(slot)?;
        // Dirty reads skip locking, so the lock-acquisition redo hook
        // never fires for them — ensure the line here instead.
        self.ensure_line_recovered(node, self.rec_line(rec))?;
        let off = self.layout.payload_offset(rec.slot);
        let mut buf = vec![0u8; self.layout.data_size];
        let mut ctx = engine_ctx!(self);
        ctx.read(node, rec.page, off, &mut buf)?;
        self.stats.lbm_forces += ctx.trigger_forces;
        self.stats.lbm_force_requests += ctx.force_requests;
        self.stats.reads += 1;
        Ok(buf)
    }

    /// Degraded recovery-window read: the best value obtainable *without*
    /// touching recovery state — no locks, no coherence traffic, and no
    /// inline redo. Returns the cached copy if one survives anywhere
    /// (possibly a stale pre-crash image on an unrecovered line), else the
    /// stable image. Unlike [`SmDb::read_dirty`] it never replicates the
    /// line and never blocks on pending redo, so it stays available during
    /// the instant-restart drain window; callers trade freshness for that
    /// availability.
    pub fn read_degraded(&self, node: NodeId, slot: u64) -> Result<Vec<u8>, DbError> {
        if self.m.is_crashed(node) {
            return Err(DbError::NodeDown { node });
        }
        self.current_value(slot)
    }

    /// Raw lock names currently held by `txn` (experiment instrumentation).
    pub fn held_lock_names(&self, txn: TxnId) -> Vec<u64> {
        self.locks.held_locks(txn).to_vec()
    }

    /// Issue a *shared* request on a raw lock name and report whether it
    /// conflicted (queuing a waiter). Touching the LCB moves its cache
    /// line to the probing node — experiment instrumentation for the
    /// §4.2.2 scenarios.
    pub fn probe_lock_conflict(&mut self, txn: TxnId, name: u64) -> Result<bool, DbError> {
        self.check_active(txn)?;
        match self.lock(txn, name, LockMode::Shared) {
            Ok(()) => Ok(false),
            Err(DbError::WouldBlock { .. }) => Ok(true),
            Err(e) => Err(e),
        }
    }
}
