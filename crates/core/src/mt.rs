//! True multicore execution: a deterministic epoch scheduler driving
//! per-node execution **lanes** on OS threads.
//!
//! The paper's machine is N nodes sharing one coherent memory; until this
//! module the simulator *modelled* that concurrency on one OS thread. Here
//! N threads drive N simulated nodes concurrently while every observable
//! result stays byte-identical to the single-threaded run:
//!
//! 1. **Serial admission.** Between epochs the parent engine owns every
//!    shard, every per-node WAL appender, and the lock table. The
//!    scheduler walks the pending transactions in a fixed order (node
//!    order, program order within a node) and *admits* a transaction into
//!    the epoch iff (a) the set of coherence-directory stripes its record
//!    pages map to is disjoint from every *other* node's admitted stripes
//!    — same-node overlap is fine, those run sequentially in one lane —
//!    and (b) every record lock it needs can be granted right now, on the
//!    parent lock manager, in its strongest needed mode. Grants happen
//!    here, serially, in deterministic order (Calvin-style deterministic
//!    locking): the striped lock table's LCB lines never leave the parent,
//!    so lanes never race on lock state. A stalled candidate whose record
//!    names collide cross-node in incompatible modes bumps
//!    `lock.shard_conflicts`; any other stripe overlap is false sharing
//!    and bumps `sim.shard_conflicts`. Either stalls that node for the
//!    epoch (`engine.epoch_waits`).
//! 2. **Lane execution.** Each participating node gets a lane: a real
//!    [`SmDb`] assembled from the parent's detached parts — its admitted
//!    stripes ([`Machine::lane_split`]), its own WAL appender
//!    (`LogSet::lane_split`), a forked lock manager, shadow, and stats.
//!    The lane runs the §6 update protocol *verbatim*; only record-lock
//!    acquisition short-circuits against the pre-granted set. Any access
//!    outside the admitted footprint surfaces as
//!    [`MemError::ForeignStripe`] (or a lock-grant miss), aborts the
//!    transaction inside the lane, and escalates it to a serial retry.
//! 3. **Epoch barrier.** Lanes are merged back in node order (machine,
//!    logs, page-LSN table, transaction table, stats, shadow — every merge
//!    operator commutes or is order-fixed), each appender's pending
//!    coalesced-force window is drained (`wal.appender_stalls`), the
//!    admitted transactions' locks are released on the parent in admission
//!    order, and active LBM marks in the lane stripes are cleared —
//!    *after* the force, preserving the Stable-LBM invariant.
//!
//! **Determinism argument.** A lane's inputs are fixed at the barrier
//! (admitted transactions, stripe contents, pre-assigned GSN blocks and
//! transaction ids, pre-granted locks); its execution is single-threaded;
//! lanes share no mutable state (disjoint stripes, per-node logs, disjoint
//! lock grants). Hence each lane's output is a pure function of barrier
//! state, independent of OS-thread interleaving, and the node-ordered
//! merge makes the epoch result — committed bytes, log contents, force
//! counts, clocks — identical at every thread count, including 1. The
//! only scheduling freedom is *which* transactions share an epoch, and
//! that choice is made serially at the [`SITE_ADMIT`] tape site, so a
//! recorded schedule replays byte-identically on any host.

use crate::engine::{engine_ctx, SmDb};
use crate::error::DbError;
use crate::restart::InstantRedoState;
use crate::stats::EngineStats;
use serde::{Deserialize, Serialize};
use smdb_btree::TreeCtx;
use smdb_fault::Scheduler;
use smdb_lock::{LockMode, LockOutcome, ViolationTable};
use smdb_obs::names;
use smdb_sim::{LineId, MemError, NodeId, TxnId};
use smdb_storage::{PageId, StableDb};
use smdb_wal::{CheckpointStore, PageLsnTable};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Schedule-tape site drawn once per admission candidate (after the
/// footprint checks pass): choice `1` defers the transaction to a later
/// epoch, `0` admits it. Disabled/replay-exhausted draws return `0` — the
/// greedy historical admission — so the fuzzer explores epoch partitions
/// while the default stays deterministic.
pub const SITE_ADMIT: &str = "mt.admit";

/// One record operation of a multicore-scheduled transaction. Index
/// operations are not admitted in this mode (their page footprints are
/// data-dependent); use the serial API for index workloads.
#[derive(Clone, Debug)]
pub enum MtOp {
    /// Read a record slot under a shared lock.
    Read {
        /// Global record slot.
        slot: u64,
    },
    /// Update a record slot under an exclusive lock.
    Update {
        /// Global record slot.
        slot: u64,
        /// Payload (padded to the record size by the engine).
        data: Vec<u8>,
    },
}

impl MtOp {
    fn slot(&self) -> u64 {
        match self {
            MtOp::Read { slot } | MtOp::Update { slot, .. } => *slot,
        }
    }
}

/// One transaction submitted to the epoch scheduler: a home node and its
/// operations in program order.
#[derive(Clone, Debug)]
pub struct MtTxn {
    /// The node the transaction runs on.
    pub node: NodeId,
    /// Operations, in order.
    pub ops: Vec<MtOp>,
}

/// What one [`SmDb::run_epochs`] call did.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MtOutcome {
    /// Transactions committed (inside lanes or by serial retry).
    pub committed: u64,
    /// Epochs executed.
    pub epochs: u64,
    /// Most transactions admitted into a single epoch.
    pub max_epoch_txns: u64,
    /// Node-epochs stalled by a footprint or lock conflict
    /// (`engine.epoch_waits`).
    pub epoch_waits: u64,
    /// Admissions rejected by cross-node stripe false sharing — a foreign
    /// page, or a foreign stripe by hash, with no record-level collision
    /// (`sim.shard_conflicts`).
    pub data_conflicts: u64,
    /// Admissions rejected by a cross-node record-name collision in an
    /// incompatible mode (`lock.shard_conflicts`).
    pub lock_conflicts: u64,
    /// Pending coalesced-force windows drained at epoch barriers
    /// (`wal.appender_stalls`; in-lane commit drains are counted on the
    /// metric only).
    pub appender_stalls: u64,
    /// Admissions deferred by the schedule tape ([`SITE_ADMIT`]).
    pub deferred: u64,
    /// Transactions aborted inside a lane (footprint violation) and
    /// re-run serially between epochs.
    pub serial_retries: u64,
}

/// One admitted transaction with everything the lane needs pre-assigned.
#[derive(Clone, Debug)]
struct Admitted {
    txn: TxnId,
    ops: Vec<MtOp>,
    gsn_base: u64,
    gsn_block: u64,
}

/// One node's lane between assembly and the barrier: the node, its
/// claimed stripes, the detached child engine, and its admitted work.
type Lane = (NodeId, Vec<u32>, SmDb, Vec<Admitted>);

/// What one lane reports back at the barrier.
#[derive(Debug, Default)]
struct LaneReport {
    committed: u64,
    /// Transactions that hit a footprint violation: aborted in the lane,
    /// to be re-run serially on the parent.
    retries: Vec<Admitted>,
}

/// Whether a lane error means "escalate this transaction to a serial
/// retry" rather than "the engine is broken". `ForeignStripe` is the
/// designed escape hatch; a `WouldBlock` in a lane is a lock-grant miss
/// (same cause: the admitted footprint was wrong); `StablePageMissing` is
/// the lane's stub stable database refusing a page the pre-faulter did
/// not pin.
fn escalates(e: &DbError) -> bool {
    matches!(
        e,
        DbError::Mem(MemError::ForeignStripe { .. })
            | DbError::WouldBlock { .. }
            | DbError::StablePageMissing { .. }
    )
}

/// The lock names a transaction needs, in first-touch order, each in the
/// strongest mode any of its operations requires. Admission grants these
/// serially on the parent manager; the lane then treats membership in the
/// granted set as the grant.
fn lock_plan(ops: &[MtOp]) -> Vec<(u64, LockMode)> {
    let mut order: Vec<u64> = Vec::new();
    let mut modes: BTreeMap<u64, LockMode> = BTreeMap::new();
    for op in ops {
        let name = SmDb::lock_name_for_rec(op.slot());
        let mode = match op {
            MtOp::Read { .. } => LockMode::Shared,
            MtOp::Update { .. } => LockMode::Exclusive,
        };
        match modes.get_mut(&name) {
            None => {
                order.push(name);
                modes.insert(name, mode);
            }
            Some(m) => {
                if mode > *m {
                    *m = mode;
                }
            }
        }
    }
    order.into_iter().map(|n| (n, modes[&n])).collect()
}

impl SmDb {
    /// The coherence-directory stripes and heap pages a transaction's
    /// operations touch. The engine pins `stripe_lines` to
    /// `lines_per_page`, so a page (including its Page-LSN line) never
    /// straddles stripes and one probe per page suffices.
    fn mt_footprint(&self, ops: &[MtOp]) -> (BTreeSet<u32>, BTreeSet<PageId>) {
        let mut stripes = BTreeSet::new();
        let mut pages = BTreeSet::new();
        for op in ops {
            let rec = self.layout.rec_of_global(op.slot());
            pages.insert(rec.page);
            let line0 = LineId(self.layout.geometry.line_addr(rec.page, 0));
            stripes.insert(self.m.stripe_of(line0));
        }
        (stripes, pages)
    }

    /// Assemble an execution lane for `node`: a real engine over the
    /// detached stripes and the node's own WAL appender. The lane runs
    /// the full §6 protocol; only record-lock acquisition short-circuits
    /// against `granted` (the locks admission took on the parent).
    fn lane_for(&mut self, node: NodeId, stripes: &[u32], granted: BTreeSet<(TxnId, u64)>) -> SmDb {
        SmDb {
            cfg: self.cfg.clone(),
            m: self.m.lane_split(stripes),
            sdb: StableDb::new(self.layout.geometry),
            logs: self.logs.lane_split(node),
            plt: PageLsnTable::new(),
            ckpt: CheckpointStore::new(self.cfg.nodes),
            locks: self.locks.lane_fork(),
            tree: None,
            txns: BTreeMap::new(),
            seqs: self.seqs.clone(),
            layout: self.layout,
            heap_pages: self.heap_pages,
            gsn: 0,
            stats: EngineStats::default(),
            shadow: self.shadow.lane_fork(),
            pending_waits: BTreeMap::new(),
            fault: self.fault.clone(),
            sched: Scheduler::new(),
            pending_recovery: BTreeSet::new(),
            pending_lost_lines: 0,
            pending_total_failure: false,
            stale_heap_lines: BTreeSet::new(),
            stale_tree_pages: BTreeSet::new(),
            pending_commits: Vec::new(),
            violations: ViolationTable::new(),
            inherited_deps: BTreeMap::new(),
            instant: InstantRedoState::default(),
            mt_granted: Some(granted),
        }
    }

    /// Merge a lane back at the epoch barrier. Every component merge
    /// either commutes (counter addition, max-merge) or touches only the
    /// lane's own slice of parent state (its shards, its node's log and
    /// sequence counter), so the node-ordered merge is deterministic.
    fn lane_merge(&mut self, node: NodeId, lane: SmDb) {
        let SmDb { m, logs, plt, locks, txns, seqs, stats, shadow, .. } = lane;
        self.m.lane_merge(node, m);
        self.logs.lane_merge(node, logs);
        self.plt.absorb(&plt);
        self.locks.lane_absorb(&locks);
        self.txns.extend(txns);
        self.seqs[node.0 as usize] = seqs[node.0 as usize];
        self.stats.absorb(&stats);
        self.shadow.absorb(shadow);
    }

    /// Run `txns` to completion under the deterministic epoch scheduler,
    /// executing each epoch's per-node lanes on up to `threads` OS
    /// threads. The result — committed data, log bytes, force counts,
    /// clocks, [`MtOutcome`] — is identical at every `threads` value;
    /// see the module docs for the argument.
    ///
    /// Requires a quiescent engine (no active transactions, no pending
    /// recovery) and the serial feature set: no early lock release, no
    /// instant restart, no pipelined commits. Index workloads are not
    /// admitted ([`MtOp`] has no index operations).
    pub fn run_epochs(&mut self, txns: Vec<MtTxn>, threads: usize) -> Result<MtOutcome, DbError> {
        let threads = threads.max(1);
        let nodes = self.cfg.nodes as usize;
        assert!(!self.cfg.early_lock_release, "mt excludes early lock release");
        assert!(!self.instant_active(), "mt excludes instant restart");
        assert!(self.pending_recovery.is_empty(), "mt requires completed recovery");
        assert!(self.pending_commits.is_empty(), "mt requires drained commit pipeline");
        assert!(self.active_txns(None).is_empty(), "mt requires a quiescent engine");
        assert_eq!(self.m.surviving_nodes().len(), nodes, "mt requires every node up");
        for t in &txns {
            assert!((t.node.0 as usize) < nodes, "mt transaction on unknown node");
        }

        // Prologue: drain every appender and clear every active LBM mark
        // so no deferred-force obligation crosses into a lane whose owner
        // cannot force the mark owner's log (forcing first keeps the
        // Stable-LBM invariant while clearing).
        let all_stripes: Vec<u32> = (0..self.m.shard_count() as u32).collect();
        for n in 0..nodes {
            let node = NodeId(n as u16);
            if self.logs.force_all_checked(node)? {
                let cost = self.m.config().cost.log_force;
                self.m.advance(node, cost);
            }
            self.m.clear_active_in_stripes(node, &all_stripes);
        }

        let mut queues: Vec<VecDeque<MtTxn>> = (0..nodes).map(|_| VecDeque::new()).collect();
        for t in txns {
            queues[t.node.0 as usize].push_back(t);
        }
        let mut out = MtOutcome::default();
        let obs_on = self.m.obs().is_enabled();

        while queues.iter().any(|q| !q.is_empty()) {
            // ---- serial admission --------------------------------------
            let mut admitted: Vec<Vec<Admitted>> = (0..nodes).map(|_| Vec::new()).collect();
            // stripe -> claiming node, across this epoch.
            let mut claimed: BTreeMap<u32, usize> = BTreeMap::new();
            let mut granted: Vec<BTreeSet<(TxnId, u64)>> =
                (0..nodes).map(|_| BTreeSet::new()).collect();
            // name -> (claiming node, parent-side holder txn, held mode).
            // Same-node siblings piggyback on the holder's parent-side
            // grant (they serialize inside one lane), upgrading the
            // holder's mode through the manager when a later sibling
            // needs a stronger one.
            let mut name_holders: BTreeMap<u64, (usize, TxnId, LockMode)> = BTreeMap::new();
            let mut faulted: BTreeSet<(u16, PageId)> = BTreeSet::new();
            let mut epoch_txns: Vec<TxnId> = Vec::new();
            let mut admitted_total = 0u64;
            let mut gsn_cursor = self.gsn;
            // Round-robin over nodes, one candidate per node per round:
            // stripe claims — and therefore lane work — grow evenly across
            // nodes, instead of the first node swallowing its whole queue
            // and starving the epoch of parallelism. A node that hits a
            // conflict (or a tape deferral) sits out the rest of the
            // epoch; same-node stripe overlap is fine, those transactions
            // run sequentially in one lane.
            let mut seqs: Vec<u64> = self.seqs.clone();
            let mut stalled = vec![false; nodes];
            let mut waited = vec![false; nodes];
            let mut progress = true;
            while progress {
                progress = false;
                for n in 0..nodes {
                    if stalled[n] {
                        continue;
                    }
                    let node = NodeId(n as u16);
                    let Some(t) = queues[n].front() else { continue };
                    let (stripes, pages) = self.mt_footprint(&t.ops);
                    if stripes.iter().any(|s| claimed.get(s).is_some_and(|&o| o != n)) {
                        // Classify the stall. A record name held in an
                        // incompatible mode by another node's admitted
                        // transaction is a logical collision in the striped
                        // lock space (the lock table would block it too);
                        // anything else is physical false sharing in the
                        // coherence directory — a foreign page, or a
                        // foreign stripe by hash. Either way the candidate
                        // waits for the next epoch, so the split changes
                        // attribution only, never the schedule.
                        let lock_hit = lock_plan(&t.ops).iter().any(|&(name, mode)| {
                            name_holders.get(&name).is_some_and(|&(o, _, held)| {
                                o != n && !(mode == LockMode::Shared && held == LockMode::Shared)
                            })
                        });
                        if lock_hit {
                            out.lock_conflicts += 1;
                            if obs_on {
                                self.m.obs().metrics.inc(names::LOCK_SHARD_CONFLICTS);
                            }
                        } else {
                            out.data_conflicts += 1;
                            if obs_on {
                                self.m.obs().metrics.inc(names::SIM_SHARD_CONFLICTS);
                            }
                        }
                        stalled[n] = true;
                        waited[n] = true;
                        continue;
                    }
                    if admitted_total > 0 && self.sched.choose(SITE_ADMIT, 2) == 1 {
                        out.deferred += 1;
                        stalled[n] = true;
                        continue;
                    }
                    // Deterministic serial lock grant on the parent. A
                    // conflict can only be with a lock granted to another
                    // node's admitted transaction (everything else was
                    // released at the last barrier): a cross-node name
                    // collision in the striped lock space.
                    let plan = lock_plan(&t.ops);
                    let txn = TxnId::new(node, seqs[n] + 1);
                    let mut blocked = false;
                    // Parent-side grants/upgrades performed for THIS
                    // candidate, undone if a later plan entry blocks.
                    let mut acquired: Vec<(u64, TxnId)> = Vec::new();
                    for &(name, mode) in &plan {
                        match name_holders.get(&name).copied() {
                            Some((owner, _, _)) if owner != n => {
                                blocked = true;
                                break;
                            }
                            Some((_, _holder, held)) if held >= mode => {
                                // Sibling piggyback: the holder's
                                // parent-side grant already protects the
                                // name in a sufficient mode.
                            }
                            Some((_, holder, _)) => {
                                // Sibling upgrade: promote the holder's
                                // grant (sole holder — any other holder
                                // would be cross-node, caught above).
                                match self.locks.poll_from(
                                    &mut self.m,
                                    &mut self.logs,
                                    holder,
                                    name,
                                    mode,
                                    node,
                                )? {
                                    LockOutcome::Granted | LockOutcome::AlreadyHeld => {
                                        acquired.push((name, holder));
                                        name_holders.insert(name, (n, holder, mode));
                                    }
                                    LockOutcome::Waiting => {
                                        blocked = true;
                                        break;
                                    }
                                }
                            }
                            None => {
                                match self.locks.poll_from(
                                    &mut self.m,
                                    &mut self.logs,
                                    txn,
                                    name,
                                    mode,
                                    node,
                                )? {
                                    LockOutcome::Granted | LockOutcome::AlreadyHeld => {
                                        acquired.push((name, txn));
                                        name_holders.insert(name, (n, txn, mode));
                                    }
                                    LockOutcome::Waiting => {
                                        blocked = true;
                                        break;
                                    }
                                }
                            }
                        }
                    }
                    if blocked {
                        // Roll back this candidate's fresh grants (an
                        // upgraded sibling grant stays — strictly
                        // stronger protection, still released at the
                        // barrier by the holder).
                        for &(name, holder) in &acquired {
                            if holder == txn {
                                name_holders.remove(&name);
                            }
                        }
                        self.locks.release_all(&mut self.m, &mut self.logs, txn)?;
                        out.lock_conflicts += 1;
                        if obs_on {
                            self.m.obs().metrics.inc(names::LOCK_SHARD_CONFLICTS);
                        }
                        stalled[n] = true;
                        waited[n] = true;
                        continue;
                    }
                    // Admitted: claim stripes, pre-fault pages, assign the
                    // GSN block, record the grants for the lane.
                    seqs[n] += 1;
                    for s in stripes {
                        claimed.insert(s, n);
                    }
                    for page in pages {
                        if faulted.insert((node.0, page)) {
                            let mut ctx = engine_ctx!(self);
                            ctx.ensure_resident(node, page)?;
                        }
                    }
                    for &(name, _) in &plan {
                        granted[n].insert((txn, name));
                    }
                    let t = queues[n].pop_front().expect("front() just matched");
                    // Worst case per operation: one Update record (undo +
                    // redo GSN) plus slack for Begin/Commit bookkeeping.
                    let gsn_block = t.ops.len() as u64 * 2 + 8;
                    admitted[n].push(Admitted { txn, ops: t.ops, gsn_base: gsn_cursor, gsn_block });
                    gsn_cursor += gsn_block;
                    epoch_txns.push(txn);
                    admitted_total += 1;
                    progress = true;
                }
            }
            for &w in &waited {
                if w {
                    out.epoch_waits += 1;
                    if obs_on {
                        self.m.obs().metrics.inc(names::ENGINE_EPOCH_WAITS);
                    }
                }
            }
            assert!(
                admitted_total > 0,
                "epoch admitted nothing with work pending: admission cannot stall every node"
            );
            out.epochs += 1;
            out.max_epoch_txns = out.max_epoch_txns.max(admitted_total);
            self.gsn = gsn_cursor;

            // ---- lane assembly (serial) --------------------------------
            let participants: Vec<usize> =
                (0..nodes).filter(|&n| !admitted[n].is_empty()).collect();
            let mut lanes: Vec<Lane> = Vec::new();
            for &n in &participants {
                let node = NodeId(n as u16);
                let stripes: Vec<u32> =
                    claimed.iter().filter(|&(_, &o)| o == n).map(|(&s, _)| s).collect();
                let lane = self.lane_for(node, &stripes, std::mem::take(&mut granted[n]));
                lanes.push((node, stripes, lane, std::mem::take(&mut admitted[n])));
            }

            // ---- parallel execution ------------------------------------
            // Lanes are distributed round-robin over `threads` OS threads;
            // each thread runs its lanes sequentially. Outcomes are a pure
            // function of barrier state, so the distribution (and the
            // interleaving) cannot affect results.
            let mut results: Vec<Option<Result<LaneReport, DbError>>> =
                (0..lanes.len()).map(|_| None).collect();
            if threads == 1 || lanes.len() == 1 {
                results =
                    lanes.iter_mut().map(|(_, _, lane, work)| Some(run_lane(lane, work))).collect();
            } else {
                let spawn = threads.min(lanes.len());
                let mut buckets: Vec<Vec<(usize, &mut Lane)>> =
                    (0..spawn).map(|_| Vec::new()).collect();
                for (i, lane) in lanes.iter_mut().enumerate() {
                    buckets[i % spawn].push((i, lane));
                }
                let bucket_results = std::thread::scope(|s| {
                    let handles: Vec<_> = buckets
                        .into_iter()
                        .map(|bucket| {
                            s.spawn(move || {
                                bucket
                                    .into_iter()
                                    .map(|(i, (_, _, lane, work))| (i, run_lane(lane, work)))
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .flat_map(|h| h.join().expect("lane thread panicked"))
                        .collect::<Vec<_>>()
                });
                for (i, r) in bucket_results {
                    results[i] = Some(r);
                }
            }

            // ---- epoch barrier (serial, node order) --------------------
            let mut retries: Vec<(NodeId, Admitted)> = Vec::new();
            let mut first_error: Option<DbError> = None;
            for ((node, stripes, lane, _), result) in lanes.into_iter().zip(results) {
                let report = result.expect("every lane produced a result");
                self.lane_merge(node, lane);
                match report {
                    Ok(rep) => {
                        out.committed += rep.committed;
                        for a in rep.retries {
                            retries.push((node, a));
                        }
                    }
                    Err(e) => {
                        // Merge every lane before surfacing the error so
                        // the parent is structurally whole (shards and
                        // logs reattached) even on a failed epoch.
                        first_error.get_or_insert(e);
                    }
                }
                // Drain the appender: anything the lane left volatile
                // (abort compensation tails, a pending coalesced-force
                // window) becomes durable before the active marks that
                // defer to it are cleared.
                let log = self.logs.log(node);
                if (log.pending_force().is_some() || log.stable_lsn() < log.last_lsn())
                    && self.logs.force_all_checked(node)?
                {
                    let cost = self.m.config().cost.log_force;
                    self.m.advance(node, cost);
                    out.appender_stalls += 1;
                    if obs_on {
                        self.m.obs().metrics.inc(names::WAL_APPENDER_STALLS);
                    }
                }
                self.m.clear_active_in_stripes(node, &stripes);
            }
            // Release every admitted transaction's locks on the parent
            // (admission granted them there), in admission order.
            for txn in epoch_txns {
                self.locks.release_all(&mut self.m, &mut self.logs, txn)?;
            }
            if let Some(e) = first_error {
                return Err(e);
            }

            // ---- serial retries (footprint escapes) --------------------
            let retried = !retries.is_empty();
            for (node, a) in retries {
                out.serial_retries += 1;
                let txn = self.begin(node)?;
                for op in &a.ops {
                    match op {
                        MtOp::Read { slot } => {
                            self.read_on(txn, node, *slot)?;
                        }
                        MtOp::Update { slot, data } => {
                            self.update_on(txn, node, *slot, data)?;
                        }
                    }
                }
                self.commit(txn)?;
                out.committed += 1;
            }
            // Retries run the normal deferred-LBM path, whose active marks
            // assume any node can force the mark owner's log at the
            // trigger — untrue inside a lane. Re-run the prologue sweep so
            // no such mark survives into the next epoch's lanes.
            if retried {
                for n in 0..nodes {
                    let node = NodeId(n as u16);
                    if self.logs.force_all_checked(node)? {
                        let cost = self.m.config().cost.log_force;
                        self.m.advance(node, cost);
                    }
                    self.m.clear_active_in_stripes(node, &all_stripes);
                }
            }
        }
        Ok(out)
    }
}

/// Execute one lane's admitted transactions in program order. Runs on a
/// worker thread; touches only the lane engine.
fn run_lane(lane: &mut SmDb, work: &[Admitted]) -> Result<LaneReport, DbError> {
    let mut report = LaneReport::default();
    for a in work {
        lane.gsn = a.gsn_base;
        let node = a.txn.node();
        let txn = lane.begin(node)?;
        debug_assert_eq!(txn, a.txn, "lane sequence drifted from admission");
        let mut failed: Option<DbError> = None;
        for op in &a.ops {
            let r = match op {
                MtOp::Read { slot } => lane.read_on(txn, node, *slot).map(drop),
                MtOp::Update { slot, data } => lane.update_on(txn, node, *slot, data),
            };
            if let Err(e) = r {
                failed = Some(e);
                break;
            }
        }
        let outcome = match failed {
            None => lane.commit(txn),
            Some(e) => Err(e),
        };
        match outcome {
            Ok(()) => report.committed += 1,
            Err(e) if escalates(&e) => {
                lane.abort(txn)?;
                report.retries.push(a.clone());
            }
            Err(e) => return Err(e),
        }
        assert!(
            lane.gsn <= a.gsn_base + a.gsn_block,
            "transaction overran its pre-assigned GSN block"
        );
    }
    Ok(report)
}
