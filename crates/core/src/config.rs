//! Engine configuration: protocol selection and machine/database sizing.

use serde::{Deserialize, Serialize};
use smdb_lock::LcbGeometry;
use smdb_sim::{CoherenceKind, CostModel};
use smdb_wal::LbmMode;

/// Which restart-recovery scheme runs after a crash (§4.1.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RestartScheme {
    /// **Redo All**: every surviving node discards all cached database
    /// lines, then rebuilds its cache from its local redo log (records not
    /// reflected in the stable database). Discarding implicitly undoes any
    /// migrated uncommitted updates of crashed transactions. No undo tags
    /// needed.
    RedoAll,
    /// **Selective Redo**: each survivor redoes only its own updates that
    /// were resident exclusively on crashed nodes (found with the
    /// cache-probe that disables I/O misses), then undoes crashed
    /// transactions' surviving updates via the per-record undo tags.
    Selective,
}

/// The crash-recovery protocol the engine runs. The three middle variants
/// are the paper's Table 1 columns; `FaOnly` is the §3.3 baseline.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// Baseline that guarantees plain failure atomicity but **not** IFA:
    /// any node crash aborts *every* active transaction in the machine
    /// ("abort all transactions which are dependent on the memory of
    /// remote nodes ... this method is overkill" — §3.3; with shared
    /// support structures effectively every transaction is dependent).
    FaOnly,
    /// Volatile LBM + Redo All (Table 1, column 3).
    VolatileRedoAll,
    /// Volatile LBM + Selective Redo with undo tagging (Table 1, column 2).
    VolatileSelectiveRedo,
    /// Stable LBM with the log force performed on every update (§5.2's
    /// naive enforcement).
    StableEager,
    /// Stable LBM with coherence-triggered forcing (§5.2's proposed
    /// active-bit extension): the force happens at the latest admissible
    /// point — downgrade or invalidation of the active line.
    StableTriggered,
}

impl ProtocolKind {
    /// Short stable name (reports, observability events).
    pub fn name(self) -> &'static str {
        match self {
            ProtocolKind::FaOnly => "FaOnly",
            ProtocolKind::VolatileRedoAll => "VolatileRedoAll",
            ProtocolKind::VolatileSelectiveRedo => "VolatileSelectiveRedo",
            ProtocolKind::StableEager => "StableEager",
            ProtocolKind::StableTriggered => "StableTriggered",
        }
    }

    /// The LBM policy this protocol uses during normal operation.
    pub fn lbm_mode(self) -> LbmMode {
        match self {
            // The FA-only baseline still logs volatilely (it needs commit
            // durability and abort support), it just doesn't use the log
            // to isolate failures.
            ProtocolKind::FaOnly => LbmMode::Volatile,
            ProtocolKind::VolatileRedoAll | ProtocolKind::VolatileSelectiveRedo => {
                LbmMode::Volatile
            }
            ProtocolKind::StableEager => LbmMode::StableEager,
            ProtocolKind::StableTriggered => LbmMode::StableTriggered,
        }
    }

    /// The restart scheme this protocol pairs with.
    pub fn restart_scheme(self) -> RestartScheme {
        match self {
            ProtocolKind::VolatileRedoAll => RestartScheme::RedoAll,
            // FA-only performs a full rebuild, structurally the same pass
            // as Redo All (but after aborting everyone).
            ProtocolKind::FaOnly => RestartScheme::RedoAll,
            ProtocolKind::VolatileSelectiveRedo
            | ProtocolKind::StableEager
            | ProtocolKind::StableTriggered => RestartScheme::Selective,
        }
    }

    /// Whether records carry undo tags (Table 1: only Volatile LBM with
    /// Selective Redo requires them; Stable LBM protocols can undo from
    /// their stable logs, and we still maintain tags there only as cheap
    /// redundancy — accounting reports them only where required).
    pub fn uses_undo_tags(self) -> bool {
        matches!(self, ProtocolKind::VolatileSelectiveRedo)
    }

    /// Whether this protocol guarantees IFA.
    pub fn guarantees_ifa(self) -> bool {
        !matches!(self, ProtocolKind::FaOnly)
    }

    /// All protocol variants (bench sweeps).
    pub fn all() -> [ProtocolKind; 5] {
        [
            ProtocolKind::FaOnly,
            ProtocolKind::VolatileRedoAll,
            ProtocolKind::VolatileSelectiveRedo,
            ProtocolKind::StableEager,
            ProtocolKind::StableTriggered,
        ]
    }

    /// The IFA-guaranteeing variants (Table 1 columns).
    pub fn ifa_protocols() -> [ProtocolKind; 4] {
        [
            ProtocolKind::VolatileRedoAll,
            ProtocolKind::VolatileSelectiveRedo,
            ProtocolKind::StableEager,
            ProtocolKind::StableTriggered,
        ]
    }
}

/// Full engine configuration.
#[derive(Clone, Debug)]
pub struct DbConfig {
    /// Number of nodes.
    pub nodes: u16,
    /// Recovery protocol.
    pub protocol: ProtocolKind,
    /// Hardware coherence protocol.
    pub coherence: CoherenceKind,
    /// Simulated cost model.
    pub cost: CostModel,
    /// Cache line size, bytes.
    pub line_size: usize,
    /// Cache lines per page.
    pub lines_per_page: usize,
    /// Number of heap record slots to create.
    pub records: u32,
    /// Record payload size, bytes. Together with `line_size` this controls
    /// how many records co-locate in one cache line — the knob behind the
    /// paper's §3.1 failure scenarios.
    pub rec_data_size: usize,
    /// Lock-table bucket lines.
    pub lock_buckets: usize,
    /// LCB layout.
    pub lcb_geometry: LcbGeometry,
    /// Whether to create the B+-tree index.
    pub with_index: bool,
    /// Page budget for the index.
    pub index_pages: u32,
    /// §4.2.2 hardware stall option for references to lost lines.
    pub stall_on_lost: bool,
    /// Coalesce log forces: LBM force *requests* raise a pending
    /// high-water mark instead of each paying a physical force; the next
    /// physical force (commit, WAL rule, checkpoint, or an LBM request
    /// that cannot be deferred) covers the whole pending window. Purely a
    /// forward-path optimisation — recovery semantics are unchanged
    /// because a crash discards the pending window exactly like any other
    /// unforced log tail.
    pub coalesce_forces: bool,
    /// Early lock release (controlled lock violation): a committing
    /// transaction releases its write locks at commit-record *append* time
    /// instead of after the commit force. A transaction that then touches a
    /// violated name inherits a commit-LSN dependency on the releaser and
    /// is only acknowledged once a physical force covers the whole
    /// dependency chain; if a predecessor's node crashes before that
    /// covering force, dependents abort in cascade. Recovery itself is
    /// unchanged — the commit point is still the durable commit record.
    pub early_lock_release: bool,
    /// Poll conflicting lock requests instead of queueing them: a
    /// conflicting acquire returns [`crate::DbError::WouldBlock`] without
    /// parking a logged waiter in the LCB, and the caller re-issues the
    /// request later (paying the LCB probe each time). Used by the
    /// pipelined-commit drivers, whose blocked transactions retry in place
    /// rather than abort — polling keeps the log-record stream identical
    /// whether or not a request happened to conflict, which is what lets
    /// the E10-elr experiment compare durability volume across lock
    /// policies.
    pub lock_poll: bool,
    /// Instant restart (on-demand redo): the IFA restart stops after
    /// analysis, reinstall, index redo, undo, and lock recovery — the
    /// *heap* redo plan is not applied. Instead every heap line with a
    /// pending redo entry is marked *unrecovered* in the machine, and the
    /// final image is applied on first forward-path access (charged to the
    /// accessing transaction's force-wait stage) or by
    /// [`crate::SmDb::drain_redo`] in GSN order between scheduler steps.
    /// Time-to-first-transaction then tracks the analysis scan instead of
    /// the full redo pass. The FA-only baseline and total failures always
    /// recover eagerly.
    pub instant_restart: bool,
    /// Number of independent shards the simulated machine's coherence
    /// directory and line store are striped into. `1` (the default)
    /// reproduces the historical single-array layout byte-for-byte; larger
    /// values enable the multicore execution engine
    /// ([`crate::mt`]), which detaches disjoint stripe sets into
    /// per-thread execution lanes. The stripe granule is always
    /// `lines_per_page` so one page never straddles shards.
    pub sim_shards: usize,
}

impl DbConfig {
    /// A compact configuration suitable for tests and examples: 1 KiB
    /// pages, 40-byte records (3 records per 128-byte line), 256 records,
    /// a 32-bucket lock table, and a small index.
    pub fn small(nodes: u16, protocol: ProtocolKind) -> Self {
        DbConfig {
            nodes,
            protocol,
            coherence: CoherenceKind::WriteInvalidate,
            cost: CostModel::default(),
            line_size: 128,
            lines_per_page: 8,
            records: 256,
            rec_data_size: 40,
            lock_buckets: 32,
            lcb_geometry: LcbGeometry::co_located(),
            with_index: true,
            index_pages: 64,
            stall_on_lost: false,
            coalesce_forces: false,
            early_lock_release: false,
            lock_poll: false,
            instant_restart: false,
            sim_shards: 1,
        }
    }

    /// A larger configuration for benchmarks: 4 KiB pages, more records
    /// and lock buckets.
    pub fn bench(nodes: u16, protocol: ProtocolKind) -> Self {
        DbConfig {
            nodes,
            protocol,
            coherence: CoherenceKind::WriteInvalidate,
            cost: CostModel::default(),
            line_size: 128,
            lines_per_page: 32,
            records: 4096,
            rec_data_size: 40,
            lock_buckets: 256,
            lcb_geometry: LcbGeometry::co_located(),
            with_index: true,
            index_pages: 256,
            stall_on_lost: false,
            coalesce_forces: false,
            early_lock_release: false,
            lock_poll: false,
            instant_restart: false,
            sim_shards: 1,
        }
    }

    /// Switch the coherence protocol.
    pub fn with_coherence(mut self, k: CoherenceKind) -> Self {
        self.coherence = k;
        self
    }

    /// Use a custom record payload size.
    pub fn with_rec_data_size(mut self, bytes: usize) -> Self {
        self.rec_data_size = bytes;
        self
    }

    /// Use a custom cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Disable the index.
    pub fn without_index(mut self) -> Self {
        self.with_index = false;
        self
    }

    /// Enable coalesced (group) log forces.
    pub fn with_coalesced_forces(mut self) -> Self {
        self.coalesce_forces = true;
        self
    }

    /// Enable early lock release (controlled lock violation).
    pub fn with_early_lock_release(mut self) -> Self {
        self.early_lock_release = true;
        self
    }

    /// Poll conflicting lock requests instead of queueing them.
    pub fn with_lock_polling(mut self) -> Self {
        self.lock_poll = true;
        self
    }

    /// Enable instant restart (open early after analysis; on-demand +
    /// background heap redo).
    pub fn with_instant_restart(mut self) -> Self {
        self.instant_restart = true;
        self
    }

    /// Stripe the machine's coherence directory into `shards` shards
    /// (enables [`crate::mt`] execution lanes). Must be non-zero.
    pub fn with_sim_shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "shard count must be non-zero");
        self.sim_shards = shards;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn protocol_properties_match_table1() {
        use ProtocolKind::*;
        // Undo tagging: only Volatile LBM with Selective Redo.
        assert!(VolatileSelectiveRedo.uses_undo_tags());
        assert!(!VolatileRedoAll.uses_undo_tags());
        assert!(!StableEager.uses_undo_tags());
        assert!(!StableTriggered.uses_undo_tags());
        // Higher frequency of log forces: only Stable LBM.
        assert!(StableEager.lbm_mode().forces_eagerly());
        assert!(StableTriggered.lbm_mode().uses_triggers());
        assert_eq!(VolatileRedoAll.lbm_mode(), LbmMode::Volatile);
        // IFA guarantee.
        assert!(!FaOnly.guarantees_ifa());
        for p in ProtocolKind::ifa_protocols() {
            assert!(p.guarantees_ifa());
        }
    }

    #[test]
    fn small_config_is_consistent() {
        let c = DbConfig::small(4, ProtocolKind::VolatileSelectiveRedo);
        assert_eq!(c.nodes, 4);
        assert!(c.lcb_geometry.fits(c.line_size));
        assert!(c.rec_data_size + 2 <= c.line_size, "record plus tag fits a line");
    }
}
