//! The IFA oracle: a shadow model of what the database *should* contain,
//! and the checker that compares it with the engine after crash recovery.
//!
//! IFA (§3.3) demands that after any crash-and-recover episode:
//!
//! 1. every effect of every transaction that was active on a **crashed**
//!    node is gone;
//! 2. no effect of any transaction on a **surviving** node — committed or
//!    still active — is lost;
//! 3. locks mirror the same rule (§4.2.2): crashed transactions hold none,
//!    surviving active transactions hold exactly what they held.
//!
//! The shadow model is maintained by the engine on every logical operation
//! (it is test harness state, not part of the recovery protocols — the
//! protocols never read it).

use crate::engine::SmDb;
use crate::error::DbError;
use crate::txn::TxnStatus;
use smdb_btree::VAL_SIZE;
use smdb_sim::{NodeId, TxnId};
use std::collections::BTreeMap;

/// Pending (uncommitted) effects of one transaction. Every entry carries
/// the global write sequence number it was noted at, so commit application
/// can respect *write* order even when commits settle out of order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct Pending {
    /// slot → (write seq, written payload) (last write wins).
    writes: BTreeMap<u64, (u64, Vec<u8>)>,
    /// key → (write seq, Some(value) for inserts / None for deletes).
    index: BTreeMap<u64, (u64, Option<[u8; VAL_SIZE]>)>,
}

/// The logical shadow database.
///
/// Committed state is keyed by *write order*, not commit order: under early
/// lock release with pipelined group commit, per-node force acknowledgements
/// can settle two dependent commits in either order (the predecessor's
/// commit record may be durable long before its own ack arrives), while the
/// physical database — and recovery's highest-GSN redo — is always
/// last-*writer*-wins. So each noted write is stamped with a monotonic
/// sequence number, and [`ShadowDb::commit`] only overwrites a committed
/// entry with a newer-stamped one. (Found by the schedule fuzzer: a
/// successor's commit acked before its ELR predecessor's made the shadow
/// resurrect the predecessor's overwritten value.)
#[derive(Clone, Debug, Default)]
pub struct ShadowDb {
    committed: BTreeMap<u64, (u64, Vec<u8>)>,
    /// `None` is a delete tombstone: it must keep its seq so an
    /// out-of-order earlier insert cannot resurrect the key.
    committed_index: BTreeMap<u64, (u64, Option<[u8; VAL_SIZE]>)>,
    pending: BTreeMap<TxnId, Pending>,
    /// Global write sequence, bumped on every noted operation.
    seq: u64,
}

impl ShadowDb {
    /// Empty shadow state (all records zero, empty index).
    pub fn new() -> Self {
        Self::default()
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Note an uncommitted record write.
    pub fn note_update(&mut self, txn: TxnId, slot: u64, payload: Vec<u8>) {
        let seq = self.next_seq();
        self.pending.entry(txn).or_default().writes.insert(slot, (seq, payload));
    }

    /// Note an uncommitted index insert.
    pub fn note_index_insert(&mut self, txn: TxnId, key: u64, value: [u8; VAL_SIZE]) {
        let seq = self.next_seq();
        self.pending.entry(txn).or_default().index.insert(key, (seq, Some(value)));
    }

    /// Note an uncommitted index delete.
    pub fn note_index_delete(&mut self, txn: TxnId, key: u64) {
        let seq = self.next_seq();
        self.pending.entry(txn).or_default().index.insert(key, (seq, None));
    }

    /// Promote a transaction's pending effects to committed state.
    ///
    /// Each effect is applied only if it is *newer in write order* than the
    /// committed entry it would replace — commits may settle in either
    /// order under pipelined early lock release, but writes are serialized
    /// by 2PL, so write order is the ground truth.
    pub fn commit(&mut self, txn: TxnId) {
        if let Some(p) = self.pending.remove(&txn) {
            for (slot, (seq, v)) in p.writes {
                match self.committed.get(&slot) {
                    Some((have, _)) if *have > seq => {}
                    _ => {
                        self.committed.insert(slot, (seq, v));
                    }
                }
            }
            for (key, (seq, op)) in p.index {
                match self.committed_index.get(&key) {
                    Some((have, _)) if *have > seq => {}
                    _ => {
                        self.committed_index.insert(key, (seq, op));
                    }
                }
            }
        }
    }

    /// Discard a transaction's pending effects (abort or crash).
    pub fn drop_pending(&mut self, txn: TxnId) {
        self.pending.remove(&txn);
    }

    /// Discard pending effects of every transaction on the given nodes.
    pub fn drop_pending_for_nodes(&mut self, nodes: &[NodeId]) {
        self.pending.retain(|t, _| !nodes.contains(&t.node()));
    }

    /// Discard all pending effects (the FA-only baseline's "abort
    /// everyone").
    pub fn drop_all_pending(&mut self) {
        self.pending.clear();
    }

    /// The committed value of a record (zeros if never written).
    pub fn committed_value(&self, slot: u64, data_size: usize) -> Vec<u8> {
        self.committed.get(&slot).map(|(_, v)| v.clone()).unwrap_or_else(|| vec![0u8; data_size])
    }

    /// The value record `slot` should have *right now*, given that the
    /// listed transactions are still active: an active writer's pending
    /// value wins, else the committed value.
    pub fn expected_value(&self, slot: u64, data_size: usize, active: &[TxnId]) -> Vec<u8> {
        for txn in active {
            if let Some(p) = self.pending.get(txn) {
                if let Some((_, v)) = p.writes.get(&slot) {
                    return v.clone();
                }
            }
        }
        self.committed_value(slot, data_size)
    }

    /// Every value record `slot` may legitimately hold *right now*: one
    /// candidate per active writer's pending value, or the committed
    /// value when no active transaction wrote the slot. Under strict 2PL
    /// at most one active writer exists, so this is a singleton; under
    /// early lock release a committing predecessor (commit record
    /// appended, locks shed, ack pending) and a successor running on the
    /// violated lock can both have pending writes on the slot, and the
    /// shadow model does not track which physically wrote last — any of
    /// their values is consistent.
    pub fn expected_values(&self, slot: u64, data_size: usize, active: &[TxnId]) -> Vec<Vec<u8>> {
        let mut vals: Vec<Vec<u8>> = Vec::new();
        for txn in active {
            if let Some((_, v)) = self.pending.get(txn).and_then(|p| p.writes.get(&slot)) {
                if !vals.contains(v) {
                    vals.push(v.clone());
                }
            }
        }
        if vals.is_empty() {
            vals.push(self.committed_value(slot, data_size));
        }
        vals
    }

    /// The live index contents expected right now given the active
    /// transactions (their uncommitted inserts are physically present and
    /// unmarked; their uncommitted deletes are marked and thus invisible).
    pub fn expected_index(&self, active: &[TxnId]) -> BTreeMap<u64, [u8; VAL_SIZE]> {
        let mut map: BTreeMap<u64, [u8; VAL_SIZE]> =
            self.committed_index.iter().filter_map(|(k, (_, op))| op.map(|v| (*k, v))).collect();
        for txn in active {
            if let Some(p) = self.pending.get(txn) {
                for (key, (_, op)) in &p.index {
                    match op {
                        Some(v) => {
                            map.insert(*key, *v);
                        }
                        None => {
                            map.remove(key);
                        }
                    }
                }
            }
        }
        map
    }

    /// An empty shadow for an execution lane (epoch-parallel execution),
    /// with the write-sequence counter seeded from the parent. Sibling
    /// lanes start from the same seed, but the epoch scheduler only
    /// admits transactions with pairwise-disjoint footprints across
    /// lanes, so no two lanes ever stamp the same slot or key — equal
    /// stamps never meet at a merge.
    pub fn lane_fork(&self) -> ShadowDb {
        ShadowDb { seq: self.seq, ..ShadowDb::default() }
    }

    /// Fold a lane shadow back into the parent at an epoch barrier,
    /// applying the same newest-write-wins rule as [`ShadowDb::commit`].
    /// The parent's sequence counter advances past every stamp the lane
    /// issued, so later epochs always out-stamp earlier ones.
    pub fn absorb(&mut self, lane: ShadowDb) {
        assert!(lane.pending.is_empty(), "lane shadow merged with pending transactions");
        for (slot, (seq, v)) in lane.committed {
            match self.committed.get(&slot) {
                Some((have, _)) if *have > seq => {}
                _ => {
                    self.committed.insert(slot, (seq, v));
                }
            }
        }
        for (key, (seq, op)) in lane.committed_index {
            match self.committed_index.get(&key) {
                Some((have, _)) if *have > seq => {}
                _ => {
                    self.committed_index.insert(key, (seq, op));
                }
            }
        }
        self.seq = self.seq.max(lane.seq);
    }

    /// Record slots any pending transaction has written (for lock checks).
    pub fn pending_slots(&self, txn: TxnId) -> Vec<u64> {
        self.pending.get(&txn).map(|p| p.writes.keys().copied().collect()).unwrap_or_default()
    }

    /// Transactions with pending state.
    pub fn pending_txns(&self) -> Vec<TxnId> {
        self.pending.keys().copied().collect()
    }
}

/// Result of one IFA check.
#[derive(Clone, Debug, Default)]
pub struct IfaReport {
    /// Human-readable descriptions of every violation found.
    pub violations: Vec<String>,
    /// Records checked.
    pub records_checked: u64,
    /// Index keys checked.
    pub index_keys_checked: u64,
}

impl IfaReport {
    /// Whether IFA held.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panic with the violation list if IFA did not hold (test helper).
    pub fn assert_ok(&self) {
        assert!(self.ok(), "IFA violated:\n  {}", self.violations.join("\n  "));
    }
}

impl SmDb {
    /// Check the IFA guarantee against the shadow model.
    ///
    /// Valid after a completed recovery ([`SmDb::crash_and_recover`] or
    /// [`SmDb::recover`] returning `Ok`) or at any other point where no
    /// crash is pending recovery. Transactions still active on surviving
    /// nodes are fine — their pending effects are expected in place, and
    /// they are *masked into* the expectation rather than assumed away.
    ///
    /// Between [`SmDb::crash`] and a completed [`SmDb::recover`] the
    /// physical state legitimately still carries doomed transactions'
    /// residue, so nothing meaningful can be compared: the check reports
    /// a single violation naming the pending recovery instead of a storm
    /// of spurious value mismatches. Transactions doomed by the pending
    /// crash are likewise excluded from the active mask — recovery will
    /// abort them.
    ///
    /// `scan_node` performs the coherent index scan (pick any survivor).
    pub fn check_ifa(&mut self, scan_node: NodeId) -> IfaReport {
        let mut report = IfaReport::default();
        if self.recovery_pending() {
            report.violations.push(format!(
                "recovery pending for {:?}: call SmDb::recover before check_ifa",
                self.pending_recovery.iter().map(|n| n.0).collect::<Vec<_>>()
            ));
            return report;
        }
        // Instant restart: lines with deferred redo still carry stale
        // pre-crash images, and `current_value` peeks past the coherence
        // guard that would repair them — the comparison is meaningless
        // until the plan drains.
        if self.redo_pending() > 0 {
            report.violations.push(format!(
                "{} redo entries pending: drain_redo to empty before check_ifa",
                self.redo_pending()
            ));
            return report;
        }
        // Mask: only transactions whose every participant is up count as
        // active writers. A transaction with a crashed participant is
        // doomed — its pending effects must NOT be expected.
        let active: Vec<TxnId> = self
            .active_txns(None)
            .into_iter()
            .filter(|t| {
                self.txns
                    .get(t)
                    .map(|s| s.participants.iter().all(|p| !self.m.is_crashed(*p)))
                    .unwrap_or(false)
            })
            .collect();
        let data_size = self.record_layout().data_size;
        // 1. Record values.
        for slot in 0..self.record_count() as u64 {
            let expected = self.shadow.expected_values(slot, data_size, &active);
            match self.current_value(slot) {
                Ok(got) => {
                    if !expected.contains(&got) {
                        report.violations.push(format!(
                            "record {slot}: expected {:?}…, found {:?}…",
                            &expected[0][..expected[0].len().min(8)],
                            &got[..got.len().min(8)]
                        ));
                    }
                }
                Err(e) => report.violations.push(format!("record {slot}: unreadable: {e}")),
            }
            report.records_checked += 1;
        }
        // 2. Index contents.
        if self.tree.is_some() {
            let expected = self.shadow.expected_index(&active);
            match self.index_scan(scan_node) {
                Ok(live) => {
                    let got: BTreeMap<u64, [u8; VAL_SIZE]> = live.into_iter().collect();
                    for (k, v) in &expected {
                        match got.get(k) {
                            Some(g) if g == v => {}
                            Some(g) => report
                                .violations
                                .push(format!("index key {k}: expected {v:?}, found {g:?}")),
                            None => report
                                .violations
                                .push(format!("index key {k}: expected present, missing")),
                        }
                        report.index_keys_checked += 1;
                    }
                    for k in got.keys() {
                        if !expected.contains_key(k) {
                            report.violations.push(format!("index key {k}: unexpected entry"));
                        }
                    }
                }
                Err(e) => report.violations.push(format!("index scan failed: {e}")),
            }
        }
        // 3. Lock space: crashed/finished transactions hold nothing;
        // surviving active transactions hold the locks covering their
        // pending writes.
        for (txn, st) in &self.txns {
            let held = self.locks.held_locks(*txn);
            match st.status {
                TxnStatus::Active => {
                    if !active.contains(txn) {
                        continue; // doomed by an unrecovered crash: masked
                    }
                    // Under early lock release a committing transaction has
                    // legitimately shed its locks at commit-record append;
                    // it stays `Active` only until the ack. Requiring held
                    // locks here would be a false positive.
                    if self.cfg.early_lock_release && st.committing {
                        continue;
                    }
                    for slot in self.shadow.pending_slots(*txn) {
                        let name = Self::lock_name_for_rec(slot);
                        if !held.contains(&name) {
                            report
                                .violations
                                .push(format!("{txn}: active but lost its lock on record {slot}"));
                        }
                    }
                }
                TxnStatus::Committed | TxnStatus::Aborted => {
                    if !held.is_empty() {
                        report.violations.push(format!(
                            "{txn}: finished ({:?}) but still holds {} lock(s)",
                            st.status,
                            held.len()
                        ));
                    }
                }
            }
        }
        report
    }

    /// Lockstep cross-check of the lock manager's two representations:
    /// the volatile per-transaction chains against the durable LCB table
    /// in shared memory (see [`smdb_lock::LockManager::verify_chains`]).
    /// Reads run as `scan_node`; call when no recovery is pending.
    /// Returns human-readable violations (empty = consistent).
    pub fn check_lock_chains(&mut self, scan_node: NodeId) -> Result<Vec<String>, DbError> {
        Ok(self.locks.verify_chains(&mut self.m, scan_node)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(node: u16, seq: u64) -> TxnId {
        TxnId::new(NodeId(node), seq)
    }

    #[test]
    fn commit_promotes_pending() {
        let mut s = ShadowDb::new();
        let tx = t(0, 1);
        s.note_update(tx, 5, vec![1, 2]);
        s.note_index_insert(tx, 9, [7u8; VAL_SIZE]);
        assert_eq!(s.committed_value(5, 2), vec![0, 0]);
        s.commit(tx);
        assert_eq!(s.committed_value(5, 2), vec![1, 2]);
        assert_eq!(s.expected_index(&[]).get(&9), Some(&[7u8; VAL_SIZE]));
    }

    #[test]
    fn drop_pending_discards() {
        let mut s = ShadowDb::new();
        let tx = t(0, 1);
        s.note_update(tx, 5, vec![1]);
        s.drop_pending(tx);
        s.commit(tx); // no-op
        assert_eq!(s.committed_value(5, 1), vec![0]);
    }

    #[test]
    fn expected_value_prefers_active_writer() {
        let mut s = ShadowDb::new();
        let tx = t(0, 1);
        s.note_update(tx, 5, vec![9]);
        assert_eq!(s.expected_value(5, 1, &[tx]), vec![9]);
        assert_eq!(s.expected_value(5, 1, &[]), vec![0]);
    }

    #[test]
    fn drop_pending_for_nodes_filters_by_node() {
        let mut s = ShadowDb::new();
        let a = t(0, 1);
        let b = t(1, 1);
        s.note_update(a, 1, vec![1]);
        s.note_update(b, 2, vec![2]);
        s.drop_pending_for_nodes(&[NodeId(0)]);
        assert_eq!(s.pending_txns(), vec![b]);
    }

    #[test]
    fn pending_delete_hides_committed_key() {
        let mut s = ShadowDb::new();
        let a = t(0, 1);
        s.note_index_insert(a, 3, [1u8; VAL_SIZE]);
        s.commit(a);
        let b = t(1, 1);
        s.note_index_delete(b, 3);
        assert!(!s.expected_index(&[b]).contains_key(&3));
        assert!(s.expected_index(&[]).contains_key(&3));
    }
}
