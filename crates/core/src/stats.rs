//! Engine-level counters, including the Table 1 overhead breakdown.

use serde::{Deserialize, Serialize};

/// Counters maintained by the engine during normal operation. The fields
/// marked *(Table 1)* quantify the paper's qualitative overhead matrix:
/// a protocol "checks the box" exactly when its counter is non-zero under
/// a workload that exercises the mechanism.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineStats {
    /// Transactions begun.
    pub begins: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Transactions aborted voluntarily (lock conflicts etc.).
    pub voluntary_aborts: u64,
    /// Transactions aborted by crashes/recovery.
    pub crash_aborts: u64,
    /// Record reads.
    pub reads: u64,
    /// Record updates.
    pub updates: u64,
    /// Index inserts.
    pub index_inserts: u64,
    /// Index deletes.
    pub index_deletes: u64,
    /// *(Table 1: Undo Tagging)* tag writes performed because the protocol
    /// requires per-record undo tags.
    pub undo_tag_writes: u64,
    /// *(Table 1: Undo Tagging)* extra bytes written for tags.
    pub undo_tag_bytes: u64,
    /// Log forces performed at commit (needed for plain FA too — not an
    /// IFA overhead).
    pub commit_forces: u64,
    /// *(Table 1: Higher Frequency of Log Forces)* forces attributable to
    /// the Stable LBM policy (eager per-update forces and trigger-driven
    /// forces), beyond commit/WAL forces.
    pub lbm_forces: u64,
    /// LBM force *requests* absorbed by the coalescing window instead of
    /// paying a physical force (zero unless
    /// [`DbConfig::coalesce_forces`](crate::DbConfig) is set).
    pub lbm_force_requests: u64,
    /// Forces required by the WAL rule at page flush.
    pub wal_flush_forces: u64,
    /// *(Table 1: Early Commit of Structural Changes)* structural changes
    /// committed early (forced structural records): B-tree splits, root
    /// growths, lock-table overflow allocations.
    pub structural_early_commits: u64,
    /// Pages flushed (steals + checkpoints).
    pub page_flushes: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Lock requests denied under the no-wait policy.
    pub would_blocks: u64,
    /// Write locks released early at commit-record append (controlled lock
    /// violation), before the covering force made the commit durable.
    pub early_lock_releases: u64,
    /// Commit-LSN dependencies inherited by transactions that touched a
    /// violated lock name before the releaser's covering force.
    pub commit_deps: u64,
    /// Transactions aborted in cascade because a commit-dependency
    /// predecessor's node crashed before the covering force.
    pub dep_aborts: u64,
}

impl EngineStats {
    /// Counter-wise difference `self - earlier`. Saturates at zero: an
    /// `earlier` snapshot taken after a counter reset (or from a different
    /// engine) yields zeros instead of panicking on underflow.
    pub fn delta_since(&self, earlier: &EngineStats) -> EngineStats {
        macro_rules! d {
            ($($f:ident),*) => {
                EngineStats { $($f: self.$f.saturating_sub(earlier.$f)),* }
            };
        }
        d!(
            begins,
            commits,
            voluntary_aborts,
            crash_aborts,
            reads,
            updates,
            index_inserts,
            index_deletes,
            undo_tag_writes,
            undo_tag_bytes,
            commit_forces,
            lbm_forces,
            lbm_force_requests,
            wal_flush_forces,
            structural_early_commits,
            page_flushes,
            checkpoints,
            would_blocks,
            early_lock_releases,
            commit_deps,
            dep_aborts
        )
    }

    /// Fold an execution lane's counters into this one at an epoch
    /// barrier. Counter addition commutes, so sibling-lane merge order
    /// cannot change the totals.
    pub fn absorb(&mut self, other: &EngineStats) {
        macro_rules! a {
            ($($f:ident),*) => {
                $(self.$f += other.$f;)*
            };
        }
        a!(
            begins,
            commits,
            voluntary_aborts,
            crash_aborts,
            reads,
            updates,
            index_inserts,
            index_deletes,
            undo_tag_writes,
            undo_tag_bytes,
            commit_forces,
            lbm_forces,
            lbm_force_requests,
            wal_flush_forces,
            structural_early_commits,
            page_flushes,
            checkpoints,
            would_blocks,
            early_lock_releases,
            commit_deps,
            dep_aborts
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_subtracts() {
        let a = EngineStats { commits: 10, updates: 7, ..Default::default() };
        let b = EngineStats { commits: 4, updates: 2, ..Default::default() };
        let d = a.delta_since(&b);
        assert_eq!(d.commits, 6);
        assert_eq!(d.updates, 5);
        assert_eq!(d.reads, 0);
    }

    #[test]
    fn delta_saturates_on_counter_regress() {
        // `earlier` ahead of `self` (snapshot straddling a stats reset):
        // clamp to zero instead of panicking.
        let after_reset = EngineStats { commits: 1, ..Default::default() };
        let before_reset = EngineStats { commits: 50, updates: 9, ..Default::default() };
        let d = after_reset.delta_since(&before_reset);
        assert_eq!(d.commits, 0);
        assert_eq!(d.updates, 0);
    }
}
