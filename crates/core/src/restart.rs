//! Crash injection and restart recovery (§4.1.2, §4.2).
//!
//! After the simulator's low-level directory restore, the engine's restart
//! recovery must guarantee IFA:
//!
//! * **undo**: all effects of transactions active on crashed nodes are
//!   removed — from surviving caches (where they migrated), from the
//!   stable database (where they were stolen), and from the lock space;
//! * **redo**: no effect of any surviving node's transaction is lost —
//!   updates whose only copies died with a crashed cache are re-applied
//!   from the survivors' (intact) logs; committed transactions of the
//!   crashed nodes themselves are re-applied from their *stable* log
//!   prefixes (their commit force made them durable).
//!
//! Two schemes implement the redo side, as in the paper: **Redo All**
//! (discard every cached database line, rebuild from logs against the
//! stable database) and **Selective Redo** (redo only what was resident
//! exclusively on crashed nodes, then undo via per-record tags). The
//! FA-only baseline instead aborts *every* active transaction and performs
//! a full rebuild — the behaviour the paper's protocols exist to avoid.

use crate::config::{ProtocolKind, RestartScheme};
use crate::engine::{engine_ctx, PendingCommit, SmDb};
use crate::error::{req, DbError};
use crate::record::NULL_TAG;
use crate::txn::TxnStatus;
use serde::{Deserialize, Serialize};
use smdb_btree::{BtreeRecoveryStats, TreeCtx};
use smdb_lock::LockRecoveryStats;
use smdb_obs::{names, Event as ObsEvent, PhaseSpan, PhaseTiming};
use smdb_sim::{LineId, NodeId, TxnId};
use smdb_storage::PageId;
use smdb_wal::{LogPayload, Lsn, RecId};
use std::collections::{BTreeMap, BTreeSet};

/// Fault-injection site visited between restart-recovery phases (after
/// each of phases 1–6 of the IFA restart, and once mid full-restart). A
/// fire here kills the *recovery node itself*: the crash driver crashes
/// it and calls [`SmDb::recover`] again, which restarts recovery from a
/// fresh survivor over the (possibly larger) crashed set.
pub const FAULT_RECOVERY_PHASE: &str = "recovery.phase";

/// Fault-injection site visited before an instant restart's *on-demand*
/// redo applies a line's pending entries on the forward path (first
/// coherent access after the early open). A fire kills the accessing node
/// mid-drain: the crash driver crashes it and calls [`SmDb::recover`]
/// again, which re-derives the remaining plan from the retained logs.
pub const FAULT_REDO_ON_DEMAND: &str = "restart.redo.on_demand";

/// Fault-injection site visited at the start of every non-empty
/// *background* drain batch ([`SmDb::drain_redo`]). A fire kills the
/// draining node mid-drain, same contract as [`FAULT_REDO_ON_DEMAND`].
pub const FAULT_REDO_BACKGROUND: &str = "restart.redo.background";

/// What one crash-and-recover episode did.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RecoveryOutcome {
    /// Nodes that crashed.
    pub crashed: Vec<NodeId>,
    /// Transactions rolled back by recovery. Under IFA protocols this is
    /// exactly the set of transactions active on crashed nodes; under the
    /// FA-only baseline it is every active transaction in the machine.
    pub aborted: Vec<TxnId>,
    /// Active transactions on surviving nodes whose effects were
    /// preserved.
    pub preserved_active: Vec<TxnId>,
    /// Cache lines destroyed by the crash.
    pub lost_lines: u64,
    /// Heap redo operations applied.
    pub redo_applied: u64,
    /// Heap redo candidates skipped because the line was still cached on a
    /// survivor (the Selective-Redo probe).
    pub redo_skipped_cached: u64,
    /// Heap redo candidates skipped because the stable image already
    /// reflected the update.
    pub redo_skipped_stable: u64,
    /// Heap redo candidates dropped by the plan phase because a later
    /// candidate for the same record superseded them.
    pub redo_superseded: u64,
    /// Index redo operations applied.
    pub index_redo_applied: u64,
    /// Undo operations applied to cached records.
    pub undo_records_applied: u64,
    /// Stale committed tags cleared during the undo scan.
    pub tags_cleared: u64,
    /// Records patched in the stable database (undo of stolen updates).
    pub stable_undo_patches: u64,
    /// Lock-space recovery counters.
    pub lock_recovery: LockRecoveryStats,
    /// B-tree recovery counters.
    pub btree_recovery: BtreeRecoveryStats,
    /// Simulated cycles spent on recovery (machine makespan delta).
    pub recovery_cycles: u64,
    /// The surviving node that orchestrated reconstruction.
    pub recovery_node: NodeId,
    /// Log records visited by the single analysis scan.
    pub scan_records: u64,
    /// Highest per-node checkpoint LSN that bounded the redo scan (0 when
    /// no checkpoint had been taken).
    pub ckpt_bound_lsn: u64,
    /// Per-phase simulated-cycle and wall-clock spans of the IFA restart
    /// (empty for the FA-only full restart, which is a single monolithic
    /// rebuild pass).
    pub phases: Vec<PhaseTiming>,
}

/// Histogram of simulated cycles per recovery phase, keyed by phase name.
fn phase_histogram(phase: &str) -> &'static str {
    match phase {
        "stable_undo" => names::RECOVERY_PHASE_STABLE_UNDO,
        "reinstall" => names::RECOVERY_PHASE_REINSTALL,
        "cache_discard" => names::RECOVERY_PHASE_CACHE_DISCARD,
        "redo" => names::RECOVERY_PHASE_REDO,
        "undo" => names::RECOVERY_PHASE_UNDO,
        "lock_recovery" => names::RECOVERY_PHASE_LOCK_RECOVERY,
        "txn_table" => names::RECOVERY_PHASE_TXN_TABLE,
        _ => names::RECOVERY_PHASE_OTHER,
    }
}

/// One planned heap redo write. The after image is a refcounted handle
/// into the log record (`bytes::Bytes`), never a byte copy — redo lends
/// the logged payload all the way to the page write.
struct HeapRedo {
    gsn: u64,
    rec: RecId,
    /// The cache line holding `rec` (precomputed during analysis so the
    /// parallel plan phase is pure computation over owned data).
    line: LineId,
    txn: TxnId,
    image: bytes::Bytes,
}

/// One deferred heap redo write of an instant restart: the final on-page
/// bytes (tag + payload) for one record, precomputed by the recovery pass
/// and applied on first forward-path access or by the background drain.
struct PendingRedo {
    rec: RecId,
    line: LineId,
    bytes: Vec<u8>,
}

/// Instant-restart redo-work counters. Cumulative over the engine's
/// lifetime, like metrics ([`SmDb::instant_redo_counters`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstantRedoCounters {
    /// Heap redo entries deferred past open points (plan sizes summed).
    pub planned: u64,
    /// Entries applied inline on first forward-path access.
    pub on_demand: u64,
    /// Entries applied by the background drain.
    pub background: u64,
    /// Entries retired without a write because nothing was cached and the
    /// stable image already reflected them.
    pub skipped_stable: u64,
}

/// Deferred-redo state of an instant restart: the GSN-ordered remainder of
/// the heap redo plan after the early open. Empty whenever no drain is in
/// progress.
#[derive(Default)]
pub(crate) struct InstantRedoState {
    /// GSN-ordered plan; an entry flips to `None` once retired.
    entries: Vec<Option<PendingRedo>>,
    /// Pending entry indexes per cache line (ascending, hence GSN order).
    by_line: BTreeMap<LineId, Vec<usize>>,
    /// Background-drain cursor: every entry below it is retired.
    cursor: usize,
    /// Entries not yet retired.
    pending: usize,
    /// Heap lines destroyed by the crash whose reinstall was deferred past
    /// the open point: installed from stable on first access (or when a
    /// deferred entry's write faults their page in). A line leaves the set
    /// the moment it is installed.
    lost_lines: BTreeSet<LineId>,
    /// Node ids whose undo tags a deferred reinstall must scrub: the nodes
    /// down at plan time. The eager path clears these tags during its
    /// reinstall-plus-undo passes; the lazy path does it at install time
    /// for records no pending entry will overwrite anyway.
    scrub_tags: BTreeSet<u16>,
    /// Lifetime counters.
    counters: InstantRedoCounters,
}

impl InstantRedoState {
    fn push(&mut self, rec: RecId, line: LineId, bytes: Vec<u8>) {
        let idx = self.entries.len();
        self.entries.push(Some(PendingRedo { rec, line, bytes }));
        self.by_line.entry(line).or_default().push(idx);
        self.pending += 1;
        self.counters.planned += 1;
    }

    /// Drop the plan (a re-entered recovery re-derives it from the logs).
    fn clear_plan(&mut self) {
        self.entries.clear();
        self.by_line.clear();
        self.cursor = 0;
        self.pending = 0;
        self.lost_lines.clear();
        self.scrub_tags.clear();
    }

    pub(crate) fn pending(&self) -> usize {
        self.pending
    }

    fn planned_len(&self) -> u64 {
        self.entries.len() as u64
    }

    /// Lines still carrying pending entries.
    fn lines(&self) -> Vec<LineId> {
        self.by_line.keys().copied().collect()
    }

    /// Pending entry indexes for one line, in GSN order.
    fn line_entries(&self, line: LineId) -> Option<Vec<usize>> {
        self.by_line.get(&line).cloned()
    }

    /// Lowest-GSN pending entry (advances the background cursor).
    fn next_pending(&mut self) -> Option<usize> {
        while self.cursor < self.entries.len() {
            if self.entries[self.cursor].is_some() {
                return Some(self.cursor);
            }
            self.cursor += 1;
        }
        None
    }
}

/// One redo candidate for the index (applied sequentially in GSN order —
/// logical B-tree ops don't commute).
enum IxRedo {
    Insert { key: u64, value: [u8; 8], txn: TxnId },
    Delete { key: u64, value: [u8; 8], txn: TxnId },
    Remove { key: u64 },
    Unmark { key: u64 },
}

/// One undo action for a doomed transaction's effect recorded on a
/// surviving node's intact log.
enum DoomedOp {
    Rec { rec: RecId, before: bytes::Bytes },
    RemoveKey(u64),
    UnmarkKey(u64),
}

/// A planned restart operation: a reduced heap write or an index op.
enum PlannedOp {
    Rec(HeapRedo),
    Ix(IxRedo),
}

/// Per-crash analysis of the logs, built by **one pass over each retained
/// log** ([`SmDb::analyse_stable`]): commit status, durable traces of
/// not-committed transactions, last-writer maps for the stale-tag
/// predicate, last committed values, redo candidates past the checkpoint
/// bound, and doomed-transaction undo work.
#[derive(Default)]
struct StableAnalysis {
    /// Committed transactions, from the per-log incremental indexes
    /// (includes commits whose record was reclaimed by truncation).
    committed: BTreeSet<TxnId>,
    /// Stable-logged updates of *not-committed* transactions of the
    /// analysed nodes: `(gsn, txn, rec)`.
    uncommitted_updates: Vec<(u64, TxnId, RecId)>,
    /// Stable-logged index ops of not-committed transactions:
    /// `(gsn, txn, key, is_delete)`.
    uncommitted_index: Vec<(u64, TxnId, u64, bool)>,
    /// Last stable heap-update writer per (node, rec).
    last_rec_txn: BTreeMap<(NodeId, RecId), TxnId>,
    /// Last stable index-op writer per (node, key).
    last_key_txn: BTreeMap<(NodeId, u64), TxnId>,
    /// Highest-GSN committed after image per record, over every retained
    /// log (the §4.1.2 stable-log source of committed values).
    committed_values: BTreeMap<RecId, (u64, bytes::Bytes)>,
    /// Undo images of the analysed nodes' stable uncommitted updates per
    /// record: `(gsn, txn, before image)`. The backstop source of a last
    /// committed value when the committed update itself has been
    /// truncated but the record's stable image was stolen over.
    uncommitted_undo: BTreeMap<RecId, Vec<(u64, TxnId, bytes::Bytes)>>,
    /// Heap redo candidates past the checkpoint bound, in GSN order.
    heap_redo: Vec<HeapRedo>,
    /// Index redo candidates past the checkpoint bound, in GSN order.
    index_redo: Vec<(u64, IxRedo)>,
    /// Doomed transactions' effects on surviving logs (applied in reverse
    /// GSN order by the undo phase).
    doomed_ops: Vec<(u64, DoomedOp)>,
    /// Log records visited by the scan.
    scanned_records: u64,
    /// Highest per-node checkpoint LSN bounding the redo scan.
    ckpt_bound: u64,
}

impl StableAnalysis {
    fn is_committed_rec(&self, node: NodeId, rec: RecId) -> bool {
        self.last_rec_txn.get(&(node, rec)).map(|t| self.committed.contains(t)).unwrap_or(false)
    }

    fn is_committed_key(&self, node: NodeId, key: u64) -> bool {
        self.last_key_txn.get(&(node, key)).map(|t| self.committed.contains(t)).unwrap_or(false)
    }
}

/// Candidate count at which the redo plan fans out to scoped threads;
/// below it the same partition/reduce runs inline (identical result).
const PARALLEL_PLAN_THRESHOLD: usize = 64;

/// Number of line-keyed partitions in the redo plan.
const PLAN_BUCKETS: usize = 8;

/// Reduce one partition of heap redo candidates to the final (highest-GSN)
/// image per record. Pure computation over owned handles.
fn reduce_partition(part: Vec<HeapRedo>) -> Vec<HeapRedo> {
    let mut best: BTreeMap<RecId, HeapRedo> = BTreeMap::new();
    for c in part {
        match best.entry(c.rec) {
            std::collections::btree_map::Entry::Vacant(v) => {
                v.insert(c);
            }
            std::collections::btree_map::Entry::Occupied(mut o) => {
                if c.gsn >= o.get().gsn {
                    o.insert(c);
                }
            }
        }
    }
    best.into_values().collect()
}

/// The parallel redo *plan* phase: partition candidates by cache line,
/// reduce each partition to one final write per record (superseded
/// intermediate images are dropped), and merge back into a single
/// GSN-ordered schedule for the deterministic sequential apply.
///
/// Determinism: partitioning is a pure function of the line id, each
/// partition is reduced independently (records never span partitions, so
/// the reductions are disjoint), and the merged schedule is re-sorted by
/// the globally unique GSNs — the result is byte-identical whether the
/// partitions were reduced on worker threads or inline.
///
/// Returns the plan and the number of superseded candidates dropped.
fn plan_heap_redo(candidates: Vec<HeapRedo>) -> (Vec<HeapRedo>, u64) {
    let total = candidates.len();
    if total <= 1 {
        return (candidates, 0);
    }
    let mut parts: Vec<Vec<HeapRedo>> = (0..PLAN_BUCKETS).map(|_| Vec::new()).collect();
    for c in candidates {
        let b = (c.line.0 % PLAN_BUCKETS as u64) as usize;
        parts[b].push(c);
    }
    let reduced: Vec<Vec<HeapRedo>> = if total >= PARALLEL_PLAN_THRESHOLD {
        std::thread::scope(|s| {
            let handles: Vec<_> =
                parts.into_iter().map(|p| s.spawn(move || reduce_partition(p))).collect();
            handles.into_iter().map(|h| h.join().expect("plan worker panicked")).collect()
        })
    } else {
        parts.into_iter().map(reduce_partition).collect()
    };
    let mut plan: Vec<HeapRedo> = reduced.into_iter().flatten().collect();
    plan.sort_by_key(|c| c.gsn);
    let superseded = (total - plan.len()) as u64;
    (plan, superseded)
}

impl SmDb {
    /// Crash the given nodes and run the configured restart-recovery
    /// protocol. Thin wrapper over [`SmDb::crash`] + [`SmDb::recover`];
    /// pair with [`SmDb::check_ifa`] to validate the IFA guarantee.
    pub fn crash_and_recover(&mut self, crashed: &[NodeId]) -> Result<RecoveryOutcome, DbError> {
        self.crash(crashed);
        self.recover()
    }

    /// Crash the given nodes *without* recovering: caches are destroyed,
    /// volatile log tails are truncated to their stable prefixes, and the
    /// simulator's low-level directory restore runs. The nodes join the
    /// pending-recovery set consumed by [`SmDb::recover`]. Returns the
    /// nodes that actually crashed (already-down nodes are skipped).
    ///
    /// Between `crash` and a completed `recover` the database is *not*
    /// IFA-consistent: doomed transactions' effects are still present.
    pub fn crash(&mut self, nodes: &[NodeId]) -> Vec<NodeId> {
        let crashed: Vec<NodeId> =
            nodes.iter().copied().filter(|n| !self.m.is_crashed(*n)).collect();
        if crashed.is_empty() {
            return crashed;
        }
        let report = self.m.crash(&crashed);
        self.pending_lost_lines += report.lost_lines.len() as u64;
        self.logs.crash(&crashed);
        for &n in &crashed {
            self.plt.clear_node(n);
            self.pending_recovery.insert(n);
        }
        if self.m.surviving_nodes().is_empty() {
            // Machine-wide outage. Latch it: even if an interrupted
            // recovery attempt reboots a host node and then dies, later
            // attempts must still run the full restart (every active
            // transaction died in the outage).
            self.pending_total_failure = true;
        }
        // The commit point is the durable commit record (§4.1.1). A node
        // can die *after* forcing its commit record but before finishing
        // post-commit bookkeeping; such transactions are committed, not
        // doomed, and recovery will redo them from the stable logs.
        self.promote_durably_committed();
        self.m.obs().timeline.on_crash(self.m.max_clock());
        crashed
    }

    /// The transactions whose commit is durably *settled*: their commit
    /// record reached a stable log **and** — under controlled lock
    /// violation — every commit dependency recorded inside it is itself
    /// durably settled. Computed as a fixpoint over the per-log
    /// incremental indexes (no scan; `commit_lsns`/`commit_deps` survive
    /// checkpoint truncation): chains of violated commits drop from the
    /// successor end until only fully covered chains remain. A dependency
    /// on a commit record that was lost with its node's volatile log tail
    /// can never be satisfied, so the exclusion is permanent across
    /// however many recoveries follow.
    pub(crate) fn durably_committed_set(&self) -> BTreeSet<TxnId> {
        let mut set = BTreeSet::new();
        let nodes: Vec<NodeId> = self.m.node_ids().collect();
        for &n in &nodes {
            for t in self.logs.log(n).stable_commits() {
                set.insert(t);
            }
        }
        loop {
            let dropped: Vec<TxnId> = set
                .iter()
                .copied()
                .filter(|t| {
                    self.logs
                        .log(t.node())
                        .index()
                        .commit_deps_of(*t)
                        .iter()
                        .any(|d| !set.contains(&d.txn))
                })
                .collect();
            if dropped.is_empty() {
                break;
            }
            for t in dropped {
                set.remove(&t);
            }
        }
        set
    }

    /// Flip to `Committed` every transaction still marked active whose
    /// commit record reached a stable log with all its dependencies
    /// durably settled (see [`SmDb::crash`]).
    fn promote_durably_committed(&mut self) {
        let durable = self.durably_committed_set();
        let promoted: Vec<TxnId> = self
            .txns
            .values()
            .filter(|t| t.is_active() && durable.contains(&t.id))
            .map(|t| t.id)
            .collect();
        for txn in promoted {
            if let Some(t) = self.txns.get_mut(&txn) {
                t.status = TxnStatus::Committed;
                t.committing = false;
            }
            self.shadow.commit(txn);
            self.stats.commits += 1;
            // The commit settled off its home clock (mid-crash promotion
            // or a pipelined append overtaken by the crash); the span can
            // never be ended consistently.
            self.m.obs().spans.discard(txn.0);
            // Its violation edges are satisfied: successors no longer
            // inherit, and its own dependencies are settled.
            self.inherited_deps.remove(&txn);
            self.violations.resolve(txn);
        }
    }

    /// Run the configured restart-recovery protocol over every node
    /// crashed since the last completed recovery. Re-entrant: if recovery
    /// itself is interrupted (the recovery node dies, surfacing
    /// [`DbError::FaultCrash`] or a crash of its own), call `crash` on the
    /// victim and `recover` again — a fresh survivor is elected and the
    /// restart converges to the same IFA-consistent state. No-op when
    /// nothing is pending.
    pub fn recover(&mut self) -> Result<RecoveryOutcome, DbError> {
        let crashed: Vec<NodeId> = self.pending_recovery.iter().copied().collect();
        let mut outcome = RecoveryOutcome { crashed: crashed.clone(), ..Default::default() };
        if crashed.is_empty() {
            return Ok(outcome);
        }
        outcome.lost_lines = self.pending_lost_lines;
        // A new recovery supersedes any in-progress instant drain: the
        // analysis below re-derives the complete redo plan from the
        // retained logs (a checkpoint cannot have advanced the bound past
        // a pending entry — it drains first), so the stale deferred
        // entries and their coherence marks are dropped wholesale.
        self.instant.clear_plan();
        self.m.clear_all_unrecovered();
        let clock0 = self.m.max_clock();
        // A transaction dies if *any* node it executes on is down — for
        // single-node transactions that is just the home node; for
        // parallel transactions (§9) it is any participant. Recomputed
        // from the machine on every entry (statuses only flip in the final
        // phase), so an interrupted recovery re-derives the same — or,
        // after further crashes, a larger — doomed set.
        let crashed_active: Vec<TxnId> = self
            .txns
            .values()
            .filter(|t| t.is_active() && t.participants.iter().any(|p| self.m.is_crashed(*p)))
            .map(|t| t.id)
            .collect();
        // Controlled lock violation: every still-active transaction that
        // inherited a commit-LSN dependency — transitively — on a doomed
        // predecessor saw data that will never commit; it dies with the
        // predecessor (cascade abort). The closure is recomputed from the
        // inherited-dependency table on every entry, so an interrupted
        // recovery re-derives the same set (statuses flip only in the
        // final phase).
        let doomed_seed: BTreeSet<TxnId> = crashed_active.iter().copied().collect();
        let mut dep_doomed: BTreeSet<TxnId> = BTreeSet::new();
        loop {
            let mut grew = false;
            for (txn, deps) in &self.inherited_deps {
                if doomed_seed.contains(txn) || dep_doomed.contains(txn) {
                    continue;
                }
                if !self.txns.get(txn).map(|t| t.is_active()).unwrap_or(false) {
                    continue;
                }
                if deps
                    .iter()
                    .any(|d| doomed_seed.contains(&d.releaser) || dep_doomed.contains(&d.releaser))
                {
                    dep_doomed.insert(*txn);
                    grew = true;
                }
            }
            if !grew {
                break;
            }
        }
        // Records a doomed dependent reached through a violated lock name
        // are *contaminated*: the dependent's logged before image may be
        // the doomed predecessor's own uncommitted value, so undo must
        // restore the last committed payload instead.
        let mut contaminated: BTreeSet<RecId> = BTreeSet::new();
        for txn in doomed_seed.iter().chain(dep_doomed.iter()) {
            if let Some(deps) = self.inherited_deps.get(txn) {
                for d in deps {
                    if let Some(slot) = smdb_lock::names::rec_slot_of_name(d.name) {
                        if slot < self.cfg.records as u64 {
                            contaminated.insert(self.layout.rec_of_global(slot));
                        }
                    }
                }
            }
        }
        let doomed_all: Vec<TxnId> =
            crashed_active.iter().copied().chain(dep_doomed.iter().copied()).collect();
        let surviving_active: Vec<TxnId> =
            self.active_txns(None).into_iter().filter(|t| !doomed_all.contains(t)).collect();

        let survivors = self.m.surviving_nodes();
        let total_failure = self.pending_total_failure || survivors.is_empty();
        if survivors.is_empty() {
            // Machine-wide outage: reboot node 0 to host the rebuild.
            self.m.reboot_node(NodeId(0));
        }
        // The paper's IFA argument holds for *any* surviving host, so the
        // choice is schedulable (choice 0 = lowest survivor, the
        // historical pick) — a prime fuzz target.
        let recovery_node = if survivors.is_empty() {
            NodeId(0)
        } else {
            survivors[self.sched.choose("core.recovery.host", survivors.len())]
        };
        outcome.recovery_node = recovery_node;

        let protocol = self.cfg.protocol.name();
        let crashed_n = crashed.len() as u16;
        self.m
            .obs()
            .bus
            .emit(self.m.max_clock(), || ObsEvent::RecoveryBegin { crashed: crashed_n, protocol });
        if self.cfg.protocol == ProtocolKind::FaOnly || total_failure {
            self.full_restart(&mut outcome, recovery_node)?;
        } else {
            self.ifa_restart(
                &mut outcome,
                recovery_node,
                &doomed_all,
                &surviving_active,
                &contaminated,
            )?;
        }
        self.resolve_commit_pipeline(&dep_doomed)?;
        outcome.recovery_cycles = self.m.max_clock() - clock0;
        let cycles = outcome.recovery_cycles;
        // Doomed transactions never reach a commit/abort on their home
        // clock; drop their open spans so the tracker cannot leak.
        for txn in &outcome.aborted {
            self.m.obs().spans.discard(txn.0);
        }
        let obs = self.m.obs();
        obs.metrics.observe(names::RECOVERY_TOTAL_CYCLES, cycles);
        obs.metrics.add(names::RESTART_SCAN_RECORDS, outcome.scan_records);
        obs.metrics.add(names::RESTART_REDO_APPLIED, outcome.redo_applied);
        obs.metrics.add(
            names::RESTART_REDO_SKIPPED,
            outcome.redo_skipped_cached + outcome.redo_skipped_stable + outcome.redo_superseded,
        );
        obs.metrics.gauge_set(names::RESTART_CKPT_BOUND_LSN, outcome.ckpt_bound_lsn as i64);
        obs.bus.emit(self.m.max_clock(), || ObsEvent::RecoveryEnd { sim_cycles: cycles });
        obs.timeline.recovery_progress(
            self.m.max_clock(),
            outcome.scan_records,
            outcome.redo_applied,
            outcome.redo_applied + outcome.redo_skipped_cached + outcome.redo_skipped_stable,
        );
        obs.timeline.on_recovery_end(self.m.max_clock());
        self.pending_recovery.clear();
        self.pending_lost_lines = 0;
        self.pending_total_failure = false;
        if self.instant.pending() > 0 {
            // Instant restart: the database opens *here*, with the heap
            // redo plan still pending. Mark every affected line so the
            // coherence layer refuses to migrate or replicate its stale
            // bytes before the deferred redo applies. The index is fully
            // recovered (index redo is never deferred), but reinstalled
            // heap lines stay stale until the drain completes.
            for line in self.instant.lines() {
                self.m.mark_unrecovered(line);
            }
            self.m.obs().metrics.add(names::RESTART_OPEN_EARLY_CYCLES, cycles);
            self.stale_tree_pages.clear();
        } else {
            // Recovery completed: every reinstalled line/page has been
            // redone and undone; their contents are authoritative again.
            self.stale_heap_lines.clear();
            self.stale_tree_pages.clear();
        }
        Ok(outcome)
    }

    /// Whether any crashed node awaits recovery (the window between
    /// [`SmDb::crash`] and a completed [`SmDb::recover`]).
    pub fn recovery_pending(&self) -> bool {
        !self.pending_recovery.is_empty()
    }

    /// Settle the pipelined-commit bookkeeping after a completed recovery:
    /// count the cascade aborts, drop pending commits whose transaction
    /// recovery settled (promoted to `Committed`, or aborted — doomed,
    /// dep-doomed, or FA-only), release the locks of promoted non-ELR
    /// pipeliners (their deferred acknowledgement never ran), and clear
    /// the violation edges and inherited dependencies of everything that
    /// is no longer in flight.
    fn resolve_commit_pipeline(&mut self, dep_doomed: &BTreeSet<TxnId>) -> Result<(), DbError> {
        for _ in dep_doomed {
            self.stats.dep_aborts += 1;
        }
        if !dep_doomed.is_empty() {
            let obs = self.m.obs();
            if obs.metrics.is_enabled() {
                obs.metrics.add(names::TXN_DEP_ABORTS, dep_doomed.len() as u64);
            }
        }
        let settled: Vec<PendingCommit> = {
            let txns = &self.txns;
            let mut keep = Vec::new();
            let mut settled = Vec::new();
            for p in self.pending_commits.drain(..) {
                if txns.get(&p.txn).map(|t| t.is_active()).unwrap_or(false) {
                    keep.push(p);
                } else {
                    settled.push(p);
                }
            }
            self.pending_commits = keep;
            settled
        };
        for p in settled {
            let committed =
                self.txns.get(&p.txn).map(|t| t.status == TxnStatus::Committed).unwrap_or(false);
            self.violations.resolve(p.txn);
            self.inherited_deps.remove(&p.txn);
            if committed && !self.cfg.early_lock_release {
                // Promoted mid-pipeline while still holding its locks
                // (without ELR they are released at acknowledgement):
                // release them now. Crashed homes were scrubbed by lock
                // recovery already.
                if !self.m.is_crashed(p.txn.node()) {
                    self.locks.release_all(&mut self.m, &mut self.logs, p.txn)?;
                }
                self.pending_waits.remove(&p.txn);
            }
        }
        // Doomed dependents that never appended a commit record carry no
        // pending entry but still hold inherited-dependency bookkeeping.
        for txn in dep_doomed {
            self.inherited_deps.remove(txn);
            self.violations.resolve(*txn);
        }
        Ok(())
    }

    /// Crash point between recovery phases: the recovery node itself dies.
    fn phase_crash_point(&self, recovery_node: NodeId) -> Result<(), DbError> {
        if let Some(c) = self.fault.hit(FAULT_RECOVERY_PHASE, recovery_node.0) {
            return Err(DbError::FaultCrash(c));
        }
        Ok(())
    }

    /// Open a named recovery-phase span (bus event + paired clocks).
    fn begin_phase(&self, phase: &'static str) -> PhaseSpan {
        self.m.obs().bus.emit(self.m.max_clock(), || ObsEvent::RecoveryPhaseBegin { phase });
        PhaseSpan::begin(phase, self.m.max_clock())
    }

    /// Close a phase span: bus event, per-phase histogram, and the
    /// outcome's phase table (always recorded, even with observability
    /// off — the bench reports read it).
    fn end_phase(&self, span: PhaseSpan, outcome: &mut RecoveryOutcome) {
        let t = span.end(self.m.max_clock());
        let obs = self.m.obs();
        obs.metrics.observe(phase_histogram(t.phase), t.sim_cycles);
        let (phase, sim_cycles, wall_ns) = (t.phase, t.sim_cycles, t.wall_ns);
        obs.bus.emit(self.m.max_clock(), || ObsEvent::RecoveryPhaseEnd {
            phase,
            sim_cycles,
            wall_ns,
        });
        // Progress gauges accumulate phase by phase; each phase boundary
        // lands a sample in the availability timeline's current bucket.
        obs.timeline.recovery_progress(
            self.m.max_clock(),
            outcome.scan_records,
            outcome.redo_applied,
            outcome.redo_applied + outcome.redo_skipped_cached + outcome.redo_skipped_stable,
        );
        outcome.phases.push(t);
    }

    // ------------------------------------------------------------------
    // Shared analysis helpers
    // ------------------------------------------------------------------

    /// Analyse the logs — the **single scan** of restart recovery. Each
    /// retained log is read exactly once (crashed/analysed nodes: the
    /// stable prefix; survivors: the full retained log, volatile tail
    /// included), and every product recovery needs is collected in that
    /// one pass:
    ///
    /// * commit status — no scan at all: read off the per-log incremental
    ///   indexes, and therefore immune to Commit records reclaimed by
    ///   checkpoint truncation;
    /// * durable uncommitted traces + last-writer maps of the analysed
    ///   nodes (the undo analysis), with undo images lent as refcounted
    ///   handles;
    /// * the highest-GSN retained committed after image per record (the
    ///   paper's §4.1.2 stable-log source of committed values);
    /// * redo candidates strictly past each log's checkpoint LSN —
    ///   truncation keeps the retained prefix near that bound, so the
    ///   scan cost tracks work since the last checkpoint, not history
    ///   length;
    /// * doomed transactions' effects on surviving logs, for the undo
    ///   phase.
    ///
    /// A log whose incremental index proves it retains no data records is
    /// skipped without being read at all. With `full` set (FA-only / total
    /// failure), every node is analysed, only stable prefixes are read,
    /// and redo is restricted to committed transactions.
    fn analyse_stable(
        &self,
        analysed: &[NodeId],
        doomed: &BTreeSet<TxnId>,
        full: bool,
    ) -> StableAnalysis {
        let mut a = StableAnalysis::default();
        self.m.obs().metrics.inc(names::RESTART_ANALYSIS_SCANS);
        let nodes: Vec<NodeId> = self.m.node_ids().collect();
        // Commit status covers *every* node: commit records are always
        // forced, and a parallel transaction's commit lives on its home
        // node, which may differ from the analysed nodes. Under
        // controlled lock violation a durable commit record only counts
        // when its recorded dependencies are durably settled too — the
        // dependency-filtered fixpoint decides.
        a.committed = self.durably_committed_set();
        let to_arr = |b: &bytes::Bytes| {
            let mut v = [0u8; 8];
            let n = b.len().min(8);
            v[..n].copy_from_slice(&b[..n]);
            v
        };
        for &n in &nodes {
            let log = self.logs.log(n);
            let bound = self.ckpt.last().lsn_for(n);
            a.ckpt_bound = a.ckpt_bound.max(bound.0);
            if !log.has_data_after(log.truncation_point()) {
                continue; // index proves no retained data records
            }
            let is_analysed = full || analysed.contains(&n);
            let recs = if is_analysed { log.stable_records() } else { log.records() };
            for lrec in recs {
                a.scanned_records += 1;
                let Some(txn) = lrec.payload.txn() else { continue };
                // Skip the synthetic recovery transactions (seq 0): an
                // interrupted recovery attempt leaves its redo's
                // IndexInsert records in the (now-crashed) recovery node's
                // stable log, and they re-install *committed* entries —
                // treating them as uncommitted ops would undo committed
                // data on the next attempt.
                if txn.seq() == 0 {
                    continue;
                }
                let committed = a.committed.contains(&txn);
                let is_doomed = doomed.contains(&txn);
                // A transaction the (crash-surviving, shared-memory) txn
                // table already records as `Aborted` was rolled back by a
                // previous recovery or a voluntary abort — but when its
                // home node is *still down*, its stable log keeps being
                // re-analysed by every subsequent recovery. Its retained
                // records must not re-enter the undo candidate sets: live
                // transactions may have legitimately re-written those
                // records since the rollback, and re-applying the stale
                // before images would destroy their updates. (Found by
                // the schedule fuzzer.) It still feeds the last-writer
                // maps so the stale-tag predicate sees the true history.
                let settled_aborted =
                    self.txns.get(&txn).is_some_and(|t| t.status == TxnStatus::Aborted);
                // Redo candidacy: strictly past the checkpoint bound and
                // never doomed; analysed nodes (and everyone, under a
                // full restart) contribute committed work only.
                let redo = lrec.lsn > bound && !is_doomed && (committed || !(is_analysed || full));
                match &lrec.payload {
                    LogPayload::Update { rec, undo, redo: after, gsn, .. } => {
                        if is_analysed {
                            a.last_rec_txn.insert((n, *rec), txn);
                            if !committed && !settled_aborted {
                                a.uncommitted_updates.push((*gsn, txn, *rec));
                                a.uncommitted_undo.entry(*rec).or_default().push((
                                    *gsn,
                                    txn,
                                    undo.clone(),
                                ));
                            }
                        } else if is_doomed {
                            a.doomed_ops
                                .push((*gsn, DoomedOp::Rec { rec: *rec, before: undo.clone() }));
                        }
                        if committed {
                            let e = a
                                .committed_values
                                .entry(*rec)
                                .or_insert((0, bytes::Bytes::from(&[][..])));
                            if *gsn >= e.0 {
                                *e = (*gsn, after.clone());
                            }
                        }
                        if redo {
                            a.heap_redo.push(HeapRedo {
                                gsn: *gsn,
                                rec: *rec,
                                line: self.rec_line(*rec),
                                txn,
                                image: after.clone(),
                            });
                        }
                    }
                    LogPayload::IndexInsert { key, value, gsn, .. } => {
                        if is_analysed {
                            a.last_key_txn.insert((n, *key), txn);
                            if !committed && !settled_aborted {
                                a.uncommitted_index.push((*gsn, txn, *key, false));
                            }
                        } else if is_doomed {
                            a.doomed_ops.push((*gsn, DoomedOp::RemoveKey(*key)));
                        }
                        if redo {
                            a.index_redo.push((
                                *gsn,
                                IxRedo::Insert { key: *key, value: to_arr(value), txn },
                            ));
                        }
                    }
                    LogPayload::IndexDelete { key, value, gsn, .. } => {
                        if is_analysed {
                            a.last_key_txn.insert((n, *key), txn);
                            if !committed && !settled_aborted {
                                a.uncommitted_index.push((*gsn, txn, *key, true));
                            }
                        } else if is_doomed {
                            a.doomed_ops.push((*gsn, DoomedOp::UnmarkKey(*key)));
                        }
                        if redo {
                            a.index_redo.push((
                                *gsn,
                                IxRedo::Delete { key: *key, value: to_arr(value), txn },
                            ));
                        }
                    }
                    LogPayload::IndexRemove { key, gsn, .. } => {
                        if is_analysed {
                            a.last_key_txn.insert((n, *key), txn);
                        }
                        if redo {
                            a.index_redo.push((*gsn, IxRedo::Remove { key: *key }));
                        }
                    }
                    LogPayload::IndexUnmark { key, gsn, .. } => {
                        if is_analysed {
                            a.last_key_txn.insert((n, *key), txn);
                        }
                        if redo {
                            a.index_redo.push((*gsn, IxRedo::Unmark { key: *key }));
                        }
                    }
                    _ => {}
                }
            }
        }
        a.heap_redo.sort_by_key(|c| c.gsn);
        a.index_redo.sort_by_key(|(gsn, _)| *gsn);
        a
    }

    /// The last committed payload for one record, from the single-pass
    /// analysis. The paper's §4.1.2 source: *"the last committed value of
    /// these records will necessarily be in stable store — either in the
    /// stable log, or in the stable database."*
    ///
    /// Precedence: the highest-GSN retained committed after image wins
    /// unless an uncommitted update follows it (higher GSN). In that case
    /// the final run of uncommitted writes is all by one transaction —
    /// strict 2PL means every transaction interposed since the last
    /// commit either committed or restored the value on abort — so that
    /// transaction's earliest undo image *is* the last committed value.
    /// This stays correct even when the committed update's own log record
    /// has been reclaimed by checkpoint truncation. Records with no
    /// retained log trace take their value from the (checkpoint-flushed)
    /// stable database.
    fn last_committed_payload(
        &self,
        analysis: &StableAnalysis,
        rec: RecId,
    ) -> Result<Vec<u8>, DbError> {
        let committed = analysis.committed_values.get(&rec);
        let chain = analysis.uncommitted_undo.get(&rec);
        let latest = chain.and_then(|c| c.iter().max_by_key(|(gsn, _, _)| *gsn));
        match (committed, latest) {
            (Some((gc, value)), Some((gu, _, _))) if gc > gu => Ok(value.to_vec()),
            (_, Some((_, tstar, _))) => {
                let (_, _, before) = req(
                    req(chain, "latest undo entry drawn from a present chain")?
                        .iter()
                        .filter(|(_, t, _)| t == tstar)
                        .min_by_key(|(gsn, _, _)| *gsn),
                    "t* drawn from its own undo chain",
                )?;
                Ok(before.to_vec())
            }
            (Some((_, value)), None) => Ok(value.to_vec()),
            (None, None) => {
                let img = self
                    .sdb
                    .peek_page(rec.page)
                    .ok_or(DbError::StablePageMissing { page: rec.page })?;
                let off = self.layout.payload_offset(rec.slot);
                Ok(img[off..off + self.layout.data_size].to_vec())
            }
        }
    }

    /// Undo stolen updates in the stable database: every record with a
    /// durable trace of a not-committed transaction gets its last
    /// committed value (and a null tag) patched into the stable image.
    /// WAL guarantees the trace exists whenever a steal happened.
    fn patch_stable_undo(
        &mut self,
        analysis: &StableAnalysis,
        outcome: &mut RecoveryOutcome,
    ) -> Result<(), DbError> {
        let recs: BTreeSet<RecId> =
            analysis.uncommitted_updates.iter().map(|(_, _, r)| *r).collect();
        for rec in recs {
            let value = self.last_committed_payload(analysis, rec)?;
            let off = self.layout.page_offset(rec.slot);
            let bytes = self.layout.encode(NULL_TAG, &value);
            let img = self
                .sdb
                .peek_page(rec.page)
                .ok_or(DbError::StablePageMissing { page: rec.page })?;
            if img[off..off + bytes.len()] != bytes[..] {
                self.sdb.patch(rec.page, off, &bytes);
                outcome.stable_undo_patches += 1;
            }
        }
        Ok(())
    }

    /// Charge the sequential log-device read behind the analysis scan to
    /// the recovery node's clock: restart time must scale with the log
    /// actually retained, which is what checkpoint truncation bounds.
    fn charge_analysis_scan(&mut self, recovery_node: NodeId, scanned: u64) {
        let cost = self.m.config().cost.log_scan_record;
        self.m.advance(recovery_node, cost * scanned);
    }

    /// The line holding a record.
    pub(crate) fn rec_line(&self, rec: RecId) -> LineId {
        let (line_idx, _) = self.layout.line_and_offset(rec.slot);
        LineId(self.layout.geometry.line_addr(rec.page, line_idx))
    }

    /// Reinstall every heap line destroyed by the crash from its stable
    /// page image, restoring the per-page all-or-nothing residency
    /// invariant the buffer manager relies on. Returns the reinstalled
    /// lines (they carry *stale stable* content, which the redo and undo
    /// passes treat accordingly).
    fn normalize_lost_heap_lines(
        &mut self,
        recovery_node: NodeId,
    ) -> Result<BTreeSet<LineId>, DbError> {
        let mut reinstalled = BTreeSet::new();
        let g = self.layout.geometry;
        for p in 0..self.heap_pages {
            let page = PageId(p);
            let mut charged = false;
            // Borrow the stable image once per page; `install_line` only
            // touches `self.m`, so no copy of the page is needed.
            let img = self.sdb.peek_page(page).ok_or(DbError::StablePageMissing { page })?;
            for idx in 0..g.lines_per_page {
                let line = LineId(g.line_addr(page, idx));
                if self.m.is_lost(line) {
                    let off = g.line_offset(idx);
                    self.m.install_line(recovery_node, line, &img[off..off + g.line_size])?;
                    if !charged {
                        let cost = self.m.config().cost.disk_io;
                        self.m.advance(recovery_node, cost);
                        charged = true;
                    }
                    reinstalled.insert(line);
                }
            }
        }
        Ok(reinstalled)
    }

    /// All heap lines currently cached on surviving nodes (the §4.1.2
    /// probe, snapshotted at crash time before any reinstall).
    fn cached_heap_lines(&self) -> BTreeSet<LineId> {
        let mut set = BTreeSet::new();
        for node in self.m.surviving_nodes() {
            for (line, _) in self.m.iter_cached(node) {
                if self.is_heap_line(line) {
                    set.insert(line);
                }
            }
        }
        set
    }

    /// Expected full on-page bytes (tag + payload) of a record after redo.
    fn expected_rec_bytes(&self, txn: TxnId, payload: &[u8]) -> Vec<u8> {
        let tagging = self.cfg.protocol.uses_undo_tags();
        let active = self
            .txns
            .get(&txn)
            .map(|t| t.is_active() && !self.m.is_crashed(txn.node()))
            .unwrap_or(false);
        let tag = if tagging && active { txn.node().0 } else { NULL_TAG };
        self.layout.encode(tag, payload)
    }

    // ------------------------------------------------------------------
    // Instant restart: on-demand + background redo
    // ------------------------------------------------------------------

    /// Deferred recovery work still pending from an instant restart's
    /// early open: heap redo entries plus lost lines whose reinstall was
    /// deferred but have no redo candidate of their own. Zero whenever no
    /// drain is in progress (including always, without
    /// [`crate::DbConfig::instant_restart`]). Counting the uninstalled
    /// lost lines matters when the deferred plan is *empty*: the window
    /// is not closed until they are resident again, or a raw full-page
    /// reader (checkpoint flush) trips over a still-lost line.
    pub fn redo_pending(&self) -> usize {
        self.instant.pending() + self.instant.lost_lines.len()
    }

    /// Lifetime instant-redo counters (entries planned at open points,
    /// applied on demand, applied by the background drain, retired as
    /// stable-image skips).
    pub fn instant_redo_counters(&self) -> InstantRedoCounters {
        self.instant.counters
    }

    /// Whether an instant restart still has deferred recovery work — plan
    /// entries pending or lost lines awaiting their lazy reinstall. The
    /// forward-path hooks gate on this (one cheap check in steady state).
    pub(crate) fn instant_active(&self) -> bool {
        self.instant.pending > 0 || !self.instant.lost_lines.is_empty()
    }

    /// Whether a pending deferred entry holds `rec`'s final bytes.
    fn instant_covers(&self, rec: RecId) -> bool {
        let line = self.rec_line(rec);
        self.instant.by_line.get(&line).is_some_and(|idxs| {
            idxs.iter().any(|&i| self.instant.entries[i].as_ref().is_some_and(|e| e.rec == rec))
        })
    }

    /// Install the still-lost lines of `page` from its stable image (the
    /// deferred half of the eager reinstall phase), charging one disk read
    /// to `node`. Every line with no surviving holder is installed — not
    /// just flagged-lost ones — restoring the per-page all-or-nothing
    /// residency the line-0 probe relies on (a write updates the page-LSN
    /// header too, so the last writer sole-holds the header while data
    /// lines keep older holders; Redo-All's discard then strips those,
    /// leaving holder-less lines next to deferred-lost ones). Undo tags of
    /// nodes down at plan time are scrubbed for records no pending entry
    /// covers — exactly the tags the eager reinstall-plus-undo passes
    /// would have cleared. Installed lines are recorded as stale
    /// reinstalls until the drain completes.
    fn install_deferred_lost(&mut self, node: NodeId, page: PageId) -> Result<(), DbError> {
        let g = self.layout.geometry;
        let todo: Vec<(usize, LineId)> = (0..g.lines_per_page)
            .map(|idx| (idx, LineId(g.line_addr(page, idx))))
            .filter(|(_, l)| self.instant.lost_lines.contains(l) || self.m.holders(*l).is_empty())
            .collect();
        if todo.is_empty() {
            return Ok(());
        }
        let mut img = self.sdb.peek_page(page).ok_or(DbError::StablePageMissing { page })?.to_vec();
        let rpl = self.layout.records_per_line();
        for &(line_idx, _) in &todo {
            if line_idx == 0 {
                continue; // Page-LSN line holds no records
            }
            for k in 0..rpl {
                let slot = ((line_idx - 1) * rpl + k) as u16;
                if slot as usize >= self.layout.records_per_page() {
                    break;
                }
                let off = self.layout.page_offset(slot);
                let tag = u16::from_le_bytes(img[off..off + 2].try_into().expect("tag"));
                if tag != NULL_TAG
                    && self.instant.scrub_tags.contains(&tag)
                    && !self.instant_covers(RecId::new(page, slot))
                {
                    img[off..off + 2].copy_from_slice(&NULL_TAG.to_le_bytes());
                }
            }
        }
        let cost = self.m.config().cost.disk_io;
        self.m.advance(node, cost);
        for (idx, line) in todo {
            let off = g.line_offset(idx);
            self.m.install_line(node, line, &img[off..off + g.line_size])?;
            self.instant.lost_lines.remove(&line);
            self.stale_heap_lines.insert(line);
        }
        Ok(())
    }

    /// Apply a line's pending recovery before `node` accesses it
    /// coherently: install it from stable if its reinstall was deferred,
    /// then apply its pending plan entries. No-op when the line carries
    /// neither. The engine calls this from every forward path that can
    /// reach an unrecovered heap line: record-lock grants (reads/updates),
    /// commit and acknowledgement tag clears, abort rollbacks, and
    /// lockless dirty reads.
    pub(crate) fn ensure_line_recovered(
        &mut self,
        node: NodeId,
        line: LineId,
    ) -> Result<(), DbError> {
        let (page, _) = self.layout.geometry.page_of_addr(line.0);
        let header = LineId(self.layout.geometry.line_addr(page, 0));
        // The page-LSN header line gates every resident-page probe: if the
        // crash destroyed it (even with the record's own line intact), the
        // page must be installed before any access.
        let deferred_lost =
            self.instant.lost_lines.contains(&line) || self.instant.lost_lines.contains(&header);
        if !deferred_lost && !self.instant.by_line.contains_key(&line) {
            return Ok(());
        }
        // Crash point: the accessing node dies before the inline redo.
        if let Some(c) = self.fault.hit(FAULT_REDO_ON_DEMAND, node.0) {
            return Err(DbError::FaultCrash(c));
        }
        if deferred_lost {
            self.install_deferred_lost(node, page)?;
        }
        if let Some(idxs) = self.instant.line_entries(line) {
            for idx in idxs {
                self.apply_pending_entry(idx, node, false)?;
            }
        }
        Ok(())
    }

    /// Background drain: retire up to `batch` pending entries in GSN
    /// order, acting (and charged) as `node`. Returns the number retired.
    /// Call between scheduler steps until [`SmDb::redo_pending`] reaches
    /// zero; each non-empty batch lands a recovery-progress sample in the
    /// availability timeline.
    pub fn drain_redo(&mut self, node: NodeId, batch: usize) -> Result<usize, DbError> {
        // Gate on the whole window (entries OR uninstalled lost lines):
        // a plan with zero entries still owes the deferred reinstall.
        if !self.instant_active() || batch == 0 {
            return Ok(0);
        }
        if self.m.is_crashed(node) {
            return Err(DbError::NodeDown { node });
        }
        // Crash point: the draining node dies at the batch boundary.
        if let Some(c) = self.fault.hit(FAULT_REDO_BACKGROUND, node.0) {
            return Err(DbError::FaultCrash(c));
        }
        let mut drained = 0usize;
        while drained < batch {
            let Some(idx) = self.instant.next_pending() else {
                break;
            };
            self.apply_pending_entry(idx, node, true)?;
            drained += 1;
        }
        if self.instant.pending == 0 {
            // Plan drained: finish the deferred reinstall too, so the
            // fully-drained state matches an eager recovery (every lost
            // line resident again, stale stable tags scrubbed).
            while let Some(&line) = self.instant.lost_lines.iter().next() {
                let (page, _) = self.layout.geometry.page_of_addr(line.0);
                self.install_deferred_lost(node, page)?;
            }
            if self.pending_recovery.is_empty() {
                self.stale_heap_lines.clear();
                self.stale_tree_pages.clear();
            }
        }
        let planned = self.instant.planned_len();
        let retired = planned - self.instant.pending() as u64;
        let obs = self.m.obs();
        if obs.timeline.is_enabled() {
            obs.timeline.recovery_progress(self.m.max_clock(), 0, retired, planned);
        }
        Ok(drained)
    }

    /// Retire one pending entry: perform the same write the eager phase-4
    /// redo would have performed, and lift the line's coherence mark once
    /// its last entry retires. On failure the entry and the mark are
    /// restored, so an injected crash mid-apply loses nothing.
    fn apply_pending_entry(
        &mut self,
        idx: usize,
        actor: NodeId,
        background: bool,
    ) -> Result<(), DbError> {
        let Some(entry) = self.instant.entries[idx].as_ref() else {
            return Ok(());
        };
        let (rec, line) = (entry.rec, entry.line);
        let bytes = entry.bytes.clone();
        // Lift the mark for the duration of our own authoritative write —
        // the coherence guard refuses every other writer.
        self.m.clear_unrecovered(line);
        let wrote = match self.write_pending_bytes(actor, rec, line, &bytes) {
            Ok(w) => w,
            Err(e) => {
                self.m.mark_unrecovered(line);
                return Err(e);
            }
        };
        self.instant.entries[idx] = None;
        self.instant.pending -= 1;
        let line_done = match self.instant.by_line.get_mut(&line) {
            Some(list) => {
                list.retain(|&i| i != idx);
                list.is_empty()
            }
            None => true,
        };
        if line_done {
            self.instant.by_line.remove(&line);
        } else {
            self.m.mark_unrecovered(line);
        }
        let obs = self.m.obs();
        if wrote {
            obs.metrics.inc(names::RESTART_REDO_APPLIED);
            if background {
                obs.metrics.inc(names::RESTART_REDO_BACKGROUND);
                self.instant.counters.background += 1;
            } else {
                obs.metrics.inc(names::RESTART_REDO_ON_DEMAND);
                self.instant.counters.on_demand += 1;
            }
        } else {
            obs.metrics.inc(names::RESTART_REDO_SKIPPED);
            self.instant.counters.skipped_stable += 1;
        }
        if self.instant.pending == 0 && self.pending_recovery.is_empty() {
            // Drain complete: every reinstalled heap line has its redo
            // applied; contents are authoritative again. (With a crash
            // pending, the stale knowledge is instead carried into the
            // next recovery attempt.)
            self.stale_heap_lines.clear();
            self.stale_tree_pages.clear();
        }
        Ok(())
    }

    /// The deferred write itself: skip when nothing is cached and the
    /// stable image already reflects the entry; otherwise write through
    /// the coherent store — faulting the page in marks its lines stale,
    /// exactly like the eager pass — and leave the page dirty for the
    /// next checkpoint (zero-LSN entry: dirty, no force requirement; the
    /// redo source record is already stable).
    fn write_pending_bytes(
        &mut self,
        actor: NodeId,
        rec: RecId,
        line: LineId,
        bytes: &[u8],
    ) -> Result<bool, DbError> {
        let off = self.layout.page_offset(rec.slot);
        if !self.m.probe_cached(line) {
            let img = self
                .sdb
                .peek_page(rec.page)
                .ok_or(DbError::StablePageMissing { page: rec.page })?;
            if img[off..off + bytes.len()] == bytes[..] {
                return Ok(false);
            }
            let g = self.layout.geometry;
            for idx in 0..g.lines_per_page {
                self.stale_heap_lines.insert(LineId(g.line_addr(rec.page, idx)));
            }
        }
        // A deferred-reinstall page must be installed before the coherent
        // write can fault it in (the machine refuses lost lines).
        self.install_deferred_lost(actor, rec.page)?;
        let mut ctx = engine_ctx!(self);
        ctx.write(actor, rec.page, off, bytes)?;
        drop(ctx);
        self.plt.note_update(rec.page, actor, Lsn::ZERO);
        Ok(true)
    }

    // ------------------------------------------------------------------
    // IFA restart recovery
    // ------------------------------------------------------------------

    fn ifa_restart(
        &mut self,
        outcome: &mut RecoveryOutcome,
        recovery_node: NodeId,
        crashed_active: &[TxnId],
        surviving_active: &[TxnId],
        contaminated: &BTreeSet<RecId>,
    ) -> Result<(), DbError> {
        let doomed: BTreeSet<TxnId> = crashed_active.iter().copied().collect();
        // Every node that is *currently* down matters to recovery — not
        // just the ones that failed this instant. A node still down from
        // an earlier crash must not be mistaken for a survivor: its
        // stable log may contain uncommitted updates that were already
        // rolled back, and replaying them as "survivor redo" would
        // resurrect aborted data. (Found by the IFA property tests.)
        let down: Vec<NodeId> = self.m.node_ids().filter(|n| self.m.is_crashed(*n)).collect();
        let crashed_set: BTreeSet<NodeId> = down.iter().copied().collect();
        let scheme = self.cfg.protocol.restart_scheme();
        // Instant restart defers every per-record heap write — stable-undo
        // patches, lost-line reinstall, Redo-All's cache discard, redo, and
        // undo — past the open point as plan entries and lazily-installed
        // lines, so the stop-the-world window shrinks to the analysis scan
        // plus index recovery.
        let instant = self.cfg.instant_restart;
        // Snapshot which heap lines genuinely survive in caches *before*
        // any reinstall: this is the Selective-Redo probe (a line we later
        // reinstall from a stale stable image must not be mistaken for a
        // coherent surviving copy). Lines reinstalled by an *interrupted
        // earlier attempt* carry the same stale-image hazard — they sit in
        // a survivor's cache now, but their content is the stable image,
        // not the coherent pre-crash copy — so they are excluded too.
        let cached_before: BTreeSet<LineId> = if scheme == RestartScheme::Selective {
            let mut cached = self.cached_heap_lines();
            for line in &self.stale_heap_lines {
                cached.remove(line);
            }
            cached
        } else {
            BTreeSet::new()
        };
        // Phase 1 ("stable_undo"): the single analysis scan over every
        // retained log, then undo of stolen updates in the stable
        // database.
        let span = self.begin_phase("stable_undo");
        let mut analysis = self.analyse_stable(&down, &doomed, false);
        outcome.scan_records = analysis.scanned_records;
        outcome.ckpt_bound_lsn = analysis.ckpt_bound;
        self.charge_analysis_scan(recovery_node, analysis.scanned_records);
        if !instant {
            // Instant restart folds the stolen-update undo into the
            // deferred plan (phase 5 pushes the last-committed bytes as
            // entries); the coherent apply dirties the page, so the next
            // checkpoint — which drains the plan first — writes the
            // corrected image back. Until then the stolen trace stays in
            // the retained stable logs, which is exactly what a re-entered
            // recovery re-derives the plan from.
            self.patch_stable_undo(&analysis, outcome)?;
        }
        self.end_phase(span, outcome);
        self.phase_crash_point(recovery_node)?;

        // Phase 2 ("reinstall"): reinstall heap lines destroyed by the
        // crash from the (just-patched) stable images, restoring page
        // residency invariants, then the index's structural skeleton.
        let span = self.begin_phase("reinstall");
        // Seed with the stale reinstalls of any interrupted earlier
        // attempt: for undo purposes they are reinstalled lines of *this*
        // restart too.
        let mut heap_reinstalled: BTreeSet<LineId> = self.stale_heap_lines.clone();
        if instant {
            // Defer the heap reinstall: record which lines are lost and
            // install them from stable on first access (or when a deferred
            // entry's write needs their page), charging the disk read to
            // the accessor instead of the stop-the-world window. The tags
            // of the nodes down *now* are the ones the eager undo passes
            // would have scrubbed.
            let g = self.layout.geometry;
            for p in 0..self.heap_pages {
                for idx in 0..g.lines_per_page {
                    let line = LineId(g.line_addr(PageId(p), idx));
                    if self.m.is_lost(line) {
                        self.instant.lost_lines.insert(line);
                    }
                }
            }
            self.instant.scrub_tags.extend(down.iter().map(|n| n.0));
        } else {
            heap_reinstalled.extend(self.normalize_lost_heap_lines(recovery_node)?);
        }

        // Still in "reinstall": restore the index's structural skeleton
        // (root, allocation map, lost pages) from the forced structural
        // records.
        // Record whether the crash destroyed *any* tree line first: if it
        // did not, every index effect still lives in a coherent cache and
        // the Selective scheme can skip index replay entirely.
        // An earlier interrupted attempt may already have reinstalled the
        // lost tree pages — they are no longer "lost", but their entries
        // are still the stale stable images, so index replay is required
        // all the same.
        let mut tree_lost_any = !self.stale_tree_pages.is_empty();
        let mut reinstalled_pages: BTreeSet<PageId> = self.stale_tree_pages.clone();
        if let Some(tree) = self.tree.as_ref() {
            let g = self.layout.geometry;
            'outer: for page in tree.allocated_pages() {
                for idx in 0..g.lines_per_page {
                    if self.m.is_lost(LineId(g.line_addr(page, idx))) {
                        tree_lost_any = true;
                        break 'outer;
                    }
                }
            }
        }
        if let Some(tree) = self.tree.as_mut() {
            let mut ctx = TreeCtx::new(
                &mut self.m,
                &mut self.sdb,
                &mut self.logs,
                &mut self.plt,
                self.cfg.protocol.lbm_mode(),
                &mut self.gsn,
            );
            let (st, pages) = tree.recover_structure(&mut ctx, recovery_node)?;
            outcome.btree_recovery = st;
            reinstalled_pages.extend(pages);
        }
        // Persist the stale-reinstall knowledge *before* the next crash
        // window: if this restart is interrupted from here on, the next
        // attempt must still treat these lines/pages as stale images.
        self.stale_heap_lines.extend(heap_reinstalled.iter().copied());
        self.stale_tree_pages.extend(reinstalled_pages.iter().copied());
        self.end_phase(span, outcome);
        self.phase_crash_point(recovery_node)?;

        // Phase 3 ("cache_discard", Redo All only): discard every cached
        // database line on every survivor — implicitly undoing migrated
        // uncommitted updates of crashed transactions — and reload the
        // index wholesale.
        let span = self.begin_phase("cache_discard");
        if scheme == RestartScheme::RedoAll {
            // The discard runs under instant restart too: it is a pure
            // cache drop (no disk reads — the reinstall cost lands lazily
            // on whoever faults the page back in), and it is *required* —
            // a migrated uncommitted update of a doomed transaction whose
            // record's last committed update predates the checkpoint
            // bound has no redo candidate, hence no plan entry, and only
            // the discard removes its stale bytes from survivor caches.
            let heap_limit = self.heap_pages as u64 * self.cfg.lines_per_page as u64;
            for node in self.m.surviving_nodes() {
                self.m.discard_matching(node, |l| l.0 < heap_limit);
            }
            if let Some(tree) = self.tree.as_mut() {
                let mut ctx = TreeCtx::new(
                    &mut self.m,
                    &mut self.sdb,
                    &mut self.logs,
                    &mut self.plt,
                    self.cfg.protocol.lbm_mode(),
                    &mut self.gsn,
                );
                tree.discard_and_reload_all(&mut ctx, recovery_node)?;
                reinstalled_pages.extend(tree.allocated_pages());
                self.stale_tree_pages.extend(reinstalled_pages.iter().copied());
            }
        }
        self.end_phase(span, outcome);
        self.phase_crash_point(recovery_node)?;

        // Phase 4 ("redo"): candidates were gathered by the analysis scan
        // (survivors' full logs + crashed nodes' committed stable records
        // past the checkpoint bound). The *plan* step partitions the heap
        // candidates by cache line and reduces each partition — on scoped
        // worker threads for large batches — to the final image per
        // record; the merged GSN-ordered plan is then applied
        // sequentially, so every machine-state mutation stays
        // deterministic. The cached-skip decisions are snapshotted
        // *before* any reinstall so a line we reinstalled from a stale
        // stable image is never mistaken for a coherent surviving copy.
        let span = self.begin_phase("redo");
        let replay_index = tree_lost_any || scheme == RestartScheme::RedoAll;
        // Instant restart: heap redo entries are *deferred* past the open
        // point — except for records the undo phase targets (stable-logged
        // uncommitted updates of down nodes, and doomed ops on surviving
        // logs). In eager order undo runs after redo and wins, so for
        // those records the redo entry is dropped here and phase 5 pushes
        // the undo's last-committed bytes as the record's single deferred
        // entry instead.
        let undo_writes: BTreeSet<RecId> = if instant {
            analysis
                .uncommitted_updates
                .iter()
                .map(|(_, _, r)| *r)
                .chain(analysis.doomed_ops.iter().filter_map(|(_, op)| match op {
                    DoomedOp::Rec { rec, .. } => Some(*rec),
                    _ => None,
                }))
                .collect()
        } else {
            BTreeSet::new()
        };
        let raw_heap = std::mem::take(&mut analysis.heap_redo);
        let raw_index = std::mem::take(&mut analysis.index_redo);
        self.m
            .obs()
            .metrics
            .observe(names::RECOVERY_REDO_BATCH, (raw_heap.len() + raw_index.len()) as u64);
        let (heap_plan, superseded) = plan_heap_redo(raw_heap);
        outcome.redo_superseded += superseded;
        let mut plan: Vec<(u64, PlannedOp)> =
            heap_plan.into_iter().map(|h| (h.gsn, PlannedOp::Rec(h))).collect();
        plan.extend(raw_index.into_iter().map(|(gsn, ix)| (gsn, PlannedOp::Ix(ix))));
        plan.sort_by_key(|(gsn, _)| *gsn);
        for (_gsn, op) in plan {
            if !replay_index && matches!(op, PlannedOp::Ix(_)) {
                continue;
            }
            match op {
                PlannedOp::Rec(HeapRedo { rec, line, txn, image, .. }) => {
                    if scheme == RestartScheme::Selective && cached_before.contains(&line) {
                        outcome.redo_skipped_cached += 1;
                        continue;
                    }
                    if instant {
                        // Defer: the final bytes are computed *now* (the
                        // tag decision reads transaction statuses, which
                        // phase 7 flips) and applied on first access or by
                        // the background drain.
                        if !undo_writes.contains(&rec) {
                            let bytes = self.expected_rec_bytes(txn, &image);
                            self.instant.push(rec, line, bytes);
                        }
                        continue;
                    }
                    let expected = self.expected_rec_bytes(txn, &image);
                    let off = self.layout.page_offset(rec.slot);
                    if !self.m.probe_cached(line) {
                        // Page not resident: is the stable image already
                        // current for this record?
                        let img = self
                            .sdb
                            .peek_page(rec.page)
                            .ok_or(DbError::StablePageMissing { page: rec.page })?;
                        if img[off..off + expected.len()] == expected[..] {
                            outcome.redo_skipped_stable += 1;
                            continue;
                        }
                        // The write below faults the whole page in from
                        // stable: every line of it is a stale reinstall.
                        let g = self.layout.geometry;
                        for idx in 0..g.lines_per_page {
                            let line = LineId(g.line_addr(rec.page, idx));
                            heap_reinstalled.insert(line);
                            self.stale_heap_lines.insert(line);
                        }
                    }
                    // §4.1.2: "each surviving node performs redo for ...
                    // record updates which were made by the local node" —
                    // the replaying actor (and the one charged) is the
                    // update's own node when it survived.
                    let actor =
                        if self.m.is_crashed(txn.node()) { recovery_node } else { txn.node() };
                    let mut ctx = engine_ctx!(self);
                    ctx.write(actor, rec.page, off, &expected)?;
                    drop(ctx);
                    // The crash cleared the crashed node's WAL-table
                    // entries (§6: "will be reinitialized on the crashed
                    // node"), and `ctx.write` does not restore them — so
                    // without an explicit mark the redone page would look
                    // clean to the next checkpoint, which would advance
                    // the redo bound *without flushing it*, and a second
                    // crash would lose the committed data. The redo
                    // source record is already stable, so a zero-LSN
                    // entry (dirty, no force requirement) is exactly
                    // right. (Found by the schedule fuzzer.)
                    self.plt.note_update(rec.page, actor, Lsn::ZERO);
                    outcome.redo_applied += 1;
                }
                PlannedOp::Ix(IxRedo::Insert { key, value, txn }) => {
                    let tag = if self.cfg.protocol.uses_undo_tags()
                        && self
                            .txns
                            .get(&txn)
                            .map(|t| t.is_active() && !crashed_set.contains(&txn.node()))
                            .unwrap_or(false)
                    {
                        txn.node().0
                    } else {
                        smdb_btree::NULL_TAG
                    };
                    let tree = req(self.tree.as_mut(), "index op implies an index")?;
                    let mut ctx = TreeCtx::new(
                        &mut self.m,
                        &mut self.sdb,
                        &mut self.logs,
                        &mut self.plt,
                        self.cfg.protocol.lbm_mode(),
                        &mut self.gsn,
                    );
                    if tree.redo_insert(&mut ctx, recovery_node, key, value, tag)? {
                        outcome.index_redo_applied += 1;
                    }
                }
                PlannedOp::Ix(IxRedo::Delete { key, value, txn }) => {
                    let tag = if self.cfg.protocol.uses_undo_tags()
                        && self
                            .txns
                            .get(&txn)
                            .map(|t| t.is_active() && !crashed_set.contains(&txn.node()))
                            .unwrap_or(false)
                    {
                        txn.node().0
                    } else {
                        smdb_btree::NULL_TAG
                    };
                    let tree = req(self.tree.as_mut(), "index op implies an index")?;
                    let mut ctx = TreeCtx::new(
                        &mut self.m,
                        &mut self.sdb,
                        &mut self.logs,
                        &mut self.plt,
                        self.cfg.protocol.lbm_mode(),
                        &mut self.gsn,
                    );
                    if tree.redo_delete_mark(&mut ctx, recovery_node, key, value, tag)? {
                        outcome.index_redo_applied += 1;
                    }
                }
                PlannedOp::Ix(IxRedo::Remove { key }) => {
                    let tree = req(self.tree.as_mut(), "index op implies an index")?;
                    let mut ctx = TreeCtx::new(
                        &mut self.m,
                        &mut self.sdb,
                        &mut self.logs,
                        &mut self.plt,
                        self.cfg.protocol.lbm_mode(),
                        &mut self.gsn,
                    );
                    tree.undo_insert(&mut ctx, recovery_node, key)?;
                }
                PlannedOp::Ix(IxRedo::Unmark { key }) => {
                    let tree = req(self.tree.as_mut(), "index op implies an index")?;
                    let mut ctx = TreeCtx::new(
                        &mut self.m,
                        &mut self.sdb,
                        &mut self.logs,
                        &mut self.plt,
                        self.cfg.protocol.lbm_mode(),
                        &mut self.gsn,
                    );
                    tree.undo_delete(&mut ctx, recovery_node, key)?;
                }
            }
        }

        self.end_phase(span, outcome);
        self.phase_crash_point(recovery_node)?;

        // Phase 5 ("undo"): first roll back doomed transactions' effects
        // recorded on *surviving* nodes — a parallel transaction with a
        // crashed participant leaves intact log records (with undo images)
        // on its surviving participants (§9: the entire transaction must
        // be aborted); the analysis scan already collected them — then the
        // protocol-specific undo pass.
        let span = self.begin_phase("undo");
        let doomed_ops = std::mem::take(&mut analysis.doomed_ops);
        if instant {
            // Heap undo joins the deferred plan. The final bytes per
            // record are computed *now* — the before images are handles
            // into retained log records, and the last-committed derivation
            // needs this analysis — and applied on first access or by the
            // background drain, exactly like deferred redo. Reverse-GSN
            // application means the lowest-GSN before image is the one
            // that sticks; the protocol undo (stable-log or tag driven)
            // runs after the doomed rollback in the eager order, so its
            // last-committed values override. Index undo is never
            // deferred.
            let mut rec_ops = doomed_ops;
            rec_ops.sort_by_key(|(gsn, _)| *gsn);
            let mut index_ops: Vec<(u64, DoomedOp)> = Vec::new();
            let mut undo_final: BTreeMap<RecId, Vec<u8>> = BTreeMap::new();
            for (gsn, op) in rec_ops {
                match op {
                    DoomedOp::Rec { rec, before } => {
                        if let std::collections::btree_map::Entry::Vacant(e) = undo_final.entry(rec)
                        {
                            let value: Vec<u8> = if contaminated.contains(&rec) {
                                self.last_committed_payload(&analysis, rec)?
                            } else {
                                before.to_vec()
                            };
                            e.insert(self.layout.encode(NULL_TAG, &value));
                        }
                    }
                    other => index_ops.push((gsn, other)),
                }
            }
            let uncommitted: BTreeSet<RecId> =
                analysis.uncommitted_updates.iter().map(|(_, _, r)| *r).collect();
            for rec in uncommitted {
                let value = self.last_committed_payload(&analysis, rec)?;
                undo_final.insert(rec, self.layout.encode(NULL_TAG, &value));
            }
            for (rec, bytes) in undo_final {
                let line = self.rec_line(rec);
                self.instant.push(rec, line, bytes);
            }
            self.undo_doomed_ops(outcome, recovery_node, index_ops, &analysis, contaminated)?;
            match self.cfg.protocol {
                ProtocolKind::VolatileSelectiveRedo => {
                    // The tag scan still runs (cheap — the only candidates
                    // without plan entries are stale committed tags), but
                    // records a deferred entry covers are skipped: the
                    // entry's apply writes their final bytes.
                    self.undo_by_tags(
                        outcome,
                        recovery_node,
                        &crashed_set,
                        &analysis,
                        &heap_reinstalled,
                        &reinstalled_pages,
                    )?;
                }
                ProtocolKind::VolatileRedoAll
                | ProtocolKind::StableEager
                | ProtocolKind::StableTriggered => {
                    // Heap undo is fully deferred (every stable-logged
                    // uncommitted update has a plan entry); only index
                    // effects of uncommitted crashed transactions need
                    // eager undo.
                    self.undo_index_from_stable(outcome, recovery_node, &analysis)?;
                }
                ProtocolKind::FaOnly => unreachable!("handled by full_restart"),
            }
        } else {
            self.undo_doomed_ops(outcome, recovery_node, doomed_ops, &analysis, contaminated)?;
            match self.cfg.protocol {
                ProtocolKind::VolatileSelectiveRedo => {
                    self.undo_by_tags(
                        outcome,
                        recovery_node,
                        &crashed_set,
                        &analysis,
                        &heap_reinstalled,
                        &reinstalled_pages,
                    )?;
                }
                ProtocolKind::VolatileRedoAll => {
                    // The cache purge already removed migrated uncommitted
                    // data; stolen data was patched in phase 1. Index
                    // entries of uncommitted crashed transactions that had
                    // been flushed (steal / structural flush) and reloaded
                    // still need undo from the crashed stable logs.
                    self.undo_index_from_stable(outcome, recovery_node, &analysis)?;
                }
                ProtocolKind::StableEager | ProtocolKind::StableTriggered => {
                    // Stable LBM: every migrated uncommitted update has
                    // stable undo information; apply it to any surviving
                    // cached copies (stable images were patched in phase
                    // 1).
                    self.undo_from_stable_logs(outcome, recovery_node, &analysis)?;
                    self.undo_index_from_stable(outcome, recovery_node, &analysis)?;
                }
                ProtocolKind::FaOnly => unreachable!("handled by full_restart"),
            }
        }
        self.end_phase(span, outcome);
        self.phase_crash_point(recovery_node)?;

        // Phase 6 ("lock_recovery"): lock-space recovery (§4.2.2).
        let span = self.begin_phase("lock_recovery");
        let active_surviving_set: BTreeSet<TxnId> = surviving_active.iter().copied().collect();
        outcome.lock_recovery = self.locks.recover(
            &mut self.m,
            &mut self.logs,
            &down,
            &active_surviving_set,
            recovery_node,
        )?;

        // Phase 6b: release the locks still held by doomed transactions
        // whose home node survived (their LCB entries carry a surviving
        // node id, so the crash scrub did not remove them).
        for &txn in crashed_active {
            if !self.m.is_crashed(txn.node()) {
                if let Some(waits) = self.pending_waits.get(&txn).cloned() {
                    for name in waits {
                        self.locks.cancel_wait(&mut self.m, &mut self.logs, txn, name)?;
                    }
                }
                self.locks.release_all(&mut self.m, &mut self.logs, txn)?;
                self.logs.append(txn.node(), LogPayload::Abort { txn });
            }
        }
        self.end_phase(span, outcome);
        self.phase_crash_point(recovery_node)?;

        // Phase 7 ("txn_table"): transaction table + shadow bookkeeping.
        let span = self.begin_phase("txn_table");
        for &txn in crashed_active {
            if let Some(t) = self.txns.get_mut(&txn) {
                t.status = TxnStatus::Aborted;
                t.committing = false;
            }
            self.pending_waits.remove(&txn);
            self.locks.drop_chain(txn);
            self.shadow.drop_pending(txn);
            outcome.aborted.push(txn);
        }
        self.stats.crash_aborts += crashed_active.len() as u64;
        outcome.preserved_active = surviving_active.to_vec();
        self.end_phase(span, outcome);
        Ok(())
    }

    /// The §4.1.2 undo scan over cached heap lines for Volatile LBM with
    /// Selective Redo: every record tagged with a crashed node is a
    /// candidate; committed-but-stale tags (possible only on lines
    /// reinstalled from stale stable images) are merely cleared; genuinely
    /// uncommitted updates get the record's last committed value
    /// installed.
    fn undo_by_tags(
        &mut self,
        outcome: &mut RecoveryOutcome,
        recovery_node: NodeId,
        crashed: &BTreeSet<NodeId>,
        analysis: &StableAnalysis,
        heap_reinstalled: &BTreeSet<LineId>,
        tree_reinstalled: &BTreeSet<PageId>,
    ) -> Result<(), DbError> {
        // Heap scan.
        let mut candidates: Vec<(LineId, RecId, u16)> = Vec::new();
        let mut seen_lines: BTreeSet<LineId> = BTreeSet::new();
        let rpl = self.layout.records_per_line();
        let survivors = self.m.surviving_nodes();
        for node in survivors {
            // Scan cached lines in place: the tag probe only reads the
            // borrowed line bytes, so no per-line image copy is needed.
            for (line, bytes) in self.m.iter_cached(node) {
                if !self.is_heap_line(line) || !seen_lines.insert(line) {
                    continue;
                }
                let (page, line_idx) = self.layout.geometry.page_of_addr(line.0);
                if line_idx == 0 {
                    continue; // Page-LSN line holds no records
                }
                for k in 0..rpl {
                    let slot = ((line_idx - 1) * rpl + k) as u16;
                    if slot as usize >= self.layout.records_per_page() {
                        break;
                    }
                    let within = k * self.layout.rec_size();
                    let tag =
                        u16::from_le_bytes(bytes[within..within + 2].try_into().expect("tag"));
                    if tag != NULL_TAG && crashed.contains(&NodeId(tag)) {
                        candidates.push((line, RecId::new(page, slot), tag));
                    }
                }
            }
        }
        for (line, rec, tag) in candidates {
            if self.instant_covers(rec) {
                // Instant restart: a deferred entry holds this record's
                // final bytes; applying it (on access or drain) overwrites
                // tag and payload both.
                continue;
            }
            let committed =
                heap_reinstalled.contains(&line) && analysis.is_committed_rec(NodeId(tag), rec);
            let off = self.layout.page_offset(rec.slot);
            if committed {
                // Stale tag on a committed value: scrub the tag only.
                let mut ctx = engine_ctx!(self);
                ctx.write(recovery_node, rec.page, off, &NULL_TAG.to_le_bytes())?;
                outcome.tags_cleared += 1;
            } else {
                let value = self.last_committed_payload(analysis, rec)?;
                let bytes = self.layout.encode(NULL_TAG, &value);
                let mut ctx = engine_ctx!(self);
                ctx.write(recovery_node, rec.page, off, &bytes)?;
                outcome.undo_records_applied += 1;
            }
        }
        // Index scan (the tree's own tag walk).
        if let Some(tree) = self.tree.as_mut() {
            let mut ctx = TreeCtx::new(
                &mut self.m,
                &mut self.sdb,
                &mut self.logs,
                &mut self.plt,
                self.cfg.protocol.lbm_mode(),
                &mut self.gsn,
            );
            let st =
                tree.undo_by_tags(&mut ctx, recovery_node, crashed, tree_reinstalled, |n, k| {
                    analysis.is_committed_key(n, k)
                })?;
            outcome.undo_records_applied += st.undo_inserts + st.undo_deletes;
            outcome.tags_cleared += st.tags_cleared;
            outcome.btree_recovery.undo_inserts += st.undo_inserts;
            outcome.btree_recovery.undo_deletes += st.undo_deletes;
            outcome.btree_recovery.tags_cleared += st.tags_cleared;
        }
        Ok(())
    }

    /// Stable-LBM undo: install last committed values over any surviving
    /// cached copies of records with durable uncommitted updates from
    /// crashed nodes.
    fn undo_from_stable_logs(
        &mut self,
        outcome: &mut RecoveryOutcome,
        recovery_node: NodeId,
        analysis: &StableAnalysis,
    ) -> Result<(), DbError> {
        let recs: BTreeSet<RecId> =
            analysis.uncommitted_updates.iter().map(|(_, _, r)| *r).collect();
        for rec in recs {
            let line = self.rec_line(rec);
            if !self.m.probe_cached(line) {
                continue; // nothing cached; stable image already patched
            }
            let value = self.last_committed_payload(analysis, rec)?;
            let bytes = self.layout.encode(NULL_TAG, &value);
            let off = self.layout.page_offset(rec.slot);
            let mut ctx = engine_ctx!(self);
            ctx.write(recovery_node, rec.page, off, &bytes)?;
            outcome.undo_records_applied += 1;
        }
        Ok(())
    }

    /// Undo index effects of uncommitted crashed transactions recorded in
    /// their stable logs (needed wherever tags are not the undo vehicle).
    fn undo_index_from_stable(
        &mut self,
        outcome: &mut RecoveryOutcome,
        recovery_node: NodeId,
        analysis: &StableAnalysis,
    ) -> Result<(), DbError> {
        if self.tree.is_none() {
            return Ok(());
        }
        let mut ops = analysis.uncommitted_index.clone();
        ops.sort_by_key(|(gsn, _, _, _)| std::cmp::Reverse(*gsn));
        for (_, _, key, is_delete) in ops {
            let tree = req(self.tree.as_mut(), "index undo implies an index")?;
            let mut ctx = TreeCtx::new(
                &mut self.m,
                &mut self.sdb,
                &mut self.logs,
                &mut self.plt,
                self.cfg.protocol.lbm_mode(),
                &mut self.gsn,
            );
            if is_delete {
                tree.undo_delete(&mut ctx, recovery_node, key)?;
            } else {
                tree.undo_insert(&mut ctx, recovery_node, key)?;
            }
            outcome.undo_records_applied += 1;
        }
        Ok(())
    }

    /// Roll back every effect a doomed transaction recorded on a
    /// surviving node's intact log (undo images for records, logical
    /// inverses for index ops), in reverse GSN order. The ops were
    /// collected by the single analysis scan; the before images are
    /// refcounted handles into the log records.
    fn undo_doomed_ops(
        &mut self,
        outcome: &mut RecoveryOutcome,
        recovery_node: NodeId,
        mut ops: Vec<(u64, DoomedOp)>,
        analysis: &StableAnalysis,
        contaminated: &BTreeSet<RecId>,
    ) -> Result<(), DbError> {
        ops.sort_by_key(|(gsn, _)| std::cmp::Reverse(*gsn));
        for (_gsn, op) in ops {
            match op {
                DoomedOp::Rec { rec, before } => {
                    // A doomed dependent that reached this record through
                    // a violated lock name (early lock release) logged a
                    // contaminated before image — possibly the doomed
                    // predecessor's own uncommitted value. Restore the
                    // last committed payload instead. All other doomed
                    // ops keep the logged before image (for parallel
                    // transactions on non-analysed survivors it is the
                    // only undo source).
                    let value: Vec<u8> = if contaminated.contains(&rec) {
                        self.last_committed_payload(analysis, rec)?
                    } else {
                        before.to_vec()
                    };
                    let bytes = self.layout.encode(NULL_TAG, &value);
                    let off = self.layout.page_offset(rec.slot);
                    // Undo in the coherent store and in the stable image
                    // (the update may have been stolen; WAL forced its
                    // undo record, but surviving logs give us the image
                    // directly).
                    let mut ctx = engine_ctx!(self);
                    ctx.write(recovery_node, rec.page, off, &bytes)?;
                    let img = self
                        .sdb
                        .peek_page(rec.page)
                        .ok_or(DbError::StablePageMissing { page: rec.page })?;
                    if img[off..off + bytes.len()] != bytes[..] {
                        self.sdb.patch(rec.page, off, &bytes);
                        outcome.stable_undo_patches += 1;
                    }
                    outcome.undo_records_applied += 1;
                }
                DoomedOp::RemoveKey(key) => {
                    if let Some(tree) = self.tree.as_mut() {
                        let mut ctx = TreeCtx::new(
                            &mut self.m,
                            &mut self.sdb,
                            &mut self.logs,
                            &mut self.plt,
                            self.cfg.protocol.lbm_mode(),
                            &mut self.gsn,
                        );
                        tree.undo_insert(&mut ctx, recovery_node, key)?;
                        outcome.undo_records_applied += 1;
                    }
                }
                DoomedOp::UnmarkKey(key) => {
                    if let Some(tree) = self.tree.as_mut() {
                        let mut ctx = TreeCtx::new(
                            &mut self.m,
                            &mut self.sdb,
                            &mut self.logs,
                            &mut self.plt,
                            self.cfg.protocol.lbm_mode(),
                            &mut self.gsn,
                        );
                        tree.undo_delete(&mut ctx, recovery_node, key)?;
                        outcome.undo_records_applied += 1;
                    }
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // FA-only baseline / total failure: full restart
    // ------------------------------------------------------------------

    /// Abort every active transaction and rebuild the machine state from
    /// stable storage + stable logs. This is what a system *without* the
    /// paper's protocols must do (§1: "a single node crash is likely to
    /// require a reboot of the entire shared memory system").
    fn full_restart(
        &mut self,
        outcome: &mut RecoveryOutcome,
        recovery_node: NodeId,
    ) -> Result<(), DbError> {
        // The single analysis scan in full mode: every node analysed over
        // its stable prefix, redo restricted to committed transactions.
        let mut analysis = self.analyse_stable(&[], &BTreeSet::new(), true);
        outcome.scan_records = analysis.scanned_records;
        outcome.ckpt_bound_lsn = analysis.ckpt_bound;
        self.charge_analysis_scan(recovery_node, analysis.scanned_records);
        // Undo every durable trace of every not-committed transaction.
        self.patch_stable_undo(&analysis, outcome)?;
        // Discard all cached database lines machine-wide, and forget lost
        // ones: the (patched) stable database is now the authority.
        for node in self.m.surviving_nodes() {
            self.m.discard_matching(node, |_| true);
        }
        let g = self.layout.geometry;
        for p in 0..self.heap_pages {
            for idx in 0..g.lines_per_page {
                self.m.clear_lost(LineId(g.line_addr(PageId(p), idx)));
            }
        }
        // Rebuild the index structure + contents.
        if let Some(tree) = self.tree.as_mut() {
            let mut ctx = TreeCtx::new(
                &mut self.m,
                &mut self.sdb,
                &mut self.logs,
                &mut self.plt,
                self.cfg.protocol.lbm_mode(),
                &mut self.gsn,
            );
            let (st, _) = tree.recover_structure(&mut ctx, recovery_node)?;
            outcome.btree_recovery = st;
            tree.discard_and_reload_all(&mut ctx, recovery_node)?;
        }
        // Redo committed work from stable logs (everyone's commit records
        // were forced): the analysis already collected the candidates past
        // the checkpoint bound; plan (partition + reduce), then apply
        // sequentially in GSN order.
        let raw_heap = std::mem::take(&mut analysis.heap_redo);
        let raw_index = std::mem::take(&mut analysis.index_redo);
        self.m
            .obs()
            .metrics
            .observe(names::RECOVERY_REDO_BATCH, (raw_heap.len() + raw_index.len()) as u64);
        let (heap_plan, superseded) = plan_heap_redo(raw_heap);
        outcome.redo_superseded += superseded;
        let mut plan: Vec<(u64, PlannedOp)> =
            heap_plan.into_iter().map(|h| (h.gsn, PlannedOp::Rec(h))).collect();
        plan.extend(raw_index.into_iter().map(|(gsn, ix)| (gsn, PlannedOp::Ix(ix))));
        plan.sort_by_key(|(gsn, _)| *gsn);
        for (_gsn, op) in plan {
            match op {
                PlannedOp::Rec(HeapRedo { rec, line, image, .. }) => {
                    let off = self.layout.page_offset(rec.slot);
                    let expected = self.layout.encode(NULL_TAG, &image);
                    if !self.m.probe_cached(line) {
                        let img = self
                            .sdb
                            .peek_page(rec.page)
                            .ok_or(DbError::StablePageMissing { page: rec.page })?;
                        if img[off..off + expected.len()] == expected[..] {
                            outcome.redo_skipped_stable += 1;
                            continue;
                        }
                    }
                    let mut ctx = engine_ctx!(self);
                    ctx.write(recovery_node, rec.page, off, &expected)?;
                    outcome.redo_applied += 1;
                }
                PlannedOp::Ix(IxRedo::Insert { key, value, .. }) => {
                    let tree = req(self.tree.as_mut(), "index op implies an index")?;
                    let mut ctx = TreeCtx::new(
                        &mut self.m,
                        &mut self.sdb,
                        &mut self.logs,
                        &mut self.plt,
                        self.cfg.protocol.lbm_mode(),
                        &mut self.gsn,
                    );
                    if tree.redo_insert(
                        &mut ctx,
                        recovery_node,
                        key,
                        value,
                        smdb_btree::NULL_TAG,
                    )? {
                        outcome.index_redo_applied += 1;
                    }
                }
                PlannedOp::Ix(IxRedo::Delete { key, value, .. }) => {
                    let tree = req(self.tree.as_mut(), "index op implies an index")?;
                    let mut ctx = TreeCtx::new(
                        &mut self.m,
                        &mut self.sdb,
                        &mut self.logs,
                        &mut self.plt,
                        self.cfg.protocol.lbm_mode(),
                        &mut self.gsn,
                    );
                    if tree.redo_delete_mark(
                        &mut ctx,
                        recovery_node,
                        key,
                        value,
                        smdb_btree::NULL_TAG,
                    )? {
                        outcome.index_redo_applied += 1;
                    }
                }
                PlannedOp::Ix(IxRedo::Remove { key }) => {
                    let tree = req(self.tree.as_mut(), "index op implies an index")?;
                    let mut ctx = TreeCtx::new(
                        &mut self.m,
                        &mut self.sdb,
                        &mut self.logs,
                        &mut self.plt,
                        self.cfg.protocol.lbm_mode(),
                        &mut self.gsn,
                    );
                    tree.undo_insert(&mut ctx, recovery_node, key)?;
                }
                PlannedOp::Ix(IxRedo::Unmark { key }) => {
                    let tree = req(self.tree.as_mut(), "index op implies an index")?;
                    let mut ctx = TreeCtx::new(
                        &mut self.m,
                        &mut self.sdb,
                        &mut self.logs,
                        &mut self.plt,
                        self.cfg.protocol.lbm_mode(),
                        &mut self.gsn,
                    );
                    tree.undo_delete(&mut ctx, recovery_node, key)?;
                }
            }
        }
        // Undo of uncommitted index entries that had been flushed.
        self.undo_index_from_stable(outcome, recovery_node, &analysis)?;
        // Crash point: the rebuild host dies mid full-restart (data redone,
        // lock space and transaction table not yet reset).
        self.phase_crash_point(recovery_node)?;
        // Reset the lock space: every transaction is dead.
        let line_size = self.cfg.line_size;
        for line in self.locks.table().all_lines() {
            self.m.install_line(recovery_node, line, &vec![0u8; line_size])?;
        }
        let txns: Vec<TxnId> = self.txns.keys().copied().collect();
        for txn in txns {
            self.locks.drop_chain(txn);
            self.pending_waits.remove(&txn);
        }
        // Abort everyone.
        let active: Vec<TxnId> = self.active_txns(None);
        for txn in &active {
            let t = req(self.txns.get_mut(txn), "listed active txn present in table")?;
            t.status = TxnStatus::Aborted;
            t.committing = false;
            self.shadow.drop_pending(*txn);
        }
        self.stats.crash_aborts += active.len() as u64;
        outcome.aborted = active;
        Ok(())
    }
}
