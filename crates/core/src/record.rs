//! Heap record layout.
//!
//! Records live in heap pages. Line 0 of every heap page is reserved for
//! the Page-LSN (§6 convention); records pack into lines 1..N. A record
//! never spans cache lines, and each record is prefixed by its 2-byte
//! **undo tag** (the node id of its uncommitted updater, or the null tag)
//! so that — per the §4.1.2 Tagging Rule — the tag always shares a cache
//! line with the record it covers. Several records share one line whenever
//! `tag + payload` is at most half a line: the co-location that produces
//! the paper's §3.1 failure scenarios.

use serde::{Deserialize, Serialize};
use smdb_storage::{PageGeometry, PageId};
use smdb_wal::RecId;

/// The null undo tag: no uncommitted update on the record.
pub const NULL_TAG: u16 = u16::MAX;
/// Size of the undo tag prefix, bytes.
pub const TAG_SIZE: usize = 2;

/// Maps record slots to pages, lines, and byte offsets.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecordLayout {
    /// Page geometry of the stable database.
    pub geometry: PageGeometry,
    /// Record payload size, bytes.
    pub data_size: usize,
}

impl RecordLayout {
    /// Create a layout. The full record (tag + payload) must fit in one
    /// cache line.
    pub fn new(geometry: PageGeometry, data_size: usize) -> Self {
        assert!(data_size > 0, "empty records are useless");
        assert!(
            TAG_SIZE + data_size <= geometry.line_size,
            "record (tag + {data_size} B) must fit in a {}-byte cache line",
            geometry.line_size
        );
        RecordLayout { geometry, data_size }
    }

    /// Total on-page size of one record (tag + payload).
    pub fn rec_size(&self) -> usize {
        TAG_SIZE + self.data_size
    }

    /// Records per cache line — the co-location factor of §3.1.
    pub fn records_per_line(&self) -> usize {
        self.geometry.line_size / self.rec_size()
    }

    /// Records per heap page (line 0 is reserved for the Page-LSN).
    pub fn records_per_page(&self) -> usize {
        self.records_per_line() * (self.geometry.lines_per_page - 1)
    }

    /// Number of heap pages needed for `records` record slots.
    pub fn pages_for(&self, records: u32) -> u32 {
        records.div_ceil(self.records_per_page() as u32)
    }

    /// The heap slot id of a record id (`page`-local slot → global).
    pub fn global_slot(&self, rec: RecId) -> u64 {
        rec.page.0 as u64 * self.records_per_page() as u64 + rec.slot as u64
    }

    /// Record id of global slot `slot`.
    pub fn rec_of_global(&self, slot: u64) -> RecId {
        let rpp = self.records_per_page() as u64;
        RecId::new(PageId((slot / rpp) as u32), (slot % rpp) as u16)
    }

    /// Line index within the page (1-based; line 0 holds the Page-LSN) and
    /// byte offset within that line for a page-local slot.
    pub fn line_and_offset(&self, slot: u16) -> (usize, usize) {
        let rpl = self.records_per_line();
        let line = 1 + slot as usize / rpl;
        let within = (slot as usize % rpl) * self.rec_size();
        (line, within)
    }

    /// Byte offset of the record (tag included) within the page image.
    pub fn page_offset(&self, slot: u16) -> usize {
        let (line, within) = self.line_and_offset(slot);
        self.geometry.line_offset(line) + within
    }

    /// Byte offset of the record *payload* within the page image.
    pub fn payload_offset(&self, slot: u16) -> usize {
        self.page_offset(slot) + TAG_SIZE
    }

    /// Decode the tag from a record's on-page bytes.
    pub fn tag_of(rec_bytes: &[u8]) -> u16 {
        u16::from_le_bytes(rec_bytes[..TAG_SIZE].try_into().expect("tag bytes"))
    }

    /// Encode a record (tag + payload) into a buffer of `rec_size` bytes.
    pub fn encode(&self, tag: u16, payload: &[u8]) -> Vec<u8> {
        assert!(payload.len() <= self.data_size, "payload too large");
        let mut buf = vec![0u8; self.rec_size()];
        buf[..TAG_SIZE].copy_from_slice(&tag.to_le_bytes());
        buf[TAG_SIZE..TAG_SIZE + payload.len()].copy_from_slice(payload);
        buf
    }

    /// Split a record's on-page bytes into (tag, payload).
    pub fn decode<'b>(&self, rec_bytes: &'b [u8]) -> (u16, &'b [u8]) {
        (Self::tag_of(rec_bytes), &rec_bytes[TAG_SIZE..self.rec_size()])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> RecordLayout {
        // 128-byte lines, 8 lines/page, 40-byte payloads → 42-byte records,
        // 3 per line, 21 per page.
        RecordLayout::new(PageGeometry::new(128, 8), 40)
    }

    #[test]
    fn co_location_math() {
        let l = layout();
        assert_eq!(l.rec_size(), 42);
        assert_eq!(l.records_per_line(), 3);
        assert_eq!(l.records_per_page(), 21);
        assert_eq!(l.pages_for(22), 2);
        assert_eq!(l.pages_for(21), 1);
    }

    #[test]
    fn slot_mapping_round_trips() {
        let l = layout();
        for slot in 0..100u64 {
            let rec = l.rec_of_global(slot);
            assert_eq!(l.global_slot(rec), slot);
        }
    }

    #[test]
    fn records_in_same_line_share_line_index() {
        let l = layout();
        let (l0, _) = l.line_and_offset(0);
        let (l1, _) = l.line_and_offset(1);
        let (l2, _) = l.line_and_offset(2);
        let (l3, _) = l.line_and_offset(3);
        assert_eq!(l0, l1);
        assert_eq!(l1, l2);
        assert_ne!(l2, l3, "4th record spills to the next line");
        assert_eq!(l0, 1, "line 0 reserved for Page-LSN");
    }

    #[test]
    fn one_record_per_line_when_large() {
        let l = RecordLayout::new(PageGeometry::new(128, 8), 100);
        assert_eq!(l.records_per_line(), 1);
    }

    #[test]
    fn encode_decode_round_trip() {
        let l = layout();
        let buf = l.encode(7, b"hello");
        let (tag, payload) = l.decode(&buf);
        assert_eq!(tag, 7);
        assert_eq!(&payload[..5], b"hello");
        assert_eq!(payload.len(), 40);
    }

    #[test]
    #[should_panic(expected = "must fit")]
    fn oversized_record_rejected() {
        let _ = RecordLayout::new(PageGeometry::new(128, 8), 127);
    }
}
