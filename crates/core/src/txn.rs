//! Transaction state tracking.

use bytes::Bytes;
use serde::{Deserialize, Serialize};
use smdb_sim::TxnId;
use smdb_wal::RecId;

/// Lifecycle status of a transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TxnStatus {
    /// Running; holds locks; effects are uncommitted.
    Active,
    /// Durably committed.
    Committed,
    /// Rolled back (voluntarily, or by crash recovery).
    Aborted,
}

/// One logical operation a transaction performed, in execution order.
/// Kept volatile on the transaction's node (dies with it — recovery never
/// relies on this; it is the *voluntary* abort/commit bookkeeping).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TxnOp {
    /// Heap record update: global slot + before image (payload only).
    Update {
        /// Updated record.
        rec: RecId,
        /// Before image of the payload — a zero-copy view of the same
        /// backing buffer the update's log record holds.
        before: Bytes,
        /// The node that executed the update (differs from the home node
        /// only for parallel transactions — paper §9).
        node: smdb_sim::NodeId,
    },
    /// Index insert of `key`.
    IndexInsert {
        /// Inserted key.
        key: u64,
    },
    /// Index (logical) delete of `key`.
    IndexDelete {
        /// Deleted key.
        key: u64,
    },
}

/// Volatile per-transaction state held by the engine.
#[derive(Clone, Debug)]
pub struct TxnState {
    /// The transaction id (node-encoding; the *home* node).
    pub id: TxnId,
    /// Current status.
    pub status: TxnStatus,
    /// Operations in execution order (for rollback and commit
    /// post-processing).
    pub ops: Vec<TxnOp>,
    /// Nodes this transaction executes on. Always contains the home node;
    /// more for parallel transactions (§9: a parallel transaction must be
    /// aborted if *any* of its nodes crashes).
    pub participants: std::collections::BTreeSet<smdb_sim::NodeId>,
    /// The transaction's commit record is appended (pipelined commit) but
    /// not yet acknowledged. The status stays [`TxnStatus::Active`] — a
    /// crash before the covering force dooms it exactly like any active
    /// transaction — but it accepts no further operations.
    pub committing: bool,
}

impl TxnState {
    /// Fresh active transaction on its home node.
    pub fn new(id: TxnId) -> Self {
        let mut participants = std::collections::BTreeSet::new();
        participants.insert(id.node());
        TxnState { id, status: TxnStatus::Active, ops: Vec::new(), participants, committing: false }
    }

    /// Whether the transaction executes on `node`.
    pub fn runs_on(&self, node: smdb_sim::NodeId) -> bool {
        self.participants.contains(&node)
    }

    /// Whether the transaction spans multiple nodes.
    pub fn is_parallel(&self) -> bool {
        self.participants.len() > 1
    }

    /// Whether the transaction is active.
    pub fn is_active(&self) -> bool {
        self.status == TxnStatus::Active
    }

    /// Keys this transaction inserted or deleted in the index.
    pub fn index_keys(&self) -> Vec<u64> {
        self.ops
            .iter()
            .filter_map(|op| match op {
                TxnOp::IndexInsert { key } | TxnOp::IndexDelete { key } => Some(*key),
                TxnOp::Update { .. } => None,
            })
            .collect()
    }

    /// Records this transaction updated (deduplicated, first-touch order).
    pub fn touched_records(&self) -> Vec<RecId> {
        let mut seen = Vec::new();
        for op in &self.ops {
            if let TxnOp::Update { rec, .. } = op {
                if !seen.contains(rec) {
                    seen.push(*rec);
                }
            }
        }
        seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smdb_sim::NodeId;
    use smdb_storage::PageId;

    #[test]
    fn bookkeeping_accessors() {
        let mut t = TxnState::new(TxnId::new(NodeId(0), 1));
        assert!(t.is_active());
        let r = RecId::new(PageId(0), 3);
        t.ops.push(TxnOp::Update { rec: r, before: Bytes::copy_from_slice(&[1]), node: NodeId(0) });
        t.ops.push(TxnOp::Update { rec: r, before: Bytes::copy_from_slice(&[2]), node: NodeId(0) });
        t.ops.push(TxnOp::IndexInsert { key: 9 });
        t.ops.push(TxnOp::IndexDelete { key: 10 });
        assert_eq!(t.touched_records(), vec![r]);
        assert_eq!(t.index_keys(), vec![9, 10]);
        t.status = TxnStatus::Committed;
        assert!(!t.is_active());
    }
}
