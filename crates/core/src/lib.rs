//! # smdb-core — recovery protocols for shared-memory database systems
//!
//! The primary contribution of *Recovery Protocols for Shared Memory
//! Database Systems* (Molesky & Ramamritham, SIGMOD 1995): a multi-node
//! database engine on a cache-coherent shared-memory multiprocessor whose
//! crash-recovery protocols guarantee **Isolated Failure Atomicity (IFA)**
//! — if one or more nodes crash, *all* effects of active transactions
//! running on the crashed nodes are undone, and *no* effects of
//! transactions running on surviving nodes are undone.
//!
//! The engine ([`SmDb`]) composes:
//!
//! * the simulated cache-coherent multiprocessor (`smdb-sim`),
//! * per-node write-ahead logs with volatile tails (`smdb-wal`),
//! * a no-force/steal buffer manager over the stable database
//!   (`smdb-storage`),
//! * shared-memory record locking with strict 2PL (`smdb-lock`),
//! * a shared-memory B+-tree index (`smdb-btree`),
//!
//! and implements on top of them:
//!
//! * the **LBM (Logging-Before-Migration) policies** — Volatile LBM
//!   (§5.1, enforced with line locks) and Stable LBM (§5.2, eager or
//!   coherence-trigger based);
//! * **undo tagging** (§4.1.2) — each record carries the node id of its
//!   uncommitted updater *in the same cache line*;
//! * the **Redo All** and **Selective Redo** restart-recovery schemes
//!   (§4.1.2), plus the stable-log-driven undo used with Stable LBM;
//! * the **FA-only baseline** (§3.3's strawman: a crash aborts every
//!   active transaction in the machine), against which the IFA protocols'
//!   saved aborts are measured;
//! * a [`ShadowDb`] oracle that checks the IFA guarantee after every
//!   crash-recovery episode.
//!
//! ## Quick start
//!
//! ```
//! use smdb_core::{DbConfig, ProtocolKind, SmDb};
//! use smdb_sim::NodeId;
//!
//! let mut db = SmDb::new(DbConfig::small(4, ProtocolKind::VolatileSelectiveRedo));
//! // A transfer on node 0 commits; a transaction on node 1 stays active.
//! let t0 = db.begin(NodeId(0)).unwrap();
//! db.update(t0, 0, b"alice=90").unwrap();
//! db.update(t0, 1, b"bob=110.").unwrap();
//! db.commit(t0).unwrap();
//! let t1 = db.begin(NodeId(1)).unwrap();
//! db.update(t1, 2, b"carol=5.").unwrap();
//! // Node 2 crashes: IFA recovery runs; neither t0's committed effects
//! // nor t1's in-flight effects are lost.
//! let outcome = db.crash_and_recover(&[NodeId(2)]).unwrap();
//! assert!(outcome.aborted.is_empty());
//! // Payloads are zero-padded to the configured record size.
//! assert_eq!(&db.read_committed(0).unwrap()[..8], b"alice=90");
//! db.commit(t1).unwrap();
//! db.check_ifa(NodeId(0)).assert_ok();
//! ```

mod config;
mod engine;
mod error;
pub mod mt;
mod oracle;
mod record;
mod restart;
mod stats;
mod txn;

pub use config::{DbConfig, ProtocolKind, RestartScheme};
pub use engine::{SmDb, FAULT_COMMIT, FAULT_COMMIT_DEP};
pub use error::DbError;
pub use mt::{MtOp, MtOutcome, MtTxn, SITE_ADMIT};
pub use oracle::{IfaReport, ShadowDb};
pub use record::RecordLayout;
pub use restart::{
    InstantRedoCounters, RecoveryOutcome, FAULT_RECOVERY_PHASE, FAULT_REDO_BACKGROUND,
    FAULT_REDO_ON_DEMAND,
};
pub use stats::EngineStats;
pub use txn::{TxnOp, TxnState, TxnStatus};

/// Re-export of the fault-injection crate: crash drivers need the
/// injector, plan, and sweep types alongside the engine.
pub use smdb_fault as fault;
