//! Property tests for the coherence protocol: the simulator must behave
//! like a sequentially consistent single-writer/multi-reader memory under
//! arbitrary operation interleavings, and crashes must destroy exactly
//! the lines whose only copies lived on failed nodes.

use proptest::prelude::*;
use smdb_sim::{CoherenceKind, LineId, Machine, MemError, NodeId, SimConfig};
use std::collections::BTreeMap;

#[derive(Clone, Debug)]
enum Op {
    Read { node: u16, line: u64 },
    Write { node: u16, line: u64, byte: u8 },
    Lock { node: u16, line: u64 },
    Unlock { node: u16, line: u64 },
    Crash { node: u16 },
    Reboot { node: u16 },
}

fn op_strategy(nodes: u16, lines: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0..nodes, 0..lines).prop_map(|(node, line)| Op::Read { node, line }),
        4 => (0..nodes, 0..lines, any::<u8>())
            .prop_map(|(node, line, byte)| Op::Write { node, line, byte }),
        1 => (0..nodes, 0..lines).prop_map(|(node, line)| Op::Lock { node, line }),
        1 => (0..nodes, 0..lines).prop_map(|(node, line)| Op::Unlock { node, line }),
        1 => (0..nodes).prop_map(|node| Op::Crash { node }),
        1 => (0..nodes).prop_map(|node| Op::Reboot { node }),
    ]
}

/// Reference model: last written byte per line, plus which nodes hold a
/// copy (to predict crash-induced loss).
#[derive(Default)]
struct Model {
    /// line → last written first byte, None once lost.
    values: BTreeMap<u64, Option<u8>>,
}

fn run_model(kind: CoherenceKind, ops: Vec<Op>) -> Result<(), TestCaseError> {
    const NODES: u16 = 4;
    let mut m = Machine::new(SimConfig { coherence: kind, ..SimConfig::new(NODES) });
    let mut model = Model::default();
    // Pre-create every line on node 0 with value 0.
    for l in 0..8u64 {
        m.create_line_at(NodeId(0), LineId(l), &[0]).expect("create");
        model.values.insert(l, Some(0));
    }
    let mut locked: BTreeMap<u64, u16> = BTreeMap::new();
    for op in ops {
        match op {
            Op::Read { node, line } => {
                let mut b = [0u8];
                match m.read_into(NodeId(node), LineId(line), 0, &mut b) {
                    Ok(()) => {
                        let expected = model.values[&line];
                        prop_assert_eq!(
                            Some(b[0]),
                            expected,
                            "read of l{} on n{} saw {} expected {:?}",
                            line,
                            node,
                            b[0],
                            expected
                        );
                    }
                    Err(MemError::Stalled { .. }) => {
                        prop_assert!(
                            locked.get(&line).map(|h| *h != node).unwrap_or(false),
                            "spurious stall"
                        );
                    }
                    Err(MemError::LineLost { .. }) => {
                        prop_assert_eq!(model.values[&line], None, "spurious loss report");
                    }
                    Err(MemError::NodeCrashed { .. }) => {
                        prop_assert!(m.is_crashed(NodeId(node)));
                    }
                    Err(e) => return Err(TestCaseError::fail(format!("unexpected: {e}"))),
                }
            }
            Op::Write { node, line, byte } => {
                match m.write(NodeId(node), LineId(line), 0, &[byte]) {
                    Ok(()) => {
                        model.values.insert(line, Some(byte));
                        // Single-writer invariant under write-invalidate:
                        // the writer is the sole holder.
                        if kind == CoherenceKind::WriteInvalidate {
                            prop_assert_eq!(m.holders(LineId(line)), vec![NodeId(node)]);
                        } else {
                            // Broadcast: every holder's copy agrees.
                            for h in m.holders(LineId(line)) {
                                let c = m.peek_local(*h, LineId(line)).expect("holder has copy");
                                prop_assert_eq!(c[0], byte);
                            }
                        }
                    }
                    Err(MemError::Stalled { .. })
                    | Err(MemError::LineLost { .. })
                    | Err(MemError::NodeCrashed { .. }) => {}
                    Err(e) => return Err(TestCaseError::fail(format!("unexpected: {e}"))),
                }
            }
            Op::Lock { node, line } => {
                if let Ok(()) = m.getline(NodeId(node), LineId(line)) {
                    locked.insert(line, node);
                }
            }
            Op::Unlock { node, line } => {
                if let Ok(()) = m.releaseline(NodeId(node), LineId(line)) {
                    locked.remove(&line);
                }
            }
            Op::Crash { node } => {
                let report = m.crash(&[NodeId(node)]);
                for l in report.lost_lines {
                    model.values.insert(l.0, None);
                }
                for l in report.broken_line_locks {
                    locked.remove(&l.0);
                }
                locked.retain(|_, h| *h != node);
            }
            Op::Reboot { node } => {
                // Rebooting a live node is a power-cycle (destroys its
                // cache); the model only tracks clean restarts of crashed
                // nodes, so restrict to those here.
                if m.is_crashed(NodeId(node)) {
                    m.reboot_node(NodeId(node));
                }
            }
        }
        // Global invariants after every step.
        //
        // Structural invariants of the flat line store first: the
        // open-addressed index maps every live slot back to itself, holder
        // sets are sorted/deduped, lost ⇔ no holders, no crashed node
        // appears in any holder set, and slot/free-list/arena accounting
        // balances (the "directory matches surviving caches" property —
        // with the flat representation the directory *is* the cache state,
        // and this checks its internal consistency after crash+restore).
        m.validate_flat();
        for l in 0..8u64 {
            let line = LineId(l);
            let holders = m.holders(line);
            // Single-owner (M-state) invariant: exclusive_owner is reported
            // iff exactly one node holds the line, and vice versa.
            if let Some(owner) = m.exclusive_owner(line) {
                prop_assert_eq!(holders, vec![owner], "exclusive ⇒ sole holder");
            } else {
                prop_assert!(holders.len() != 1, "sole holder of l{l} not reported exclusive");
            }
            // Holder slices are sorted ascending (the old BTreeSet order).
            prop_assert!(
                holders.windows(2).all(|w| w[0] < w[1]),
                "holders of l{l} unsorted: {holders:?}"
            );
            // Only surviving nodes hold copies.
            for h in holders {
                prop_assert!(!m.is_crashed(*h), "crashed node {h:?} holds l{l}");
            }
            // All valid copies agree byte-for-byte.
            let copies: Vec<u8> =
                holders.iter().filter_map(|h| m.peek_local(*h, line).map(|c| c[0])).collect();
            prop_assert!(
                copies.windows(2).all(|w| w[0] == w[1]),
                "copies of l{l} diverge: {copies:?}"
            );
            // Lost ⇔ model lost (unless recreated, which we never do here).
            if model.values[&l].is_none() {
                prop_assert!(
                    m.is_lost(line) || !m.line_exists(line),
                    "model lost l{l} but machine still serves it"
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn write_invalidate_coherence(ops in proptest::collection::vec(op_strategy(4, 8), 1..120)) {
        run_model(CoherenceKind::WriteInvalidate, ops)?;
    }

    #[test]
    fn write_broadcast_coherence(ops in proptest::collection::vec(op_strategy(4, 8), 1..120)) {
        run_model(CoherenceKind::WriteBroadcast, ops)?;
    }
}
