//! Coherence-traffic and failure statistics.

use serde::{Deserialize, Serialize};

/// Counters maintained by the [`crate::Machine`].
///
/// The migration/replication counters correspond directly to the data
/// sharing patterns of paper §3.2: a **migration** is the `H_ww1`/`H_ww2`
/// transition (a write moves the only copy of a line to the writer), a
/// **replication** is the `H_wr` transition (a read of an exclusively-held
/// line leaves copies on both nodes).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimStats {
    /// Total read operations.
    pub reads: u64,
    /// Total write operations.
    pub writes: u64,
    /// Reads and writes satisfied from the local cache.
    pub local_hits: u64,
    /// Line transfers from a remote cache.
    pub remote_transfers: u64,
    /// ww sharing: a write took exclusive ownership away from another node.
    pub migrations: u64,
    /// wr sharing: a read downgraded another node's exclusive copy.
    pub replications: u64,
    /// Remote copies invalidated by writes (write-invalidate mode).
    pub invalidations: u64,
    /// Exclusive copies downgraded to shared by remote reads.
    pub downgrades: u64,
    /// Remote copies updated in place (write-broadcast mode).
    pub broadcast_updates: u64,
    /// Successful line-lock acquisitions.
    pub line_lock_acquires: u64,
    /// Line-lock requests that found the lock held by another node.
    pub line_lock_conflicts: u64,
    /// Accesses that observed a lost line.
    pub lost_line_accesses: u64,
    /// Lines created (statically addressed or dynamically allocated).
    pub lines_created: u64,
    /// Lines destroyed by node crashes (only copies were on failed nodes).
    pub lines_lost: u64,
    /// Explicit evictions.
    pub evictions: u64,
}

impl SimStats {
    /// Difference `self - earlier`, counter-wise. Useful for measuring one
    /// phase of a workload. Saturates at zero: an `earlier` snapshot taken
    /// after a counter reset (or from a different machine) yields zeros
    /// instead of panicking on underflow.
    pub fn delta_since(&self, earlier: &SimStats) -> SimStats {
        SimStats {
            reads: self.reads.saturating_sub(earlier.reads),
            writes: self.writes.saturating_sub(earlier.writes),
            local_hits: self.local_hits.saturating_sub(earlier.local_hits),
            remote_transfers: self.remote_transfers.saturating_sub(earlier.remote_transfers),
            migrations: self.migrations.saturating_sub(earlier.migrations),
            replications: self.replications.saturating_sub(earlier.replications),
            invalidations: self.invalidations.saturating_sub(earlier.invalidations),
            downgrades: self.downgrades.saturating_sub(earlier.downgrades),
            broadcast_updates: self.broadcast_updates.saturating_sub(earlier.broadcast_updates),
            line_lock_acquires: self.line_lock_acquires.saturating_sub(earlier.line_lock_acquires),
            line_lock_conflicts: self
                .line_lock_conflicts
                .saturating_sub(earlier.line_lock_conflicts),
            lost_line_accesses: self.lost_line_accesses.saturating_sub(earlier.lost_line_accesses),
            lines_created: self.lines_created.saturating_sub(earlier.lines_created),
            lines_lost: self.lines_lost.saturating_sub(earlier.lines_lost),
            evictions: self.evictions.saturating_sub(earlier.evictions),
        }
    }

    /// Fold `other` into `self`, counter-wise. Used when an execution
    /// lane's coherence stats are merged back into the parent machine at
    /// an epoch barrier.
    pub fn absorb(&mut self, other: &SimStats) {
        self.reads += other.reads;
        self.writes += other.writes;
        self.local_hits += other.local_hits;
        self.remote_transfers += other.remote_transfers;
        self.migrations += other.migrations;
        self.replications += other.replications;
        self.invalidations += other.invalidations;
        self.downgrades += other.downgrades;
        self.broadcast_updates += other.broadcast_updates;
        self.line_lock_acquires += other.line_lock_acquires;
        self.line_lock_conflicts += other.line_lock_conflicts;
        self.lost_line_accesses += other.lost_line_accesses;
        self.lines_created += other.lines_created;
        self.lines_lost += other.lines_lost;
        self.evictions += other.evictions;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_subtracts_counterwise() {
        let a = SimStats { reads: 10, writes: 4, ..Default::default() };
        let b = SimStats { reads: 3, writes: 1, ..Default::default() };
        let d = a.delta_since(&b);
        assert_eq!(d.reads, 7);
        assert_eq!(d.writes, 3);
        assert_eq!(d.migrations, 0);
    }

    #[test]
    fn delta_saturates_on_counter_regress() {
        // `earlier` ahead of `self` (e.g. snapshot taken before a
        // reset_stats): the delta clamps to zero instead of panicking.
        let after_reset = SimStats { reads: 2, ..Default::default() };
        let before_reset = SimStats { reads: 100, writes: 5, ..Default::default() };
        let d = after_reset.delta_since(&before_reset);
        assert_eq!(d.reads, 0);
        assert_eq!(d.writes, 0);
    }
}
