//! Coherence-traffic and failure statistics.

use serde::{Deserialize, Serialize};

/// Counters maintained by the [`crate::Machine`].
///
/// The migration/replication counters correspond directly to the data
/// sharing patterns of paper §3.2: a **migration** is the `H_ww1`/`H_ww2`
/// transition (a write moves the only copy of a line to the writer), a
/// **replication** is the `H_wr` transition (a read of an exclusively-held
/// line leaves copies on both nodes).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimStats {
    /// Total read operations.
    pub reads: u64,
    /// Total write operations.
    pub writes: u64,
    /// Reads and writes satisfied from the local cache.
    pub local_hits: u64,
    /// Line transfers from a remote cache.
    pub remote_transfers: u64,
    /// ww sharing: a write took exclusive ownership away from another node.
    pub migrations: u64,
    /// wr sharing: a read downgraded another node's exclusive copy.
    pub replications: u64,
    /// Remote copies invalidated by writes (write-invalidate mode).
    pub invalidations: u64,
    /// Exclusive copies downgraded to shared by remote reads.
    pub downgrades: u64,
    /// Remote copies updated in place (write-broadcast mode).
    pub broadcast_updates: u64,
    /// Successful line-lock acquisitions.
    pub line_lock_acquires: u64,
    /// Line-lock requests that found the lock held by another node.
    pub line_lock_conflicts: u64,
    /// Accesses that observed a lost line.
    pub lost_line_accesses: u64,
    /// Lines created (statically addressed or dynamically allocated).
    pub lines_created: u64,
    /// Lines destroyed by node crashes (only copies were on failed nodes).
    pub lines_lost: u64,
    /// Explicit evictions.
    pub evictions: u64,
}

impl SimStats {
    /// Difference `self - earlier`, counter-wise. Useful for measuring one
    /// phase of a workload.
    pub fn delta_since(&self, earlier: &SimStats) -> SimStats {
        SimStats {
            reads: self.reads - earlier.reads,
            writes: self.writes - earlier.writes,
            local_hits: self.local_hits - earlier.local_hits,
            remote_transfers: self.remote_transfers - earlier.remote_transfers,
            migrations: self.migrations - earlier.migrations,
            replications: self.replications - earlier.replications,
            invalidations: self.invalidations - earlier.invalidations,
            downgrades: self.downgrades - earlier.downgrades,
            broadcast_updates: self.broadcast_updates - earlier.broadcast_updates,
            line_lock_acquires: self.line_lock_acquires - earlier.line_lock_acquires,
            line_lock_conflicts: self.line_lock_conflicts - earlier.line_lock_conflicts,
            lost_line_accesses: self.lost_line_accesses - earlier.lost_line_accesses,
            lines_created: self.lines_created - earlier.lines_created,
            lines_lost: self.lines_lost - earlier.lines_lost,
            evictions: self.evictions - earlier.evictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delta_subtracts_counterwise() {
        let a = SimStats { reads: 10, writes: 4, ..Default::default() };
        let b = SimStats { reads: 3, writes: 1, ..Default::default() };
        let d = a.delta_since(&b);
        assert_eq!(d.reads, 7);
        assert_eq!(d.writes, 3);
        assert_eq!(d.migrations, 0);
    }
}
