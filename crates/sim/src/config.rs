//! Machine configuration.

use crate::cost::CostModel;
use crate::DEFAULT_LINE_SIZE;
use serde::{Deserialize, Serialize};

/// Which hardware cache-coherence protocol the machine runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CoherenceKind {
    /// Before a write to a cache line by one node occurs, all other cached
    /// copies of the line are invalidated (paper §2). The assumption under
    /// which all of the paper's recovery scenarios are developed.
    WriteInvalidate,
    /// Writes are propagated to every cached copy instead of invalidating
    /// them. Discussed in §7: under write-broadcast, ww sharing does not
    /// leave a single exclusive copy, so restart recovery needs *undo only*
    /// — making Selective Redo the natural pairing.
    WriteBroadcast,
}

/// Configuration for a [`crate::Machine`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SimConfig {
    /// Number of nodes (processor/memory pairs). The KSR-1 scales to 1,088
    /// nodes (paper §3.3); the simulator accepts any `u16` population.
    pub nodes: u16,
    /// Cache line size in bytes (default 128, as on KSR-1 and FLASH).
    pub line_size: usize,
    /// The coherence protocol.
    pub coherence: CoherenceKind,
    /// Simulated operation costs.
    pub cost: CostModel,
    /// §4.2.2: if true, references to lines whose only copies resided on
    /// crashed nodes are *stalled* (the access returns
    /// [`crate::MemError::Stalled`]) rather than observing an invalid line.
    /// This is the hardware support that lets locking activity continue
    /// while recovery runs. If false, such references return
    /// [`crate::MemError::LineLost`].
    pub stall_on_lost: bool,
    /// Number of independent shards the coherence directory and line store
    /// are striped into. `1` (the default) reproduces the historical
    /// single-array layout byte-for-byte; larger values let disjoint
    /// stripe sets be detached into per-thread execution lanes
    /// ([`crate::Machine::lane_split`]) so N OS threads can drive N nodes
    /// concurrently.
    pub shards: usize,
    /// Stripe granule in lines: consecutive runs of `stripe_lines` line
    /// addresses map to the same shard (round-robin across shards). The
    /// database engine sets this to its lines-per-page so one page —
    /// record lines plus the Page-LSN line — never straddles shards.
    pub stripe_lines: u64,
}

impl SimConfig {
    /// A default configuration for `nodes` nodes: 128-byte lines,
    /// write-invalidate coherence, default cost model.
    pub fn new(nodes: u16) -> Self {
        SimConfig {
            nodes,
            line_size: DEFAULT_LINE_SIZE,
            coherence: CoherenceKind::WriteInvalidate,
            cost: CostModel::default(),
            stall_on_lost: false,
            shards: 1,
            stripe_lines: 32,
        }
    }

    /// Switch to write-broadcast coherence.
    pub fn write_broadcast(mut self) -> Self {
        self.coherence = CoherenceKind::WriteBroadcast;
        self
    }

    /// Use a custom line size (bytes). Must be non-zero.
    pub fn with_line_size(mut self, bytes: usize) -> Self {
        assert!(bytes > 0, "line size must be non-zero");
        self.line_size = bytes;
        self
    }

    /// Use a custom cost model.
    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    /// Enable stalling references to lost lines (§4.2.2).
    pub fn with_stall_on_lost(mut self, stall: bool) -> Self {
        self.stall_on_lost = stall;
        self
    }

    /// Stripe the directory and line store into `shards` independent
    /// shards (see [`SimConfig::shards`]). Must be non-zero.
    pub fn with_shards(mut self, shards: usize) -> Self {
        assert!(shards > 0, "shard count must be non-zero");
        self.shards = shards;
        self
    }

    /// Set the stripe granule in lines (see [`SimConfig::stripe_lines`]).
    /// Must be non-zero.
    pub fn with_stripe_lines(mut self, lines: u64) -> Self {
        assert!(lines > 0, "stripe granule must be non-zero");
        self.stripe_lines = lines;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let c = SimConfig::new(4).write_broadcast().with_line_size(64).with_stall_on_lost(true);
        assert_eq!(c.nodes, 4);
        assert_eq!(c.line_size, 64);
        assert_eq!(c.coherence, CoherenceKind::WriteBroadcast);
        assert!(c.stall_on_lost);
    }

    #[test]
    #[should_panic(expected = "line size")]
    fn zero_line_size_rejected() {
        let _ = SimConfig::new(1).with_line_size(0);
    }
}
