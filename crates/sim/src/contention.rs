//! Analytic line-lock contention model (experiment E1).
//!
//! The paper reports empirical KSR-1 measurements for the line-lock
//! primitive (§5.1): *"under low contention, the mean execution time to
//! obtain a line lock is less than 10 µs, and under high contention (32
//! processors simultaneously attempting to acquire the same line), the mean
//! execution time to obtain a line lock is less than 40 µs."*
//!
//! The deterministic simulator executes one operation at a time, so true
//! simultaneous contention is modelled analytically: when `k` nodes request
//! the same line lock at the same instant, the hardware serialises them.
//! Requester `i` (0-based, in arrival order) waits for the `i` holders
//! ahead of it, each of which costs one line transfer plus a contention
//! step (directory re-arbitration). This linear-queueing model matches the
//! shape of the KSR-1 measurements: cost grows roughly linearly in queue
//! position, and the *mean* over all requesters grows linearly in `k`.

use crate::cost::CostModel;

/// Outcome of a simultaneous `k`-way line-lock contention episode.
#[derive(Clone, Debug, PartialEq)]
pub struct ContentionOutcome {
    /// Number of simultaneous requesters.
    pub requesters: u32,
    /// Acquisition cost in cycles for each requester, in service order.
    pub per_requester_cycles: Vec<u64>,
    /// Mean acquisition cost over all requesters, cycles.
    pub mean_cycles: f64,
    /// Mean acquisition cost, µs-equivalents.
    pub mean_us: f64,
    /// Worst (last-served) acquisition cost, µs-equivalents.
    pub max_us: f64,
}

/// Compute the per-requester and mean costs when `k` nodes simultaneously
/// attempt to acquire a line lock on the *same* line (the §5.1 high
/// contention experiment). `k = 1` is the uncontended case.
pub fn contended_line_lock_costs(cost: &CostModel, k: u32) -> ContentionOutcome {
    assert!(k >= 1, "at least one requester");
    let base = cost.remote_transfer + cost.line_lock_acquire;
    let per: Vec<u64> = (0..k)
        .map(|i| base + i as u64 * (cost.line_lock_contention_step + cost.line_lock_release))
        .collect();
    let sum: u64 = per.iter().sum();
    let mean = sum as f64 / k as f64;
    ContentionOutcome {
        requesters: k,
        mean_us: cost.cycles_to_us(mean.round() as u64),
        max_us: cost.cycles_to_us(*per.last().expect("non-empty")),
        per_requester_cycles: per,
        mean_cycles: mean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_matches_paper_low_contention_bound() {
        let c = CostModel::default();
        let o = contended_line_lock_costs(&c, 1);
        assert!(o.mean_us <= 10.0, "uncontended acquire {} µs > 10 µs", o.mean_us);
    }

    #[test]
    fn thirty_two_way_matches_paper_high_contention_bound() {
        let c = CostModel::default();
        let o = contended_line_lock_costs(&c, 32);
        assert!(o.mean_us <= 40.0, "32-way mean {} µs > 40 µs", o.mean_us);
        assert!(o.mean_us > 10.0, "32-way contention should cost more than uncontended");
    }

    #[test]
    fn cost_grows_monotonically_in_queue_position() {
        let c = CostModel::default();
        let o = contended_line_lock_costs(&c, 8);
        for w in o.per_requester_cycles.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    #[test]
    fn mean_grows_with_contention() {
        let c = CostModel::default();
        let m1 = contended_line_lock_costs(&c, 1).mean_cycles;
        let m8 = contended_line_lock_costs(&c, 8).mean_cycles;
        let m32 = contended_line_lock_costs(&c, 32).mean_cycles;
        assert!(m1 < m8 && m8 < m32);
    }
}
