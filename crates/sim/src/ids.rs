//! Identifier newtypes shared across the whole reproduction.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A node: a processor/memory pair in the shared-memory multiprocessor.
///
/// The paper's failure model is *independent node failure*: a crash destroys
/// exactly one node's cache and volatile memory.
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u16);

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Address of one cache line in the shared address space.
///
/// The unit of coherence is the cache line (typically 128 bytes), which is
/// smaller than the unit of I/O (a page) — paper §2.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LineId(pub u64);

impl LineId {
    /// First line id reserved for dynamically allocated structures (lock
    /// table overflow blocks, B-tree nodes, ...). Fixed structures (the
    /// record heap, the base lock table) live below this address.
    pub const DYNAMIC_BASE: u64 = 1 << 40;
}

impl fmt::Debug for LineId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{:#x}", self.0)
    }
}

/// A transaction identifier.
///
/// Following §4.2.2 of the paper ("if the transaction ID also encodes the
/// node ID, this information is already available for use by the Volatile
/// LBM policy"), the node a transaction runs on is recoverable from the id
/// alone: the high 16 bits carry the [`NodeId`]. This is what lets the
/// recovery procedure decide, for any lock-table entry or undo tag that
/// survives a crash, whether its transaction ran on a failed node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TxnId(pub u64);

impl TxnId {
    /// Compose a transaction id from the executing node and a node-local
    /// sequence number.
    pub fn new(node: NodeId, seq: u64) -> Self {
        debug_assert!(seq < (1 << 48), "txn sequence overflow");
        TxnId(((node.0 as u64) << 48) | seq)
    }

    /// The node this transaction executes on (every transaction in our
    /// workload model executes entirely on a single node — paper §2).
    pub fn node(self) -> NodeId {
        NodeId((self.0 >> 48) as u16)
    }

    /// Node-local sequence number.
    pub fn seq(self) -> u64 {
        self.0 & ((1 << 48) - 1)
    }
}

impl fmt::Debug for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}.{}", self.node().0, self.seq())
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}.{}", self.node().0, self.seq())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn txn_id_round_trips_node_and_seq() {
        let t = TxnId::new(NodeId(513), 0xABCDEF);
        assert_eq!(t.node(), NodeId(513));
        assert_eq!(t.seq(), 0xABCDEF);
    }

    #[test]
    fn txn_id_zero_node() {
        let t = TxnId::new(NodeId(0), 0);
        assert_eq!(t.node(), NodeId(0));
        assert_eq!(t.seq(), 0);
    }

    #[test]
    fn txn_id_max_node_is_distinct() {
        let a = TxnId::new(NodeId(u16::MAX), 1);
        let b = TxnId::new(NodeId(0), 1);
        assert_ne!(a, b);
        assert_eq!(a.node(), NodeId(u16::MAX));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", TxnId::new(NodeId(3), 9)), "t3.9");
        assert_eq!(format!("{}", NodeId(12)), "n12");
        assert_eq!(format!("{:?}", LineId(0x10)), "l0x10");
    }
}
