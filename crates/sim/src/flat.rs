//! Flat hot-path data structures backing the [`crate::Machine`].
//!
//! The coherence directory and the per-node cache maps used to be
//! `BTreeMap`s: every access paid pointer-chasing through tree nodes and
//! every replication paid a fresh `Box<[u8]>`. The paper's KSR-1 substrate
//! pays neither, and neither do we any more:
//!
//! * [`LineIndex`] — an open-addressed hash index mapping a sparse
//!   [`LineId`](crate::LineId) address space to dense `u32` slot numbers.
//!   Linear probing over two flat arrays, Fibonacci hashing, tombstone
//!   deletion, amortised O(1) lookup with a single cache miss in the
//!   common case.
//! * [`HolderSet`] — the set of nodes holding a valid copy of a line.
//!   Sorted, deduplicated, and stored inline (no heap) for up to
//!   [`HOLDERS_INLINE`] nodes, spilling to a `Vec` only for very widely
//!   shared lines. Iteration order is ascending `NodeId`, matching the
//!   `BTreeSet` the directory used before, so "first holder" choices are
//!   unchanged.
//!
//! Line *data* lives in one arena owned by the machine (slot `i` owns the
//! `i*line_size..` window): because the hardware coherence protocol keeps
//! every valid copy byte-identical, one copy per line is observationally
//! equivalent to one copy per holder, and replication/migration become
//! pure membership updates with zero byte traffic and zero allocation.

use crate::ids::NodeId;
use std::cell::Cell;

const EMPTY: u32 = u32::MAX;
const TOMB: u32 = u32::MAX - 1;

/// Open-addressed `LineId → slot` index (linear probing, power-of-two
/// capacity, Fibonacci hashing).
#[derive(Debug)]
pub(crate) struct LineIndex {
    keys: Vec<u64>,
    vals: Vec<u32>,
    mask: usize,
    live: usize,
    tombs: usize,
    /// Cumulative probe steps (diagnostic; mirrored to the
    /// `sim.index_probes` observability counter by the machine).
    probes: Cell<u64>,
}

#[inline]
fn fib_hash(key: u64, mask: usize) -> usize {
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize & mask
}

impl LineIndex {
    pub fn with_capacity(cap: usize) -> Self {
        let cap = cap.next_power_of_two().max(64);
        LineIndex {
            keys: vec![0; cap],
            vals: vec![EMPTY; cap],
            mask: cap - 1,
            live: 0,
            tombs: 0,
            probes: Cell::new(0),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Current table capacity (diagnostic).
    pub fn capacity(&self) -> usize {
        self.vals.len()
    }

    /// Cumulative probe steps across all lookups/inserts/removes.
    pub fn probe_count(&self) -> u64 {
        self.probes.get()
    }

    /// Slot for `key`, if present. One probe step = one (key, val) pair
    /// inspected.
    #[inline]
    pub fn get(&self, key: u64) -> Option<u32> {
        let mut i = fib_hash(key, self.mask);
        let mut steps = 1u64;
        loop {
            let v = self.vals[i];
            if v == EMPTY {
                self.probes.set(self.probes.get() + steps);
                return None;
            }
            if v != TOMB && self.keys[i] == key {
                self.probes.set(self.probes.get() + steps);
                return Some(v);
            }
            i = (i + 1) & self.mask;
            steps += 1;
        }
    }

    /// Insert or overwrite `key → slot`.
    pub fn insert(&mut self, key: u64, slot: u32) {
        debug_assert!(slot < TOMB);
        if (self.live + self.tombs + 1) * 8 >= self.capacity() * 7 {
            self.grow();
        }
        let mut i = fib_hash(key, self.mask);
        let mut first_tomb: Option<usize> = None;
        let mut steps = 1u64;
        loop {
            let v = self.vals[i];
            if v == EMPTY {
                let at = first_tomb.unwrap_or(i);
                if first_tomb.is_some() {
                    self.tombs -= 1;
                }
                self.keys[at] = key;
                self.vals[at] = slot;
                self.live += 1;
                self.probes.set(self.probes.get() + steps);
                return;
            }
            if v == TOMB {
                if first_tomb.is_none() {
                    first_tomb = Some(i);
                }
            } else if self.keys[i] == key {
                self.vals[i] = slot;
                self.probes.set(self.probes.get() + steps);
                return;
            }
            i = (i + 1) & self.mask;
            steps += 1;
        }
    }

    /// Remove `key`, returning its slot if present.
    pub fn remove(&mut self, key: u64) -> Option<u32> {
        let mut i = fib_hash(key, self.mask);
        let mut steps = 1u64;
        loop {
            let v = self.vals[i];
            if v == EMPTY {
                self.probes.set(self.probes.get() + steps);
                return None;
            }
            if v != TOMB && self.keys[i] == key {
                self.vals[i] = TOMB;
                self.live -= 1;
                self.tombs += 1;
                self.probes.set(self.probes.get() + steps);
                return Some(v);
            }
            i = (i + 1) & self.mask;
            steps += 1;
        }
    }

    fn grow(&mut self) {
        // Double when mostly live; same size when mostly tombstones.
        let target =
            if self.live * 4 >= self.capacity() { self.capacity() * 2 } else { self.capacity() };
        let old_keys = std::mem::replace(&mut self.keys, vec![0; target]);
        let old_vals = std::mem::replace(&mut self.vals, vec![EMPTY; target]);
        self.mask = target - 1;
        self.live = 0;
        self.tombs = 0;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if v != EMPTY && v != TOMB {
                // Re-insert without the load-factor check (capacity is
                // already sufficient).
                let mut i = fib_hash(k, self.mask);
                while self.vals[i] != EMPTY {
                    i = (i + 1) & self.mask;
                }
                self.keys[i] = k;
                self.vals[i] = v;
                self.live += 1;
            }
        }
    }
}

/// How many holders fit inline (no heap) in a [`HolderSet`]. Lines shared
/// by more nodes — rare outside write-broadcast torture tests — spill to a
/// `Vec`.
pub const HOLDERS_INLINE: usize = 8;

/// Sorted, deduplicated set of nodes holding a valid copy of one line.
#[derive(Clone, Debug)]
pub enum HolderSet {
    /// Up to [`HOLDERS_INLINE`] holders, stored inline and sorted.
    Inline {
        /// Sorted holder ids; only `..len` are meaningful.
        arr: [NodeId; HOLDERS_INLINE],
        /// Number of live entries in `arr`.
        len: u8,
    },
    /// More than [`HOLDERS_INLINE`] holders (sorted).
    Spill(Vec<NodeId>),
}

impl HolderSet {
    /// The empty set.
    pub fn empty() -> Self {
        HolderSet::Inline { arr: [NodeId(0); HOLDERS_INLINE], len: 0 }
    }

    /// A singleton set.
    pub fn single(n: NodeId) -> Self {
        let mut arr = [NodeId(0); HOLDERS_INLINE];
        arr[0] = n;
        HolderSet::Inline { arr, len: 1 }
    }

    /// The holders, ascending.
    #[inline]
    pub fn as_slice(&self) -> &[NodeId] {
        match self {
            HolderSet::Inline { arr, len } => &arr[..*len as usize],
            HolderSet::Spill(v) => v,
        }
    }

    /// Number of holders.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            HolderSet::Inline { len, .. } => *len as usize,
            HolderSet::Spill(v) => v.len(),
        }
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether `n` holds a copy.
    #[inline]
    pub fn contains(&self, n: NodeId) -> bool {
        self.as_slice().binary_search(&n).is_ok()
    }

    /// Smallest holder id, if any (the "first holder" the directory's
    /// `BTreeSet` used to yield).
    #[inline]
    pub fn first(&self) -> Option<NodeId> {
        self.as_slice().first().copied()
    }

    /// Insert `n`, keeping the set sorted. No-op if present.
    pub fn insert(&mut self, n: NodeId) {
        let slice = self.as_slice();
        let pos = match slice.binary_search(&n) {
            Ok(_) => return,
            Err(p) => p,
        };
        match self {
            HolderSet::Inline { arr, len } => {
                let l = *len as usize;
                if l < HOLDERS_INLINE {
                    arr.copy_within(pos..l, pos + 1);
                    arr[pos] = n;
                    *len += 1;
                } else {
                    let mut v = Vec::with_capacity(l + 1);
                    v.extend_from_slice(&arr[..l]);
                    v.insert(pos, n);
                    *self = HolderSet::Spill(v);
                }
            }
            HolderSet::Spill(v) => v.insert(pos, n),
        }
    }

    /// Remove `n` if present.
    pub fn remove(&mut self, n: NodeId) {
        let pos = match self.as_slice().binary_search(&n) {
            Ok(p) => p,
            Err(_) => return,
        };
        match self {
            HolderSet::Inline { arr, len } => {
                let l = *len as usize;
                arr.copy_within(pos + 1..l, pos);
                *len -= 1;
            }
            HolderSet::Spill(v) => {
                v.remove(pos);
                // Shrink back inline so long-lived lines don't pin spill
                // allocations after a crash thins their holder set.
                if v.len() <= HOLDERS_INLINE {
                    let mut arr = [NodeId(0); HOLDERS_INLINE];
                    arr[..v.len()].copy_from_slice(v);
                    *self = HolderSet::Inline { arr, len: v.len() as u8 };
                }
            }
        }
    }

    /// Keep only holders satisfying `pred` (order preserved).
    pub fn retain(&mut self, mut pred: impl FnMut(NodeId) -> bool) {
        match self {
            HolderSet::Inline { arr, len } => {
                let l = *len as usize;
                let mut w = 0usize;
                for r in 0..l {
                    if pred(arr[r]) {
                        arr[w] = arr[r];
                        w += 1;
                    }
                }
                *len = w as u8;
            }
            HolderSet::Spill(v) => {
                v.retain(|n| pred(*n));
                if v.len() <= HOLDERS_INLINE {
                    let mut arr = [NodeId(0); HOLDERS_INLINE];
                    arr[..v.len()].copy_from_slice(v);
                    *self = HolderSet::Inline { arr, len: v.len() as u8 };
                }
            }
        }
    }

    /// Drop every holder.
    pub fn clear(&mut self) {
        *self = HolderSet::empty();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip_and_overwrite() {
        let mut ix = LineIndex::with_capacity(4);
        for k in 0..500u64 {
            ix.insert(k * 7, k as u32);
        }
        assert_eq!(ix.len(), 500);
        for k in 0..500u64 {
            assert_eq!(ix.get(k * 7), Some(k as u32));
        }
        assert_eq!(ix.get(1), None);
        ix.insert(7, 999);
        assert_eq!(ix.get(7), Some(999));
        assert_eq!(ix.len(), 500, "overwrite is not an insert");
        assert!(ix.probe_count() > 0);
    }

    #[test]
    fn index_remove_and_reinsert_through_tombstones() {
        let mut ix = LineIndex::with_capacity(4);
        for k in 0..200u64 {
            ix.insert(k, k as u32);
        }
        for k in (0..200u64).step_by(2) {
            assert_eq!(ix.remove(k), Some(k as u32));
        }
        assert_eq!(ix.len(), 100);
        for k in 0..200u64 {
            assert_eq!(ix.get(k), if k % 2 == 1 { Some(k as u32) } else { None });
        }
        // Reinsertion reuses tombstoned space and stays findable.
        for k in (0..200u64).step_by(2) {
            ix.insert(k, (k + 1000) as u32);
        }
        for k in (0..200u64).step_by(2) {
            assert_eq!(ix.get(k), Some((k + 1000) as u32));
        }
        assert_eq!(ix.remove(99999), None);
    }

    #[test]
    fn index_sparse_keys() {
        // The DYNAMIC_BASE split means keys span the full u64 range.
        let mut ix = LineIndex::with_capacity(8);
        let keys = [0u64, 1, u64::from(u32::MAX), 1 << 40, (1 << 40) + 1, u64::MAX - 2];
        for (i, k) in keys.iter().enumerate() {
            ix.insert(*k, i as u32);
        }
        for (i, k) in keys.iter().enumerate() {
            assert_eq!(ix.get(*k), Some(i as u32));
        }
    }

    #[test]
    fn holder_set_sorted_inline_and_spill() {
        let mut h = HolderSet::empty();
        assert!(h.is_empty());
        for n in [5u16, 1, 9, 3, 7, 2, 8, 6] {
            h.insert(NodeId(n));
        }
        assert_eq!(h.len(), 8);
        assert!(matches!(h, HolderSet::Inline { .. }));
        assert_eq!(
            h.as_slice().iter().map(|n| n.0).collect::<Vec<_>>(),
            vec![1, 2, 3, 5, 6, 7, 8, 9]
        );
        h.insert(NodeId(4)); // ninth holder spills
        assert!(matches!(h, HolderSet::Spill(_)));
        assert_eq!(h.len(), 9);
        assert_eq!(h.first(), Some(NodeId(1)));
        h.insert(NodeId(4)); // dedup
        assert_eq!(h.len(), 9);
        h.remove(NodeId(1));
        assert!(matches!(h, HolderSet::Inline { .. }), "shrinks back inline");
        assert_eq!(h.first(), Some(NodeId(2)));
        h.retain(|n| n.0 % 2 == 0);
        assert_eq!(h.as_slice().iter().map(|n| n.0).collect::<Vec<_>>(), vec![2, 4, 6, 8]);
        assert!(h.contains(NodeId(4)) && !h.contains(NodeId(5)));
        h.clear();
        assert!(h.is_empty());
    }
}
