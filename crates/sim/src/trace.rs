//! Coherence event tracing.
//!
//! An optional bounded trace of coherence transitions, for debugging
//! recovery protocols and for *observing* the paper's §3.2 data-sharing
//! histories (`H_ww1`, `H_ww2`, `H_wr`) as they happen. Disabled by
//! default (a single branch on the hot paths); enable with
//! [`crate::Machine::enable_trace`].

use crate::ids::{LineId, NodeId};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// One traced coherence event.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A read was served from the local cache.
    ReadHit {
        /// Reading node.
        node: NodeId,
        /// Line read.
        line: LineId,
    },
    /// A read fetched the line from a remote cache — replication if the
    /// previous holder keeps a copy (the `H_wr` transition).
    ReadRemote {
        /// Reading node.
        node: NodeId,
        /// Line read.
        line: LineId,
        /// Whether this downgraded an exclusive owner (true `H_wr`).
        downgraded: bool,
    },
    /// A write that stayed local (line already exclusive here).
    WriteLocal {
        /// Writing node.
        node: NodeId,
        /// Line written.
        line: LineId,
    },
    /// A write that took the line away from other caches — the `H_ww`
    /// migration when a remote node held it exclusively.
    WriteTake {
        /// Writing node.
        node: NodeId,
        /// Line written.
        line: LineId,
        /// Remote copies invalidated (write-invalidate mode).
        invalidated: u16,
        /// Whether the line migrated from a remote exclusive owner
        /// (`H_ww1`).
        migration: bool,
    },
    /// Remote copies updated in place (write-broadcast mode).
    WriteBroadcast {
        /// Writing node.
        node: NodeId,
        /// Line written.
        line: LineId,
        /// Remote copies updated.
        updated: u16,
    },
    /// A line lock was acquired.
    LineLock {
        /// Acquiring node.
        node: NodeId,
        /// Locked line.
        line: LineId,
    },
    /// A line lock was released.
    LineUnlock {
        /// Releasing node.
        node: NodeId,
        /// Unlocked line.
        line: LineId,
    },
    /// Nodes crashed; `lost` lines were destroyed.
    Crash {
        /// Failed nodes.
        nodes: Vec<NodeId>,
        /// Lines whose every copy died.
        lost: u64,
    },
    /// A line was (re)installed by recovery or a page fault.
    Install {
        /// Installing node.
        node: NodeId,
        /// Installed line.
        line: LineId,
    },
}

/// Bounded ring of recent coherence events.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    ring: VecDeque<(u64, TraceEvent)>,
    capacity: usize,
    next_seq: u64,
    enabled: bool,
}

impl Trace {
    /// Whether tracing is on.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    pub(crate) fn enable(&mut self, capacity: usize) {
        assert!(capacity > 0, "trace capacity must be non-zero");
        self.enabled = true;
        self.capacity = capacity;
        // Re-enabling with a smaller capacity must also bound the events
        // retained from the previous enablement: drop the oldest.
        while self.ring.len() > capacity {
            self.ring.pop_front();
        }
    }

    pub(crate) fn disable(&mut self) {
        self.enabled = false;
        self.ring.clear();
    }

    #[inline]
    pub(crate) fn emit(&mut self, ev: TraceEvent) {
        if !self.enabled {
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        self.ring.push_back((seq, ev));
    }

    /// The retained events, oldest first, with machine-wide sequence
    /// numbers.
    pub fn events(&self) -> impl Iterator<Item = &(u64, TraceEvent)> {
        self.ring.iter()
    }

    /// Drain the retained events.
    pub fn take(&mut self) -> Vec<(u64, TraceEvent)> {
        self.ring.drain(..).collect()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_drops_events() {
        let mut t = Trace::default();
        t.emit(TraceEvent::ReadHit { node: NodeId(0), line: LineId(1) });
        assert!(t.is_empty());
    }

    #[test]
    fn ring_is_bounded_and_ordered() {
        let mut t = Trace::default();
        t.enable(3);
        for i in 0..5 {
            t.emit(TraceEvent::ReadHit { node: NodeId(i), line: LineId(1) });
        }
        assert_eq!(t.len(), 3);
        let seqs: Vec<u64> = t.events().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![2, 3, 4], "oldest events evicted, sequence preserved");
    }

    #[test]
    fn reenable_with_smaller_capacity_trims_ring() {
        let mut t = Trace::default();
        t.enable(5);
        for i in 0..5 {
            t.emit(TraceEvent::ReadHit { node: NodeId(i), line: LineId(1) });
        }
        // Shrink while enabled: backlog must be cut to the new bound,
        // keeping the newest events.
        t.enable(2);
        assert_eq!(t.len(), 2);
        let seqs: Vec<u64> = t.events().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![3, 4], "newest events kept after shrink");
        // Subsequent emissions stay within the new capacity.
        t.emit(TraceEvent::ReadHit { node: NodeId(9), line: LineId(2) });
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn take_drains() {
        let mut t = Trace::default();
        t.enable(8);
        t.emit(TraceEvent::LineLock { node: NodeId(0), line: LineId(1) });
        assert_eq!(t.take().len(), 1);
        assert!(t.is_empty());
    }
}

#[cfg(test)]
mod machine_trace_tests {
    use crate::{LineId, Machine, NodeId, SimConfig, TraceEvent};

    #[test]
    fn hww1_migration_appears_in_trace() {
        let mut m = Machine::new(SimConfig::new(2));
        m.enable_trace(32);
        m.create_line_at(NodeId(0), LineId(9), &[0]).unwrap();
        m.write(NodeId(0), LineId(9), 0, &[1]).unwrap();
        m.write(NodeId(1), LineId(9), 0, &[2]).unwrap();
        let events = m.take_trace();
        assert!(events.iter().any(|(_, e)| matches!(
            e,
            TraceEvent::WriteTake { node: NodeId(1), migration: true, .. }
        )));
    }

    #[test]
    fn hwr_downgrade_appears_in_trace() {
        let mut m = Machine::new(SimConfig::new(2));
        m.enable_trace(32);
        m.create_line_at(NodeId(0), LineId(9), &[0]).unwrap();
        m.write(NodeId(0), LineId(9), 0, &[1]).unwrap();
        let mut b = [0u8];
        m.read_into(NodeId(1), LineId(9), 0, &mut b).unwrap();
        let events = m.take_trace();
        assert!(events.iter().any(|(_, e)| matches!(
            e,
            TraceEvent::ReadRemote { node: NodeId(1), downgraded: true, .. }
        )));
    }

    #[test]
    fn crash_event_counts_lost_lines() {
        let mut m = Machine::new(SimConfig::new(2));
        m.enable_trace(32);
        m.create_line_at(NodeId(1), LineId(9), &[0]).unwrap();
        m.crash(&[NodeId(1)]);
        let events = m.take_trace();
        assert!(events.iter().any(|(_, e)| matches!(e, TraceEvent::Crash { lost: 1, .. })));
    }
}
