//! The simulated cache-coherent shared-memory multiprocessor.
//!
//! A [`Machine`] owns a set of nodes (processor/memory pairs), a cache
//! directory, and the coherent line store. All operations are issued *on
//! behalf of* a node and charge simulated cycles to that node's clock.
//!
//! The simulator deliberately models the *observable semantics* of the
//! coherence protocol rather than bus/network timing: which caches hold
//! valid copies, when the only copy migrates, what a node crash destroys,
//! and what the low-level directory-restore step leaves behind. These are
//! exactly the properties the paper's recovery protocols depend on (§2, §3).
//!
//! # Representation
//!
//! The hot path is flat and allocation-free. Lines live in a dense slot
//! array (`Vec<Slot>`) addressed through a compact open-addressed
//! [`LineIndex`]; line *data* lives in a single arena (`Vec<u8>`, slot `i`
//! owning the `i × line_size` window). Because the coherence protocol keeps
//! every valid copy byte-identical, per-node "caches" reduce to holder-set
//! membership in each slot's [`HolderSet`] — replication and migration are
//! membership updates, not byte copies, and a read/write/lock costs one
//! hash probe plus direct array indexing instead of multiple `BTreeMap`
//! walks and a `Box<[u8]>` clone. Freed slots are recycled through a free
//! list, so steady-state operation performs no allocation at all.
//!
//! The directory states of the old representation are derived views:
//! *Exclusive(n)* ⇔ exactly one holder, *Shared* ⇔ several holders,
//! *Lost* ⇔ the `lost` flag (holders empty, data destroyed by a crash).

use crate::config::{CoherenceKind, SimConfig};
use crate::error::MemError;
use crate::flat::{HolderSet, LineIndex};
use crate::ids::{LineId, NodeId};
use crate::stats::SimStats;
use crate::trace::{Trace, TraceEvent};
use smdb_fault::FaultInjector;
use smdb_obs::{Event as ObsEvent, Obs};
use std::collections::BTreeSet;

/// Fault site: a write or `getline` is about to *migrate* the line — the
/// acting node does not hold a copy and will take the only valid one.
/// Crashing here models death mid-`H_ww1`: whatever the LBM policy left in
/// the volatile log is all recovery has.
pub const FAULT_MIGRATE: &str = "sim.migrate";
/// Fault site: a write or `getline` is about to *invalidate* remote copies
/// (the acting node already holds one). Crashing here models death
/// mid-invalidation.
pub const FAULT_INVALIDATE: &str = "sim.invalidate";

/// Obs counter: cumulative open-addressing probe steps on the line-index
/// lookup path (`sim.index_probes`). A healthy index stays near one probe
/// per lookup; growth signals clustering.
pub const METRIC_INDEX_PROBES: &str = smdb_obs::names::SIM_INDEX_PROBES;
/// Obs counter: line-store slots recycled from the free list instead of
/// growing the arena (`sim.buf_reuse`). Non-zero means the steady state is
/// allocation-free.
pub const METRIC_BUF_REUSE: &str = smdb_obs::names::SIM_BUF_REUSE;

/// One line's directory entry + metadata. Data lives in the machine's
/// arena at `slot_index × line_size`.
#[derive(Clone, Debug)]
struct Slot {
    /// The line this slot holds (meaningful only while `live`).
    line: LineId,
    /// Whether the slot is occupied (false ⇒ on the free list).
    live: bool,
    /// Every valid copy resided on a crashed node: the data is destroyed.
    /// The low-level recovery step leaves this marker so software recovery
    /// can distinguish *lost* from *never existed*. Implies no holders.
    lost: bool,
    /// Line-lock holder, if the line is held in mutually-exclusive state
    /// via `getline` (§5.1).
    locked_by: Option<NodeId>,
    /// The §5.2 "active bit" extension: set while the line carries an
    /// uncommitted update whose log records have not been forced, together
    /// with the node that performed that update. Coherence transitions that
    /// would move or destroy such a line are reported by
    /// [`Machine::pending_triggers`] so a Stable-LBM engine can force the
    /// owner's log first.
    active_owner: Option<NodeId>,
    /// Nodes holding a valid copy (sorted; empty ⇔ `lost`).
    holders: HolderSet,
}

impl Slot {
    fn vacant() -> Self {
        Slot {
            line: LineId(0),
            live: false,
            lost: false,
            locked_by: None,
            active_owner: None,
            holders: HolderSet::empty(),
        }
    }
}

#[derive(Debug)]
struct NodeState {
    clock: u64,
    crashed: bool,
}

/// One independent stripe of the coherence directory and line store: its
/// own open-addressed index, slot array, data arena, and free list. With
/// `SimConfig::shards == 1` the single shard reproduces the historical
/// flat layout exactly. Shards are the unit of ownership transfer for
/// parallel execution lanes ([`Machine::lane_split`]): a lane machine
/// holds the detached shards it owns and an unowned sentinel (empty,
/// `owned == false`) in every other position, so any access outside the
/// lane's stripe set fails loudly instead of corrupting foreign state.
#[derive(Debug)]
struct CoherShard {
    index: LineIndex,
    slots: Vec<Slot>,
    /// Line data arena: slot `i` owns bytes `i*line_size .. (i+1)*line_size`.
    data: Vec<u8>,
    free: Vec<u32>,
    /// Slots recycled from the free list instead of growing the arena.
    buf_reuse: u64,
    /// False only for sentinel positions inside a detached lane machine.
    owned: bool,
}

impl CoherShard {
    fn new() -> Self {
        CoherShard {
            index: LineIndex::with_capacity(1024),
            slots: Vec::new(),
            data: Vec::new(),
            free: Vec::new(),
            buf_reuse: 0,
            owned: true,
        }
    }

    /// Empty unowned sentinel for lane positions outside the lane's
    /// stripe set. Lookups against it find nothing; mutation paths check
    /// `owned` and fail with [`MemError::ForeignStripe`].
    fn foreign() -> Self {
        CoherShard { owned: false, ..CoherShard::new() }
    }
}

/// Internal slot address: shard number + slot index within that shard.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Loc {
    sh: u32,
    slot: u32,
}

/// What kind of coherence transition threatens an active line (§5.2).
///
/// *"the latest point at which the Stable LBM policies must be enforced
/// corresponds to the downgrade or invalidation of l (for undo) and the
/// invalidation of l (for redo)"*.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransferKind {
    /// A remote read will downgrade the owner's exclusive copy to shared
    /// (the `H_wr` pattern): the owner's undo log must be stable first.
    Downgrade,
    /// A remote write will invalidate the owner's copy (the `H_ww` pattern):
    /// both undo and redo logs must be stable first.
    Invalidate,
}

/// A pending coherence transition affecting an *active* line, reported
/// before the access is performed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TriggerEvent {
    /// The line about to be downgraded or invalidated.
    pub line: LineId,
    /// The node whose unforced uncommitted update is on the line.
    pub owner: NodeId,
    /// The transition kind.
    pub kind: TransferKind,
}

/// Result of injecting one or more node crashes.
#[derive(Clone, Debug, Default)]
pub struct CrashReport {
    /// Nodes that failed.
    pub crashed: Vec<NodeId>,
    /// Lines whose every valid copy resided on failed nodes: data destroyed.
    /// Sorted by line id.
    pub lost_lines: Vec<LineId>,
    /// Line locks that were held by failed nodes and were broken by the
    /// low-level recovery step. Sorted by line id.
    pub broken_line_locks: Vec<LineId>,
}

/// Diagnostic view of the flat line store (see
/// [`Machine::flat_stats`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct FlatStats {
    /// Slots currently holding a line (live, including `Lost` markers).
    pub live_lines: usize,
    /// Total slots ever allocated (live + free-listed).
    pub slots: usize,
    /// Slots on the free list awaiting reuse.
    pub free_slots: usize,
    /// Current open-addressed index capacity.
    pub index_capacity: usize,
    /// Cumulative index probe steps (lookups + inserts + removes).
    pub index_probes: u64,
    /// Slots recycled from the free list instead of growing the arena.
    pub buf_reuse: u64,
}

/// The simulated multiprocessor. See the crate-level docs for an overview.
pub struct Machine {
    cfg: SimConfig,
    shards: Vec<CoherShard>,
    nodes: Vec<NodeState>,
    stats: SimStats,
    trace: Trace,
    obs: Obs,
    fault: FaultInjector,
    next_dynamic: u64,
    /// True for machines produced by [`Machine::lane_split`]: dynamic line
    /// allocation is refused (it would race the parent's allocator) and
    /// accesses outside the owned stripes fail with
    /// [`MemError::ForeignStripe`].
    lane: bool,
    /// Lines an instant restart left with pending redo. Coherent access
    /// (read/write/line lock) is refused until the mark is cleared, so the
    /// coherence protocol can never migrate or replicate stale bytes;
    /// `peek*` and `install_line` stay available for the recovery owner.
    unrecovered: BTreeSet<LineId>,
}

impl Machine {
    /// Build a machine from a configuration.
    pub fn new(cfg: SimConfig) -> Self {
        assert!(cfg.nodes > 0, "machine needs at least one node");
        assert!(cfg.shards > 0, "machine needs at least one shard");
        assert!(cfg.stripe_lines > 0, "stripe granule must be non-zero");
        let nodes = (0..cfg.nodes).map(|_| NodeState { clock: 0, crashed: false }).collect();
        let shards = (0..cfg.shards).map(|_| CoherShard::new()).collect();
        Machine {
            cfg,
            shards,
            nodes,
            stats: SimStats::default(),
            trace: Trace::default(),
            obs: Obs::new(),
            fault: FaultInjector::new(),
            next_dynamic: LineId::DYNAMIC_BASE,
            lane: false,
            unrecovered: BTreeSet::new(),
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    /// Cache line size in bytes.
    pub fn line_size(&self) -> usize {
        self.cfg.line_size
    }

    /// Number of nodes, including crashed ones.
    pub fn node_count(&self) -> u16 {
        self.cfg.nodes
    }

    /// All node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> {
        (0..self.cfg.nodes).map(NodeId)
    }

    /// Nodes that have not crashed.
    pub fn surviving_nodes(&self) -> Vec<NodeId> {
        (0..self.cfg.nodes).map(NodeId).filter(|n| !self.nodes[n.0 as usize].crashed).collect()
    }

    /// Whether a node has crashed.
    pub fn is_crashed(&self, node: NodeId) -> bool {
        self.nodes.get(node.0 as usize).map(|n| n.crashed).unwrap_or(false)
    }

    /// Coherence statistics accumulated so far.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Reset all statistics counters.
    pub fn reset_stats(&mut self) {
        self.stats = SimStats::default();
    }

    /// Diagnostic counters for the flat line store (slot/index health),
    /// aggregated across shards.
    pub fn flat_stats(&self) -> FlatStats {
        let mut fs = FlatStats::default();
        for sh in &self.shards {
            fs.live_lines += sh.index.len();
            fs.slots += sh.slots.len();
            fs.free_slots += sh.free.len();
            fs.index_capacity += sh.index.capacity();
            fs.index_probes += sh.index.probe_count();
            fs.buf_reuse += sh.buf_reuse;
        }
        fs
    }

    /// Number of directory/line-store shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Which stripe (shard) `line` maps to: consecutive runs of
    /// `stripe_lines` line addresses share a stripe, round-robin across
    /// the shards.
    pub fn stripe_of(&self, line: LineId) -> u32 {
        ((line.0 / self.cfg.stripe_lines) % self.shards.len() as u64) as u32
    }

    /// Enable coherence-event tracing with a bounded ring of `capacity`
    /// events (see [`TraceEvent`]). Off by default.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace.enable(capacity);
    }

    /// Disable tracing and drop retained events.
    pub fn disable_trace(&mut self) {
        self.trace.disable();
    }

    /// The coherence event trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Drain the retained trace events.
    pub fn take_trace(&mut self) -> Vec<(u64, TraceEvent)> {
        self.trace.take()
    }

    /// The machine-wide observability handle (event bus + metrics). The
    /// coherence events mirrored onto the bus share one sequence numbering
    /// with lock, WAL, and recovery events emitted by higher layers, so
    /// cross-layer causality is visible in a single timeline. Disabled by
    /// default; see [`smdb_obs::Obs::enable`].
    pub fn obs(&self) -> &Obs {
        &self.obs
    }

    /// A clone of the observability handle (shared-handle semantics: it
    /// observes the same bus and registry as [`Machine::obs`]).
    pub fn obs_handle(&self) -> Obs {
        self.obs.clone()
    }

    /// Install a fault injector. The machine hosts the coherence-layer
    /// crash points ([`FAULT_MIGRATE`], [`FAULT_INVALIDATE`]); higher
    /// layers share the same handle for their own sites.
    pub fn set_fault_injector(&mut self, fault: FaultInjector) {
        self.fault = fault;
    }

    /// A clone of the fault-injection handle.
    pub fn fault_handle(&self) -> FaultInjector {
        self.fault.clone()
    }

    // ------------------------------------------------------------------
    // Clocks
    // ------------------------------------------------------------------

    /// Current simulated time (cycles) on a node's clock.
    pub fn now(&self, node: NodeId) -> u64 {
        self.nodes[node.0 as usize].clock
    }

    /// Advance a node's clock by `cycles` (used by higher layers to charge
    /// disk I/O, log forces, and computation).
    pub fn advance(&mut self, node: NodeId, cycles: u64) {
        self.nodes[node.0 as usize].clock += cycles;
    }

    /// The maximum clock over all nodes: the machine-wide makespan.
    pub fn max_clock(&self) -> u64 {
        self.nodes.iter().map(|n| n.clock).max().unwrap_or(0)
    }

    /// Advance every live node's clock to the machine-wide makespan — a
    /// synchronisation barrier. Benchmarks call this before injecting a
    /// crash so availability windows measured on the makespan clock start
    /// from a common origin instead of being masked by accumulated
    /// inter-node clock skew.
    pub fn sync_clocks(&mut self) {
        let max = self.max_clock();
        for n in self.nodes.iter_mut() {
            if !n.crashed {
                n.clock = max;
            }
        }
    }

    fn check_node(&self, node: NodeId) -> Result<(), MemError> {
        let st = self.nodes.get(node.0 as usize).ok_or(MemError::NoSuchNode { node })?;
        if st.crashed {
            return Err(MemError::NodeCrashed { node });
        }
        Ok(())
    }

    fn charge(&mut self, node: NodeId, cycles: u64) {
        self.nodes[node.0 as usize].clock += cycles;
    }

    // ------------------------------------------------------------------
    // Slot plumbing
    // ------------------------------------------------------------------

    /// Shard index for `line` (always in range; may be an unowned
    /// sentinel inside a lane machine).
    #[inline]
    fn shard_idx(&self, line: LineId) -> usize {
        ((line.0 / self.cfg.stripe_lines) % self.shards.len() as u64) as usize
    }

    /// Error unless `line`'s stripe is owned by this machine. Only lane
    /// machines can fail this check.
    #[inline]
    fn check_owned(&self, line: LineId) -> Result<usize, MemError> {
        let sh = self.shard_idx(line);
        if self.shards[sh].owned {
            Ok(sh)
        } else {
            Err(MemError::ForeignStripe { line })
        }
    }

    /// Index lookup, mirroring probe steps onto the `sim.index_probes`
    /// counter (one relaxed load + branch when observability is off).
    /// Unowned sentinel shards are empty, so foreign lines simply miss.
    #[inline]
    fn slot_of(&self, line: LineId) -> Option<Loc> {
        let sh = self.shard_idx(line);
        let shard = &self.shards[sh];
        let before = shard.index.probe_count();
        let slot = shard.index.get(line.0);
        self.obs.metrics.add(METRIC_INDEX_PROBES, shard.index.probe_count() - before);
        slot.map(|slot| Loc { sh: sh as u32, slot })
    }

    #[inline]
    fn slot(&self, l: Loc) -> &Slot {
        &self.shards[l.sh as usize].slots[l.slot as usize]
    }

    #[inline]
    fn slot_mut(&mut self, l: Loc) -> &mut Slot {
        &mut self.shards[l.sh as usize].slots[l.slot as usize]
    }

    #[inline]
    fn line_data(&self, l: Loc) -> &[u8] {
        let ls = self.cfg.line_size;
        let off = l.slot as usize * ls;
        &self.shards[l.sh as usize].data[off..off + ls]
    }

    /// Occupy a slot for `line` in its stripe's shard, exclusive in
    /// `owner`. Recycles the shard's free list before growing its arena.
    /// The caller must have verified ownership via [`Machine::check_owned`].
    fn alloc_slot(&mut self, line: LineId, owner: NodeId) -> Loc {
        let sh = self.shard_idx(line);
        debug_assert!(self.shards[sh].owned, "alloc_slot on a foreign stripe");
        let line_size = self.cfg.line_size;
        let shard = &mut self.shards[sh];
        let slot = match shard.free.pop() {
            Some(s) => {
                shard.buf_reuse += 1;
                self.obs.metrics.inc(METRIC_BUF_REUSE);
                s
            }
            None => {
                let s = shard.slots.len() as u32;
                shard.slots.push(Slot::vacant());
                shard.data.resize(shard.data.len() + line_size, 0);
                s
            }
        };
        let sl = &mut shard.slots[slot as usize];
        sl.line = line;
        sl.live = true;
        sl.lost = false;
        sl.locked_by = None;
        sl.active_owner = None;
        sl.holders = HolderSet::single(owner);
        shard.index.insert(line.0, slot);
        Loc { sh: sh as u32, slot }
    }

    /// Return a slot to its shard's free list (the line ceases to exist).
    fn free_slot(&mut self, l: Loc) {
        let shard = &mut self.shards[l.sh as usize];
        let sl = &mut shard.slots[l.slot as usize];
        debug_assert!(sl.live);
        shard.index.remove(sl.line.0);
        sl.live = false;
        sl.lost = false;
        sl.locked_by = None;
        sl.active_owner = None;
        sl.holders.clear();
        shard.free.push(l.slot);
    }

    /// Overwrite a slot's data window with `data`, zero-padded to the line
    /// size.
    fn write_line_padded(&mut self, l: Loc, data: &[u8]) {
        let ls = self.cfg.line_size;
        assert!(data.len() <= ls, "initialiser longer than a cache line");
        let off = l.slot as usize * ls;
        let win = &mut self.shards[l.sh as usize].data[off..off + ls];
        win[..data.len()].copy_from_slice(data);
        win[data.len()..].fill(0);
    }

    // ------------------------------------------------------------------
    // Line creation
    // ------------------------------------------------------------------

    /// Create a line at a fixed address, initially exclusive in `node`'s
    /// cache. `data` is zero-padded to the line size. Errors if the address
    /// is already populated (including `Lost` remnants — use
    /// [`Machine::install_line`] during recovery).
    pub fn create_line_at(
        &mut self,
        node: NodeId,
        line: LineId,
        data: &[u8],
    ) -> Result<(), MemError> {
        self.check_node(node)?;
        self.check_owned(line)?;
        if self.slot_of(line).is_some() {
            return Err(MemError::AlreadyExists { line });
        }
        let slot = self.alloc_slot(line, node);
        self.write_line_padded(slot, data);
        self.stats.lines_created += 1;
        self.charge(node, self.cfg.cost.local_hit);
        Ok(())
    }

    /// Dynamically allocate a fresh line (addresses above
    /// [`LineId::DYNAMIC_BASE`]), initially exclusive in `node`'s cache.
    /// Refused inside an execution lane: the dynamic-address allocator is
    /// owned by the parent machine, so the caller must escalate to a
    /// serial (between-epochs) retry.
    pub fn alloc_line(&mut self, node: NodeId, data: &[u8]) -> Result<LineId, MemError> {
        if self.lane {
            return Err(MemError::ForeignStripe { line: LineId(self.next_dynamic) });
        }
        let line = LineId(self.next_dynamic);
        self.next_dynamic += 1;
        self.create_line_at(node, line, data)?;
        Ok(line)
    }

    // ------------------------------------------------------------------
    // Access checks shared by read/write/getline
    // ------------------------------------------------------------------

    fn check_access(&mut self, node: NodeId, line: LineId) -> Result<Loc, MemError> {
        self.check_node(node)?;
        self.check_owned(line)?;
        let slot = match self.slot_of(line) {
            None => return Err(MemError::NotResident { line }),
            Some(s) => s,
        };
        let sl = self.slot(slot);
        if sl.lost {
            self.stats.lost_line_accesses += 1;
            return if self.cfg.stall_on_lost {
                Err(MemError::Stalled { line, holder: None })
            } else {
                Err(MemError::LineLost { line })
            };
        }
        if let Some(holder) = sl.locked_by {
            if holder != node {
                self.stats.line_lock_conflicts += 1;
                return Err(MemError::Stalled { line, holder: Some(holder) });
            }
        }
        if self.unrecovered.contains(&line) {
            return Err(MemError::Unrecovered { line });
        }
        Ok(slot)
    }

    // ------------------------------------------------------------------
    // Reads
    // ------------------------------------------------------------------

    /// The coherence transition + accounting for a read, after
    /// `check_access` succeeded.
    fn do_read(&mut self, node: NodeId, line: LineId, slot: Loc) {
        self.stats.reads += 1;
        let sl = self.slot(slot);
        if sl.holders.contains(node) {
            self.stats.local_hits += 1;
            self.charge(node, self.cfg.cost.local_hit);
            self.trace.emit(TraceEvent::ReadHit { node, line });
            self.obs.bus.emit(self.nodes[node.0 as usize].clock, || ObsEvent::ReadHit {
                node: node.0,
                line: line.0,
            });
        } else {
            // Replicate into `node`'s cache; an exclusive owner is
            // downgraded to shared (the `H_wr` pattern). All copies are
            // identical, so replication is pure membership.
            let downgraded = sl.holders.len() == 1;
            if downgraded {
                self.stats.replications += 1;
                self.stats.downgrades += 1;
            }
            self.slot_mut(slot).holders.insert(node);
            self.stats.remote_transfers += 1;
            self.charge(node, self.cfg.cost.remote_transfer);
            self.trace.emit(TraceEvent::ReadRemote { node, line, downgraded });
            self.obs.bus.emit(self.nodes[node.0 as usize].clock, || ObsEvent::ReadRemote {
                node: node.0,
                line: line.0,
                downgraded,
            });
        }
    }

    /// Read `buf.len()` bytes at `offset` within `line` into `buf`, on
    /// behalf of `node`. May replicate the line into `node`'s cache
    /// (downgrading a remote exclusive copy — the `H_wr` pattern).
    pub fn read_into(
        &mut self,
        node: NodeId,
        line: LineId,
        offset: usize,
        buf: &mut [u8],
    ) -> Result<(), MemError> {
        let slot = self.check_access(node, line)?;
        if offset + buf.len() > self.cfg.line_size {
            return Err(MemError::OutOfBounds { line, offset, len: buf.len() });
        }
        self.do_read(node, line, slot);
        let data = self.line_data(slot);
        buf.copy_from_slice(&data[offset..offset + buf.len()]);
        Ok(())
    }

    /// Coherent full-line read without copying: performs the same
    /// transitions and accounting as [`Machine::read_into`], then hands the
    /// line's bytes to `f`. This is the allocation-free replacement for the
    /// old `read_line` (which returned a fresh `Vec<u8>` per access).
    pub fn read_line_with<R>(
        &mut self,
        node: NodeId,
        line: LineId,
        f: impl FnOnce(&[u8]) -> R,
    ) -> Result<R, MemError> {
        let slot = self.check_access(node, line)?;
        self.do_read(node, line, slot);
        Ok(f(self.line_data(slot)))
    }

    // ------------------------------------------------------------------
    // Writes
    // ------------------------------------------------------------------

    /// Write `data` at `offset` within `line`, on behalf of `node`.
    ///
    /// Under [`CoherenceKind::WriteInvalidate`] all other cached copies are
    /// invalidated first and the line becomes exclusive in `node`'s cache —
    /// if another node held it, this is a **migration** (`H_ww1`). Under
    /// [`CoherenceKind::WriteBroadcast`] every cached copy is updated in
    /// place and all holders remain valid (§7).
    pub fn write(
        &mut self,
        node: NodeId,
        line: LineId,
        offset: usize,
        data: &[u8],
    ) -> Result<(), MemError> {
        let slot = self.check_access(node, line)?;
        if offset + data.len() > self.cfg.line_size {
            return Err(MemError::OutOfBounds { line, offset, len: data.len() });
        }
        self.stats.writes += 1;
        let (holder_count, locally_held) = {
            let h = &self.slot(slot).holders;
            (h.len(), h.contains(node))
        };
        // Crash point: the transition is about to move or destroy copies.
        // Fires *before* any directory or data mutation, so the victim
        // dies exactly as the hardware request would have been issued.
        if !(locally_held && holder_count == 1) {
            let site = if locally_held { FAULT_INVALIDATE } else { FAULT_MIGRATE };
            if let Some(c) = self.fault.hit(site, node.0) {
                return Err(MemError::FaultCrash(c));
            }
        }
        match self.cfg.coherence {
            CoherenceKind::WriteInvalidate => {
                if locally_held && holder_count == 1 {
                    self.stats.local_hits += 1;
                    self.charge(node, self.cfg.cost.local_hit);
                    self.trace.emit(TraceEvent::WriteLocal { node, line });
                    self.obs.bus.emit(self.nodes[node.0 as usize].clock, || ObsEvent::WriteLocal {
                        node: node.0,
                        line: line.0,
                    });
                } else {
                    // Obtain the data if we don't hold it, then invalidate
                    // every other copy.
                    let migration = !locally_held;
                    let invalidated = (holder_count - locally_held as usize) as u16;
                    if !locally_held {
                        self.stats.remote_transfers += 1;
                        self.stats.migrations += 1;
                        self.charge(node, self.cfg.cost.remote_transfer);
                    } else {
                        self.charge(node, self.cfg.cost.local_hit);
                    }
                    self.stats.invalidations += invalidated as u64;
                    self.charge(node, self.cfg.cost.invalidate * invalidated as u64);
                    self.trace.emit(TraceEvent::WriteTake { node, line, invalidated, migration });
                    self.obs.bus.emit(self.nodes[node.0 as usize].clock, || ObsEvent::WriteTake {
                        node: node.0,
                        line: line.0,
                        invalidated,
                        migration,
                    });
                }
                self.slot_mut(slot).holders = HolderSet::single(node);
            }
            CoherenceKind::WriteBroadcast => {
                if !locally_held {
                    self.stats.remote_transfers += 1;
                    self.charge(node, self.cfg.cost.remote_transfer);
                } else {
                    self.stats.local_hits += 1;
                    self.charge(node, self.cfg.cost.local_hit);
                }
                // Every other valid copy is updated in place (membership is
                // unchanged; the single stored image serves all holders).
                let updated = (holder_count - locally_held as usize) as u16;
                self.stats.broadcast_updates += updated as u64;
                self.charge(node, self.cfg.cost.broadcast_update * updated as u64);
                self.trace.emit(TraceEvent::WriteBroadcast { node, line, updated });
                self.obs.bus.emit(self.nodes[node.0 as usize].clock, || ObsEvent::WriteBroadcast {
                    node: node.0,
                    line: line.0,
                    updated,
                });
                self.slot_mut(slot).holders.insert(node);
            }
        }
        let ls = self.cfg.line_size;
        let off = slot.slot as usize * ls + offset;
        self.shards[slot.sh as usize].data[off..off + data.len()].copy_from_slice(data);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Line locks (§5.1)
    // ------------------------------------------------------------------

    /// Acquire a line lock: obtain and hold `line` in mutually-exclusive
    /// state in `node`'s cache. While held, no other node can read, write,
    /// or lock the line (their accesses return [`MemError::Stalled`]).
    /// Re-acquisition by the current holder is a no-op.
    pub fn getline(&mut self, node: NodeId, line: LineId) -> Result<(), MemError> {
        let slot = self.check_access(node, line)?;
        if self.slot(slot).locked_by == Some(node) {
            return Ok(());
        }
        let (holder_count, locally_held) = {
            let h = &self.slot(slot).holders;
            (h.len(), h.contains(node))
        };
        // Crash point: acquiring the line lock migrates/invalidates copies.
        if !(locally_held && holder_count == 1) {
            let site = if locally_held { FAULT_INVALIDATE } else { FAULT_MIGRATE };
            if let Some(c) = self.fault.hit(site, node.0) {
                return Err(MemError::FaultCrash(c));
            }
        }
        if self.cfg.coherence == CoherenceKind::WriteBroadcast {
            // A broadcast machine's lock primitive does not invalidate
            // remote copies (writes update them in place); it only pins
            // mutual exclusion and ensures a local copy.
            if !locally_held {
                self.slot_mut(slot).holders.insert(node);
                self.stats.remote_transfers += 1;
                self.charge(node, self.cfg.cost.remote_transfer);
            }
            self.slot_mut(slot).locked_by = Some(node);
            self.stats.line_lock_acquires += 1;
            self.charge(node, self.cfg.cost.line_lock_acquire);
            return Ok(());
        }
        // Bring the line exclusive (same transitions as a write, but the
        // data is not modified).
        if !(holder_count == 1 && locally_held) {
            if !locally_held {
                self.stats.remote_transfers += 1;
                if holder_count == 1 {
                    self.stats.migrations += 1;
                }
                self.charge(node, self.cfg.cost.remote_transfer);
            }
            let invalidated = (holder_count - locally_held as usize) as u64;
            self.stats.invalidations += invalidated;
            self.charge(node, self.cfg.cost.invalidate * invalidated);
        }
        let sl = self.slot_mut(slot);
        sl.holders = HolderSet::single(node);
        sl.locked_by = Some(node);
        self.stats.line_lock_acquires += 1;
        self.charge(node, self.cfg.cost.line_lock_acquire);
        self.trace.emit(TraceEvent::LineLock { node, line });
        self.obs.bus.emit(self.nodes[node.0 as usize].clock, || ObsEvent::LineLock {
            node: node.0,
            line: line.0,
        });
        Ok(())
    }

    /// Release a line lock held by `node`.
    pub fn releaseline(&mut self, node: NodeId, line: LineId) -> Result<(), MemError> {
        self.check_node(node)?;
        self.check_owned(line)?;
        let slot = self.slot_of(line).ok_or(MemError::NotResident { line })?;
        let sl = self.slot_mut(slot);
        if sl.locked_by != Some(node) {
            return Err(MemError::NotLockHolder { line, node });
        }
        sl.locked_by = None;
        self.charge(node, self.cfg.cost.line_lock_release);
        self.trace.emit(TraceEvent::LineUnlock { node, line });
        self.obs.bus.emit(self.nodes[node.0 as usize].clock, || ObsEvent::LineUnlock {
            node: node.0,
            line: line.0,
        });
        Ok(())
    }

    /// The current line-lock holder, if any.
    pub fn line_lock_holder(&self, line: LineId) -> Option<NodeId> {
        self.slot_of(line).and_then(|s| self.slot(s).locked_by)
    }

    // ------------------------------------------------------------------
    // Active bit & Stable-LBM triggers (§5.2)
    // ------------------------------------------------------------------

    /// Mark a line *active*: it carries an uncommitted update by `owner`
    /// whose log records have not yet been forced to stable store. This is
    /// the one-bit-per-line coherence extension proposed in §5.2.
    pub fn set_active(&mut self, line: LineId, owner: NodeId) {
        debug_assert!(self.check_owned(line).is_ok(), "set_active on a foreign stripe");
        if let Some(s) = self.slot_of(line) {
            self.slot_mut(s).active_owner = Some(owner);
        }
    }

    /// Clear the active bit (called after the owner forces its log).
    pub fn clear_active(&mut self, line: LineId) {
        debug_assert!(self.check_owned(line).is_ok(), "clear_active on a foreign stripe");
        if let Some(s) = self.slot_of(line) {
            self.slot_mut(s).active_owner = None;
        }
    }

    /// The node whose unforced update marks this line active, if any.
    pub fn active_owner(&self, line: LineId) -> Option<NodeId> {
        self.slot_of(line).and_then(|s| self.slot(s).active_owner)
    }

    /// Report the coherence transition that an access by `node` to `line`
    /// would inflict on an *active* line owned by another node, without
    /// performing the access. A Stable-LBM engine consults this before
    /// every access and forces the owner's log when an event is pending —
    /// realising the trigger-based enforcement of §5.2.
    pub fn pending_triggers(
        &self,
        node: NodeId,
        line: LineId,
        is_write: bool,
    ) -> Option<TriggerEvent> {
        let sl = self.slot(self.slot_of(line)?);
        let owner = sl.active_owner?;
        if owner == node {
            return None;
        }
        // Does `owner` still hold a valid copy that this access endangers?
        if !sl.holders.contains(owner) {
            return None;
        }
        let exclusive = !sl.lost && sl.holders.len() == 1;
        match self.cfg.coherence {
            CoherenceKind::WriteInvalidate => {
                if is_write {
                    Some(TriggerEvent { line, owner, kind: TransferKind::Invalidate })
                } else if exclusive {
                    Some(TriggerEvent { line, owner, kind: TransferKind::Downgrade })
                } else {
                    None
                }
            }
            // Under write-broadcast no copy is destroyed, but the owner's
            // uncommitted update becomes visible on (and dependent on) the
            // accessing node — undo information must be stable first.
            CoherenceKind::WriteBroadcast => {
                if exclusive {
                    Some(TriggerEvent { line, owner, kind: TransferKind::Downgrade })
                } else {
                    None
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Crashes and low-level recovery (§2, FLASH-style)
    // ------------------------------------------------------------------

    /// Crash one or more nodes.
    ///
    /// The contents of the failed nodes' caches/memories are destroyed.
    /// The low-level recovery step (modelled after FLASH: all CPUs stop,
    /// the interconnect restores the cache directories to a state that
    /// reflects the surviving caches) runs as part of this call: directory
    /// entries are purged of failed holders, lines with no surviving copy
    /// are marked [`lost`](Machine::is_lost), and line locks held by failed
    /// nodes are broken.
    pub fn crash(&mut self, nodes: &[NodeId]) -> CrashReport {
        let mut report = CrashReport::default();
        for &n in nodes {
            let st = &mut self.nodes[n.0 as usize];
            if st.crashed {
                continue;
            }
            st.crashed = true;
            report.crashed.push(n);
        }
        if report.crashed.is_empty() {
            return report;
        }
        let crashed = &report.crashed;
        for shard in self.shards.iter_mut() {
            for sl in shard.slots.iter_mut() {
                if !sl.live {
                    continue;
                }
                if !sl.lost {
                    sl.holders.retain(|n| !crashed.contains(&n));
                    if sl.holders.is_empty() {
                        sl.lost = true;
                        report.lost_lines.push(sl.line);
                        self.stats.lines_lost += 1;
                    }
                }
                if let Some(h) = sl.locked_by {
                    if crashed.contains(&h) {
                        sl.locked_by = None;
                        report.broken_line_locks.push(sl.line);
                    }
                }
                if let Some(o) = sl.active_owner {
                    if crashed.contains(&o) {
                        // The owner's volatile log died with it; the active
                        // bit is meaningless now.
                        sl.active_owner = None;
                    }
                }
            }
        }
        // Slot order is allocation order; reports are sorted by line id
        // (the order the old BTreeMap directory yielded them in).
        report.lost_lines.sort();
        report.broken_line_locks.sort();
        self.trace.emit(TraceEvent::Crash {
            nodes: report.crashed.clone(),
            lost: report.lost_lines.len() as u64,
        });
        self.obs.bus.emit(self.max_clock(), || ObsEvent::CrashInjected {
            nodes: report.crashed.len() as u16,
            lost_lines: report.lost_lines.len() as u64,
        });
        report
    }

    /// Bring a previously crashed node back online with an empty cache.
    /// Its clock resumes from the machine-wide maximum (reboot takes time).
    /// Rebooting a node that has *not* crashed is a power-cycle: its cache
    /// contents are destroyed exactly as by a crash first.
    pub fn reboot_node(&mut self, node: NodeId) {
        if !self.nodes[node.0 as usize].crashed {
            let _ = self.crash(&[node]);
        }
        let max = self.max_clock();
        let st = &mut self.nodes[node.0 as usize];
        st.crashed = false;
        st.clock = st.clock.max(max);
    }

    // ------------------------------------------------------------------
    // Recovery-side primitives
    // ------------------------------------------------------------------

    /// Whether the line's data was destroyed by a crash and has not been
    /// reinstalled.
    pub fn is_lost(&self, line: LineId) -> bool {
        self.slot_of(line).map(|s| self.slot(s).lost).unwrap_or(false)
    }

    /// Whether any surviving cache holds a valid copy. This is the §4.1.2
    /// Selective-Redo probe: *"temporarily disabling the cache miss
    /// requests which incur I/O — if a memory reference cannot be satisfied
    /// with a cache line in a surviving node, an invalid flag is
    /// returned."*
    pub fn probe_cached(&self, line: LineId) -> bool {
        self.slot_of(line).map(|s| !self.slot(s).lost).unwrap_or(false)
    }

    /// Mark `line` as carrying pending redo from an instant restart: every
    /// coherent access (read, write, line lock) fails with
    /// [`MemError::Unrecovered`] until [`Machine::clear_unrecovered`], so
    /// the coherence protocol cannot migrate or replicate the stale bytes.
    /// `peek`/`peek_local`/`iter_cached` (inspection) and `install_line`
    /// (authoritative reinstall) are exempt.
    pub fn mark_unrecovered(&mut self, line: LineId) {
        self.unrecovered.insert(line);
    }

    /// Clear the pending-redo mark on `line` (the owner applied its redo).
    pub fn clear_unrecovered(&mut self, line: LineId) {
        self.unrecovered.remove(&line);
    }

    /// Drop every pending-redo mark (a re-entered recovery re-derives its
    /// own plan from the retained logs).
    pub fn clear_all_unrecovered(&mut self) {
        self.unrecovered.clear();
    }

    /// Whether `line` is currently marked as carrying pending redo.
    pub fn is_unrecovered(&self, line: LineId) -> bool {
        self.unrecovered.contains(&line)
    }

    /// Number of lines currently marked as carrying pending redo.
    pub fn unrecovered_count(&self) -> usize {
        self.unrecovered.len()
    }

    /// Discard `node`'s cached copy of `line` (no writeback — the caller is
    /// responsible for durability). If this removes the last copy the
    /// directory entry disappears entirely (the line becomes
    /// [`MemError::NotResident`]). Used by Redo-All's step 1 and by the
    /// buffer manager after flushing a page.
    pub fn discard(&mut self, node: NodeId, line: LineId) -> Result<(), MemError> {
        self.check_node(node)?;
        self.check_owned(line)?;
        let slot = match self.slot_of(line) {
            None => return Ok(()), // already gone
            Some(s) => s,
        };
        let sl = self.slot_mut(slot);
        if sl.holders.contains(node) {
            sl.holders.remove(node);
            if sl.holders.is_empty() && !sl.lost {
                self.free_slot(slot);
            }
        }
        self.stats.evictions += 1;
        self.charge(node, self.cfg.cost.local_hit);
        Ok(())
    }

    /// Discard every line in `node`'s cache matching `pred`; returns how
    /// many were discarded. Redo-All step 1 uses this to flush all cached
    /// database objects from surviving nodes. Single allocation-free pass
    /// over the slot array.
    pub fn discard_matching(&mut self, node: NodeId, pred: impl Fn(LineId) -> bool) -> u64 {
        let mut count = 0u64;
        for sh in 0..self.shards.len() {
            for i in 0..self.shards[sh].slots.len() {
                let (live, line, holds) = {
                    let sl = &self.shards[sh].slots[i];
                    (sl.live, sl.line, sl.holders.contains(node))
                };
                if live && holds && pred(line) {
                    let _ = self.discard(node, line);
                    count += 1;
                }
            }
        }
        count
    }

    /// (Re)install a line's contents as exclusive in `node`'s cache,
    /// overwriting any previous directory state including `Lost`. Used by
    /// restart recovery (reconstructing lines from logs) and by the buffer
    /// manager (fetching pages from the stable database). Clears any
    /// active bit and line lock.
    pub fn install_line(
        &mut self,
        node: NodeId,
        line: LineId,
        data: &[u8],
    ) -> Result<(), MemError> {
        self.check_node(node)?;
        self.check_owned(line)?;
        let slot = match self.slot_of(line) {
            Some(s) => {
                // Install is authoritative: any surviving copies elsewhere
                // are dropped along with locks and active bits.
                let sl = self.slot_mut(s);
                sl.lost = false;
                sl.locked_by = None;
                sl.active_owner = None;
                sl.holders = HolderSet::single(node);
                s
            }
            None => self.alloc_slot(line, node),
        };
        self.write_line_padded(slot, data);
        self.charge(node, self.cfg.cost.local_hit);
        self.trace.emit(TraceEvent::Install { node, line });
        self.obs.bus.emit(self.nodes[node.0 as usize].clock, || ObsEvent::Install {
            node: node.0,
            line: line.0,
        });
        Ok(())
    }

    /// Forget a `Lost` directory entry (the line will read as
    /// `NotResident`). Recovery calls this once it has ensured the line's
    /// durable state is authoritative and no reinstall is needed.
    pub fn clear_lost(&mut self, line: LineId) {
        debug_assert!(self.check_owned(line).is_ok(), "clear_lost on a foreign stripe");
        if let Some(s) = self.slot_of(line) {
            if self.slot(s).lost {
                self.free_slot(s);
            }
        }
    }

    // ------------------------------------------------------------------
    // Inspection (zero-cost; for recovery scans, oracles, and tests)
    // ------------------------------------------------------------------

    /// Zero-cost, side-effect-free view of a line's current contents from
    /// any surviving holder. `None` if lost or not resident. For use by
    /// recovery bookkeeping, invariant oracles, and tests — *not* part of
    /// the coherent access path.
    pub fn peek(&self, line: LineId) -> Option<&[u8]> {
        let slot = self.slot_of(line)?;
        if self.slot(slot).lost {
            return None;
        }
        Some(self.line_data(slot))
    }

    /// Zero-cost view of `node`'s own cached copy, if valid.
    pub fn peek_local(&self, node: NodeId, line: LineId) -> Option<&[u8]> {
        let slot = self.slot_of(line)?;
        if !self.slot(slot).holders.contains(node) {
            return None;
        }
        Some(self.line_data(slot))
    }

    /// Iterate over the lines currently valid in `node`'s cache. This is
    /// the sequential cache scan Selective Redo performs to find records
    /// tagged by crashed nodes (§4.1.2). Iteration is shard-major, in
    /// slot (allocation) order within each shard — with a single shard
    /// this is exactly the historical allocation order, and for any shard
    /// count it is a canonical order independent of how many OS threads
    /// drove the machine.
    pub fn iter_cached(&self, node: NodeId) -> impl Iterator<Item = (LineId, &[u8])> {
        let ls = self.cfg.line_size;
        self.shards.iter().flat_map(move |shard| {
            shard.slots.iter().enumerate().filter_map(move |(i, sl)| {
                if sl.live && sl.holders.contains(node) {
                    Some((sl.line, &shard.data[i * ls..(i + 1) * ls]))
                } else {
                    None
                }
            })
        })
    }

    /// The nodes currently holding valid copies of `line`, as a sorted
    /// slice borrowed from the directory (no allocation; empty if the line
    /// is lost or not resident).
    pub fn holders(&self, line: LineId) -> &[NodeId] {
        match self.slot_of(line) {
            Some(s) => self.slot(s).holders.as_slice(),
            None => &[],
        }
    }

    /// Number of nodes holding a valid copy of `line`.
    pub fn holder_count(&self, line: LineId) -> usize {
        self.holders(line).len()
    }

    /// The exclusive owner of `line`, if it is held exclusively.
    pub fn exclusive_owner(&self, line: LineId) -> Option<NodeId> {
        let slot = self.slot_of(line)?;
        let sl = self.slot(slot);
        if !sl.lost && sl.holders.len() == 1 {
            sl.holders.first()
        } else {
            None
        }
    }

    /// Whether `line` exists in the directory (in any state, including
    /// `Lost`).
    pub fn line_exists(&self, line: LineId) -> bool {
        self.slot_of(line).is_some()
    }

    /// Check every structural invariant of the flat line store, panicking
    /// with a description on violation. O(slots × nodes); meant for tests
    /// and property checks, not the hot path.
    pub fn validate_flat(&self) {
        for (shn, shard) in self.shards.iter().enumerate() {
            let mut live = 0usize;
            for (i, sl) in shard.slots.iter().enumerate() {
                if !sl.live {
                    assert!(
                        shard.free.contains(&(i as u32)),
                        "dead slot {i} (shard {shn}) missing from the free list"
                    );
                    continue;
                }
                live += 1;
                assert_eq!(
                    self.shard_idx(sl.line),
                    shn,
                    "line {:?} stored in shard {shn} but stripes to {}",
                    sl.line,
                    self.shard_idx(sl.line)
                );
                assert_eq!(
                    shard.index.get(sl.line.0),
                    Some(i as u32),
                    "live slot {i} (line {:?}) not indexed back to itself",
                    sl.line
                );
                let h = sl.holders.as_slice();
                assert!(
                    h.windows(2).all(|w| w[0] < w[1]),
                    "holder set of {:?} not sorted/deduped: {h:?}",
                    sl.line
                );
                if sl.lost {
                    assert!(h.is_empty(), "lost line {:?} still has holders {h:?}", sl.line);
                    assert!(sl.locked_by.is_none(), "lost line {:?} still locked", sl.line);
                } else {
                    assert!(!h.is_empty(), "valid line {:?} has no holders", sl.line);
                }
                for n in h {
                    assert!(
                        !self.nodes[n.0 as usize].crashed,
                        "crashed node {n:?} still holds {:?}",
                        sl.line
                    );
                }
                if let Some(l) = sl.locked_by {
                    assert!(h.contains(&l), "lock holder {l:?} of {:?} holds no copy", sl.line);
                }
            }
            assert_eq!(
                shard.index.len(),
                live,
                "shard {shn} index size disagrees with live slot count"
            );
            assert_eq!(
                shard.slots.len(),
                live + shard.free.len(),
                "shard {shn} slot accounting: live + free ≠ total"
            );
            assert_eq!(
                shard.data.len(),
                shard.slots.len() * self.cfg.line_size,
                "shard {shn} arena size disagrees with slot count"
            );
        }
    }

    // ------------------------------------------------------------------
    // Execution lanes (parallel epochs)
    // ------------------------------------------------------------------

    /// Detach the given stripes into a *lane machine*: a fully functional
    /// [`Machine`] that owns exactly `stripes` (every other shard position
    /// holds an empty unowned sentinel) and can therefore be moved to
    /// another OS thread and driven concurrently with sibling lanes that
    /// own disjoint stripe sets. The lane shares this machine's
    /// observability and fault handles, starts with zeroed coherence
    /// stats, cloned node clocks, and tracing disabled; any access
    /// outside its stripes fails with [`MemError::ForeignStripe`], and
    /// dynamic line allocation is refused. Reattach with
    /// [`Machine::lane_merge`].
    ///
    /// Panics if a stripe is out of range, listed twice, already
    /// detached, or if this machine is itself a lane, and requires every
    /// pending-redo mark to have been drained first (lanes refuse the
    /// unrecovered set wholesale rather than checking it per access).
    pub fn lane_split(&mut self, stripes: &[u32]) -> Machine {
        assert!(!self.lane, "cannot split a lane machine");
        assert!(self.unrecovered.is_empty(), "lane_split with pending instant-restart redo");
        let mut shards: Vec<CoherShard> =
            (0..self.shards.len()).map(|_| CoherShard::foreign()).collect();
        for &s in stripes {
            let s = s as usize;
            assert!(s < self.shards.len(), "stripe {s} out of range");
            assert!(self.shards[s].owned, "stripe {s} already detached");
            std::mem::swap(&mut shards[s], &mut self.shards[s]);
            self.shards[s].owned = false;
            shards[s].owned = true;
        }
        Machine {
            cfg: self.cfg.clone(),
            shards,
            nodes: self
                .nodes
                .iter()
                .map(|n| NodeState { clock: n.clock, crashed: n.crashed })
                .collect(),
            stats: SimStats::default(),
            trace: Trace::default(),
            obs: self.obs.clone(),
            fault: self.fault.clone(),
            next_dynamic: self.next_dynamic,
            lane: true,
            unrecovered: BTreeSet::new(),
        }
    }

    /// Reattach a lane produced by [`Machine::lane_split`]: move its owned
    /// shards back, fold its coherence stats into this machine's, and
    /// adopt its clock for `node` (the node the lane executed for — only
    /// that clock advanced deterministically inside the lane).
    pub fn lane_merge(&mut self, node: NodeId, lane: Machine) {
        assert!(lane.lane, "lane_merge of a non-lane machine");
        for (i, shard) in lane.shards.into_iter().enumerate() {
            if shard.owned {
                assert!(!self.shards[i].owned, "stripe {i} merged twice");
                self.shards[i] = shard;
            }
        }
        self.stats.absorb(&lane.stats);
        self.nodes[node.0 as usize].clock = lane.nodes[node.0 as usize].clock;
    }

    /// Clear every active mark owned by `node` within the given stripes
    /// (the epoch-barrier drain after the node's pending log window is
    /// forced). Returns how many marks were cleared.
    pub fn clear_active_in_stripes(&mut self, node: NodeId, stripes: &[u32]) -> u64 {
        let mut cleared = 0u64;
        for &s in stripes {
            for sl in self.shards[s as usize].slots.iter_mut() {
                if sl.live && sl.active_owner == Some(node) {
                    sl.active_owner = None;
                    cleared += 1;
                }
            }
        }
        cleared
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine(n: u16) -> Machine {
        Machine::new(SimConfig::new(n))
    }

    const N0: NodeId = NodeId(0);
    const N1: NodeId = NodeId(1);
    const N2: NodeId = NodeId(2);
    const L: LineId = LineId(42);

    #[test]
    fn create_read_write_roundtrip() {
        let mut m = machine(1);
        m.create_line_at(N0, L, b"hello").unwrap();
        let mut buf = [0u8; 5];
        m.read_into(N0, L, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"hello");
        m.write(N0, L, 1, b"a").unwrap();
        m.read_into(N0, L, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"hallo");
    }

    #[test]
    fn create_duplicate_rejected() {
        let mut m = machine(1);
        m.create_line_at(N0, L, b"x").unwrap();
        assert_eq!(m.create_line_at(N0, L, b"y"), Err(MemError::AlreadyExists { line: L }));
    }

    #[test]
    fn write_migrates_exclusive_copy() {
        // The H_ww1 history of §3.2: w_x[l]; w_y[l] leaves the only copy
        // on y.
        let mut m = machine(2);
        m.create_line_at(N0, L, &[0]).unwrap();
        m.write(N0, L, 0, &[1]).unwrap();
        assert_eq!(m.exclusive_owner(L), Some(N0));
        m.write(N1, L, 0, &[2]).unwrap();
        assert_eq!(m.exclusive_owner(L), Some(N1));
        assert_eq!(m.holders(L), vec![N1]);
        assert_eq!(m.stats().migrations, 1);
        assert_eq!(m.peek_local(N0, L), None);
    }

    #[test]
    fn read_replicates_and_downgrades() {
        // The H_wr history: w_x[l]; r_y[l] leaves copies on both nodes.
        let mut m = machine(2);
        m.create_line_at(N0, L, &[7]).unwrap();
        let mut b = [0u8];
        m.read_into(N1, L, 0, &mut b).unwrap();
        assert_eq!(b, [7]);
        assert_eq!(m.exclusive_owner(L), None);
        // Holder slices are always sorted by node id.
        assert_eq!(m.holders(L), vec![N0, N1]);
        assert_eq!(m.stats().replications, 1);
        assert_eq!(m.stats().downgrades, 1);
    }

    #[test]
    fn h_ww2_shared_then_write_invalidates_all() {
        // H_ww2: w_x[l]; reads spread the line; w_y[l] invalidates all.
        let mut m = machine(3);
        m.create_line_at(N0, L, &[1]).unwrap();
        let mut b = [0u8];
        m.read_into(N1, L, 0, &mut b).unwrap();
        m.read_into(N2, L, 0, &mut b).unwrap();
        assert_eq!(m.holder_count(L), 3);
        m.write(N1, L, 0, &[9]).unwrap();
        assert_eq!(m.holders(L), vec![N1]);
        assert_eq!(m.stats().invalidations, 2);
    }

    #[test]
    fn crash_destroys_only_copy() {
        let mut m = machine(2);
        m.create_line_at(N0, L, &[5]).unwrap();
        m.write(N1, L, 0, &[6]).unwrap(); // migrate to n1
        let rep = m.crash(&[N1]);
        assert_eq!(rep.lost_lines, vec![L]);
        assert!(m.is_lost(L));
        assert!(!m.probe_cached(L));
        let mut b = [0u8];
        assert_eq!(m.read_into(N0, L, 0, &mut b), Err(MemError::LineLost { line: L }));
    }

    #[test]
    fn crash_spares_replicated_copy() {
        let mut m = machine(2);
        m.create_line_at(N0, L, &[5]).unwrap();
        let mut b = [0u8];
        m.read_into(N1, L, 0, &mut b).unwrap(); // replicate
        m.crash(&[N0]);
        assert!(!m.is_lost(L));
        assert_eq!(m.exclusive_owner(L), Some(N1)); // collapsed to sole survivor
        m.read_into(N1, L, 0, &mut b).unwrap();
        assert_eq!(b, [5]);
    }

    #[test]
    fn stall_on_lost_mode() {
        let mut m = Machine::new(SimConfig::new(2).with_stall_on_lost(true));
        m.create_line_at(N1, L, &[5]).unwrap();
        m.crash(&[N1]);
        let mut b = [0u8];
        assert_eq!(m.read_into(N0, L, 0, &mut b), Err(MemError::Stalled { line: L, holder: None }));
        assert_eq!(m.stats().lost_line_accesses, 1);
    }

    #[test]
    fn crashed_node_cannot_act() {
        let mut m = machine(2);
        m.create_line_at(N0, L, &[5]).unwrap();
        m.crash(&[N0]);
        assert_eq!(m.write(N0, L, 0, &[1]), Err(MemError::NodeCrashed { node: N0 }));
        assert!(m.surviving_nodes() == vec![N1]);
    }

    #[test]
    fn line_lock_excludes_other_nodes() {
        let mut m = machine(2);
        m.create_line_at(N0, L, &[5]).unwrap();
        m.getline(N0, L).unwrap();
        let mut b = [0u8];
        assert!(matches!(m.read_into(N1, L, 0, &mut b), Err(MemError::Stalled { .. })));
        assert!(matches!(m.write(N1, L, 0, &[1]), Err(MemError::Stalled { .. })));
        assert!(matches!(m.getline(N1, L), Err(MemError::Stalled { .. })));
        assert_eq!(m.stats().line_lock_conflicts, 3);
        // Holder proceeds freely; release lets others in.
        m.write(N0, L, 0, &[1]).unwrap();
        m.releaseline(N0, L).unwrap();
        m.write(N1, L, 0, &[2]).unwrap();
    }

    #[test]
    fn line_lock_migrates_line_to_holder() {
        let mut m = machine(2);
        m.create_line_at(N0, L, &[5]).unwrap();
        m.getline(N1, L).unwrap();
        assert_eq!(m.exclusive_owner(L), Some(N1));
        assert_eq!(m.line_lock_holder(L), Some(N1));
    }

    #[test]
    fn release_by_non_holder_rejected() {
        let mut m = machine(2);
        m.create_line_at(N0, L, &[5]).unwrap();
        m.getline(N0, L).unwrap();
        assert_eq!(m.releaseline(N1, L), Err(MemError::NotLockHolder { line: L, node: N1 }));
    }

    #[test]
    fn crash_breaks_line_locks() {
        let mut m = machine(2);
        m.create_line_at(N0, L, &[5]).unwrap();
        m.getline(N0, L).unwrap();
        let rep = m.crash(&[N0]);
        assert_eq!(rep.broken_line_locks, vec![L]);
        assert_eq!(m.line_lock_holder(L), None);
        assert!(m.is_lost(L)); // only copy was on n0
    }

    #[test]
    fn write_broadcast_updates_all_copies() {
        let mut m = Machine::new(SimConfig::new(2).write_broadcast());
        m.create_line_at(N0, L, &[1]).unwrap();
        let mut b = [0u8];
        m.read_into(N1, L, 0, &mut b).unwrap();
        m.write(N0, L, 0, &[9]).unwrap();
        // Both copies reflect the write; no invalidation happened.
        assert_eq!(m.peek_local(N1, L).unwrap()[0], 9);
        assert_eq!(m.holder_count(L), 2);
        assert_eq!(m.stats().invalidations, 0);
        assert_eq!(m.stats().broadcast_updates, 1);
        // Crash of either node leaves the data intact.
        m.crash(&[N0]);
        assert!(!m.is_lost(L));
    }

    #[test]
    fn triggers_fire_for_active_lines() {
        let mut m = machine(3);
        m.create_line_at(N0, L, &[1]).unwrap();
        m.write(N0, L, 0, &[2]).unwrap();
        m.set_active(L, N0);
        // Remote read of exclusive active line → downgrade trigger.
        assert_eq!(
            m.pending_triggers(N1, L, false),
            Some(TriggerEvent { line: L, owner: N0, kind: TransferKind::Downgrade })
        );
        // Remote write → invalidate trigger.
        assert_eq!(
            m.pending_triggers(N1, L, true),
            Some(TriggerEvent { line: L, owner: N0, kind: TransferKind::Invalidate })
        );
        // Owner's own accesses never trigger.
        assert_eq!(m.pending_triggers(N0, L, true), None);
        // Once shared, only writes trigger (owner copy survives reads).
        let mut b = [0u8];
        m.read_into(N1, L, 0, &mut b).unwrap();
        assert_eq!(m.pending_triggers(N2, L, false), None);
        assert_eq!(
            m.pending_triggers(N2, L, true),
            Some(TriggerEvent { line: L, owner: N0, kind: TransferKind::Invalidate })
        );
        // After clearing (log forced), no triggers.
        m.clear_active(L);
        assert_eq!(m.pending_triggers(N2, L, true), None);
    }

    #[test]
    fn discard_and_install_roundtrip() {
        let mut m = machine(2);
        m.create_line_at(N0, L, &[3]).unwrap();
        m.discard(N0, L).unwrap();
        let mut b = [0u8];
        assert_eq!(m.read_into(N0, L, 0, &mut b), Err(MemError::NotResident { line: L }));
        m.install_line(N1, L, &[4]).unwrap();
        m.read_into(N0, L, 0, &mut b).unwrap();
        assert_eq!(b, [4]);
    }

    #[test]
    fn install_overwrites_lost() {
        let mut m = machine(2);
        m.create_line_at(N1, L, &[3]).unwrap();
        m.crash(&[N1]);
        assert!(m.is_lost(L));
        m.install_line(N0, L, &[8]).unwrap();
        assert!(!m.is_lost(L));
        assert_eq!(m.peek(L).unwrap()[0], 8);
    }

    #[test]
    fn discard_matching_flushes_predicate_lines() {
        let mut m = machine(1);
        m.create_line_at(N0, LineId(1), &[1]).unwrap();
        m.create_line_at(N0, LineId(2), &[2]).unwrap();
        m.create_line_at(N0, LineId(100), &[3]).unwrap();
        let dropped = m.discard_matching(N0, |l| l.0 < 10);
        assert_eq!(dropped, 2);
        assert!(m.probe_cached(LineId(100)));
        assert!(!m.probe_cached(LineId(1)));
        assert!(!m.probe_cached(LineId(2)));
    }

    #[test]
    fn freed_slots_are_recycled() {
        let mut m = machine(1);
        m.create_line_at(N0, LineId(1), &[1]).unwrap();
        m.create_line_at(N0, LineId(2), &[2]).unwrap();
        let before = m.flat_stats();
        assert_eq!(before.buf_reuse, 0);
        m.discard(N0, LineId(1)).unwrap();
        assert_eq!(m.flat_stats().free_slots, 1);
        // New line takes the freed slot: no arena growth, stale bytes
        // zeroed.
        m.create_line_at(N0, LineId(3), &[]).unwrap();
        let after = m.flat_stats();
        assert_eq!(after.slots, before.slots);
        assert_eq!(after.free_slots, 0);
        assert_eq!(after.buf_reuse, 1);
        assert!(m.peek(LineId(3)).unwrap().iter().all(|b| *b == 0));
        m.validate_flat();
    }

    #[test]
    fn clear_lost_frees_the_slot() {
        let mut m = machine(2);
        m.create_line_at(N1, L, &[3]).unwrap();
        m.crash(&[N1]);
        assert!(m.line_exists(L));
        m.clear_lost(L);
        assert!(!m.line_exists(L));
        assert_eq!(m.flat_stats().free_slots, 1);
        m.validate_flat();
    }

    #[test]
    fn holders_slice_is_borrowed_and_sorted() {
        let mut m = machine(3);
        m.create_line_at(N2, L, &[1]).unwrap();
        let mut b = [0u8];
        m.read_into(N0, L, 0, &mut b).unwrap();
        m.read_into(N1, L, 0, &mut b).unwrap();
        assert_eq!(m.holders(L), vec![N0, N1, N2]);
        assert_eq!(m.holders(LineId(999)), &[] as &[NodeId]);
        m.validate_flat();
    }

    #[test]
    fn clocks_accumulate_costs() {
        let mut m = machine(2);
        m.create_line_at(N0, L, &[1]).unwrap();
        let t0 = m.now(N1);
        m.write(N1, L, 0, &[2]).unwrap();
        let cost = m.now(N1) - t0;
        // Migration: remote transfer + one invalidation.
        let c = &m.config().cost;
        assert_eq!(cost, c.remote_transfer + c.invalidate);
        // Reads after are local hits.
        let t1 = m.now(N1);
        let mut b = [0u8];
        m.read_into(N1, L, 0, &mut b).unwrap();
        assert_eq!(m.now(N1) - t1, m.config().cost.local_hit);
    }

    #[test]
    fn reboot_restores_node() {
        let mut m = machine(2);
        m.create_line_at(N0, L, &[1]).unwrap();
        m.advance(N0, 1000);
        m.crash(&[N0]);
        assert!(m.is_crashed(N0));
        m.reboot_node(N0);
        assert!(!m.is_crashed(N0));
        assert!(m.peek_local(N0, L).is_none()); // cache cold after reboot
        m.create_line_at(N0, LineId(9), &[1]).unwrap();
    }

    #[test]
    fn alloc_line_uses_dynamic_addresses() {
        let mut m = machine(1);
        let a = m.alloc_line(N0, &[1]).unwrap();
        let b = m.alloc_line(N0, &[2]).unwrap();
        assert!(a.0 >= LineId::DYNAMIC_BASE);
        assert_eq!(b.0, a.0 + 1);
    }

    #[test]
    fn read_line_with_runs_coherence_transitions() {
        let mut m = machine(2);
        m.create_line_at(N0, L, b"abc").unwrap();
        let first = m.read_line_with(N1, L, |d| d[0]).unwrap();
        assert_eq!(first, b'a');
        // The closure read behaves exactly like read_into: replication +
        // downgrade happened.
        assert_eq!(m.holders(L), vec![N0, N1]);
        assert_eq!(m.stats().remote_transfers, 1);
        assert_eq!(m.stats().replications, 1);
        // Locked lines still stall.
        m.getline(N0, L).unwrap();
        assert!(matches!(m.read_line_with(N1, L, |_| ()), Err(MemError::Stalled { .. })));
    }

    #[test]
    fn out_of_bounds_rejected() {
        let mut m = machine(1);
        m.create_line_at(N0, L, &[1]).unwrap();
        let size = m.line_size();
        assert!(matches!(m.write(N0, L, size - 1, &[1, 2]), Err(MemError::OutOfBounds { .. })));
        let mut b = vec![0u8; 2];
        assert!(matches!(m.read_into(N0, L, size - 1, &mut b), Err(MemError::OutOfBounds { .. })));
    }

    #[test]
    fn multi_node_crash_in_one_call() {
        let mut m = machine(3);
        m.create_line_at(N0, LineId(1), &[1]).unwrap();
        m.create_line_at(N1, LineId(2), &[2]).unwrap();
        m.create_line_at(N2, LineId(3), &[3]).unwrap();
        let rep = m.crash(&[N0, N1]);
        assert_eq!(rep.crashed, vec![N0, N1]);
        assert_eq!(rep.lost_lines, vec![LineId(1), LineId(2)]);
        assert!(m.probe_cached(LineId(3)));
        m.validate_flat();
    }

    #[test]
    fn shared_line_survives_partial_crash() {
        let mut m = machine(3);
        m.create_line_at(N0, L, &[1]).unwrap();
        let mut b = [0u8];
        m.read_into(N1, L, 0, &mut b).unwrap();
        m.read_into(N2, L, 0, &mut b).unwrap();
        m.crash(&[N0, N2]);
        assert!(!m.is_lost(L));
        assert_eq!(m.exclusive_owner(L), Some(N1));
    }
}
