//! # smdb-sim — cache-coherent shared-memory multiprocessor simulator
//!
//! This crate models the hardware substrate assumed by *Recovery Protocols
//! for Shared Memory Database Systems* (Molesky & Ramamritham, SIGMOD 1995):
//! a cache-coherent shared-memory multiprocessor (in the mold of the KSR-1
//! or Stanford FLASH) in which
//!
//! * each **node** is a processor/memory pair with its own cache,
//! * coherence is maintained in hardware with a **write-invalidate**
//!   protocol (a **write-broadcast** mode is also provided, cf. §7 of the
//!   paper),
//! * **line locks** (`getline`/`releaseline`, the KSR-1 `gsp`/`rsp`
//!   primitives) pin a cache line in mutually-exclusive state,
//! * **individual node failures are isolated**: a crash destroys exactly the
//!   failed node's cache/memory, and a low-level recovery step restores the
//!   cache directory to a consistent state reflecting the surviving caches.
//!
//! The simulator is deterministic and single-threaded: callers issue memory
//! operations *on behalf of* a node, and the simulator charges simulated
//! cycles to that node's clock according to a configurable [`CostModel`].
//! Determinism is what makes exhaustive crash-point testing of the recovery
//! protocols feasible; see `DESIGN.md` §5.
//!
//! The central type is [`Machine`]. A minimal session:
//!
//! ```
//! use smdb_sim::{Machine, SimConfig, NodeId, LineId};
//!
//! let mut m = Machine::new(SimConfig::new(2));
//! let n0 = NodeId(0);
//! let n1 = NodeId(1);
//! let line = LineId(7);
//! m.create_line_at(n0, line, &[0xAB; 128]).unwrap();
//! // n1 writes: under write-invalidate the line *migrates* to n1.
//! m.write(n1, line, 0, &[0xCD]).unwrap();
//! assert_eq!(m.exclusive_owner(line), Some(n1));
//! // Crash n1: the only copy dies with it.
//! m.crash(&[n1]);
//! assert!(m.is_lost(line));
//! ```

mod config;
mod contention;
mod cost;
mod error;
mod flat;
mod ids;
mod machine;
mod stats;
mod trace;

pub use config::{CoherenceKind, SimConfig};
pub use contention::{contended_line_lock_costs, ContentionOutcome};
pub use cost::CostModel;
pub use error::MemError;
pub use flat::{HolderSet, HOLDERS_INLINE};
pub use ids::{LineId, NodeId, TxnId};
pub use machine::{
    CrashReport, FlatStats, Machine, TransferKind, TriggerEvent, FAULT_INVALIDATE, FAULT_MIGRATE,
    METRIC_BUF_REUSE, METRIC_INDEX_PROBES,
};
pub use stats::SimStats;
pub use trace::{Trace, TraceEvent};

/// Re-export of the observability layer the [`Machine`] emits into, so
/// downstream crates can name event and metric types without a separate
/// dependency edge.
pub use smdb_obs as obs;

/// Re-export of the fault-injection layer (the [`Machine`] hosts crash
/// points on its coherence paths), so downstream crates can name injector
/// types without a separate dependency edge.
pub use smdb_fault as fault;

/// Cache line size used by default throughout the reproduction: 128 bytes,
/// the line size of both the KSR-1/KSR-2 and Stanford FLASH (paper, §3).
pub const DEFAULT_LINE_SIZE: usize = 128;
