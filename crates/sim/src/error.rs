//! Memory-operation errors.

use crate::ids::{LineId, NodeId};
use smdb_fault::FaultCrash;
use std::fmt;

/// Errors returned by [`crate::Machine`] memory operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MemError {
    /// The access conflicts with a line lock held by another node, or (with
    /// `stall_on_lost`) references a line destroyed by a node crash while
    /// recovery is pending. On real hardware the processor would stall; the
    /// simulator surfaces the stall to the caller, which may retry after
    /// the conflicting condition clears.
    Stalled { line: LineId, holder: Option<NodeId> },
    /// Every valid copy of the line resided on crashed nodes; the data is
    /// gone. Recovery must reconstruct it from logs or the stable database.
    LineLost { line: LineId },
    /// The line has never been created, or was evicted from every cache
    /// after being made durable. The caller must (re)install it, typically
    /// by fetching the containing page from the stable database.
    NotResident { line: LineId },
    /// `create_line_at` on an address that is already populated.
    AlreadyExists { line: LineId },
    /// The line carries pending redo from an instant restart: coherent
    /// access (read, write, line lock) must not migrate or replicate it
    /// until the owner of the mark (the database engine) applies the
    /// pending redo and clears the mark. Inspection (`peek`) and
    /// authoritative reinstall (`install_line`) remain available.
    Unrecovered { line: LineId },
    /// Operation issued on behalf of a node that has crashed.
    NodeCrashed { node: NodeId },
    /// Line-lock release by a node that does not hold the lock.
    NotLockHolder { line: LineId, node: NodeId },
    /// Out-of-bounds access within a line.
    OutOfBounds { line: LineId, offset: usize, len: usize },
    /// Node id outside the configured machine population.
    NoSuchNode { node: NodeId },
    /// An armed fault-injection point fired mid-operation: the acting node
    /// must be treated as crashed at this instant. Propagated (never
    /// handled) by every layer up to the crash driver.
    FaultCrash(FaultCrash),
    /// A structural invariant of a shared-memory data structure did not
    /// hold (e.g. an empty lock-chain where the bucket head must exist).
    /// Previously a panic on the recovery path; surfaced as a typed error
    /// so an interrupted recovery can report instead of aborting the
    /// process.
    Corrupted {
        /// Which invariant was violated.
        what: &'static str,
    },
    /// The line's stripe is not owned by this execution lane (see
    /// [`crate::Machine::lane_split`]): the access would touch a shard
    /// detached to a sibling lane or retained by the parent. The caller
    /// must escalate the operation to a serial (between-epochs) retry on
    /// the parent machine.
    ForeignStripe { line: LineId },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::Stalled { line, holder } => match holder {
                Some(h) => write!(f, "access to {line:?} stalled: line lock held by {h}"),
                None => write!(f, "access to {line:?} stalled: line lost, recovery pending"),
            },
            MemError::LineLost { line } => {
                write!(f, "{line:?} lost: all valid copies were on crashed nodes")
            }
            MemError::NotResident { line } => write!(f, "{line:?} not resident in any cache"),
            MemError::AlreadyExists { line } => write!(f, "{line:?} already exists"),
            MemError::Unrecovered { line } => {
                write!(f, "{line:?} has pending redo: apply it before coherent access")
            }
            MemError::NodeCrashed { node } => write!(f, "{node} has crashed"),
            MemError::NotLockHolder { line, node } => {
                write!(f, "{node} does not hold the line lock on {line:?}")
            }
            MemError::OutOfBounds { line, offset, len } => {
                write!(f, "access [{offset}, {offset}+{len}) out of bounds for {line:?}")
            }
            MemError::NoSuchNode { node } => write!(f, "no such node: {node}"),
            MemError::FaultCrash(c) => write!(f, "injected crash point fired: {c}"),
            MemError::Corrupted { what } => write!(f, "shared structure corrupted: {what}"),
            MemError::ForeignStripe { line } => {
                write!(f, "{line:?} is outside this execution lane's stripes")
            }
        }
    }
}

impl std::error::Error for MemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = MemError::Stalled { line: LineId(5), holder: Some(NodeId(2)) };
        assert!(e.to_string().contains("line lock held by n2"));
        let e = MemError::LineLost { line: LineId(5) };
        assert!(e.to_string().contains("crashed"));
    }
}
