//! Simulated cost model.
//!
//! All memory operations charge simulated **cycles** to the acting node's
//! clock. The defaults are calibrated so that the line-lock latencies of the
//! paper's §5.1 prototype measurements reproduce in µs-equivalents:
//! an uncontended `getline` ≈ 10 µs and a 32-way contended `getline`
//! ≈ 40 µs (see experiment E1 in `DESIGN.md`).

use serde::{Deserialize, Serialize};

/// Cycle costs for the simulated machine.
///
/// The ordering the paper assumes (§2) is preserved by the defaults:
/// *"operation execution time is minimal if the data item is already in the
/// cache, more expensive if the data item is in another node's cache, and
/// the most expensive if the data item must be fetched from disk."*
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CostModel {
    /// Access to a line already valid in the local cache.
    pub local_hit: u64,
    /// Transferring a line from another node's cache (migration or
    /// replication).
    pub remote_transfer: u64,
    /// Invalidating one remote copy of a line.
    pub invalidate: u64,
    /// Updating one remote copy in write-broadcast mode.
    pub broadcast_update: u64,
    /// Uncontended line-lock (`getline`) overhead, beyond the data
    /// transfer itself.
    pub line_lock_acquire: u64,
    /// Extra delay charged per waiter position when a line lock is
    /// contended (queueing model; see [`crate::contended_line_lock_costs`]).
    pub line_lock_contention_step: u64,
    /// Releasing a line lock.
    pub line_lock_release: u64,
    /// One stable-log force (a synchronous disk write of the log tail).
    pub log_force: u64,
    /// Reading and parsing one retained log record during the restart
    /// analysis scan (sequential log-device read, amortized per record).
    pub log_scan_record: u64,
    /// One page read or write against the stable database.
    pub disk_io: u64,
    /// Calibration constant: cycles per microsecond, used only when
    /// reporting µs-equivalents.
    pub cycles_per_us: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Calibration: with cycles_per_us = 100 (a 100 MHz early-90s
        // processor), an uncontended getline is remote_transfer +
        // line_lock_acquire = 1000 cycles = 10 µs, matching the paper's
        // "less than 10 µs" low-contention measurement. 32 contending
        // processors add a per-position step so the mean lands near the
        // paper's "less than 40 µs". A log force costs 10 ms-equivalent
        // (one rotational disk write), dwarfing any cache operation.
        CostModel {
            local_hit: 10,
            remote_transfer: 600,
            invalidate: 150,
            broadcast_update: 200,
            line_lock_acquire: 400,
            line_lock_contention_step: 140,
            line_lock_release: 50,
            log_force: 1_000_000,
            // A ~128-byte record off a ~2 MB/s sequential early-90s disk
            // stream is ~64 µs; restart analysis cost is dominated by how
            // much log survives truncation, which is the point of
            // checkpoint-bounded recovery (E7).
            log_scan_record: 6_400,
            disk_io: 1_200_000,
            cycles_per_us: 100,
        }
    }
}

impl CostModel {
    /// Convert a cycle count into microsecond-equivalents using the model's
    /// calibration constant.
    pub fn cycles_to_us(&self, cycles: u64) -> f64 {
        cycles as f64 / self.cycles_per_us as f64
    }

    /// A cost model in which stable storage is non-volatile RAM rather than
    /// disk: log forces become cheap. The paper (§7) observes that
    /// *"advances in technology, such as the proliferation of non-volatile
    /// RAM, may make it feasible to store large portions of the log in low
    /// latency stable store. In this case, a Stable LBM policy may incur
    /// reasonably low overheads."* The ablation bench `log_forces` uses
    /// this variant.
    pub fn with_nvram_log(mut self) -> Self {
        self.log_force = 2_000; // ~20 µs NVRAM write
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ordering_matches_paper() {
        let c = CostModel::default();
        assert!(c.local_hit < c.remote_transfer);
        assert!(c.remote_transfer < c.disk_io);
        assert!(c.log_force > c.remote_transfer * 100);
        // A sequential scan of one record is far cheaper than a random
        // page I/O, but not free relative to cache traffic.
        assert!(c.remote_transfer < c.log_scan_record && c.log_scan_record < c.disk_io);
    }

    #[test]
    fn uncontended_line_lock_is_about_ten_us() {
        let c = CostModel::default();
        let cycles = c.remote_transfer + c.line_lock_acquire;
        assert_eq!(c.cycles_to_us(cycles), 10.0);
    }

    #[test]
    fn nvram_variant_shrinks_forces() {
        let c = CostModel::default().with_nvram_log();
        assert!(c.log_force < CostModel::default().log_force / 100);
    }
}
