//! Sharp checkpoints.
//!
//! Restart recovery processes each surviving node's redo log *forward from
//! the last checkpoint* (§4.1.2). We implement sharp checkpoints: taking a
//! checkpoint forces every node's log and flushes every dirty page, so
//! recovery never needs to look at records older than the per-node
//! checkpoint LSNs recorded here.

use crate::lsn::Lsn;
use serde::{Deserialize, Serialize};
use smdb_sim::NodeId;

/// Durable metadata describing the most recent checkpoint.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointMeta {
    /// For each node (indexed by `NodeId`), the LSN of its checkpoint
    /// record. Recovery scans each node's log strictly after this LSN.
    pub node_lsns: Vec<Lsn>,
}

impl CheckpointMeta {
    /// A "beginning of time" checkpoint for `nodes` nodes: recovery scans
    /// entire logs.
    pub fn genesis(nodes: u16) -> Self {
        CheckpointMeta { node_lsns: vec![Lsn::ZERO; nodes as usize] }
    }

    /// Checkpoint LSN for one node.
    pub fn lsn_for(&self, node: NodeId) -> Lsn {
        self.node_lsns.get(node.0 as usize).copied().unwrap_or(Lsn::ZERO)
    }
}

/// Durable storage for checkpoint metadata (conceptually a well-known
/// location on the shared disks; survives all node crashes).
#[derive(Clone, Debug)]
pub struct CheckpointStore {
    last: CheckpointMeta,
    /// Number of checkpoints taken.
    pub checkpoints_taken: u64,
}

impl CheckpointStore {
    /// Create a store holding the genesis checkpoint for `nodes` nodes.
    pub fn new(nodes: u16) -> Self {
        CheckpointStore { last: CheckpointMeta::genesis(nodes), checkpoints_taken: 0 }
    }

    /// Durably install a new checkpoint.
    pub fn install(&mut self, meta: CheckpointMeta) {
        self.last = meta;
        self.checkpoints_taken += 1;
    }

    /// The most recent checkpoint.
    pub fn last(&self) -> &CheckpointMeta {
        &self.last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn genesis_is_all_zero() {
        let m = CheckpointMeta::genesis(3);
        assert_eq!(m.lsn_for(NodeId(0)), Lsn::ZERO);
        assert_eq!(m.lsn_for(NodeId(2)), Lsn::ZERO);
        assert_eq!(m.lsn_for(NodeId(9)), Lsn::ZERO, "out of range defaults to zero");
    }

    #[test]
    fn install_replaces_last() {
        let mut s = CheckpointStore::new(2);
        s.install(CheckpointMeta { node_lsns: vec![Lsn(4), Lsn(9)] });
        assert_eq!(s.last().lsn_for(NodeId(1)), Lsn(9));
        assert_eq!(s.checkpoints_taken, 1);
    }
}
