//! Log records and per-node logs.

use crate::lsn::Lsn;
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use smdb_sim::{NodeId, TxnId};
use smdb_storage::PageId;
use std::fmt;

/// Identity of a database record: a slot within a heap page.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RecId {
    /// The heap page holding the record.
    pub page: PageId,
    /// Slot index within the page.
    pub slot: u16,
}

impl RecId {
    /// Construct a record id.
    pub fn new(page: PageId, slot: u16) -> Self {
        RecId { page, slot }
    }
}

impl fmt::Debug for RecId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}.{}", self.page.0, self.slot)
    }
}

/// Lock mode as recorded in logical lock-log records. Mirrored by the lock
/// manager's richer mode type; kept here so log records are self-contained.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LockModeRepr {
    /// Shared (read) lock. Logged too — the paper's protocols require the
    /// logging of read locks so lock state lost in a crash can be redone
    /// for surviving transactions (§4.2.2, Table 1).
    Shared,
    /// Exclusive (write) lock.
    Exclusive,
}

/// Kinds of early-committed structural changes (§4.2): changes to database
/// management structures that are allowed to commit independently of the
/// transaction that caused them (nested top-level actions), so no
/// inter-node abort dependency can form through the changed structure.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StructuralKind {
    /// A B-tree node split: the page `new_page` was allocated and keys ≥
    /// `split_key` moved into it from `old_page`.
    BtreeSplit { old_page: u32, new_page: u32, split_key: u64 },
    /// Allocation of a new B-tree root page (tree height grew).
    BtreeNewRoot { root_page: u32 },
    /// Dynamic allocation of lock-table overflow space: `line` was
    /// allocated and linked from `parent`.
    LockSpaceAlloc { line: u64, parent: u64 },
}

/// Payload of one log record.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LogPayload {
    /// Transaction start.
    Begin { txn: TxnId },
    /// Transaction commit. Forcing the log up to this record makes the
    /// transaction durable.
    Commit { txn: TxnId },
    /// Transaction abort (after all its updates were undone).
    Abort { txn: TxnId },
    /// A physical record update carrying both images. The undo image (the
    /// before image, i.e. the last committed value — strict 2PL guarantees
    /// at most one writer) and the redo image (the after image). Written to
    /// the volatile log *before* the updated line can migrate — the LBM
    /// policy (§4.1.1). Compensation records written during transaction
    /// rollback use the same shape with the images swapped.
    Update {
        /// Updating transaction.
        txn: TxnId,
        /// Updated record.
        rec: RecId,
        /// Before image.
        undo: Bytes,
        /// After image.
        redo: Bytes,
        /// Global update sequence number: a machine-wide monotone stamp
        /// that totally orders data updates *across* the per-node logs.
        /// Restart recovery replays redo candidates from several logs in
        /// GSN order — the cross-log analogue of the §6 ordered-update
        /// -logging rule.
        gsn: u64,
    },
    /// Logical insert of a key into the B-tree index (leaf record create).
    IndexInsert {
        /// Inserting transaction.
        txn: TxnId,
        /// Key inserted.
        key: u64,
        /// Value stored with the key.
        value: Bytes,
        /// Global update sequence number (see [`LogPayload::Update`]).
        gsn: u64,
    },
    /// Logical delete of a key from the B-tree index. Implemented as a
    /// delete *mark* (§4.2.1); undo merely unmarks.
    IndexDelete {
        /// Deleting transaction.
        txn: TxnId,
        /// Key marked deleted.
        key: u64,
        /// Value at the time of the delete (for redo of the mark on a
        /// reconstructed node).
        value: Bytes,
        /// Global update sequence number (see [`LogPayload::Update`]).
        gsn: u64,
    },
    /// Compensation record: physical removal of an index entry (the undo of
    /// an uncommitted insert during rollback, or post-commit space reclaim
    /// of a delete-marked entry).
    IndexRemove {
        /// Transaction being rolled back (or committing, for reclaim).
        txn: TxnId,
        /// Key removed.
        key: u64,
        /// Global update sequence number (see [`LogPayload::Update`]).
        gsn: u64,
    },
    /// Compensation record: unmarking a logically deleted index entry (the
    /// undo of an uncommitted delete during rollback).
    IndexUnmark {
        /// Transaction being rolled back.
        txn: TxnId,
        /// Key unmarked.
        key: u64,
        /// Global update sequence number (see [`LogPayload::Update`]).
        gsn: u64,
    },
    /// An early-committed structural change (nested top-level action).
    /// Forced to stable store as part of the early commit, so no other
    /// transaction can become dependent on volatile structural state
    /// (§4.2).
    Structural {
        /// Transaction whose operation triggered the change (the change
        /// commits regardless of this transaction's fate).
        txn: TxnId,
        /// What changed.
        kind: StructuralKind,
    },
    /// Logical lock-acquisition record, written *before* the LCB update
    /// (§4.2.2). Read locks are logged too.
    LockAcquire {
        /// Acquiring transaction.
        txn: TxnId,
        /// Lock name (hash of the resource identity).
        name: u64,
        /// Requested mode.
        mode: LockModeRepr,
        /// Whether the request was queued rather than granted (queued
        /// requests must be logged as well — §4.2.2).
        queued: bool,
    },
    /// Logical lock-release record.
    LockRelease {
        /// Releasing transaction.
        txn: TxnId,
        /// Lock name.
        name: u64,
    },
    /// Sharp checkpoint marker: at this point every dirty page this node
    /// had updated has been flushed and the log forced.
    Checkpoint,
}

impl LogPayload {
    /// The transaction this record belongs to, if any.
    pub fn txn(&self) -> Option<TxnId> {
        match self {
            LogPayload::Begin { txn }
            | LogPayload::Commit { txn }
            | LogPayload::Abort { txn }
            | LogPayload::Update { txn, .. }
            | LogPayload::IndexInsert { txn, .. }
            | LogPayload::IndexDelete { txn, .. }
            | LogPayload::IndexRemove { txn, .. }
            | LogPayload::IndexUnmark { txn, .. }
            | LogPayload::Structural { txn, .. }
            | LogPayload::LockAcquire { txn, .. }
            | LogPayload::LockRelease { txn, .. } => Some(*txn),
            LogPayload::Checkpoint => None,
        }
    }

    /// The global update sequence number carried by data records; `None`
    /// for control, lock, and structural records.
    pub fn gsn(&self) -> Option<u64> {
        match self {
            LogPayload::Update { gsn, .. }
            | LogPayload::IndexInsert { gsn, .. }
            | LogPayload::IndexDelete { gsn, .. }
            | LogPayload::IndexRemove { gsn, .. }
            | LogPayload::IndexUnmark { gsn, .. } => Some(*gsn),
            _ => None,
        }
    }

    /// Approximate serialized size in bytes, used for overhead accounting
    /// (Table 1 reports *what* must be logged; the bench reports how many
    /// bytes that costs).
    pub fn approx_size(&self) -> usize {
        let header = 16; // lsn + type tag + txn
        match self {
            LogPayload::Update { undo, redo, .. } => header + 16 + undo.len() + redo.len(),
            LogPayload::IndexInsert { value, .. } | LogPayload::IndexDelete { value, .. } => {
                header + 16 + value.len()
            }
            LogPayload::IndexRemove { .. } | LogPayload::IndexUnmark { .. } => header + 16,
            LogPayload::Structural { .. } => header + 16,
            LogPayload::LockAcquire { .. } => header + 10,
            LogPayload::LockRelease { .. } => header + 9,
            _ => header,
        }
    }
}

/// One record in a node's log.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogRecord {
    /// Node-local sequence number.
    pub lsn: Lsn,
    /// The node whose log this record belongs to.
    pub node: NodeId,
    /// The logged operation.
    pub payload: LogPayload,
}

/// Counters for one node's log.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeLogStats {
    /// Records appended.
    pub appends: u64,
    /// Bytes appended (approximate serialized size).
    pub bytes_appended: u64,
    /// Log forces performed (calls that actually moved the stable
    /// boundary).
    pub forces: u64,
    /// Records made stable by forces.
    pub records_forced: u64,
    /// Read-lock acquisition records appended (an IFA-specific overhead —
    /// Table 1).
    pub read_lock_records: u64,
    /// Structural early-commit records appended (an IFA-specific overhead —
    /// Table 1).
    pub structural_records: u64,
}

/// One node's log: a volatile tail in the node's local memory plus a stable
/// prefix on a shared disk.
///
/// A crash of the node destroys the volatile tail; the stable prefix
/// survives (and is all restart recovery can rely on for crashed nodes —
/// §4.1.1: *"one cannot rely on using the local undo log ... it could
/// easily be the case that the transaction management system left no trace
/// of ever running t_x"*).
///
/// Checkpoints may [`truncate`](NodeLog::truncate_through) the prefix the
/// recovery procedure can no longer need (everything at or below the
/// checkpoint, bounded by the oldest record of any still-active
/// transaction); LSNs are stable identities and survive truncation.
#[derive(Clone, Debug)]
pub struct NodeLog {
    node: NodeId,
    /// Retained records; the record at index `i` has LSN `base + i + 1`.
    records: Vec<LogRecord>,
    /// Number of records discarded from the front by truncation.
    base: u64,
    /// LSN up to which (inclusive) the log is on stable storage.
    stable_upto: Lsn,
    stats: NodeLogStats,
}

impl NodeLog {
    /// Create an empty log for `node`.
    pub fn new(node: NodeId) -> Self {
        NodeLog {
            node,
            records: Vec::new(),
            base: 0,
            stable_upto: Lsn::ZERO,
            stats: NodeLogStats::default(),
        }
    }

    /// The node that owns this log.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Append a record to the volatile tail; returns its LSN.
    pub fn append(&mut self, payload: LogPayload) -> Lsn {
        let lsn = Lsn(self.base + self.records.len() as u64 + 1);
        self.stats.appends += 1;
        self.stats.bytes_appended += payload.approx_size() as u64;
        if let LogPayload::LockAcquire { mode: LockModeRepr::Shared, .. } = payload {
            self.stats.read_lock_records += 1;
        }
        if let LogPayload::Structural { .. } = payload {
            self.stats.structural_records += 1;
        }
        self.records.push(LogRecord { lsn, node: self.node, payload });
        lsn
    }

    /// LSN of the most recently appended record ([`Lsn::ZERO`] if empty).
    pub fn last_lsn(&self) -> Lsn {
        Lsn(self.base + self.records.len() as u64)
    }

    /// LSN up to which (inclusive) the log is stable.
    pub fn stable_lsn(&self) -> Lsn {
        self.stable_upto
    }

    /// Whether the record at `lsn` is on stable storage.
    pub fn is_stable(&self, lsn: Lsn) -> bool {
        lsn <= self.stable_upto
    }

    /// Force the log to stable storage up to `lsn` (inclusive). Returns
    /// `true` if the stable boundary actually moved (i.e. a physical force
    /// was needed); `false` if the prefix was already stable. The caller
    /// charges the force latency when `true`.
    pub fn force_to(&mut self, lsn: Lsn) -> bool {
        let want = lsn.min(self.last_lsn());
        if want <= self.stable_upto {
            return false;
        }
        self.stats.forces += 1;
        self.stats.records_forced += want.0 - self.stable_upto.0;
        self.stable_upto = want;
        true
    }

    /// Force the entire log.
    pub fn force_all(&mut self) -> bool {
        self.force_to(self.last_lsn())
    }

    /// Advance the stable boundary by exactly `n` records (bounded by the
    /// volatile tail). This models a force interrupted partway: the first
    /// `n` records of the batch reached the disk, the rest die with the
    /// node. Fault injection uses it to leave a *half-forced* log behind.
    pub fn force_records(&mut self, n: u64) -> bool {
        self.force_to(Lsn(self.stable_upto.0 + n))
    }

    /// Number of volatile-tail records a force to `lsn` would write.
    pub fn unforced_count_to(&self, lsn: Lsn) -> u64 {
        let want = lsn.min(self.last_lsn());
        want.0.saturating_sub(self.stable_upto.0)
    }

    /// Crash this node's log: the volatile tail vanishes; the stable prefix
    /// remains.
    pub fn crash(&mut self) {
        let keep = self.stable_upto.0.saturating_sub(self.base) as usize;
        self.records.truncate(keep);
    }

    /// All retained records (stable prefix + volatile tail). For a
    /// surviving node this is the full history since the last truncation;
    /// for a crashed node call after [`NodeLog::crash`] and only the
    /// stable prefix remains.
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }

    /// Only the (retained part of the) stable prefix.
    pub fn stable_records(&self) -> &[LogRecord] {
        let n = (self.stable_upto.0.saturating_sub(self.base) as usize).min(self.records.len());
        &self.records[..n]
    }

    /// Records with LSN strictly greater than `after`.
    pub fn records_after(&self, after: Lsn) -> &[LogRecord] {
        let start =
            (after.0.max(self.base).saturating_sub(self.base) as usize).min(self.records.len());
        &self.records[start..]
    }

    /// Discard every record with LSN ≤ `lsn` (checkpoint-driven log
    /// reclamation). Only durable records may be discarded — the volatile
    /// tail is the crash-recovery source of truth for surviving nodes.
    /// The caller guarantees recovery will never need the discarded
    /// prefix: the checkpoint flushed every page (so no redo below it)
    /// and `lsn` is below the first record of every active transaction
    /// (so no undo below it either).
    pub fn truncate_through(&mut self, lsn: Lsn) {
        assert!(lsn <= self.stable_upto, "cannot truncate unforced records");
        if lsn.0 <= self.base {
            return;
        }
        let n = (lsn.0 - self.base) as usize;
        self.records.drain(..n.min(self.records.len()));
        self.base = lsn.0;
    }

    /// LSN below which records have been discarded.
    pub fn truncation_point(&self) -> Lsn {
        Lsn(self.base)
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no records are retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Log statistics.
    pub fn stats(&self) -> &NodeLogStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n0() -> NodeId {
        NodeId(0)
    }

    fn begin(seq: u64) -> LogPayload {
        LogPayload::Begin { txn: TxnId::new(NodeId(0), seq) }
    }

    #[test]
    fn append_assigns_sequential_lsns() {
        let mut log = NodeLog::new(n0());
        assert_eq!(log.append(begin(1)), Lsn(1));
        assert_eq!(log.append(begin(2)), Lsn(2));
        assert_eq!(log.last_lsn(), Lsn(2));
    }

    #[test]
    fn force_moves_stable_boundary_once() {
        let mut log = NodeLog::new(n0());
        log.append(begin(1));
        log.append(begin(2));
        assert!(log.force_to(Lsn(1)));
        assert!(!log.force_to(Lsn(1)), "already stable: no physical force");
        assert!(log.is_stable(Lsn(1)));
        assert!(!log.is_stable(Lsn(2)));
        assert_eq!(log.stats().forces, 1);
        assert_eq!(log.stats().records_forced, 1);
    }

    #[test]
    fn crash_destroys_volatile_tail_only() {
        let mut log = NodeLog::new(n0());
        log.append(begin(1));
        log.append(begin(2));
        log.append(begin(3));
        log.force_to(Lsn(2));
        log.crash();
        assert_eq!(log.len(), 2);
        assert_eq!(log.records().last().unwrap().lsn, Lsn(2));
        // The paper's "left no trace" scenario: nothing forced, all gone.
        let mut log2 = NodeLog::new(n0());
        log2.append(begin(9));
        log2.crash();
        assert!(log2.is_empty());
    }

    #[test]
    fn records_after_slices_by_lsn() {
        let mut log = NodeLog::new(n0());
        for i in 1..=5 {
            log.append(begin(i));
        }
        assert_eq!(log.records_after(Lsn(3)).len(), 2);
        assert_eq!(log.records_after(Lsn(0)).len(), 5);
        assert_eq!(log.records_after(Lsn(99)).len(), 0);
    }

    #[test]
    fn read_lock_records_counted() {
        let mut log = NodeLog::new(n0());
        let t = TxnId::new(NodeId(0), 1);
        log.append(LogPayload::LockAcquire {
            txn: t,
            name: 5,
            mode: LockModeRepr::Shared,
            queued: false,
        });
        log.append(LogPayload::LockAcquire {
            txn: t,
            name: 6,
            mode: LockModeRepr::Exclusive,
            queued: false,
        });
        assert_eq!(log.stats().read_lock_records, 1);
    }

    #[test]
    fn structural_records_counted() {
        let mut log = NodeLog::new(n0());
        let t = TxnId::new(NodeId(0), 1);
        log.append(LogPayload::Structural {
            txn: t,
            kind: StructuralKind::BtreeSplit { old_page: 3, new_page: 7, split_key: 10 },
        });
        assert_eq!(log.stats().structural_records, 1);
    }

    #[test]
    fn force_all_covers_everything() {
        let mut log = NodeLog::new(n0());
        log.append(begin(1));
        log.append(begin(2));
        assert!(log.force_all());
        assert_eq!(log.stable_lsn(), Lsn(2));
        log.crash();
        assert_eq!(log.len(), 2, "fully forced log survives crash intact");
    }

    #[test]
    fn payload_txn_extraction() {
        let t = TxnId::new(NodeId(2), 7);
        assert_eq!(LogPayload::Commit { txn: t }.txn(), Some(t));
        assert_eq!(LogPayload::Checkpoint.txn(), None);
    }

    #[test]
    fn update_size_includes_images() {
        let t = TxnId::new(NodeId(0), 1);
        let p = LogPayload::Update {
            txn: t,
            rec: RecId::new(PageId(0), 0),
            undo: Bytes::from(vec![0u8; 10]),
            redo: Bytes::from(vec![0u8; 20]),
            gsn: 1,
        };
        assert!(p.approx_size() >= 30);
        assert_eq!(p.gsn(), Some(1));
        assert_eq!(LogPayload::Checkpoint.gsn(), None);
    }
}

#[cfg(test)]
mod truncation_tests {
    use super::*;

    fn n0() -> NodeId {
        NodeId(0)
    }

    fn begin(seq: u64) -> LogPayload {
        LogPayload::Begin { txn: TxnId::new(NodeId(0), seq) }
    }

    #[test]
    fn truncate_preserves_lsn_identity() {
        let mut log = NodeLog::new(n0());
        for i in 1..=6 {
            log.append(begin(i));
        }
        log.force_all();
        log.truncate_through(Lsn(3));
        assert_eq!(log.truncation_point(), Lsn(3));
        assert_eq!(log.len(), 3);
        assert_eq!(log.records()[0].lsn, Lsn(4), "LSNs survive truncation");
        assert_eq!(log.last_lsn(), Lsn(6));
        // Appends continue the sequence.
        assert_eq!(log.append(begin(7)), Lsn(7));
    }

    #[test]
    fn records_after_respects_truncation() {
        let mut log = NodeLog::new(n0());
        for i in 1..=6 {
            log.append(begin(i));
        }
        log.force_all();
        log.truncate_through(Lsn(3));
        assert_eq!(log.records_after(Lsn(0)).len(), 3, "discarded records are gone");
        assert_eq!(log.records_after(Lsn(4)).len(), 2);
        assert_eq!(log.records_after(Lsn(99)).len(), 0);
    }

    #[test]
    fn stable_records_after_truncation() {
        let mut log = NodeLog::new(n0());
        for i in 1..=6 {
            log.append(begin(i));
        }
        log.force_to(Lsn(4));
        log.truncate_through(Lsn(2));
        let stable = log.stable_records();
        assert_eq!(stable.len(), 2, "lsn 3..=4 retained and stable");
        assert_eq!(stable[0].lsn, Lsn(3));
        // Crash drops the volatile tail only.
        log.crash();
        assert_eq!(log.last_lsn(), Lsn(4));
    }

    #[test]
    #[should_panic(expected = "unforced")]
    fn truncating_volatile_tail_rejected() {
        let mut log = NodeLog::new(n0());
        log.append(begin(1));
        log.truncate_through(Lsn(1));
    }

    #[test]
    fn idempotent_truncation() {
        let mut log = NodeLog::new(n0());
        for i in 1..=4 {
            log.append(begin(i));
        }
        log.force_all();
        log.truncate_through(Lsn(2));
        log.truncate_through(Lsn(2)); // no-op
        log.truncate_through(Lsn(1)); // below base: no-op
        assert_eq!(log.len(), 2);
    }
}
