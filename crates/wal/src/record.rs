//! Log records and per-node logs.

use crate::lsn::Lsn;
use bytes::Bytes;
use serde::{Deserialize, Serialize};
use smdb_sim::{NodeId, TxnId};
use smdb_storage::PageId;
use std::collections::BTreeMap;
use std::fmt;

/// Identity of a database record: a slot within a heap page.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RecId {
    /// The heap page holding the record.
    pub page: PageId,
    /// Slot index within the page.
    pub slot: u16,
}

impl RecId {
    /// Construct a record id.
    pub fn new(page: PageId, slot: u16) -> Self {
        RecId { page, slot }
    }
}

impl fmt::Debug for RecId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}.{}", self.page.0, self.slot)
    }
}

/// Lock mode as recorded in logical lock-log records. Mirrored by the lock
/// manager's richer mode type; kept here so log records are self-contained.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LockModeRepr {
    /// Shared (read) lock. Logged too — the paper's protocols require the
    /// logging of read locks so lock state lost in a crash can be redone
    /// for surviving transactions (§4.2.2, Table 1).
    Shared,
    /// Exclusive (write) lock.
    Exclusive,
}

/// Kinds of early-committed structural changes (§4.2): changes to database
/// management structures that are allowed to commit independently of the
/// transaction that caused them (nested top-level actions), so no
/// inter-node abort dependency can form through the changed structure.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StructuralKind {
    /// A B-tree node split: the page `new_page` was allocated and keys ≥
    /// `split_key` moved into it from `old_page`.
    BtreeSplit { old_page: u32, new_page: u32, split_key: u64 },
    /// Allocation of a new B-tree root page (tree height grew).
    BtreeNewRoot { root_page: u32 },
    /// Dynamic allocation of lock-table overflow space: `line` was
    /// allocated and linked from `parent`.
    LockSpaceAlloc { line: u64, parent: u64 },
}

/// One commit-LSN dependency recorded in a [`LogPayload::Commit`] record:
/// the committing transaction read or overwrote data whose writer released
/// its locks early (controlled lock violation), so this commit is valid
/// only if `txn`'s commit record at `lsn` (on `txn`'s home log) is durable
/// and itself valid. The partially-constrained-logs idea: constraints ride
/// in the log, so recovery can honour them without any engine state.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommitDep {
    /// The predecessor transaction this commit depends on.
    pub txn: TxnId,
    /// LSN of the predecessor's commit record on its home node's log.
    pub lsn: Lsn,
}

/// Payload of one log record.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LogPayload {
    /// Transaction start.
    Begin { txn: TxnId },
    /// Transaction commit. Forcing the log up to this record makes the
    /// transaction durable — *provided* every recorded dependency is
    /// durably committed too. `deps` is empty except under early lock
    /// release, where it lists the commit records this one is constrained
    /// by (see [`CommitDep`]).
    Commit {
        /// Committing transaction.
        txn: TxnId,
        /// Commit-LSN dependencies inherited through violated locks.
        deps: Vec<CommitDep>,
    },
    /// Transaction abort (after all its updates were undone).
    Abort { txn: TxnId },
    /// A physical record update carrying both images. The undo image (the
    /// before image, i.e. the last committed value — strict 2PL guarantees
    /// at most one writer) and the redo image (the after image). Written to
    /// the volatile log *before* the updated line can migrate — the LBM
    /// policy (§4.1.1). Compensation records written during transaction
    /// rollback use the same shape with the images swapped.
    Update {
        /// Updating transaction.
        txn: TxnId,
        /// Updated record.
        rec: RecId,
        /// Before image.
        undo: Bytes,
        /// After image.
        redo: Bytes,
        /// Global update sequence number: a machine-wide monotone stamp
        /// that totally orders data updates *across* the per-node logs.
        /// Restart recovery replays redo candidates from several logs in
        /// GSN order — the cross-log analogue of the §6 ordered-update
        /// -logging rule.
        gsn: u64,
    },
    /// Logical insert of a key into the B-tree index (leaf record create).
    IndexInsert {
        /// Inserting transaction.
        txn: TxnId,
        /// Key inserted.
        key: u64,
        /// Value stored with the key.
        value: Bytes,
        /// Global update sequence number (see [`LogPayload::Update`]).
        gsn: u64,
    },
    /// Logical delete of a key from the B-tree index. Implemented as a
    /// delete *mark* (§4.2.1); undo merely unmarks.
    IndexDelete {
        /// Deleting transaction.
        txn: TxnId,
        /// Key marked deleted.
        key: u64,
        /// Value at the time of the delete (for redo of the mark on a
        /// reconstructed node).
        value: Bytes,
        /// Global update sequence number (see [`LogPayload::Update`]).
        gsn: u64,
    },
    /// Compensation record: physical removal of an index entry (the undo of
    /// an uncommitted insert during rollback, or post-commit space reclaim
    /// of a delete-marked entry).
    IndexRemove {
        /// Transaction being rolled back (or committing, for reclaim).
        txn: TxnId,
        /// Key removed.
        key: u64,
        /// Global update sequence number (see [`LogPayload::Update`]).
        gsn: u64,
    },
    /// Compensation record: unmarking a logically deleted index entry (the
    /// undo of an uncommitted delete during rollback).
    IndexUnmark {
        /// Transaction being rolled back.
        txn: TxnId,
        /// Key unmarked.
        key: u64,
        /// Global update sequence number (see [`LogPayload::Update`]).
        gsn: u64,
    },
    /// An early-committed structural change (nested top-level action).
    /// Forced to stable store as part of the early commit, so no other
    /// transaction can become dependent on volatile structural state
    /// (§4.2).
    Structural {
        /// Transaction whose operation triggered the change (the change
        /// commits regardless of this transaction's fate).
        txn: TxnId,
        /// What changed.
        kind: StructuralKind,
    },
    /// Logical lock-acquisition record, written *before* the LCB update
    /// (§4.2.2). Read locks are logged too.
    LockAcquire {
        /// Acquiring transaction.
        txn: TxnId,
        /// Lock name (hash of the resource identity).
        name: u64,
        /// Requested mode.
        mode: LockModeRepr,
        /// Whether the request was queued rather than granted (queued
        /// requests must be logged as well — §4.2.2).
        queued: bool,
    },
    /// Logical lock-release record.
    LockRelease {
        /// Releasing transaction.
        txn: TxnId,
        /// Lock name.
        name: u64,
        /// `true` when only a *queued* request was withdrawn (a no-wait
        /// cancel); the transaction's grant, if any, is unaffected. Replay
        /// must not confuse the two: a cancelled queued upgrade leaves the
        /// original grant in force.
        wait_only: bool,
    },
    /// Sharp checkpoint marker: at this point every dirty page this node
    /// had updated has been flushed and the log forced.
    Checkpoint,
}

impl LogPayload {
    /// The transaction this record belongs to, if any.
    pub fn txn(&self) -> Option<TxnId> {
        match self {
            LogPayload::Begin { txn }
            | LogPayload::Commit { txn, .. }
            | LogPayload::Abort { txn }
            | LogPayload::Update { txn, .. }
            | LogPayload::IndexInsert { txn, .. }
            | LogPayload::IndexDelete { txn, .. }
            | LogPayload::IndexRemove { txn, .. }
            | LogPayload::IndexUnmark { txn, .. }
            | LogPayload::Structural { txn, .. }
            | LogPayload::LockAcquire { txn, .. }
            | LogPayload::LockRelease { txn, .. } => Some(*txn),
            LogPayload::Checkpoint => None,
        }
    }

    /// The global update sequence number carried by data records; `None`
    /// for control, lock, and structural records.
    pub fn gsn(&self) -> Option<u64> {
        match self {
            LogPayload::Update { gsn, .. }
            | LogPayload::IndexInsert { gsn, .. }
            | LogPayload::IndexDelete { gsn, .. }
            | LogPayload::IndexRemove { gsn, .. }
            | LogPayload::IndexUnmark { gsn, .. } => Some(*gsn),
            _ => None,
        }
    }

    /// Approximate serialized size in bytes, used for overhead accounting
    /// (Table 1 reports *what* must be logged; the bench reports how many
    /// bytes that costs).
    pub fn approx_size(&self) -> usize {
        let header = 16; // lsn + type tag + txn
        match self {
            LogPayload::Update { undo, redo, .. } => header + 16 + undo.len() + redo.len(),
            LogPayload::IndexInsert { value, .. } | LogPayload::IndexDelete { value, .. } => {
                header + 16 + value.len()
            }
            LogPayload::IndexRemove { .. } | LogPayload::IndexUnmark { .. } => header + 16,
            LogPayload::Structural { .. } => header + 16,
            LogPayload::LockAcquire { .. } => header + 10,
            LogPayload::LockRelease { .. } => header + 10,
            _ => header,
        }
    }
}

/// One record in a node's log.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogRecord {
    /// Node-local sequence number.
    pub lsn: Lsn,
    /// The node whose log this record belongs to.
    pub node: NodeId,
    /// The logged operation.
    pub payload: LogPayload,
}

/// Counters for one node's log.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NodeLogStats {
    /// Records appended.
    pub appends: u64,
    /// Bytes appended (approximate serialized size).
    pub bytes_appended: u64,
    /// Physical log forces performed (calls that actually moved the stable
    /// boundary). The [`CostModel`](smdb_sim) force latency is charged per
    /// *physical* force; see `forces_requested` for the logical count.
    pub forces: u64,
    /// Logical durability requests: every force call that found volatile
    /// records it needed stable. Without coalescing each request is served
    /// by its own physical force (`forces_requested == forces`); with
    /// coalescing, requests inside a transaction's LBM window are absorbed
    /// into the pending-force window and served later by one physical
    /// force, so `forces_requested >= forces`.
    pub forces_requested: u64,
    /// Requests absorbed into the pending-force window instead of being
    /// served by an immediate physical force
    /// (`forces_requested == forces + forces_coalesced`).
    pub forces_coalesced: u64,
    /// Records made stable by forces.
    pub records_forced: u64,
    /// Read-lock acquisition records appended (an IFA-specific overhead —
    /// Table 1).
    pub read_lock_records: u64,
    /// Structural early-commit records appended (an IFA-specific overhead —
    /// Table 1).
    pub structural_records: u64,
}

/// Incremental per-append index over one node's log, maintained by
/// [`NodeLog::append`] so restart recovery never has to scan a log just to
/// answer "who committed?", "where does this transaction start?", or "is
/// there any data record past the checkpoint?".
///
/// Two asymmetries are deliberate:
///
/// * **Commit entries survive truncation.** A committed transaction whose
///   Commit record has been reclaimed by a checkpoint may still have
///   participant records retained on *another* node's log; classifying it
///   as uncommitted there would patch committed data away. The entry is
///   the durable memory of the reclaimed record (conceptually part of the
///   checkpoint metadata on the shared disk).
/// * **Crash clamps are conservative upper bounds.** After a crash the
///   retained maximum data LSN may be lower than the clamped value; the
///   safe direction is "scan anyway", never "skip".
#[derive(Clone, Debug, Default)]
pub struct LogIndex {
    /// Commit-record LSN per transaction (kept across truncation).
    commit_lsns: BTreeMap<TxnId, Lsn>,
    /// Commit-LSN dependencies per committed transaction (kept across
    /// truncation, like `commit_lsns` — a reclaimed commit record's
    /// constraints remain part of the durable checkpoint metadata). Only
    /// populated for commits with a non-empty dependency list.
    commit_deps: BTreeMap<TxnId, Vec<CommitDep>>,
    /// LSN of the first record each transaction wrote to this log.
    first_txn_lsns: BTreeMap<TxnId, Lsn>,
    /// First/last Update-record LSN per dirtied heap page.
    dirty_pages: BTreeMap<PageId, (Lsn, Lsn)>,
    /// Highest LSN of any data record (Update / Index*); [`Lsn::ZERO`]
    /// when the log has never carried one.
    last_data_lsn: Lsn,
}

impl LogIndex {
    fn note_append(&mut self, lsn: Lsn, payload: &LogPayload) {
        match payload {
            LogPayload::Commit { txn, deps } => {
                self.commit_lsns.insert(*txn, lsn);
                if !deps.is_empty() {
                    self.commit_deps.insert(*txn, deps.clone());
                }
            }
            LogPayload::Update { rec, .. } => {
                let span = self.dirty_pages.entry(rec.page).or_insert((lsn, lsn));
                span.1 = lsn;
                self.last_data_lsn = lsn;
            }
            LogPayload::IndexInsert { .. }
            | LogPayload::IndexDelete { .. }
            | LogPayload::IndexRemove { .. }
            | LogPayload::IndexUnmark { .. } => {
                self.last_data_lsn = lsn;
            }
            _ => {}
        }
        if let Some(txn) = payload.txn() {
            self.first_txn_lsns.entry(txn).or_insert(lsn);
        }
    }

    /// Drop knowledge of volatile records lost in a crash; spans that
    /// straddle the boundary are clamped (upper bounds, see type docs).
    fn purge_volatile(&mut self, stable: Lsn) {
        let lsns = &self.commit_lsns;
        self.commit_deps.retain(|t, _| lsns.get(t).is_some_and(|l| *l <= stable));
        self.commit_lsns.retain(|_, l| *l <= stable);
        self.first_txn_lsns.retain(|_, l| *l <= stable);
        self.dirty_pages.retain(|_, (first, _)| *first <= stable);
        for (_, last) in self.dirty_pages.values_mut() {
            *last = (*last).min(stable);
        }
        self.last_data_lsn = self.last_data_lsn.min(stable);
    }

    /// Forget dirty-page spans wholly below a truncation cutoff. Commit
    /// and first-record entries are kept (see type docs); `last_data_lsn`
    /// is an all-time high-water mark and unaffected.
    fn note_truncation(&mut self, cutoff: Lsn) {
        self.dirty_pages.retain(|_, (_, last)| *last > cutoff);
    }

    /// Transactions whose Commit record reached LSN ≤ `stable`.
    pub fn stable_commits(&self, stable: Lsn) -> impl Iterator<Item = TxnId> + '_ {
        self.commit_lsns.iter().filter(move |(_, l)| **l <= stable).map(|(t, _)| *t)
    }

    /// LSN of `txn`'s Commit record on this log, if it ever committed here.
    pub fn commit_lsn(&self, txn: TxnId) -> Option<Lsn> {
        self.commit_lsns.get(&txn).copied()
    }

    /// The commit-LSN dependencies recorded with `txn`'s Commit record
    /// (empty for unconstrained commits).
    pub fn commit_deps_of(&self, txn: TxnId) -> &[CommitDep] {
        self.commit_deps.get(&txn).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// LSN of `txn`'s first record on this log, if it ever wrote one.
    pub fn first_txn_lsn(&self, txn: TxnId) -> Option<Lsn> {
        self.first_txn_lsns.get(&txn).copied()
    }

    /// First/last Update-record LSN for a retained dirty heap page.
    pub fn dirty_page_span(&self, page: PageId) -> Option<(Lsn, Lsn)> {
        self.dirty_pages.get(&page).copied()
    }

    /// Number of heap pages with retained Update records.
    pub fn dirty_page_count(&self) -> usize {
        self.dirty_pages.len()
    }

    /// Highest LSN of any data record ever appended (upper bound after a
    /// crash; see type docs).
    pub fn last_data_lsn(&self) -> Lsn {
        self.last_data_lsn
    }
}

/// One node's log: a volatile tail in the node's local memory plus a stable
/// prefix on a shared disk.
///
/// A crash of the node destroys the volatile tail; the stable prefix
/// survives (and is all restart recovery can rely on for crashed nodes —
/// §4.1.1: *"one cannot rely on using the local undo log ... it could
/// easily be the case that the transaction management system left no trace
/// of ever running t_x"*).
///
/// Checkpoints may [`truncate`](NodeLog::truncate_through) the prefix the
/// recovery procedure can no longer need (everything at or below the
/// checkpoint, bounded by the oldest record of any still-active
/// transaction); LSNs are stable identities and survive truncation.
#[derive(Clone, Debug)]
pub struct NodeLog {
    node: NodeId,
    /// Retained records; the record at index `i` has LSN `base + i + 1`.
    records: Vec<LogRecord>,
    /// Number of records discarded from the front by truncation.
    base: u64,
    /// LSN up to which (inclusive) the log is on stable storage.
    stable_upto: Lsn,
    /// Whether logical durability requests may be deferred into the
    /// pending-force window (see [`NodeLog::request_force_to`]).
    coalesce: bool,
    /// High-water mark of deferred force requests. [`Lsn::ZERO`] (or any
    /// value ≤ `stable_upto`) means the window is empty. Volatile: a crash
    /// discards it along with the unforced tail it pointed at.
    pending_force: Lsn,
    /// Incremental per-append index (commits, first records, dirty pages).
    index: LogIndex,
    stats: NodeLogStats,
}

impl NodeLog {
    /// Create an empty log for `node`.
    pub fn new(node: NodeId) -> Self {
        NodeLog {
            node,
            records: Vec::new(),
            base: 0,
            stable_upto: Lsn::ZERO,
            coalesce: false,
            pending_force: Lsn::ZERO,
            index: LogIndex::default(),
            stats: NodeLogStats::default(),
        }
    }

    /// The node that owns this log.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Append a record to the volatile tail; returns its LSN.
    pub fn append(&mut self, payload: LogPayload) -> Lsn {
        let lsn = Lsn(self.base + self.records.len() as u64 + 1);
        self.stats.appends += 1;
        self.stats.bytes_appended += payload.approx_size() as u64;
        if let LogPayload::LockAcquire { mode: LockModeRepr::Shared, .. } = payload {
            self.stats.read_lock_records += 1;
        }
        if let LogPayload::Structural { .. } = payload {
            self.stats.structural_records += 1;
        }
        self.index.note_append(lsn, &payload);
        self.records.push(LogRecord { lsn, node: self.node, payload });
        lsn
    }

    /// LSN of the most recently appended record ([`Lsn::ZERO`] if empty).
    pub fn last_lsn(&self) -> Lsn {
        Lsn(self.base + self.records.len() as u64)
    }

    /// LSN up to which (inclusive) the log is stable.
    pub fn stable_lsn(&self) -> Lsn {
        self.stable_upto
    }

    /// Whether the record at `lsn` is on stable storage.
    pub fn is_stable(&self, lsn: Lsn) -> bool {
        lsn <= self.stable_upto
    }

    /// The committed-through high-water mark: every record at or below
    /// this LSN has been covered by a physical force. This is the boundary
    /// the engine tests commit-dependency chains against when deciding
    /// whether an early-lock-release commit may be acknowledged (an alias
    /// of [`NodeLog::stable_lsn`], named for that role).
    pub fn durable_lsn(&self) -> Lsn {
        self.stable_upto
    }

    /// Force the log to stable storage up to `lsn` (inclusive). Returns
    /// `true` if the stable boundary actually moved (i.e. a physical force
    /// was needed); `false` if the prefix was already stable. The caller
    /// charges the force latency when `true`. A physical force also drains
    /// whatever part of the pending-force window it covers — this is how
    /// coalesced requests piggyback on commit/trigger forces.
    pub fn force_to(&mut self, lsn: Lsn) -> bool {
        let want = lsn.min(self.last_lsn());
        if want <= self.stable_upto {
            return false;
        }
        self.stats.forces += 1;
        self.stats.forces_requested += 1;
        self.stats.records_forced += want.0 - self.stable_upto.0;
        self.stable_upto = want;
        if self.pending_force <= self.stable_upto {
            self.pending_force = Lsn::ZERO;
        }
        true
    }

    /// Enable or disable force coalescing for this log.
    pub fn set_coalescing(&mut self, on: bool) {
        self.coalesce = on;
    }

    /// Whether force coalescing is enabled.
    pub fn coalescing(&self) -> bool {
        self.coalesce
    }

    /// Logical durability request under force coalescing: instead of
    /// forcing physically, record `lsn` in the pending-force window. The
    /// next physical force on this log (a commit force, an LBM trigger
    /// force, a checkpoint, or an overflow early commit) covers the whole
    /// window at the cost of one [`CostModel`](smdb_sim) force charge —
    /// the group-commit / piggybacked-force mechanism. Returns `true` if
    /// the request was deferred (there were volatile records to cover);
    /// `false` if the prefix was already stable and nothing was needed.
    ///
    /// Only meaningful with coalescing enabled — eager callers should use
    /// the physical [`NodeLog::force_to`] (or the fault-checked LogSet
    /// wrappers) directly so torn-force crash points keep firing.
    pub fn request_force_to(&mut self, lsn: Lsn) -> bool {
        debug_assert!(self.coalesce, "request_force_to without coalescing enabled");
        let want = lsn.min(self.last_lsn());
        if want <= self.stable_upto {
            return false;
        }
        self.stats.forces_requested += 1;
        self.stats.forces_coalesced += 1;
        if want > self.pending_force {
            self.pending_force = want;
        }
        true
    }

    /// The deferred-force high-water mark, if any request is still pending.
    pub fn pending_force(&self) -> Option<Lsn> {
        (self.pending_force > self.stable_upto).then_some(self.pending_force)
    }

    /// Force the entire log.
    pub fn force_all(&mut self) -> bool {
        self.force_to(self.last_lsn())
    }

    /// Advance the stable boundary by exactly `n` records (bounded by the
    /// volatile tail). This models a force interrupted partway: the first
    /// `n` records of the batch reached the disk, the rest die with the
    /// node. Fault injection uses it to leave a *half-forced* log behind.
    pub fn force_records(&mut self, n: u64) -> bool {
        self.force_to(Lsn(self.stable_upto.0 + n))
    }

    /// Number of volatile-tail records a force to `lsn` would write.
    pub fn unforced_count_to(&self, lsn: Lsn) -> u64 {
        let want = lsn.min(self.last_lsn());
        want.0.saturating_sub(self.stable_upto.0)
    }

    /// Crash this node's log: the volatile tail vanishes; the stable prefix
    /// remains.
    pub fn crash(&mut self) {
        let keep = self.stable_upto.0.saturating_sub(self.base) as usize;
        self.records.truncate(keep);
        self.pending_force = Lsn::ZERO;
        self.index.purge_volatile(self.stable_upto);
    }

    /// All retained records (stable prefix + volatile tail). For a
    /// surviving node this is the full history since the last truncation;
    /// for a crashed node call after [`NodeLog::crash`] and only the
    /// stable prefix remains.
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }

    /// Only the (retained part of the) stable prefix.
    pub fn stable_records(&self) -> &[LogRecord] {
        let n = (self.stable_upto.0.saturating_sub(self.base) as usize).min(self.records.len());
        &self.records[..n]
    }

    /// Records with LSN strictly greater than `after`.
    pub fn records_after(&self, after: Lsn) -> &[LogRecord] {
        let start =
            (after.0.max(self.base).saturating_sub(self.base) as usize).min(self.records.len());
        &self.records[start..]
    }

    /// Discard every record with LSN ≤ `lsn` (checkpoint-driven log
    /// reclamation). Only durable records may be discarded — the volatile
    /// tail is the crash-recovery source of truth for surviving nodes.
    /// The caller guarantees recovery will never need the discarded
    /// prefix: the checkpoint flushed every page (so no redo below it)
    /// and `lsn` is below the first record of every active transaction
    /// (so no undo below it either).
    pub fn truncate_through(&mut self, lsn: Lsn) {
        assert!(lsn <= self.stable_upto, "cannot truncate unforced records");
        if lsn.0 <= self.base {
            return;
        }
        let n = (lsn.0 - self.base) as usize;
        self.records.drain(..n.min(self.records.len()));
        self.base = lsn.0;
        self.index.note_truncation(lsn);
    }

    /// LSN below which records have been discarded.
    pub fn truncation_point(&self) -> Lsn {
        Lsn(self.base)
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no records are retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The incremental per-append index.
    pub fn index(&self) -> &LogIndex {
        &self.index
    }

    /// Transactions whose Commit record is on this log's stable prefix
    /// (including commits whose record was reclaimed by truncation).
    pub fn stable_commits(&self) -> impl Iterator<Item = TxnId> + '_ {
        self.index.stable_commits(self.stable_upto)
    }

    /// Whether `txn`'s Commit record on this log reached stable storage.
    pub fn is_commit_stable(&self, txn: TxnId) -> bool {
        self.index.commit_lsns.get(&txn).is_some_and(|l| *l <= self.stable_upto)
    }

    /// Whether any data record with LSN > `after` may be retained — the
    /// checkpoint-bounded scan filter. Conservative: `true` may still mean
    /// an empty scan, `false` guarantees one.
    pub fn has_data_after(&self, after: Lsn) -> bool {
        self.index.last_data_lsn > after
    }

    /// Log statistics.
    pub fn stats(&self) -> &NodeLogStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n0() -> NodeId {
        NodeId(0)
    }

    fn begin(seq: u64) -> LogPayload {
        LogPayload::Begin { txn: TxnId::new(NodeId(0), seq) }
    }

    #[test]
    fn append_assigns_sequential_lsns() {
        let mut log = NodeLog::new(n0());
        assert_eq!(log.append(begin(1)), Lsn(1));
        assert_eq!(log.append(begin(2)), Lsn(2));
        assert_eq!(log.last_lsn(), Lsn(2));
    }

    #[test]
    fn force_moves_stable_boundary_once() {
        let mut log = NodeLog::new(n0());
        log.append(begin(1));
        log.append(begin(2));
        assert!(log.force_to(Lsn(1)));
        assert!(!log.force_to(Lsn(1)), "already stable: no physical force");
        assert!(log.is_stable(Lsn(1)));
        assert!(!log.is_stable(Lsn(2)));
        assert_eq!(log.stats().forces, 1);
        assert_eq!(log.stats().forces_requested, 1, "eager: one request, one physical force");
        assert_eq!(log.stats().forces_coalesced, 0);
        assert_eq!(log.stats().records_forced, 1);
    }

    #[test]
    fn coalesced_requests_batch_into_one_physical_force() {
        let mut log = NodeLog::new(n0());
        log.set_coalescing(true);
        let l1 = log.append(begin(1));
        let l2 = log.append(begin(2));
        assert!(log.request_force_to(l1), "deferred into the window");
        assert!(log.request_force_to(l2), "window grows, still no physical force");
        assert_eq!(log.stats().forces, 0);
        assert_eq!(log.stats().forces_requested, 2);
        assert_eq!(log.stats().forces_coalesced, 2);
        assert_eq!(log.pending_force(), Some(l2));
        // One physical force (e.g. the commit force) drains the window.
        let l3 = log.append(begin(3));
        assert!(log.force_to(l3));
        assert_eq!(log.pending_force(), None);
        assert_eq!(log.stats().forces, 1);
        assert_eq!(log.stats().forces_requested, 3);
        assert_eq!(log.stats().records_forced, 3, "every record still reaches stable store");
        // Requests below the stable boundary need nothing.
        assert!(!log.request_force_to(l1));
        assert_eq!(log.stats().forces_requested, 3);
    }

    #[test]
    fn partial_force_keeps_uncovered_window() {
        let mut log = NodeLog::new(n0());
        log.set_coalescing(true);
        log.append(begin(1));
        let l2 = log.append(begin(2));
        log.request_force_to(l2);
        // A torn force that persisted only the first record leaves the
        // window demanding the rest.
        assert!(log.force_records(1));
        assert_eq!(log.pending_force(), Some(l2));
        assert!(log.force_to(l2));
        assert_eq!(log.pending_force(), None);
    }

    #[test]
    fn crash_discards_pending_window() {
        let mut log = NodeLog::new(n0());
        log.set_coalescing(true);
        let l1 = log.append(begin(1));
        log.request_force_to(l1);
        log.crash();
        assert_eq!(log.pending_force(), None, "deferred requests die with the tail");
        assert!(log.is_empty());
    }

    #[test]
    fn crash_destroys_volatile_tail_only() {
        let mut log = NodeLog::new(n0());
        log.append(begin(1));
        log.append(begin(2));
        log.append(begin(3));
        log.force_to(Lsn(2));
        log.crash();
        assert_eq!(log.len(), 2);
        assert_eq!(log.records().last().unwrap().lsn, Lsn(2));
        // The paper's "left no trace" scenario: nothing forced, all gone.
        let mut log2 = NodeLog::new(n0());
        log2.append(begin(9));
        log2.crash();
        assert!(log2.is_empty());
    }

    #[test]
    fn records_after_slices_by_lsn() {
        let mut log = NodeLog::new(n0());
        for i in 1..=5 {
            log.append(begin(i));
        }
        assert_eq!(log.records_after(Lsn(3)).len(), 2);
        assert_eq!(log.records_after(Lsn(0)).len(), 5);
        assert_eq!(log.records_after(Lsn(99)).len(), 0);
    }

    #[test]
    fn read_lock_records_counted() {
        let mut log = NodeLog::new(n0());
        let t = TxnId::new(NodeId(0), 1);
        log.append(LogPayload::LockAcquire {
            txn: t,
            name: 5,
            mode: LockModeRepr::Shared,
            queued: false,
        });
        log.append(LogPayload::LockAcquire {
            txn: t,
            name: 6,
            mode: LockModeRepr::Exclusive,
            queued: false,
        });
        assert_eq!(log.stats().read_lock_records, 1);
    }

    #[test]
    fn structural_records_counted() {
        let mut log = NodeLog::new(n0());
        let t = TxnId::new(NodeId(0), 1);
        log.append(LogPayload::Structural {
            txn: t,
            kind: StructuralKind::BtreeSplit { old_page: 3, new_page: 7, split_key: 10 },
        });
        assert_eq!(log.stats().structural_records, 1);
    }

    #[test]
    fn force_all_covers_everything() {
        let mut log = NodeLog::new(n0());
        log.append(begin(1));
        log.append(begin(2));
        assert!(log.force_all());
        assert_eq!(log.stable_lsn(), Lsn(2));
        log.crash();
        assert_eq!(log.len(), 2, "fully forced log survives crash intact");
    }

    #[test]
    fn payload_txn_extraction() {
        let t = TxnId::new(NodeId(2), 7);
        assert_eq!(LogPayload::Commit { txn: t, deps: vec![] }.txn(), Some(t));
        assert_eq!(LogPayload::Checkpoint.txn(), None);
    }

    #[test]
    fn update_size_includes_images() {
        let t = TxnId::new(NodeId(0), 1);
        let p = LogPayload::Update {
            txn: t,
            rec: RecId::new(PageId(0), 0),
            undo: Bytes::from(vec![0u8; 10]),
            redo: Bytes::from(vec![0u8; 20]),
            gsn: 1,
        };
        assert!(p.approx_size() >= 30);
        assert_eq!(p.gsn(), Some(1));
        assert_eq!(LogPayload::Checkpoint.gsn(), None);
    }
}

#[cfg(test)]
mod truncation_tests {
    use super::*;

    fn n0() -> NodeId {
        NodeId(0)
    }

    fn begin(seq: u64) -> LogPayload {
        LogPayload::Begin { txn: TxnId::new(NodeId(0), seq) }
    }

    #[test]
    fn truncate_preserves_lsn_identity() {
        let mut log = NodeLog::new(n0());
        for i in 1..=6 {
            log.append(begin(i));
        }
        log.force_all();
        log.truncate_through(Lsn(3));
        assert_eq!(log.truncation_point(), Lsn(3));
        assert_eq!(log.len(), 3);
        assert_eq!(log.records()[0].lsn, Lsn(4), "LSNs survive truncation");
        assert_eq!(log.last_lsn(), Lsn(6));
        // Appends continue the sequence.
        assert_eq!(log.append(begin(7)), Lsn(7));
    }

    #[test]
    fn records_after_respects_truncation() {
        let mut log = NodeLog::new(n0());
        for i in 1..=6 {
            log.append(begin(i));
        }
        log.force_all();
        log.truncate_through(Lsn(3));
        assert_eq!(log.records_after(Lsn(0)).len(), 3, "discarded records are gone");
        assert_eq!(log.records_after(Lsn(4)).len(), 2);
        assert_eq!(log.records_after(Lsn(99)).len(), 0);
    }

    #[test]
    fn stable_records_after_truncation() {
        let mut log = NodeLog::new(n0());
        for i in 1..=6 {
            log.append(begin(i));
        }
        log.force_to(Lsn(4));
        log.truncate_through(Lsn(2));
        let stable = log.stable_records();
        assert_eq!(stable.len(), 2, "lsn 3..=4 retained and stable");
        assert_eq!(stable[0].lsn, Lsn(3));
        // Crash drops the volatile tail only.
        log.crash();
        assert_eq!(log.last_lsn(), Lsn(4));
    }

    #[test]
    #[should_panic(expected = "unforced")]
    fn truncating_volatile_tail_rejected() {
        let mut log = NodeLog::new(n0());
        log.append(begin(1));
        log.truncate_through(Lsn(1));
    }

    #[test]
    fn idempotent_truncation() {
        let mut log = NodeLog::new(n0());
        for i in 1..=4 {
            log.append(begin(i));
        }
        log.force_all();
        log.truncate_through(Lsn(2));
        log.truncate_through(Lsn(2)); // no-op
        log.truncate_through(Lsn(1)); // below base: no-op
        assert_eq!(log.len(), 2);
    }
}

#[cfg(test)]
mod index_tests {
    use super::*;

    fn txn(seq: u64) -> TxnId {
        TxnId::new(NodeId(0), seq)
    }

    fn update(seq: u64, page: u32, gsn: u64) -> LogPayload {
        LogPayload::Update {
            txn: txn(seq),
            rec: RecId::new(PageId(page), 0),
            undo: Bytes::from(vec![1u8; 4]),
            redo: Bytes::from(vec![2u8; 4]),
            gsn,
        }
    }

    #[test]
    fn commit_entries_require_stability() {
        let mut log = NodeLog::new(NodeId(0));
        log.append(LogPayload::Begin { txn: txn(1) });
        log.append(LogPayload::Commit { txn: txn(1), deps: vec![] });
        assert!(!log.is_commit_stable(txn(1)), "commit still volatile");
        assert_eq!(log.stable_commits().count(), 0);
        log.force_all();
        assert!(log.is_commit_stable(txn(1)));
        assert_eq!(log.stable_commits().collect::<Vec<_>>(), vec![txn(1)]);
    }

    #[test]
    fn crash_purges_volatile_index_entries() {
        let mut log = NodeLog::new(NodeId(0));
        log.append(LogPayload::Begin { txn: txn(1) });
        log.force_all();
        log.append(update(1, 3, 10));
        log.append(LogPayload::Commit { txn: txn(1), deps: vec![] });
        log.append(LogPayload::Begin { txn: txn(2) });
        log.crash();
        assert!(!log.is_commit_stable(txn(1)), "commit died with the tail");
        assert_eq!(log.index().first_txn_lsn(txn(1)), Some(Lsn(1)));
        assert_eq!(log.index().first_txn_lsn(txn(2)), None);
        // The clamp is conservative: the high-water mark drops to the
        // stable point (an empty scan may still be suggested), but nothing
        // past it is ever claimed.
        assert!(!log.has_data_after(Lsn(1)), "update died with the tail");
        assert_eq!(log.index().dirty_page_count(), 0);
    }

    #[test]
    fn commit_entries_survive_truncation() {
        let mut log = NodeLog::new(NodeId(0));
        log.append(LogPayload::Begin { txn: txn(1) });
        log.append(update(1, 0, 1));
        log.append(LogPayload::Commit { txn: txn(1), deps: vec![] });
        log.force_all();
        log.truncate_through(Lsn(3));
        assert!(log.is_commit_stable(txn(1)), "truncated commit is still a commit");
        assert_eq!(log.index().dirty_page_count(), 0, "dirty span reclaimed");
        assert!(!log.has_data_after(Lsn(3)));
        assert!(log.has_data_after(Lsn(1)), "high-water mark is all-time");
    }

    #[test]
    fn dirty_page_spans_track_first_and_last() {
        let mut log = NodeLog::new(NodeId(0));
        log.append(update(1, 7, 1)); // lsn 1
        log.append(LogPayload::Begin { txn: txn(2) }); // lsn 2
        log.append(update(2, 7, 2)); // lsn 3
        log.append(update(2, 9, 3)); // lsn 4
        assert_eq!(log.index().dirty_page_span(PageId(7)), Some((Lsn(1), Lsn(3))));
        assert_eq!(log.index().dirty_page_span(PageId(9)), Some((Lsn(4), Lsn(4))));
        assert_eq!(log.index().last_data_lsn(), Lsn(4));
        log.force_all();
        log.truncate_through(Lsn(3));
        assert_eq!(log.index().dirty_page_span(PageId(7)), None);
        assert_eq!(log.index().dirty_page_span(PageId(9)), Some((Lsn(4), Lsn(4))));
    }

    #[test]
    fn first_txn_lsn_is_first_append() {
        let mut log = NodeLog::new(NodeId(0));
        log.append(LogPayload::Begin { txn: txn(5) }); // lsn 1
        log.append(update(5, 0, 1)); // lsn 2
        assert_eq!(log.index().first_txn_lsn(txn(5)), Some(Lsn(1)));
    }
}
