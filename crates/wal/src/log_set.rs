//! The collection of all nodes' logs.

use crate::lsn::Lsn;
use crate::record::{LogPayload, LogRecord, NodeLog};
use smdb_fault::{FaultCrash, FaultInjector};
use smdb_sim::NodeId;

/// Fault site: visited once per volatile record a log force is about to
/// make durable. Firing at ordinal `k` of a force means the force wrote
/// exactly `k` records and then the node died — the classic torn log
/// force. The acting node is the log owner.
pub const FAULT_FORCE_RECORD: &str = "wal.force.record";

/// Fault site: visited once per live node as the checkpoint is about to
/// append that node's Checkpoint marker record. Firing kills the node
/// before its marker exists — the checkpoint is torn across the machine:
/// some logs carry the new marker, some never will, and the checkpoint
/// metadata is never installed. The acting node is the marker's owner.
pub const FAULT_CHECKPOINT_RECORD: &str = "wal.checkpoint.record";

/// Fault site: visited once per live node as checkpoint-driven log
/// reclamation is about to truncate that node's redo-free prefix. Firing
/// kills the node after the checkpoint metadata is installed but with
/// truncation incomplete: some logs are trimmed to the checkpoint, others
/// still carry (and will re-scan) records below it. The acting node is
/// the log owner.
pub const FAULT_TRUNCATE: &str = "wal.truncate";

/// All per-node logs of the machine, indexed by [`NodeId`].
#[derive(Clone, Debug)]
pub struct LogSet {
    logs: Vec<NodeLog>,
    fault: FaultInjector,
}

impl LogSet {
    /// Create one empty log per node.
    pub fn new(nodes: u16) -> Self {
        LogSet {
            logs: (0..nodes).map(|n| NodeLog::new(NodeId(n))).collect(),
            fault: FaultInjector::new(),
        }
    }

    /// Install a fault injector; the log set hosts the per-record force
    /// crash point ([`FAULT_FORCE_RECORD`]).
    pub fn set_fault_injector(&mut self, fault: FaultInjector) {
        self.fault = fault;
    }

    /// Force `node`'s log up to `lsn` (inclusive), visiting the
    /// [`FAULT_FORCE_RECORD`] crash point once per record written. When the
    /// point fires mid-force, the records already visited are durable, the
    /// rest are not, and the error demands the node be crashed — exactly a
    /// power failure between two log-disk writes.
    pub fn force_to_checked(&mut self, node: NodeId, lsn: Lsn) -> Result<bool, FaultCrash> {
        let fault = &self.fault;
        let log = &mut self.logs[node.0 as usize];
        let count = log.unforced_count_to(lsn);
        for k in 0..count {
            if let Some(c) = fault.hit(FAULT_FORCE_RECORD, node.0) {
                if k > 0 {
                    log.force_records(k);
                }
                return Err(c);
            }
        }
        Ok(log.force_to(lsn))
    }

    /// Force all of `node`'s log, with per-record crash points (see
    /// [`LogSet::force_to_checked`]).
    pub fn force_all_checked(&mut self, node: NodeId) -> Result<bool, FaultCrash> {
        let last = self.logs[node.0 as usize].last_lsn();
        self.force_to_checked(node, last)
    }

    /// Append `node`'s sharp-checkpoint marker record, visiting the
    /// [`FAULT_CHECKPOINT_RECORD`] crash point first: a fire means the
    /// node died before the marker was written.
    pub fn append_checkpoint_checked(&mut self, node: NodeId) -> Result<Lsn, FaultCrash> {
        if let Some(c) = self.fault.hit(FAULT_CHECKPOINT_RECORD, node.0) {
            return Err(c);
        }
        Ok(self.append(node, LogPayload::Checkpoint))
    }

    /// Truncate `node`'s log through `lsn`, visiting the [`FAULT_TRUNCATE`]
    /// crash point first: a fire means the node died with its prefix still
    /// in place (truncation is all-or-nothing per log).
    pub fn truncate_through_checked(&mut self, node: NodeId, lsn: Lsn) -> Result<(), FaultCrash> {
        if let Some(c) = self.fault.hit(FAULT_TRUNCATE, node.0) {
            return Err(c);
        }
        self.log_mut(node).truncate_through(lsn);
        Ok(())
    }

    /// Number of logs (== number of nodes).
    pub fn len(&self) -> usize {
        self.logs.len()
    }

    /// Whether there are no logs.
    pub fn is_empty(&self) -> bool {
        self.logs.is_empty()
    }

    /// Immutable access to one node's log.
    pub fn log(&self, node: NodeId) -> &NodeLog {
        &self.logs[node.0 as usize]
    }

    /// Mutable access to one node's log.
    pub fn log_mut(&mut self, node: NodeId) -> &mut NodeLog {
        &mut self.logs[node.0 as usize]
    }

    /// Append to `node`'s log.
    pub fn append(&mut self, node: NodeId, payload: LogPayload) -> Lsn {
        self.log_mut(node).append(payload)
    }

    /// Crash the given nodes' logs (volatile tails vanish).
    pub fn crash(&mut self, nodes: &[NodeId]) {
        for &n in nodes {
            self.log_mut(n).crash();
        }
    }

    /// Iterate over all logs.
    pub fn iter(&self) -> impl Iterator<Item = &NodeLog> {
        self.logs.iter()
    }

    /// Iterate mutably over all logs.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut NodeLog> {
        self.logs.iter_mut()
    }

    /// All records of every node, in (node, lsn) order. Restart recovery
    /// for lost lock-control blocks reconstructs lock state "based on the
    /// log records on all surviving nodes" (§4.2.2); this view (filtered by
    /// the caller to surviving nodes) is that merged log.
    pub fn all_records(&self) -> impl Iterator<Item = &LogRecord> {
        self.logs.iter().flat_map(|l| l.records().iter())
    }

    /// Enable or disable force coalescing on every node's log.
    pub fn set_coalescing(&mut self, on: bool) {
        for l in &mut self.logs {
            l.set_coalescing(on);
        }
    }

    /// Logical durability request for `node`'s log under coalescing: defer
    /// into the pending-force window instead of forcing physically (see
    /// [`NodeLog::request_force_to`]). No crash point is visited — nothing
    /// is written until a later physical force drains the window.
    pub fn request_force_to(&mut self, node: NodeId, lsn: Lsn) -> bool {
        self.log_mut(node).request_force_to(lsn)
    }

    /// Total number of physical forces across all logs.
    pub fn total_forces(&self) -> u64 {
        self.logs.iter().map(|l| l.stats().forces).sum()
    }

    /// Total logical durability requests across all logs (physical forces
    /// plus coalesced requests).
    pub fn total_forces_requested(&self) -> u64 {
        self.logs.iter().map(|l| l.stats().forces_requested).sum()
    }

    /// Total requests absorbed into pending-force windows across all logs.
    pub fn total_forces_coalesced(&self) -> u64 {
        self.logs.iter().map(|l| l.stats().forces_coalesced).sum()
    }

    /// Total records made stable by forces across all logs.
    pub fn total_records_forced(&self) -> u64 {
        self.logs.iter().map(|l| l.stats().records_forced).sum()
    }

    /// Total appended records across all logs.
    pub fn total_appends(&self) -> u64 {
        self.logs.iter().map(|l| l.stats().appends).sum()
    }

    /// Detach `node`'s log into a fresh [`LogSet`] for an execution lane
    /// (see `Machine::lane_split`): the returned set carries the real
    /// [`NodeLog`] for `node` — the lane is that node's sole WAL
    /// appender for the duration of an epoch — and empty sentinel logs
    /// for every other node. A lane append to a foreign log is a
    /// scheduling bug; [`LogSet::lane_merge`] asserts the sentinels came
    /// back untouched.
    pub fn lane_split(&mut self, node: NodeId) -> LogSet {
        let mut lane = LogSet::new(self.logs.len() as u16);
        lane.fault = self.fault.clone();
        std::mem::swap(&mut lane.logs[node.0 as usize], &mut self.logs[node.0 as usize]);
        lane
    }

    /// Reattach the log a lane took with [`LogSet::lane_split`]. Panics
    /// if the lane appended to any log other than its own (the epoch
    /// scheduler admitted a transaction whose footprint was wrong).
    pub fn lane_merge(&mut self, node: NodeId, mut lane: LogSet) {
        assert_eq!(lane.logs.len(), self.logs.len(), "lane log set mismatched");
        for (i, l) in lane.logs.iter().enumerate() {
            if i != node.0 as usize {
                assert!(l.stats().appends == 0, "lane for {node} appended to n{i}'s log");
            }
        }
        std::mem::swap(&mut lane.logs[node.0 as usize], &mut self.logs[node.0 as usize]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smdb_sim::TxnId;

    #[test]
    fn per_node_logs_are_independent() {
        let mut set = LogSet::new(3);
        let t0 = TxnId::new(NodeId(0), 1);
        let t2 = TxnId::new(NodeId(2), 1);
        set.append(NodeId(0), LogPayload::Begin { txn: t0 });
        set.append(NodeId(2), LogPayload::Begin { txn: t2 });
        assert_eq!(set.log(NodeId(0)).len(), 1);
        assert_eq!(set.log(NodeId(1)).len(), 0);
        assert_eq!(set.log(NodeId(2)).len(), 1);
        assert_eq!(set.total_appends(), 2);
    }

    #[test]
    fn crash_hits_only_named_nodes() {
        let mut set = LogSet::new(2);
        let t0 = TxnId::new(NodeId(0), 1);
        let t1 = TxnId::new(NodeId(1), 1);
        set.append(NodeId(0), LogPayload::Begin { txn: t0 });
        set.append(NodeId(1), LogPayload::Begin { txn: t1 });
        set.crash(&[NodeId(0)]);
        assert!(set.log(NodeId(0)).is_empty());
        assert_eq!(set.log(NodeId(1)).len(), 1);
    }

    #[test]
    fn all_records_merges_logs() {
        let mut set = LogSet::new(2);
        set.append(NodeId(0), LogPayload::Checkpoint);
        set.append(NodeId(1), LogPayload::Checkpoint);
        set.append(NodeId(1), LogPayload::Checkpoint);
        assert_eq!(set.all_records().count(), 3);
    }
}
