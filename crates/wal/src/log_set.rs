//! The collection of all nodes' logs.

use crate::lsn::Lsn;
use crate::record::{LogPayload, LogRecord, NodeLog};
use smdb_sim::NodeId;

/// All per-node logs of the machine, indexed by [`NodeId`].
#[derive(Clone, Debug)]
pub struct LogSet {
    logs: Vec<NodeLog>,
}

impl LogSet {
    /// Create one empty log per node.
    pub fn new(nodes: u16) -> Self {
        LogSet { logs: (0..nodes).map(|n| NodeLog::new(NodeId(n))).collect() }
    }

    /// Number of logs (== number of nodes).
    pub fn len(&self) -> usize {
        self.logs.len()
    }

    /// Whether there are no logs.
    pub fn is_empty(&self) -> bool {
        self.logs.is_empty()
    }

    /// Immutable access to one node's log.
    pub fn log(&self, node: NodeId) -> &NodeLog {
        &self.logs[node.0 as usize]
    }

    /// Mutable access to one node's log.
    pub fn log_mut(&mut self, node: NodeId) -> &mut NodeLog {
        &mut self.logs[node.0 as usize]
    }

    /// Append to `node`'s log.
    pub fn append(&mut self, node: NodeId, payload: LogPayload) -> Lsn {
        self.log_mut(node).append(payload)
    }

    /// Crash the given nodes' logs (volatile tails vanish).
    pub fn crash(&mut self, nodes: &[NodeId]) {
        for &n in nodes {
            self.log_mut(n).crash();
        }
    }

    /// Iterate over all logs.
    pub fn iter(&self) -> impl Iterator<Item = &NodeLog> {
        self.logs.iter()
    }

    /// Iterate mutably over all logs.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut NodeLog> {
        self.logs.iter_mut()
    }

    /// All records of every node, in (node, lsn) order. Restart recovery
    /// for lost lock-control blocks reconstructs lock state "based on the
    /// log records on all surviving nodes" (§4.2.2); this view (filtered by
    /// the caller to surviving nodes) is that merged log.
    pub fn all_records(&self) -> impl Iterator<Item = &LogRecord> {
        self.logs.iter().flat_map(|l| l.records().iter())
    }

    /// Total number of physical forces across all logs.
    pub fn total_forces(&self) -> u64 {
        self.logs.iter().map(|l| l.stats().forces).sum()
    }

    /// Total appended records across all logs.
    pub fn total_appends(&self) -> u64 {
        self.logs.iter().map(|l| l.stats().appends).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smdb_sim::TxnId;

    #[test]
    fn per_node_logs_are_independent() {
        let mut set = LogSet::new(3);
        let t0 = TxnId::new(NodeId(0), 1);
        let t2 = TxnId::new(NodeId(2), 1);
        set.append(NodeId(0), LogPayload::Begin { txn: t0 });
        set.append(NodeId(2), LogPayload::Begin { txn: t2 });
        assert_eq!(set.log(NodeId(0)).len(), 1);
        assert_eq!(set.log(NodeId(1)).len(), 0);
        assert_eq!(set.log(NodeId(2)).len(), 1);
        assert_eq!(set.total_appends(), 2);
    }

    #[test]
    fn crash_hits_only_named_nodes() {
        let mut set = LogSet::new(2);
        let t0 = TxnId::new(NodeId(0), 1);
        let t1 = TxnId::new(NodeId(1), 1);
        set.append(NodeId(0), LogPayload::Begin { txn: t0 });
        set.append(NodeId(1), LogPayload::Begin { txn: t1 });
        set.crash(&[NodeId(0)]);
        assert!(set.log(NodeId(0)).is_empty());
        assert_eq!(set.log(NodeId(1)).len(), 1);
    }

    #[test]
    fn all_records_merges_logs() {
        let mut set = LogSet::new(2);
        set.append(NodeId(0), LogPayload::Checkpoint);
        set.append(NodeId(1), LogPayload::Checkpoint);
        set.append(NodeId(1), LogPayload::Checkpoint);
        assert_eq!(set.all_records().count(), 3);
    }
}
