//! # smdb-wal — write-ahead logging for the shared-memory database
//!
//! Implements the logging machinery of the paper's system model (§2, §4.1.1,
//! §6):
//!
//! * **Per-node logs** ([`NodeLog`]): each node maintains its own log. The
//!   tail is *volatile* (it lives in the node's cache, aligned so it never
//!   migrates — §2) and is destroyed by a crash of that node; the *stable
//!   prefix* has been forced to a shared disk and survives all crashes.
//! * **Log records** ([`LogRecord`]/[`LogPayload`]): physical undo/redo
//!   images for record updates, logical records for lock acquisition and
//!   release (*including read locks* — a distinguishing IFA overhead, §7
//!   Table 1), index operations, early-committed structural changes
//!   (nested top-level actions, §4.2), and transaction control records.
//! * **WAL enforcement state** ([`PageLsnTable`]): the shared-memory
//!   (page, node) → LSN table of §6 that tells the buffer manager which
//!   nodes must force their logs before a page may be flushed.
//! * **Checkpoints** ([`CheckpointStore`]): sharp checkpoints bounding how
//!   far back restart recovery must scan.
//!
//! Note on fidelity: the paper stores each volatile log in cache lines that
//! are *guaranteed never to migrate* ("a cache line which contains local
//! log information stores no other sharable information"). Since such lines
//! can never be observed by another node nor survive the owner's crash,
//! modelling them as a per-node vector destroyed on crash is observationally
//! identical and avoids burning simulated-cache space; the simulated cost
//! of log appends and forces is still charged via the cost model.

mod checkpoint;
mod log_set;
mod lsn;
mod page_lsn;
mod record;

mod lbm;

pub use checkpoint::{CheckpointMeta, CheckpointStore};
pub use lbm::LbmMode;
pub use log_set::{LogSet, FAULT_CHECKPOINT_RECORD, FAULT_FORCE_RECORD, FAULT_TRUNCATE};
pub use lsn::Lsn;
pub use page_lsn::PageLsnTable;
pub use record::{
    CommitDep, LockModeRepr, LogIndex, LogPayload, LogRecord, NodeLog, NodeLogStats, RecId,
    StructuralKind,
};
