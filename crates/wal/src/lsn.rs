//! Log sequence numbers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A log sequence number, monotonically increasing *per node log*.
///
/// LSNs are node-local: each node numbers its own log records starting at 1
/// (paper §2 — each node maintains a log). `Lsn::ZERO` means "before any
/// record".
#[derive(Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Lsn(pub u64);

impl Lsn {
    /// Before the first record of any log.
    pub const ZERO: Lsn = Lsn(0);

    /// The next LSN in sequence.
    pub fn next(self) -> Lsn {
        Lsn(self.0 + 1)
    }

    /// Whether this LSN refers to an actual record.
    pub fn is_real(self) -> bool {
        self.0 > 0
    }
}

impl fmt::Debug for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lsn:{}", self.0)
    }
}

impl fmt::Display for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_not_real() {
        assert!(!Lsn::ZERO.is_real());
        assert!(Lsn::ZERO.next().is_real());
    }

    #[test]
    fn ordering() {
        assert!(Lsn(1) < Lsn(2));
        assert_eq!(Lsn(3).next(), Lsn(4));
    }
}
