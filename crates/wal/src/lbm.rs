//! Logging-Before-Migration policy selection (§4.1.1, §5).

use serde::{Deserialize, Serialize};

/// Which LBM (Logging Before Migration) policy the engine enforces.
///
/// All three guarantee that, before an uncommitted update migrates to
/// another node, log records sufficient for recovery exist; they differ in
/// *where* those records must reside at migration time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum LbmMode {
    /// **Volatile LBM** (§5.1): the undo/redo log record is written to the
    /// node's volatile log inside the line-lock critical section of the
    /// update, before the line can migrate. No forcing beyond commit.
    Volatile,
    /// **Stable LBM, eager variant** (§5.2): the log is forced as part of
    /// every update protocol — correct but very expensive ("a log force is
    /// performed on each update, regardless of whether the cache line ever
    /// migrates").
    StableEager,
    /// **Stable LBM, trigger-based variant** (§5.2): updated lines carry an
    /// *active bit*; the log force is deferred to the latest admissible
    /// point — the downgrade or invalidation of the active line by another
    /// node's access. Requires the one-bit-per-line coherence extension the
    /// paper proposes (provided by `smdb-sim`).
    StableTriggered,
}

impl LbmMode {
    /// Whether this policy uses the per-line active bit and coherence
    /// triggers.
    pub fn uses_triggers(self) -> bool {
        matches!(self, LbmMode::StableTriggered)
    }

    /// Whether this policy forces the log on every update.
    pub fn forces_eagerly(self) -> bool {
        matches!(self, LbmMode::StableEager)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification() {
        assert!(LbmMode::StableTriggered.uses_triggers());
        assert!(!LbmMode::Volatile.uses_triggers());
        assert!(LbmMode::StableEager.forces_eagerly());
        assert!(!LbmMode::StableTriggered.forces_eagerly());
    }
}
