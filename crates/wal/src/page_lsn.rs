//! The shared-memory (page, LSN) table enforcing WAL under Volatile LBM.
//!
//! Paper §6: *"Each updating node remembers an LSN equal to its last update
//! to page p. Page p can be written to the StableDB only after all nodes
//! which have updated p have forced their logs up to this LSN. The
//! determination of whether any other node is required to force its log can
//! be computed very fast by maintaining this table of (page,LSN) pairs in
//! shared memory. Recovery problems for this table can be avoided since
//! this information is written only by the local node, and, in the event of
//! a node crash, will be reinitialized on the crashed node."*

use crate::lsn::Lsn;
use smdb_sim::NodeId;
use smdb_storage::PageId;
use std::collections::BTreeMap;

/// Tracks, per page, the last update LSN of every node that has updated it
/// since the page was last flushed.
#[derive(Clone, Debug, Default)]
pub struct PageLsnTable {
    entries: BTreeMap<(PageId, NodeId), Lsn>,
}

impl PageLsnTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `node` updated `page` with a log record at `lsn`.
    pub fn note_update(&mut self, page: PageId, node: NodeId, lsn: Lsn) {
        let e = self.entries.entry((page, node)).or_insert(Lsn::ZERO);
        if lsn > *e {
            *e = lsn;
        }
    }

    /// The per-node force requirements before `page` may be flushed: every
    /// `(node, lsn)` pair returned must satisfy `stable_lsn(node) >= lsn`.
    pub fn flush_requirements(&self, page: PageId) -> Vec<(NodeId, Lsn)> {
        self.entries
            .range((page, NodeId(0))..=(page, NodeId(u16::MAX)))
            .map(|(&(_, n), &l)| (n, l))
            .collect()
    }

    /// Clear all entries for a page (after it has been flushed).
    pub fn page_flushed(&mut self, page: PageId) {
        self.entries.retain(|&(p, _), _| p != page);
    }

    /// Reinitialize a crashed node's entries (its updates are being rolled
    /// back or redone by recovery; the stale LSNs are meaningless).
    pub fn clear_node(&mut self, node: NodeId) {
        self.entries.retain(|&(_, n), _| n != node);
    }

    /// All pages any node has updated since their last flush (the dirty
    /// page set from the WAL table's point of view).
    pub fn dirty_pages(&self) -> Vec<PageId> {
        let mut pages: Vec<PageId> = self.entries.keys().map(|&(p, _)| p).collect();
        pages.dedup();
        pages
    }

    /// Fold an execution lane's table into this one at an epoch barrier:
    /// per `(page, node)` key, keep the larger LSN. Max-merge commutes,
    /// so the merge order of sibling lanes cannot change the result.
    pub fn absorb(&mut self, other: &PageLsnTable) {
        for (&k, &lsn) in &other.entries {
            let e = self.entries.entry(k).or_insert(Lsn::ZERO);
            if lsn > *e {
                *e = lsn;
            }
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requirements_track_max_lsn_per_node() {
        let mut t = PageLsnTable::new();
        t.note_update(PageId(1), NodeId(0), Lsn(3));
        t.note_update(PageId(1), NodeId(0), Lsn(7));
        t.note_update(PageId(1), NodeId(0), Lsn(5)); // lower: ignored
        t.note_update(PageId(1), NodeId(2), Lsn(1));
        let req = t.flush_requirements(PageId(1));
        assert_eq!(req, vec![(NodeId(0), Lsn(7)), (NodeId(2), Lsn(1))]);
    }

    #[test]
    fn pages_are_isolated() {
        let mut t = PageLsnTable::new();
        t.note_update(PageId(1), NodeId(0), Lsn(3));
        t.note_update(PageId(2), NodeId(1), Lsn(9));
        assert_eq!(t.flush_requirements(PageId(1)), vec![(NodeId(0), Lsn(3))]);
        assert_eq!(t.flush_requirements(PageId(2)), vec![(NodeId(1), Lsn(9))]);
        assert_eq!(t.flush_requirements(PageId(3)), vec![]);
    }

    #[test]
    fn flush_clears_page_entries() {
        let mut t = PageLsnTable::new();
        t.note_update(PageId(1), NodeId(0), Lsn(3));
        t.note_update(PageId(2), NodeId(0), Lsn(4));
        t.page_flushed(PageId(1));
        assert!(t.flush_requirements(PageId(1)).is_empty());
        assert_eq!(t.dirty_pages(), vec![PageId(2)]);
    }

    #[test]
    fn crashed_node_entries_reinitialized() {
        let mut t = PageLsnTable::new();
        t.note_update(PageId(1), NodeId(0), Lsn(3));
        t.note_update(PageId(1), NodeId(1), Lsn(5));
        t.clear_node(NodeId(1));
        assert_eq!(t.flush_requirements(PageId(1)), vec![(NodeId(0), Lsn(3))]);
    }
}
