//! Integration tests for the schedule fuzzer itself (DESIGN.md §13):
//! replay determinism, shrinker soundness, and one named regression per
//! engine bug the fuzzer found — each asserts that the shrunk repro line
//! the fuzzer emitted at discovery time now passes all oracles.

use smdb_vopr::{draw_plan, replay_line, replay_line_with, run_schedule, SchedInput, VoprConfig};
use std::collections::BTreeSet;

/// Two recordings of the same seed must be byte-identical, and replaying
/// the recorded tape must reproduce the run exactly. This is the fuzzer's
/// foundational property: without it, repro lines are worthless.
#[test]
fn replay_is_deterministic() {
    for seed in [0xC0DEu64, 0x17293b09efde3a51, 0xd04f5fd560e27ddd] {
        let cfg = VoprConfig::draw(seed);
        let plan = draw_plan(seed);
        let skip = BTreeSet::new();
        let a = run_schedule(&cfg, seed, &skip, &plan, SchedInput::Record(seed));
        let b = run_schedule(&cfg, seed, &skip, &plan, SchedInput::Record(seed));
        assert_eq!(a.events, b.events, "seed {seed:#x}: recorded events diverged");
        assert_eq!(a.tape, b.tape, "seed {seed:#x}: recorded tapes diverged");
        assert_eq!(a.failure, b.failure, "seed {seed:#x}: verdicts diverged");
        let c = run_schedule(&cfg, seed, &skip, &plan, SchedInput::Replay(a.tape.clone()));
        assert_eq!(a.events, c.events, "seed {seed:#x}: tape replay diverged from recording");
        assert_eq!(a.failure, c.failure, "seed {seed:#x}: tape replay verdict diverged");
        assert_eq!(a.committed, c.committed, "seed {seed:#x}: tape replay commits diverged");
    }
}

/// Shrinker soundness, tested with a canary oracle that the engine cannot
/// fix: every schedule fails, and whatever the shrinker keeps must still
/// reproduce the *same* oracle under byte-identical replay of the line.
#[test]
fn shrinker_output_still_reproduces() {
    let canary: &dyn Fn(&mut smdb_core::SmDb, u64) -> Result<(), String> = &|_db, committed| {
        if committed >= 2 {
            Err(format!("canary tripped at {committed} commits"))
        } else {
            Ok(())
        }
    };
    let mut lines = Vec::new();
    smdb_vopr::fuzz_with(0xCAFE, 3, 60, Some(canary), &mut |f| {
        assert_eq!(f.oracle, "canary", "unexpected oracle {}", f.oracle);
        lines.push(f.line.clone());
    });
    assert!(!lines.is_empty(), "canary oracle should fail some schedule");
    for line in &lines {
        let report = replay_line_with(line, Some(canary))
            .unwrap_or_else(|e| panic!("shrunk line {line:?} does not parse: {e}"));
        assert!(report.reproduced, "shrunk line no longer reproduces its verdict: {line}");
    }
}

/// Replay a repro line the fuzzer emitted when it found a (now fixed)
/// engine bug, and assert the schedule passes every oracle today.
fn assert_repro_fixed(line: &str) {
    let report = replay_line(line).expect("repro line parses");
    assert!(
        report.outcome.failure.is_none(),
        "regression: {line}\n  failed {:?}",
        report.outcome.failure
    );
    assert!(!report.reproduced, "line should no longer reproduce: {line}");
}

/// ELR predecessor/successor pending-write ambiguity: under early lock
/// release both a committing predecessor and its successor can hold
/// pending writes on one slot; the oracle must accept either value.
#[test]
fn regression_elr_pending_write_ambiguity() {
    assert_repro_fixed(
        "VOPR seed=0x12879fa94cefe854 cfg=p:SE,n:5,t:11,o:6,rf:0,sh:30,ss:4,zf:0,ix:0,ck:0,w:6,d:3,elr:1,co:0 skip=0,1,2,3,4,5,6,7,8 sched=23 plan=- oracle=IFA",
    );
    assert_repro_fixed(
        "VOPR seed=0x8056e5c0756a3d4 cfg=p:ST,n:4,t:8,o:6,rf:0,sh:100,ss:16,zf:95,ix:0,ck:0,w:6,d:0,elr:1,co:1 skip=0,1,2,3,4,5 sched=- plan=- oracle=IFA",
    );
}

/// LCB-array backpressure: a full holder array with a compatible grant
/// must park the requester as a waiter, not error with CapacityExceeded.
#[test]
fn regression_lcb_backpressure_capacity() {
    assert_repro_fixed(
        "VOPR seed=0x3b823cb606bb2d52 cfg=p:SE,n:3,t:10,o:5,rf:50,sh:60,ss:4,zf:95,ix:0,ck:3,w:6,d:0,elr:1,co:1 skip=0,5,6,7,8,9 sched=- plan=- oracle=engine-error",
    );
}

/// Settled-aborted re-undo: a still-down node's stable log is re-analysed
/// on every later recovery; updates of a transaction the txn table already
/// records as Aborted must not re-enter the undo-candidate sets, or the
/// old undo tramples live re-writes of the same slots.
#[test]
fn regression_settled_aborted_not_reundone() {
    assert_repro_fixed(
        "VOPR seed=0xf8f0592ae1c2fcde cfg=p:ST,n:4,t:11,o:5,rf:0,sh:60,ss:32,zf:95,ix:0,ck:5,w:6,d:0,elr:0,co:1 skip=2,4,5,6,7,8,9,10 sched=- plan=sim.migrate#9+core.commit.dep#0 oracle=IFA",
    );
}

/// Orphaned overflow LCB line: when checkpoint truncation reclaims the
/// `LockSpaceAlloc` structural record, lock recovery must fall back on the
/// shared-memory overflow registration list to relink the parent's
/// overflow pointer — and reinstall the *parent* too if it died.
#[test]
fn regression_overflow_relink_survives_truncation() {
    assert_repro_fixed(
        "VOPR seed=0xd04f5fd560e27ddd cfg=p:ST,n:3,t:10,o:6,rf:50,sh:30,ss:16,zf:0,ix:0,ck:3,w:4,d:2,elr:1,co:1 skip=- sched=00000000000000000000000000001000022 plan=core.commit.dep#7 oracle=lock-chains",
    );
}

/// Redo must re-mark pages in the WAL table: the crash wipes the crashed
/// node's Page-LSN entries, and a redone page that stays "clean" lets the
/// next checkpoint advance the redo bound without flushing it — a second
/// crash then loses committed data.
#[test]
fn regression_redo_remarks_wal_table() {
    assert_repro_fixed(
        "VOPR seed=0xeb3f784cabff9521 cfg=p:VRA,n:4,t:8,o:2,rf:20,sh:0,ss:32,zf:95,ix:0,ck:5,w:2,d:2,elr:1,co:0 skip=- sched=0000002001 plan=core.commit.dep#3+core.commit#4 oracle=IFA",
    );
    assert_repro_fixed(
        "VOPR seed=0x95584bd6ed606e89 cfg=p:VRA,n:2,t:12,o:4,rf:50,sh:0,ss:4,zf:0,ix:0,ck:3,w:2,d:3,elr:0,co:0 skip=1,2,3,4,5 sched=0100001 plan=storage.flush.line#6+core.commit.dep#4 oracle=IFA",
    );
    assert_repro_fixed(
        "VOPR seed=0x1506568a5a4f0989 cfg=p:SE,n:3,t:16,o:4,rf:0,sh:0,ss:16,zf:95,ix:0,ck:5,w:1,d:0,elr:0,co:0 skip=- sched=- plan=storage.flush.line#1+wal.checkpoint.record#2 oracle=IFA",
    );
}

/// Out-of-order pipelined commit settle: per-node force acks can settle
/// two dependent ELR commits in either order; the shadow oracle must apply
/// committed writes in *write* order (the physical last-writer-wins
/// truth), not commit-settle order.
#[test]
fn regression_shadow_commit_write_order() {
    assert_repro_fixed(
        "VOPR seed=0x17293b09efde3a51 cfg=p:VRA,n:3,t:12,o:4,rf:0,sh:30,ss:4,zf:95,ix:0,ck:3,w:4,d:0,elr:1,co:1 skip=0,1,2,3,5,6,7,8,11 sched=- plan=wal.force.record#20 oracle=IFA",
    );
}

/// Empty-plan drain window: an instant recovery whose deferred *redo*
/// plan is empty can still owe deferred lost-line reinstalls (the lost
/// lines' last committed updates were already flushed, so nothing needs
/// redo — but the lines are gone from every surviving cache). The window
/// must stay open (`redo_pending > 0`) until they are resident again:
/// both repros crashed a later checkpoint's raw full-page flush on a
/// still-lost line after the drain loops had already gone idle.
#[test]
fn regression_empty_plan_window_still_reinstalls_lost_lines() {
    assert_repro_fixed(
        "VOPR seed=0x53 cfg=p:VSR,n:3,t:12,o:5,rf:20,sh:30,ss:16,zf:0,ix:0,ck:3,w:2,d:3,elr:0,co:0,ir:1 skip=2,3,6,7,8 sched=1200000001 plan=sim.invalidate#10 oracle=engine-error",
    );
    assert_repro_fixed(
        "VOPR seed=0x60 cfg=p:SE,n:4,t:16,o:6,rf:50,sh:60,ss:32,zf:0,ix:50,ck:3,w:1,d:0,elr:0,co:1,ir:1 skip=1,5,6,7,10,14 sched=- plan=sim.migrate#5+wal.truncate#3 oracle=engine-error",
    );
}

/// A fixed-seed battery with instant restart forced on: every schedule
/// whose fault plan fires recovers open-early, the driver retires the
/// deferred redo between rounds, and all standing oracles hold through
/// and after the drain window. Seed 0x3d's plan lands its second crash
/// on `restart.redo.background#0` — the draining node itself dies
/// mid-batch and the second recovery re-derives the plan.
#[test]
fn fixed_seed_instant_battery_is_green() {
    let skip = BTreeSet::new();
    for seed in [0x1u64, 0x27, 0x3d, 0x5e] {
        let mut cfg = VoprConfig::draw(seed);
        cfg.instant = true;
        let plan = draw_plan(seed);
        let run = run_schedule(&cfg, seed, &skip, &plan, SchedInput::Record(seed));
        assert!(
            !run.fired.is_empty(),
            "seed {seed:#x}: battery seed no longer fires its plan {plan:?}"
        );
        assert!(
            run.failure.is_none(),
            "seed {seed:#x} cfg={} failed: {:?}",
            cfg.encode(),
            run.failure
        );
    }
}

/// The multicore-preamble knob: `mt:1` scenarios run an epoch-scheduled
/// batch before the interactive rounds. The preamble's admission
/// deferrals draw from the shared tape, so recording and replay must
/// stay byte-identical, and every standing oracle must hold on the
/// merged post-epoch state — including across the crashes the
/// interactive phase then injects.
#[test]
fn fixed_seed_mt_battery_is_green() {
    let skip = BTreeSet::new();
    let mut deferred_somewhere = false;
    for seed in [0x2u64, 0x11, 0x42, 0x7c] {
        let mut cfg = VoprConfig::draw(seed);
        cfg.mt = true;
        cfg.elr = false; // the epoch scheduler excludes early lock release
        let plan = draw_plan(seed);
        let a = run_schedule(&cfg, seed, &skip, &plan, SchedInput::Record(seed));
        assert!(
            a.events.first().is_some_and(|e| e.starts_with("mt ")),
            "seed {seed:#x}: preamble event missing from {:?}",
            a.events.first()
        );
        assert!(a.failure.is_none(), "seed {seed:#x} cfg={} failed: {:?}", cfg.encode(), a.failure);
        let b = run_schedule(&cfg, seed, &skip, &plan, SchedInput::Replay(a.tape.clone()));
        assert_eq!(a.events, b.events, "seed {seed:#x}: mt replay diverged from recording");
        assert_eq!(a.committed, b.committed, "seed {seed:#x}: mt replay commits diverged");
        deferred_somewhere |= a.events[0].split(" d").nth(1) != Some("0");
    }
    assert!(deferred_somewhere, "no battery seed ever exercised a tape deferral");
}

/// A bounded fixed-seed fuzz sweep stays green (the CI smoke). Kept small
/// so `cargo test` stays fast; scripts/fuzz.sh runs the larger budgets.
#[test]
fn fixed_seed_smoke_sweep_is_green() {
    let out = smdb_vopr::fuzz(0xC0DE, 20, 100);
    assert_eq!(out.schedules, 20);
    for f in &out.failures {
        eprintln!("{}", f.line);
    }
    assert!(out.passed(), "{} schedules failed", out.failures.len());
}
