//! Auto-shrinking: reduce a failing schedule to a minimal repro along
//! three axes, accepting a candidate only if it still fails the *same*
//! oracle.
//!
//! The shrink lattice:
//! 1. **Drop fault-plan points** — a nested failure that reproduces with
//!    one (or zero) crash points is a much smaller repro.
//! 2. **Drop transactions** — ddmin-style over the transaction index set:
//!    halving chunks first, then single indices. Per-transaction op
//!    streams derive from `(seed, index)` alone, so dropping one
//!    transaction leaves the others' operations untouched.
//! 3. **Collapse the tape toward round-robin** — zero out chunks of
//!    schedule choices (replay treats 0 as the historical order), then
//!    truncate trailing zeros (replay past the tape end pads with 0).
//!
//! The axes interact (a dropped transaction changes how many decisions
//! the run makes), so the pass iterates to a fixpoint under a bounded run
//! budget.

use crate::config::VoprConfig;
use crate::driver::{run_schedule_with, ExtraOracle, RunOutcome, SchedInput};
use crate::repro::Repro;
use smdb_fault::{CrashPoint, FaultPlan};
use std::collections::BTreeSet;

/// Shrink statistics.
#[derive(Clone, Debug, Default)]
pub struct ShrinkStats {
    /// Candidate runs executed.
    pub runs: u64,
    /// Candidates that still failed the same oracle (accepted).
    pub accepted: u64,
}

struct Shrinker<'a> {
    cfg: VoprConfig,
    seed: u64,
    oracle: String,
    extra: Option<ExtraOracle<'a>>,
    budget: u64,
    stats: ShrinkStats,
}

impl Shrinker<'_> {
    /// Does this candidate still fail the same oracle?
    fn still_fails(
        &mut self,
        skip: &BTreeSet<usize>,
        plan: &[(&'static str, u64)],
        tape: &[u32],
    ) -> bool {
        if self.stats.runs >= self.budget {
            return false;
        }
        self.stats.runs += 1;
        let fp = FaultPlan { points: plan.iter().map(|&(s, h)| CrashPoint::new(s, h)).collect() };
        let out = run_schedule_with(
            &self.cfg,
            self.seed,
            skip,
            &fp,
            SchedInput::Replay(tape.to_vec()),
            self.extra,
        );
        let same = out.failed_oracle() == Some(self.oracle.as_str());
        if same {
            self.stats.accepted += 1;
        }
        same
    }
}

/// Shrink a failing run to a minimal repro. `outcome` must be the failing
/// [`RunOutcome`] of `(cfg, seed, plan)` recorded with its tape; `budget`
/// bounds the number of candidate replays. Returns the shrunk [`Repro`]
/// (worst case: the original, unshrunk) plus statistics.
pub fn shrink(
    cfg: &VoprConfig,
    seed: u64,
    plan: &FaultPlan,
    outcome: &RunOutcome,
    budget: u64,
    extra: Option<ExtraOracle<'_>>,
) -> (Repro, ShrinkStats) {
    let oracle = outcome.failed_oracle().unwrap_or("?").to_string();
    let mut sh = Shrinker {
        cfg: cfg.clone(),
        seed,
        oracle: oracle.clone(),
        extra,
        budget,
        stats: ShrinkStats::default(),
    };
    let mut skip: BTreeSet<usize> = BTreeSet::new();
    let mut plan_pts: Vec<(&'static str, u64)> =
        plan.points.iter().map(|p| (p.site, p.hit)).collect();
    let mut tape: Vec<u32> = outcome.tape.clone();

    loop {
        let mut changed = false;

        // Axis 1: drop fault-plan points, last first (the nested point is
        // the most likely to be irrelevant).
        let mut i = plan_pts.len();
        while i > 0 {
            i -= 1;
            let mut cand = plan_pts.clone();
            cand.remove(i);
            if sh.still_fails(&skip, &cand, &tape) {
                plan_pts = cand;
                changed = true;
            }
        }

        // Axis 2: ddmin-lite over transaction indices: halving chunks,
        // then singles.
        let live: Vec<usize> = (0..cfg.txns).filter(|i| !skip.contains(i)).collect();
        let mut chunk = live.len().div_ceil(2).max(1);
        while chunk >= 1 {
            let live_now: Vec<usize> = (0..cfg.txns).filter(|i| !skip.contains(i)).collect();
            if live_now.is_empty() {
                break;
            }
            let mut start = 0;
            while start < live_now.len() {
                let cand_skip: BTreeSet<usize> = skip
                    .iter()
                    .copied()
                    .chain(live_now[start..(start + chunk).min(live_now.len())].iter().copied())
                    .collect();
                if cand_skip.len() < cfg.txns && sh.still_fails(&cand_skip, &plan_pts, &tape) {
                    skip = cand_skip;
                    changed = true;
                }
                start += chunk;
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }

        // Axis 3a: zero tape chunks (collapse decisions to round-robin).
        let mut chunk = tape.len().div_ceil(2).max(1);
        while chunk >= 1 && !tape.is_empty() {
            let mut start = 0;
            while start < tape.len() {
                let end = (start + chunk).min(tape.len());
                if tape[start..end].iter().any(|&v| v != 0) {
                    let mut cand = tape.clone();
                    cand[start..end].fill(0);
                    if sh.still_fails(&skip, &plan_pts, &cand) {
                        tape = cand;
                        changed = true;
                    }
                }
                start += chunk;
            }
            if chunk == 1 {
                break;
            }
            chunk /= 2;
        }
        // Axis 3b: truncate trailing zeros (replay pads with 0 anyway).
        let tail = tape.iter().rposition(|&v| v != 0).map_or(0, |p| p + 1);
        if tail < tape.len() {
            tape.truncate(tail);
            // No replay needed: zero-padding makes this semantically
            // identical to the pre-truncation tape.
        }

        if !changed || sh.stats.runs >= budget {
            break;
        }
    }

    let repro = Repro {
        seed,
        cfg: cfg.encode(),
        skip: skip.into_iter().collect(),
        tape,
        plan: plan_pts,
        oracle,
    };
    (repro, sh.stats)
}
