//! One-line repro serialization.
//!
//! A failing schedule collapses into a single copy-pasteable line:
//!
//! ```text
//! VOPR seed=0x1234 cfg=p:SE,n:4,... skip=1,5 sched=0120(41)3 plan=sim.migrate#3+recovery.phase#0 oracle=IFA
//! ```
//!
//! `seed` is the schedule seed (per-transaction operation streams derive
//! from it), `cfg` the scenario ([`VoprConfig`]), `skip` the transaction
//! indices the shrinker dropped, `sched` the schedule tape (one base-36
//! digit per decision; values ≥ 36 parenthesized in decimal; `-` for an
//! empty tape), and `plan` the fault plan (`-` for none). `oracle` names
//! the oracle the line was observed to fail — informational, so a replay
//! can confirm it reproduces the *same* failure.

use crate::config::VoprConfig;
use smdb_fault::{CrashPoint, FaultPlan};

/// Every crash-point site the stack exposes, by name. Fault plans are
/// drawn from — and repro lines parsed against — this catalog; it must
/// stay in sync with the `FAULT_*` constants of the instrumented crates.
pub const FAULT_SITES: [&str; 11] = [
    smdb_sim::FAULT_MIGRATE,
    smdb_sim::FAULT_INVALIDATE,
    smdb_wal::FAULT_FORCE_RECORD,
    smdb_wal::FAULT_CHECKPOINT_RECORD,
    smdb_wal::FAULT_TRUNCATE,
    smdb_storage::FAULT_FLUSH_LINE,
    smdb_core::FAULT_COMMIT,
    smdb_core::FAULT_COMMIT_DEP,
    smdb_core::FAULT_RECOVERY_PHASE,
    smdb_core::FAULT_REDO_ON_DEMAND,
    smdb_core::FAULT_REDO_BACKGROUND,
];

/// Resolve a site name to its `&'static str` catalog entry (the injector
/// matches sites by pointer-compatible static names).
pub fn site_by_name(name: &str) -> Option<&'static str> {
    FAULT_SITES.iter().copied().find(|s| *s == name)
}

/// A complete, self-contained repro: everything needed to replay one
/// schedule byte-identically.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Repro {
    /// Schedule seed (drives per-transaction op streams).
    pub seed: u64,
    /// Scenario encoding (see [`VoprConfig::encode`]).
    pub cfg: String,
    /// Transaction indices the driver skips (shrinker output).
    pub skip: Vec<usize>,
    /// The schedule tape.
    pub tape: Vec<u32>,
    /// The fault plan, as `(site, ordinal)` pairs in fire order.
    pub plan: Vec<(&'static str, u64)>,
    /// Name of the oracle this repro fails (informational).
    pub oracle: String,
}

const B36: &[u8; 36] = b"0123456789abcdefghijklmnopqrstuvwxyz";

/// Encode a schedule tape: one base-36 digit per entry, parenthesized
/// decimal for values ≥ 36, `-` when empty.
pub fn encode_tape(tape: &[u32]) -> String {
    if tape.is_empty() {
        return "-".into();
    }
    let mut out = String::with_capacity(tape.len());
    for &v in tape {
        if v < 36 {
            out.push(B36[v as usize] as char);
        } else {
            out.push_str(&format!("({v})"));
        }
    }
    out
}

/// Parse the [`encode_tape`] form.
pub fn decode_tape(s: &str) -> Result<Vec<u32>, String> {
    if s == "-" {
        return Ok(Vec::new());
    }
    let mut out = Vec::new();
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c == '(' {
            let digits: String = chars.by_ref().take_while(|&d| d != ')').collect();
            out.push(digits.parse::<u32>().map_err(|_| format!("bad tape run ({digits}"))?);
        } else if let Some(v) = B36.iter().position(|&b| b as char == c) {
            out.push(v as u32);
        } else {
            return Err(format!("bad tape digit {c:?}"));
        }
    }
    Ok(out)
}

/// Encode a fault plan as `site#hit+site#hit`, `-` when empty.
pub fn encode_plan(plan: &[(&'static str, u64)]) -> String {
    if plan.is_empty() {
        return "-".into();
    }
    plan.iter().map(|(s, h)| format!("{s}#{h}")).collect::<Vec<_>>().join("+")
}

/// Parse the [`encode_plan`] form against the site catalog.
pub fn decode_plan(s: &str) -> Result<Vec<(&'static str, u64)>, String> {
    if s == "-" {
        return Ok(Vec::new());
    }
    s.split('+')
        .map(|p| {
            let (site, hit) = p.split_once('#').ok_or_else(|| format!("bad plan point {p:?}"))?;
            let site = site_by_name(site).ok_or_else(|| format!("unknown fault site {site:?}"))?;
            let hit = hit.parse::<u64>().map_err(|_| format!("bad plan ordinal {p:?}"))?;
            Ok((site, hit))
        })
        .collect()
}

impl Repro {
    /// The injector plan this repro arms.
    pub fn fault_plan(&self) -> FaultPlan {
        FaultPlan { points: self.plan.iter().map(|&(s, h)| CrashPoint::new(s, h)).collect() }
    }

    /// The scenario this repro runs.
    pub fn config(&self) -> Result<VoprConfig, String> {
        VoprConfig::decode(&self.cfg)
    }

    /// Serialize to the one-line form.
    pub fn to_line(&self) -> String {
        let skip = if self.skip.is_empty() {
            "-".into()
        } else {
            self.skip.iter().map(|i| i.to_string()).collect::<Vec<_>>().join(",")
        };
        format!(
            "VOPR seed={:#x} cfg={} skip={} sched={} plan={} oracle={}",
            self.seed,
            self.cfg,
            skip,
            encode_tape(&self.tape),
            encode_plan(&self.plan),
            if self.oracle.is_empty() { "?" } else { &self.oracle },
        )
    }

    /// Parse a [`Repro::to_line`] line (leading/trailing text around the
    /// `VOPR ...` token sequence is tolerated, so a line pasted from a log
    /// with a prefix still parses).
    pub fn parse_line(line: &str) -> Result<Repro, String> {
        let start = line.find("VOPR ").ok_or_else(|| "no VOPR marker in line".to_string())?;
        let mut seed = None;
        let mut cfg = None;
        let mut skip = Vec::new();
        let mut tape = Vec::new();
        let mut plan = Vec::new();
        let mut oracle = String::new();
        for tok in line[start + 5..].split_whitespace() {
            let Some((k, v)) = tok.split_once('=') else { break };
            match k {
                "seed" => {
                    let v = v.strip_prefix("0x").unwrap_or(v);
                    seed =
                        Some(u64::from_str_radix(v, 16).map_err(|_| format!("bad seed {tok:?}"))?);
                }
                "cfg" => cfg = Some(v.to_string()),
                "skip" => {
                    if v != "-" {
                        skip = v
                            .split(',')
                            .map(|i| i.parse::<usize>().map_err(|_| format!("bad skip {tok:?}")))
                            .collect::<Result<_, _>>()?;
                    }
                }
                "sched" => tape = decode_tape(v)?,
                "plan" => plan = decode_plan(v)?,
                "oracle" => oracle = v.to_string(),
                _ => break, // trailing commentary
            }
        }
        let seed = seed.ok_or("repro line missing seed=")?;
        let cfg = cfg.ok_or("repro line missing cfg=")?;
        VoprConfig::decode(&cfg)?;
        Ok(Repro { seed, cfg, skip, tape, plan, oracle })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tape_codec_round_trips() {
        let tapes: [&[u32]; 4] = [&[], &[0, 1, 35], &[36, 0, 1000], &[5; 40]];
        for t in tapes {
            assert_eq!(decode_tape(&encode_tape(t)).unwrap(), t);
        }
        assert_eq!(encode_tape(&[]), "-");
        assert_eq!(encode_tape(&[0, 10, 36]), "0a(36)");
    }

    #[test]
    fn plan_codec_round_trips() {
        let plan = vec![(smdb_sim::FAULT_MIGRATE, 3u64), (smdb_core::FAULT_RECOVERY_PHASE, 0)];
        assert_eq!(decode_plan(&encode_plan(&plan)).unwrap(), plan);
        assert_eq!(decode_plan("-").unwrap(), vec![]);
        assert!(decode_plan("no.such.site#1").is_err());
    }

    #[test]
    fn repro_line_round_trips() {
        let r = Repro {
            seed: 0xDEAD_BEEF,
            cfg: VoprConfig::draw(7).encode(),
            skip: vec![1, 5],
            tape: vec![0, 3, 1, 40],
            plan: vec![(smdb_wal::FAULT_FORCE_RECORD, 2)],
            oracle: "IFA".into(),
        };
        let line = r.to_line();
        assert_eq!(Repro::parse_line(&line).unwrap(), r);
        // Prefixed (as printed inside a test-failure message) still parses.
        assert_eq!(Repro::parse_line(&format!("FAILED: {line}")).unwrap(), r);
    }

    #[test]
    fn catalog_resolves_names() {
        for s in FAULT_SITES {
            assert_eq!(site_by_name(s), Some(s));
        }
        assert_eq!(site_by_name("nope"), None);
    }
}
