//! VOPR-style deterministic schedule fuzzer for the shared-memory
//! database stack, with auto-shrinking one-line repros.
//!
//! One `u64` seed deterministically derives everything a schedule runs:
//!
//! - the **scenario** ([`VoprConfig::draw`]): protocol, node count,
//!   workload mix, pipelining/ELR/coalescing/checkpoint knobs;
//! - the **fault plan** ([`draw_plan`]): zero, one, or two crash points
//!   from the stack's instrumented-site catalog ([`FAULT_SITES`]),
//!   including nested crash-during-recovery pairs;
//! - the **interleaving**: every ordering decision — which node hosts a
//!   transaction, which in-flight transaction steps next, drain timing,
//!   per-node force order, ack order, recovery host — is drawn from a
//!   recorded schedule tape (see `smdb_fault::Scheduler`).
//!
//! After every driver round the standing oracles run: `check_ifa`,
//! B+-tree structural invariants, the lock chains↔LCB lockstep check,
//! force-request parity, and (at the end) the committed-data check. A
//! failing schedule is [auto-shrunk](shrink) along three axes and
//! reported as a single [`Repro`] line that [`replay_line`] re-executes
//! byte-identically.
//!
//! Two runs of the same seed produce identical event logs, tapes, and
//! verdicts: the stack has no wall-clock, no thread scheduling, and no
//! other entropy source.

mod config;
mod driver;
mod repro;
mod shrink;

pub use config::VoprConfig;
pub use driver::{run_schedule, run_schedule_with, ExtraOracle, RunOutcome, SchedInput};
pub use repro::{
    decode_plan, decode_tape, encode_plan, encode_tape, site_by_name, Repro, FAULT_SITES,
};
pub use shrink::{shrink, ShrinkStats};

use config::splitmix64;
use smdb_fault::{CrashPoint, FaultPlan};
use std::collections::BTreeSet;

/// Draw a fault plan from the schedule seed: ~25% no faults, ~50% a
/// single crash point, ~25% a nested (crash-during-recovery) pair. Sites
/// come from the [`FAULT_SITES`] catalog; ordinals are bounded so most
/// armed points actually fire inside the bounded workloads the fuzzer
/// drives (an unreached point simply never fires — still a valid run).
pub fn draw_plan(seed: u64) -> FaultPlan {
    let mut rng = seed ^ 0xFA17_7F1A_4B0B_CA7A;
    let n = match splitmix64(&mut rng) % 4 {
        0 => 0,
        1 | 2 => 1,
        _ => 2,
    };
    let mut points = Vec::with_capacity(n);
    for k in 0..n {
        let site = FAULT_SITES[(splitmix64(&mut rng) % FAULT_SITES.len() as u64) as usize];
        // Nested (secondary) points get a tighter ordinal bound: recovery
        // visits far fewer points than the forward workload.
        let bound = if k == 0 { 24 } else { 6 };
        points.push(CrashPoint::new(site, splitmix64(&mut rng) % bound));
    }
    FaultPlan { points }
}

/// One failing schedule the fuzzer found, with its shrunk repro.
#[derive(Clone, Debug)]
pub struct FuzzFailure {
    /// Schedule index within the fuzz run.
    pub schedule: u64,
    /// The schedule seed (derives scenario, plan, and interleaving).
    pub seed: u64,
    /// Name of the failed oracle.
    pub oracle: String,
    /// The oracle's failure detail.
    pub detail: String,
    /// The shrunk one-line repro ([`Repro::to_line`]).
    pub line: String,
    /// Shrink statistics.
    pub shrink: ShrinkStats,
}

/// Aggregate outcome of a fuzz run.
#[derive(Clone, Debug, Default)]
pub struct FuzzOutcome {
    /// Schedules executed.
    pub schedules: u64,
    /// Total commits across all schedules.
    pub committed: u64,
    /// Total crash points fired across all schedules.
    pub fired: u64,
    /// Total lock stalls observed.
    pub stalls: u64,
    /// Every failing schedule, shrunk.
    pub failures: Vec<FuzzFailure>,
}

impl FuzzOutcome {
    /// Whether every schedule passed its oracles.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Run `budget` schedules from `master_seed`. Each schedule gets its own
/// derived seed; a failing schedule is shrunk under `shrink_budget`
/// candidate replays and reported as a one-line repro. Fully
/// deterministic: the same `(master_seed, budget)` yields the same
/// verdicts and repro lines.
pub fn fuzz(master_seed: u64, budget: u64, shrink_budget: u64) -> FuzzOutcome {
    fuzz_with(master_seed, budget, shrink_budget, None, &mut |_| {})
}

/// [`fuzz`] with an extra per-round oracle (test hook) and a per-failure
/// callback (progress reporting for the CLI).
pub fn fuzz_with(
    master_seed: u64,
    budget: u64,
    shrink_budget: u64,
    extra: Option<ExtraOracle<'_>>,
    on_failure: &mut dyn FnMut(&FuzzFailure),
) -> FuzzOutcome {
    let mut out = FuzzOutcome::default();
    let no_skip = BTreeSet::new();
    for i in 0..budget {
        let mut s = master_seed ^ i.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let seed = splitmix64(&mut s);
        let cfg = VoprConfig::draw(seed);
        let plan = draw_plan(seed);
        let run = run_schedule_with(&cfg, seed, &no_skip, &plan, SchedInput::Record(seed), extra);
        out.schedules += 1;
        out.committed += run.committed;
        out.stalls += run.stalls;
        out.fired += run.fired.len() as u64;
        if let Some((oracle, detail)) = run.failure.clone() {
            let (repro, stats) = shrink(&cfg, seed, &plan, &run, shrink_budget, extra);
            let failure = FuzzFailure {
                schedule: i,
                seed,
                oracle,
                detail,
                line: repro.to_line(),
                shrink: stats,
            };
            on_failure(&failure);
            out.failures.push(failure);
        }
    }
    out
}

/// Outcome of replaying a repro line.
#[derive(Clone, Debug)]
pub struct ReplayReport {
    /// The parsed repro.
    pub repro: Repro,
    /// The replayed run.
    pub outcome: RunOutcome,
    /// Whether the replay failed the same oracle the line names (or, for
    /// a line with no oracle, failed at all).
    pub reproduced: bool,
}

/// Parse a repro line — either the fuzzer's own `VOPR seed=… cfg=…` form
/// or a crash-sweep `FAIL scenario=… seed=… plan=… cfg=…` line — and
/// replay it. A `VOPR` line replays byte-identically (same scenario, op
/// streams, tape, and plan). A sweep `FAIL` line replays the same
/// scenario shape and fault plan under the fuzzer's driver with the
/// canonical (all-zero) schedule.
pub fn replay_line(line: &str) -> Result<ReplayReport, String> {
    replay_line_with(line, None)
}

/// [`replay_line`] with an extra per-round oracle (test hook).
pub fn replay_line_with(
    line: &str,
    extra: Option<ExtraOracle<'_>>,
) -> Result<ReplayReport, String> {
    let repro = parse_any_line(line)?;
    let cfg = repro.config()?;
    let skip: BTreeSet<usize> = repro.skip.iter().copied().collect();
    let outcome = run_schedule_with(
        &cfg,
        repro.seed,
        &skip,
        &repro.fault_plan(),
        SchedInput::Replay(repro.tape.clone()),
        extra,
    );
    let reproduced = if repro.oracle.is_empty() || repro.oracle == "?" {
        outcome.failure.is_some()
    } else {
        outcome.failed_oracle() == Some(repro.oracle.as_str())
    };
    Ok(ReplayReport { repro, outcome, reproduced })
}

/// Parse either repro-line form into a [`Repro`].
fn parse_any_line(line: &str) -> Result<Repro, String> {
    if line.contains("VOPR ") {
        return Repro::parse_line(line);
    }
    if line.contains("FAIL ") && line.contains("scenario=") {
        return parse_sweep_line(line);
    }
    Err("line is neither a VOPR repro nor a sweep FAIL line".into())
}

/// Parse a crash-sweep failure line:
/// `FAIL scenario=L seed=N plan=site#hit+… cfg=p:…,n:… :: detail`.
fn parse_sweep_line(line: &str) -> Result<Repro, String> {
    let start = line.find("FAIL ").ok_or_else(|| "no FAIL marker in line".to_string())?;
    let mut seed = None;
    let mut cfg = None;
    let mut plan = Vec::new();
    for tok in line[start + 5..].split_whitespace() {
        let Some((k, v)) = tok.split_once('=') else { break };
        match k {
            "scenario" => {}
            "seed" => {
                seed = Some(v.parse::<u64>().map_err(|_| format!("bad seed {tok:?}"))?);
            }
            "plan" => plan = decode_plan(v)?,
            "cfg" => {
                if v == "-" {
                    return Err("sweep line carries no cfg= context".into());
                }
                cfg = Some(v.to_string());
            }
            _ => break,
        }
    }
    let seed = seed.ok_or("sweep line missing seed=")?;
    let cfg = cfg.ok_or("sweep line missing cfg=")?;
    VoprConfig::decode(&cfg)?;
    Ok(Repro { seed, cfg, skip: Vec::new(), tape: Vec::new(), plan, oracle: String::new() })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draw_plan_is_deterministic_and_mixed() {
        for s in 0..50 {
            assert_eq!(draw_plan(s).points, draw_plan(s).points, "seed {s}");
        }
        let sizes: Vec<usize> = (0..100).map(|s| draw_plan(s).points.len()).collect();
        for want in [0usize, 1, 2] {
            assert!(sizes.contains(&want), "no plan of {want} points drawn");
        }
    }

    #[test]
    fn sweep_fail_line_parses_into_repro() {
        let line = format!(
            "FAIL scenario=stable_eager seed=1594083022 plan={}#3 \
             cfg=p:SE,n:4,t:16,o:4,rf:20,sh:60,ix:25,ck:5,w:1,d:0,elr:0,co:1 :: IFA: boom",
            smdb_sim::FAULT_MIGRATE
        );
        let r = parse_any_line(&line).expect("parses");
        assert_eq!(r.seed, 1594083022);
        assert_eq!(r.plan, vec![(smdb_sim::FAULT_MIGRATE, 3)]);
        assert!(r.tape.is_empty() && r.skip.is_empty());
        let cfg = r.config().expect("cfg decodes");
        assert_eq!(cfg.nodes, 4);
        assert_eq!(cfg.txns, 16);
    }

    #[test]
    fn sweep_fail_line_without_context_is_rejected() {
        assert!(parse_any_line("FAIL scenario=x seed=1 plan=- cfg=- :: boom").is_err());
        assert!(parse_any_line("unrelated text").is_err());
    }
}
