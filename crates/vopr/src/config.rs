//! Scenario configuration: the workload-shape and engine-config knobs one
//! fuzzed schedule runs under, drawn deterministically from the schedule
//! seed and serialized into the repro line's `cfg=` field.

use smdb_core::{DbConfig, ProtocolKind};

/// One schedule's scenario: which engine configuration and workload shape
/// the interleaving runs over. Every field is drawn from the schedule
/// seed by [`VoprConfig::draw`] and round-trips through the compact
/// `cfg=` encoding ([`VoprConfig::encode`] / [`VoprConfig::decode`]), so
/// a repro line pins the scenario exactly.
#[derive(Clone, Debug, PartialEq)]
pub struct VoprConfig {
    /// Recovery protocol under test (one of the four IFA protocols).
    pub protocol: ProtocolKind,
    /// Node count.
    pub nodes: u16,
    /// Transactions the driver issues (before shrink skips).
    pub txns: usize,
    /// Operations per transaction.
    pub ops_per_txn: usize,
    /// Read fraction, percent.
    pub read_pct: u8,
    /// Shared-region probability, percent.
    pub sharing_pct: u8,
    /// Shared-region size, slots.
    pub shared_slots: u64,
    /// Zipf θ × 100 for slot selection.
    pub zipf_x100: u16,
    /// Index-op fraction of non-reads, percent (serial window only).
    pub index_pct: u8,
    /// Sharp checkpoint every N admitted transactions (0 = never).
    pub checkpoint_every: usize,
    /// Commit window: 1 = serial synchronous commits, >1 = pipelined
    /// group commit over polling locks.
    pub window: usize,
    /// Drain the commit pipeline every N pipelined commits (0 = only on
    /// stall and at end; pipelined mode only).
    pub drain_every: usize,
    /// Early lock release (controlled lock violation; pipelined only).
    pub elr: bool,
    /// Coalesced log forces.
    pub coalesce: bool,
    /// Instant restart: recovery opens the database after analysis and
    /// defers heap redo to on-demand application plus a background drain
    /// the driver schedules between rounds.
    pub instant: bool,
    /// Multicore epoch-scheduler preamble: before the interactive rounds
    /// the driver runs a deterministic record-only batch through
    /// `SmDb::run_epochs` (one lane thread — VOPR replay is sequential by
    /// design), with striping enabled and the admission deferral site
    /// (`mt.admit`) drawn from the shared schedule tape. Never combined
    /// with early lock release: the epoch scheduler requires the serial
    /// lock discipline.
    pub mt: bool,
}

pub(crate) fn splitmix64(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn pick<T: Copy>(rng: &mut u64, options: &[T]) -> T {
    options[(splitmix64(rng) % options.len() as u64) as usize]
}

const PROTOCOLS: [(ProtocolKind, &str); 4] = [
    (ProtocolKind::VolatileRedoAll, "VRA"),
    (ProtocolKind::VolatileSelectiveRedo, "VSR"),
    (ProtocolKind::StableEager, "SE"),
    (ProtocolKind::StableTriggered, "ST"),
];

fn protocol_tag(p: ProtocolKind) -> &'static str {
    if p == ProtocolKind::FaOnly {
        return "FA";
    }
    PROTOCOLS.iter().find(|(k, _)| *k == p).map_or("?", |(_, t)| t)
}

/// `draw` only picks IFA protocols, but the codec also understands the
/// FA-only baseline so sweep `FAIL` lines from that scenario replay too.
fn protocol_from_tag(t: &str) -> Option<ProtocolKind> {
    if t == "FA" {
        return Some(ProtocolKind::FaOnly);
    }
    PROTOCOLS.iter().find(|(_, tag)| *tag == t).map(|(k, _)| *k)
}

impl VoprConfig {
    /// Draw a scenario from the schedule seed. Deterministic: the same
    /// seed always produces the same scenario.
    pub fn draw(seed: u64) -> Self {
        let mut rng = seed ^ 0xC0FF_EE00_D15E_A5E5;
        let protocol = pick(&mut rng, &PROTOCOLS).0;
        let nodes = pick(&mut rng, &[2u16, 3, 4, 5]);
        let txns = 6 + (splitmix64(&mut rng) % 13) as usize; // 6..=18
        let ops_per_txn = 2 + (splitmix64(&mut rng) % 5) as usize; // 2..=6
        let window = pick(&mut rng, &[1usize, 2, 4, 6]);
        let mut cfg = VoprConfig {
            protocol,
            nodes,
            txns,
            ops_per_txn,
            read_pct: pick(&mut rng, &[0u8, 20, 50]),
            sharing_pct: pick(&mut rng, &[0u8, 30, 60, 100]),
            shared_slots: pick(&mut rng, &[4u64, 16, 32]),
            zipf_x100: pick(&mut rng, &[0u16, 95]),
            // The pipelined driver's deadlock freedom relies on sorted
            // record-lock acquisition, so index ops run serial-only.
            index_pct: if window == 1 { pick(&mut rng, &[0u8, 25, 50]) } else { 0 },
            checkpoint_every: pick(&mut rng, &[0usize, 3, 5]),
            window,
            drain_every: if window > 1 { pick(&mut rng, &[0usize, 2, 3]) } else { 0 },
            elr: window > 1 && splitmix64(&mut rng) % 2 == 1,
            coalesce: splitmix64(&mut rng) % 2 == 1,
            // Drawn last so the new knob does not shift any earlier
            // field's position in the seed stream.
            instant: splitmix64(&mut rng) % 2 == 1,
            mt: false,
        };
        // Same rule, one knob later: `mt` draws after `instant` so seeds
        // that predate it keep their scenarios. The bit is consumed
        // unconditionally and then gated — the epoch scheduler excludes
        // early lock release.
        cfg.mt = splitmix64(&mut rng) % 2 == 1 && !cfg.elr;
        cfg
    }

    /// The engine configuration this scenario runs under.
    pub fn db_config(&self) -> DbConfig {
        let mut cfg = DbConfig::small(self.nodes, self.protocol);
        if self.coalesce {
            cfg = cfg.with_coalesced_forces();
        }
        if self.window > 1 {
            cfg = cfg.with_lock_polling();
        }
        if self.elr {
            cfg = cfg.with_early_lock_release();
        }
        if self.instant {
            cfg = cfg.with_instant_restart();
        }
        if self.mt {
            // The preamble is the only fuzzed path through the striped
            // coherence directory; everything else is striping-agnostic.
            cfg = cfg.with_sim_shards(8);
        }
        cfg
    }

    /// Compact one-token encoding for the repro line, e.g.
    /// `p:SE,n:4,t:12,o:4,rf:20,sh:60,ss:16,zf:95,ix:25,ck:5,w:4,d:3,elr:1,co:1,ir:0,mt:1`.
    pub fn encode(&self) -> String {
        format!(
            "p:{},n:{},t:{},o:{},rf:{},sh:{},ss:{},zf:{},ix:{},ck:{},w:{},d:{},elr:{},co:{},ir:{},mt:{}",
            protocol_tag(self.protocol),
            self.nodes,
            self.txns,
            self.ops_per_txn,
            self.read_pct,
            self.sharing_pct,
            self.shared_slots,
            self.zipf_x100,
            self.index_pct,
            self.checkpoint_every,
            self.window,
            self.drain_every,
            self.elr as u8,
            self.coalesce as u8,
            self.instant as u8,
            self.mt as u8,
        )
    }

    /// Parse the [`VoprConfig::encode`] form. Unknown keys are rejected so
    /// a stale repro line fails loudly instead of replaying the wrong
    /// scenario.
    pub fn decode(s: &str) -> Result<Self, String> {
        let mut cfg = VoprConfig {
            protocol: ProtocolKind::VolatileRedoAll,
            nodes: 0,
            txns: 0,
            ops_per_txn: 0,
            read_pct: 0,
            sharing_pct: 0,
            shared_slots: 0,
            zipf_x100: 0,
            index_pct: 0,
            checkpoint_every: 0,
            window: 1,
            drain_every: 0,
            elr: false,
            coalesce: false,
            // Repro lines predating these knobs carry no `ir:`/`mt:`
            // token; they replay as the eager, serial runs they were
            // recorded under.
            instant: false,
            mt: false,
        };
        for part in s.split(',') {
            let (k, v) = part.split_once(':').ok_or_else(|| format!("bad cfg token {part:?}"))?;
            let num = || v.parse::<u64>().map_err(|_| format!("bad cfg value {part:?}"));
            match k {
                "p" => {
                    cfg.protocol =
                        protocol_from_tag(v).ok_or_else(|| format!("unknown protocol {v:?}"))?
                }
                "n" => cfg.nodes = num()? as u16,
                "t" => cfg.txns = num()? as usize,
                "o" => cfg.ops_per_txn = num()? as usize,
                "rf" => cfg.read_pct = num()? as u8,
                "sh" => cfg.sharing_pct = num()? as u8,
                "ss" => cfg.shared_slots = num()?,
                "zf" => cfg.zipf_x100 = num()? as u16,
                "ix" => cfg.index_pct = num()? as u8,
                "ck" => cfg.checkpoint_every = num()? as usize,
                "w" => cfg.window = num()? as usize,
                "d" => cfg.drain_every = num()? as usize,
                "elr" => cfg.elr = num()? != 0,
                "co" => cfg.coalesce = num()? != 0,
                "ir" => cfg.instant = num()? != 0,
                "mt" => cfg.mt = num()? != 0,
                other => return Err(format!("unknown cfg key {other:?}")),
            }
        }
        if cfg.nodes == 0 || cfg.txns == 0 || cfg.ops_per_txn == 0 || cfg.window == 0 {
            return Err(format!("incomplete cfg {s:?}"));
        }
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draw_is_deterministic_and_varies() {
        assert_eq!(VoprConfig::draw(9), VoprConfig::draw(9));
        let distinct: std::collections::BTreeSet<String> =
            (0..50).map(|s| VoprConfig::draw(s).encode()).collect();
        assert!(distinct.len() > 30, "seeds should spread over the scenario space");
    }

    #[test]
    fn encode_decode_round_trips() {
        for seed in 0..200 {
            let cfg = VoprConfig::draw(seed);
            let back = VoprConfig::decode(&cfg.encode()).expect("round trip");
            assert_eq!(cfg, back, "seed {seed}");
        }
    }

    #[test]
    fn decode_defaults_new_knobs_off() {
        // A repro line recorded before `ir:`/`mt:` existed must replay
        // the scenario it was recorded under.
        let cfg = VoprConfig::decode(
            "p:SE,n:4,t:12,o:4,rf:20,sh:60,ss:16,zf:95,ix:25,ck:5,w:1,d:0,elr:0,co:1",
        )
        .expect("pre-knob line decodes");
        assert!(!cfg.instant);
        assert!(!cfg.mt);
    }

    #[test]
    fn draw_never_combines_mt_with_elr() {
        let mut saw_mt = false;
        for seed in 0..400 {
            let cfg = VoprConfig::draw(seed);
            assert!(!(cfg.mt && cfg.elr), "seed {seed}: mt drawn under ELR");
            saw_mt |= cfg.mt;
        }
        assert!(saw_mt, "the mt knob never fires across 400 seeds");
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(VoprConfig::decode("p:XX,n:4").is_err());
        assert!(VoprConfig::decode("nonsense").is_err());
        assert!(VoprConfig::decode("p:SE,n:4,bogus:1").is_err());
    }
}
