//! The scheduler-driven run: execute one scenario under one schedule tape
//! and one fault plan, checking the standing oracles after every round.
//!
//! The driver is modeled on the workload crate's pipelined mix driver but
//! every ordering decision goes through the shared [`Scheduler`]: which
//! node hosts each admitted transaction, which in-flight transaction steps
//! next within a round, whether the commit pipeline drains early, and —
//! inside the engine — the per-node force order of a drain, which ready
//! commit is acknowledged next, and which survivor hosts recovery. With an
//! all-zero tape every choice is the historical order, so the canonical
//! schedule is exactly the deterministic round-robin the existing tests
//! run.
//!
//! Fault handling: an armed [`FaultPlan`] fires at a crash-point visit;
//! the injected error propagates to the driver, which crashes the victim,
//! drives recovery to convergence (a nested plan point may crash a second
//! node mid-recovery), and restarts the doomed in-flight transactions on
//! surviving nodes — the same discipline as the crash sweep.

use crate::config::VoprConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smdb_core::{DbError, MtOp, MtTxn, SmDb};
use smdb_fault::{FaultInjector, FaultPlan, Scheduler};
use smdb_sim::NodeId;
use smdb_workload::Zipf;
use std::collections::BTreeSet;

/// How the scheduler is driven for one run.
#[derive(Clone, Debug)]
pub enum SchedInput {
    /// Draw every choice from the seeded stream, recording the tape.
    Record(u64),
    /// Replay a tape (decisions past its end collapse to 0).
    Replay(Vec<u32>),
}

/// Extra oracle hook, run with the standing oracles each round. Receives
/// the engine and the commit count; returns `Err(detail)` to fail the run
/// under the oracle name `"canary"`. Lets tests manufacture deterministic
/// failures to exercise the shrinker and replay machinery.
pub type ExtraOracle<'a> = &'a dyn Fn(&mut SmDb, u64) -> Result<(), String>;

/// Outcome of one driven schedule.
#[derive(Clone, Debug, Default)]
pub struct RunOutcome {
    /// `Some((oracle, detail))` if an oracle failed; `None` = run passed.
    pub failure: Option<(String, String)>,
    /// The driver event log: one compact token per observable step
    /// (admit, op, commit, crash, recovery, drain, checkpoint). Two runs
    /// of the same repro must produce identical logs.
    pub events: Vec<String>,
    /// The schedule tape (recorded, or the replayed input).
    pub tape: Vec<u32>,
    /// Transactions committed (commit-record appends).
    pub committed: u64,
    /// Lock stalls (polled retries) observed.
    pub stalls: u64,
    /// Fired crash points, in fire order (`site#hit@nN` form).
    pub fired: Vec<String>,
}

impl RunOutcome {
    /// The failed oracle's name, if any.
    pub fn failed_oracle(&self) -> Option<&str> {
        self.failure.as_ref().map(|(o, _)| o.as_str())
    }
}

fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One generated operation.
#[derive(Clone, Debug)]
enum Op {
    Read(u64),
    Update(u64, [u8; 8]),
    Insert(u64, [u8; 8]),
    Delete(u64),
}

/// Generate transaction `idx`'s operations for home `node`. Derived from
/// `(seed, idx, node)` alone — independent of every other transaction —
/// so the shrinker can drop transactions without perturbing the ops of
/// the ones that remain.
fn gen_ops(cfg: &VoprConfig, seed: u64, idx: usize, node: NodeId, records: u64) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(mix64(seed ^ (idx as u64).wrapping_mul(0x9E37)) ^ 0xA11C);
    let theta = cfg.zipf_x100 as f64 / 100.0;
    let shared = cfg.shared_slots.min(records.saturating_sub(cfg.nodes as u64)).max(1);
    let private_per_node = (records - shared) / cfg.nodes as u64;
    let shared_dist = Zipf::new(shared, theta);
    let private_dist = Zipf::new(private_per_node.max(1), theta);
    let pick_slot = |rng: &mut StdRng| {
        if rng.gen_bool(cfg.sharing_pct as f64 / 100.0) || private_per_node == 0 {
            shared_dist.sample(rng)
        } else {
            shared + node.0 as u64 * private_per_node + private_dist.sample(rng)
        }
    };
    let mut ops = Vec::with_capacity(cfg.ops_per_txn);
    let mut inserted: Vec<u64> = Vec::new();
    for op_i in 0..cfg.ops_per_txn {
        if rng.gen_bool(cfg.read_pct as f64 / 100.0) {
            ops.push(Op::Read(pick_slot(&mut rng)));
        } else if cfg.index_pct > 0 && rng.gen_bool(cfg.index_pct as f64 / 100.0) {
            // Keys are unique per (transaction, op): disjoint across
            // transactions, so dropping one transaction never creates or
            // resolves a key collision in another.
            if !inserted.is_empty() && rng.gen_bool(0.5) {
                let k = inserted[rng.gen_range(0..inserted.len())];
                ops.push(Op::Delete(k));
            } else {
                let key = 1 + idx as u64 * 16 + op_i as u64;
                inserted.push(key);
                ops.push(Op::Insert(key, rng.gen::<u64>().to_le_bytes()));
            }
        } else {
            ops.push(Op::Update(pick_slot(&mut rng), rng.gen::<u64>().to_le_bytes()));
        }
    }
    ops
}

/// Global lock order for the pipelined window (same rule as the workload
/// driver): record slots before index keys, each ascending, stable.
fn sort_for_pipeline(ops: &mut [Op]) {
    ops.sort_by_key(|op| match op {
        Op::Read(s) | Op::Update(s, _) => (0u8, *s),
        Op::Insert(k, _) | Op::Delete(k) => (1u8, *k),
    });
}

fn apply_op(db: &mut SmDb, txn: smdb_sim::TxnId, op: &Op) -> Result<(), DbError> {
    match op {
        Op::Read(slot) => db.read(txn, *slot).map(|_| ()),
        Op::Update(slot, v) => db.update(txn, *slot, v),
        Op::Insert(k, v) => match db.insert(txn, *k, *v) {
            Err(DbError::Btree(smdb_btree::BtreeError::DuplicateKey { .. })) => Ok(()),
            other => other,
        },
        Op::Delete(k) => match db.delete(txn, *k) {
            Err(DbError::Btree(smdb_btree::BtreeError::KeyNotFound { .. })) => Ok(()),
            other => other,
        },
    }
}

struct Flight {
    idx: usize,
    txn: smdb_sim::TxnId,
    node: NodeId,
    ops: Vec<Op>,
    next: usize,
    attempts: usize,
}

/// What absorbing an engine error produced.
enum Absorbed {
    /// A crash fired and recovery converged; the window needs reconciling.
    Crashed,
    /// Unrecoverable: becomes the run's failure verdict.
    Fatal(String, String),
}

struct Driver<'a> {
    cfg: &'a VoprConfig,
    seed: u64,
    db: SmDb,
    sched: Scheduler,
    fault: FaultInjector,
    events: Vec<String>,
    fired: Vec<String>,
    committed: u64,
    stalls: u64,
    records: u64,
    extra: Option<ExtraOracle<'a>>,
}

impl<'a> Driver<'a> {
    /// Crash the fired victim and drive recovery to convergence (nested
    /// plan points may crash further nodes mid-recovery). Returns
    /// `Crashed` once recovery completes.
    fn absorb(&mut self, e: DbError) -> Absorbed {
        let Some(c) = e.fault_crash() else {
            return Absorbed::Fatal("engine-error".into(), e.to_string());
        };
        self.events.push(format!("X n{} {}#{}", c.node, c.site, c.hit));
        self.fired.push(c.to_string());
        self.db.crash(&[NodeId(c.node)]);
        for _ in 0..8 {
            match self.db.recover() {
                Ok(o) => {
                    self.events.push(format!("R n{} a{}", o.recovery_node.0, o.aborted.len()));
                    return Absorbed::Crashed;
                }
                Err(e2) => match e2.fault_crash() {
                    Some(c2) => {
                        self.events.push(format!("X n{} {}#{}", c2.node, c2.site, c2.hit));
                        self.fired.push(c2.to_string());
                        self.db.crash(&[NodeId(c2.node)]);
                    }
                    None => return Absorbed::Fatal("recovery-error".into(), e2.to_string()),
                },
            }
        }
        Absorbed::Fatal(
            "recovery-livelock".into(),
            "recovery did not converge in 8 attempts".into(),
        )
    }

    /// Pick a home node: the candidate list is the survivors rotated so
    /// index 0 is the historical round-robin pick for `ordinal`.
    fn pick_home(&mut self, site: &'static str, ordinal: usize) -> NodeId {
        let surv = self.db.machine().surviving_nodes();
        let rot = ordinal % surv.len();
        let pick = self.sched.choose(site, surv.len());
        surv[(rot + pick) % surv.len()]
    }

    /// Restart every in-flight transaction recovery doomed, on a live
    /// node. Ops are regenerated for the new home (slot choice is
    /// node-relative).
    fn reconcile(&mut self, inflight: &mut [Flight]) -> Result<(), (String, String)> {
        let alive = self.db.active_txns(None);
        for f in inflight.iter_mut() {
            if alive.contains(&f.txn) {
                continue;
            }
            f.node = self.pick_home("vopr.rehome", f.idx);
            f.ops = gen_ops(self.cfg, self.seed, f.idx, f.node, self.records);
            if self.cfg.window > 1 {
                sort_for_pipeline(&mut f.ops);
            }
            f.next = 0;
            match self.db.begin(f.node) {
                Ok(t) => f.txn = t,
                Err(e) => match self.absorb(e) {
                    Absorbed::Fatal(o, d) => return Err((o, d)),
                    // A crash during re-begin doomed more transactions;
                    // the outer loop will reconcile again next round. Park
                    // this flight on a sentinel by retrying once.
                    Absorbed::Crashed => {
                        let home = self.pick_home("vopr.rehome", f.idx);
                        match self.db.begin(home) {
                            Ok(t) => f.txn = t,
                            Err(e2) => {
                                let Absorbed::Fatal(o, d) = self.absorb(e2) else {
                                    return Err((
                                        "driver".into(),
                                        "begin crashed twice in reconcile".into(),
                                    ));
                                };
                                return Err((o, d));
                            }
                        }
                    }
                },
            }
        }
        Ok(())
    }

    /// Run the standing oracles. The injector is paused around the scans
    /// so oracle reads (which walk the same instrumented paths as the
    /// workload) don't advance armed visit ordinals.
    fn oracles(&mut self, final_check: bool) -> Result<(), (String, String)> {
        self.fault.pause();
        let r = self.oracles_inner(final_check);
        self.fault.resume();
        r
    }

    fn oracles_inner(&mut self, final_check: bool) -> Result<(), (String, String)> {
        // Durability-volume parity: every force request is either a
        // physical force or absorbed by the coalescing window.
        let logs = self.db.logs();
        let (req, phys, coal) =
            (logs.total_forces_requested(), logs.total_forces(), logs.total_forces_coalesced());
        if req != phys + coal {
            return Err((
                "force-parity".into(),
                format!("requested {req} != physical {phys} + coalesced {coal}"),
            ));
        }
        let Some(&scan) = self.db.machine().surviving_nodes().first() else {
            return Err(("driver".into(), "no surviving nodes".into()));
        };
        // IFA: records, live index contents, and lock space vs the shadow.
        // Skipped inside an instant-restart drain window: the heap is
        // intentionally stale until the deferred redo retires (the engine
        // refuses the comparison outright), and the driver's per-round
        // drain plus the final full drain guarantee the window closes
        // before the last pass.
        if self.db.redo_pending() == 0 {
            let r = self.db.check_ifa(scan);
            if !r.ok() {
                return Err(("IFA".into(), r.violations.join("; ")));
            }
        }
        // B+-tree structural invariants (panics with a description).
        let tree = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.db.check_index_invariants(scan)
        }));
        match tree {
            Ok(Ok(())) => {}
            Ok(Err(e)) => return Err(("btree".into(), format!("unreadable: {e}"))),
            Err(p) => {
                let msg = p
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| p.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "non-string panic".into());
                return Err(("btree".into(), msg));
            }
        }
        // Lock lockstep: volatile chains vs the durable LCB table.
        match self.db.check_lock_chains(scan) {
            Ok(v) if v.is_empty() => {}
            Ok(v) => return Err(("lock-chains".into(), v.join("; "))),
            Err(e) => return Err(("lock-chains".into(), format!("unreadable: {e}"))),
        }
        // Committed-data: once nothing is active, every record physically
        // holds its committed value.
        if final_check && self.db.active_txns(None).is_empty() && self.db.redo_pending() == 0 {
            for slot in 0..self.db.record_count() as u64 {
                let got = self
                    .db
                    .current_value(slot)
                    .map_err(|e| ("committed-data".into(), format!("slot {slot}: {e}")))?;
                let want = self
                    .db
                    .read_committed(slot)
                    .map_err(|e| ("committed-data".into(), format!("slot {slot}: {e}")))?;
                if got != want {
                    return Err((
                        "committed-data".into(),
                        format!("slot {slot}: expected {want:?}, found {got:?}"),
                    ));
                }
            }
        }
        if let Some(extra) = self.extra {
            let committed = self.committed;
            extra(&mut self.db, committed).map_err(|d| ("canary".to_string(), d))?;
        }
        Ok(())
    }

    /// Multicore epoch-scheduler preamble (`mt:1` scenarios): drive one
    /// deterministic record-only batch through `SmDb::run_epochs` before
    /// the interactive rounds. One lane thread — VOPR replay is
    /// sequential by design — but the admission deferral draws
    /// (`mt.admit`) go through the shared scheduler, so the tape records
    /// them and the shrinker can reshape the epoch partition. The fault
    /// injector is paused across the batch (epoch lanes are not
    /// crash-hardened mid-merge; crashes belong to the interactive
    /// phase), which also keeps the interactive phase's crash-point
    /// ordinals independent of the preamble's cache traffic.
    fn mt_preamble(&mut self) -> Option<(String, String)> {
        self.fault.pause();
        let r = self.mt_preamble_inner();
        self.fault.resume();
        r
    }

    fn mt_preamble_inner(&mut self) -> Option<(String, String)> {
        let mut batch: Vec<MtTxn> = Vec::new();
        for idx in 0..self.cfg.txns {
            let node = NodeId((idx % self.cfg.nodes as usize) as u16);
            // A distinct op stream (seed perturbed) so the preamble does
            // not mirror the interactive transactions slot-for-slot.
            let ops: Vec<MtOp> =
                gen_ops(self.cfg, self.seed ^ 0x00E1_0C4E, idx, node, self.records)
                    .into_iter()
                    .filter_map(|op| match op {
                        Op::Read(slot) => Some(MtOp::Read { slot }),
                        Op::Update(slot, v) => Some(MtOp::Update { slot, data: v.to_vec() }),
                        // Index footprints are data-dependent; the epoch
                        // scheduler excludes them by construction.
                        Op::Insert(..) | Op::Delete(..) => None,
                    })
                    .collect();
            if !ops.is_empty() {
                batch.push(MtTxn { node, ops });
            }
        }
        match self.db.run_epochs(batch, 1) {
            Ok(out) => {
                self.committed += out.committed;
                self.events
                    .push(format!("mt e{} c{} d{}", out.epochs, out.committed, out.deferred));
                None
            }
            Err(e) => Some(("mt-preamble".into(), e.to_string())),
        }
    }

    fn run(&mut self, skip: &BTreeSet<usize>) -> Option<(String, String)> {
        if self.cfg.mt {
            if let Some(f) = self.mt_preamble() {
                return Some(f);
            }
            // The standing oracles vet the merged post-epoch state before
            // any interactive transaction builds on it.
            if let Err(f) = self.oracles(false) {
                return Some(f);
            }
        }
        let window = self.cfg.window.max(1);
        let mut inflight: Vec<Flight> = Vec::new();
        let mut next_idx = 0usize;
        let mut admitted = 0usize;
        let mut commits_since_drain = 0usize;
        let mut fruitless_rounds = 0u32;
        let mut rounds = 0u64;
        loop {
            // Admit transactions until the window is full.
            while inflight.len() < window && next_idx < self.cfg.txns {
                let idx = next_idx;
                next_idx += 1;
                if skip.contains(&idx) {
                    continue;
                }
                let ck = self.cfg.checkpoint_every;
                if ck > 0 && admitted > 0 && admitted.is_multiple_of(ck) {
                    let host = self.pick_home("vopr.ck.host", admitted);
                    self.events.push(format!("k n{}", host.0));
                    if let Err(e) = self.db.checkpoint(host) {
                        match self.absorb(e) {
                            Absorbed::Crashed => {
                                if let Err(f) = self.reconcile(&mut inflight) {
                                    return Some(f);
                                }
                            }
                            Absorbed::Fatal(o, d) => return Some((o, d)),
                        }
                    }
                }
                let node = self.pick_home("vopr.home", idx);
                let mut ops = gen_ops(self.cfg, self.seed, idx, node, self.records);
                if window > 1 {
                    sort_for_pipeline(&mut ops);
                }
                match self.db.begin(node) {
                    Ok(txn) => {
                        self.events.push(format!("b {idx}@n{}", node.0));
                        inflight.push(Flight { idx, txn, node, ops, next: 0, attempts: 0 });
                        admitted += 1;
                    }
                    Err(e) => match self.absorb(e) {
                        Absorbed::Crashed => {
                            if let Err(f) = self.reconcile(&mut inflight) {
                                return Some(f);
                            }
                            // Re-admit this index next pass.
                            next_idx = idx;
                        }
                        Absorbed::Fatal(o, d) => return Some((o, d)),
                    },
                }
            }
            if inflight.is_empty() {
                break;
            }
            rounds += 1;
            if rounds > 10_000 {
                return Some((
                    "driver-livelock".into(),
                    format!("no termination after {rounds} rounds"),
                ));
            }
            // One round: step each in-flight transaction once, in an order
            // the scheduler picks (choice 0 = window order = round-robin).
            let mut pending: Vec<smdb_sim::TxnId> = inflight.iter().map(|f| f.txn).collect();
            let mut progressed = false;
            while !pending.is_empty() {
                let t = pending.remove(self.sched.choose("vopr.step", pending.len()));
                let Some(i) = inflight.iter().position(|f| f.txn == t) else {
                    continue; // replaced by a crash reconcile mid-round
                };
                let (idx, op) = {
                    let f = &inflight[i];
                    (f.idx, f.ops[f.next].clone())
                };
                match apply_op(&mut self.db, t, &op) {
                    Ok(()) => {
                        progressed = true;
                        self.events.push(format!("o {idx}.{}", inflight[i].next));
                        inflight[i].next += 1;
                        if inflight[i].next == inflight[i].ops.len() {
                            let commit = if window > 1 {
                                self.db.commit_pipelined(t)
                            } else {
                                self.db.commit(t)
                            };
                            match commit {
                                Ok(()) => {
                                    self.events.push(format!("c {idx}"));
                                    self.committed += 1;
                                    commits_since_drain += 1;
                                    inflight.swap_remove(i);
                                }
                                Err(e) => match self.absorb(e) {
                                    Absorbed::Crashed => {
                                        if let Err(f) = self.reconcile(&mut inflight) {
                                            return Some(f);
                                        }
                                    }
                                    Absorbed::Fatal(o, d) => return Some((o, d)),
                                },
                            }
                        }
                    }
                    Err(DbError::WouldBlock { .. }) => {
                        self.stalls += 1;
                        if window == 1 {
                            // Serial window: no-wait abort and retry.
                            let f = &mut inflight[i];
                            f.attempts += 1;
                            if let Err(e2) = self.db.abort(f.txn) {
                                match self.absorb(e2) {
                                    Absorbed::Crashed => {
                                        if let Err(fl) = self.reconcile(&mut inflight) {
                                            return Some(fl);
                                        }
                                        continue;
                                    }
                                    Absorbed::Fatal(o, d) => return Some((o, d)),
                                }
                            }
                            let f = &mut inflight[i];
                            if f.attempts > 8 {
                                self.events.push(format!("g {}", f.idx));
                                inflight.swap_remove(i);
                            } else {
                                f.next = 0;
                                match self.db.begin(f.node) {
                                    Ok(txn) => f.txn = txn,
                                    Err(e) => match self.absorb(e) {
                                        Absorbed::Crashed => {
                                            if let Err(fl) = self.reconcile(&mut inflight) {
                                                return Some(fl);
                                            }
                                        }
                                        Absorbed::Fatal(o, d) => return Some((o, d)),
                                    },
                                }
                            }
                        }
                    }
                    Err(e) => match self.absorb(e) {
                        Absorbed::Crashed => {
                            if let Err(f) = self.reconcile(&mut inflight) {
                                return Some(f);
                            }
                        }
                        Absorbed::Fatal(o, d) => return Some((o, d)),
                    },
                }
            }
            // Drain policy: the historical rule (every `drain_every`
            // commits, or a stalled window), plus a schedulable early
            // drain (choice 0 = don't, the historical behavior).
            let mut want_drain = (self.cfg.drain_every > 0
                && commits_since_drain >= self.cfg.drain_every)
                || (!progressed && self.db.pending_commit_count() > 0);
            if !want_drain
                && self.db.pending_commit_count() > 0
                && self.sched.choose("vopr.drain", 2) == 1
            {
                want_drain = true;
            }
            if want_drain {
                match self.db.drain_commit_pipeline() {
                    Ok(n) => {
                        self.events.push(format!("d {n}"));
                        if n > 0 {
                            progressed = true;
                        }
                        commits_since_drain = 0;
                    }
                    Err(e) => match self.absorb(e) {
                        Absorbed::Crashed => {
                            if let Err(f) = self.reconcile(&mut inflight) {
                                return Some(f);
                            }
                        }
                        Absorbed::Fatal(o, d) => return Some((o, d)),
                    },
                }
            }
            if progressed {
                fruitless_rounds = 0;
            } else {
                fruitless_rounds += 1;
                if fruitless_rounds >= 2 && !inflight.is_empty() {
                    // Deadlock breaker (same rule as the workload driver):
                    // abort the oldest stalled entry and retry it.
                    let f = &mut inflight[0];
                    f.attempts += 1;
                    let txn = f.txn;
                    if let Err(e2) = self.db.abort(txn) {
                        match self.absorb(e2) {
                            Absorbed::Crashed => {
                                if let Err(fl) = self.reconcile(&mut inflight) {
                                    return Some(fl);
                                }
                                fruitless_rounds = 0;
                                continue;
                            }
                            Absorbed::Fatal(o, d) => return Some((o, d)),
                        }
                    }
                    let f = &mut inflight[0];
                    if f.attempts > 8 {
                        self.events.push(format!("g {}", f.idx));
                        inflight.swap_remove(0);
                    } else {
                        f.next = 0;
                        if self.db.machine().is_crashed(f.node) {
                            f.node = self.db.machine().surviving_nodes()[0];
                            let (idx, node) = (f.idx, f.node);
                            let ops = gen_ops(self.cfg, self.seed, idx, node, self.records);
                            let f = &mut inflight[0];
                            f.ops = ops;
                            if window > 1 {
                                sort_for_pipeline(&mut f.ops);
                            }
                        }
                        let node = inflight[0].node;
                        match self.db.begin(node) {
                            Ok(txn) => inflight[0].txn = txn,
                            Err(e) => match self.absorb(e) {
                                Absorbed::Crashed => {
                                    if let Err(fl) = self.reconcile(&mut inflight) {
                                        return Some(fl);
                                    }
                                }
                                Absorbed::Fatal(o, d) => return Some((o, d)),
                            },
                        }
                    }
                    fruitless_rounds = 0;
                }
            }
            // Instant-restart drain window: retire a scheduler-chosen
            // batch of deferred redo each round, on a scheduler-chosen
            // survivor (choice 0 = one entry on the rotation host). The
            // drain itself can crash — the background fault site — which
            // replans the deferred work under a second recovery.
            if self.db.redo_pending() > 0 {
                let host = self.pick_home("vopr.redo.host", rounds as usize);
                let batch = 1 + self.sched.choose("vopr.redo.batch", 4);
                match self.db.drain_redo(host, batch) {
                    Ok(n) => self.events.push(format!("dr {n}")),
                    Err(e) => match self.absorb(e) {
                        Absorbed::Crashed => {
                            if let Err(f) = self.reconcile(&mut inflight) {
                                return Some(f);
                            }
                        }
                        Absorbed::Fatal(o, d) => return Some((o, d)),
                    },
                }
            }
            // The standing oracles, every round.
            if let Err(f) = self.oracles(false) {
                return Some(f);
            }
        }
        // Final drain: settle everything still pending.
        while self.db.pending_commit_count() > 0 {
            match self.db.drain_commit_pipeline() {
                Ok(0) => break,
                Ok(n) => self.events.push(format!("d {n}")),
                Err(e) => match self.absorb(e) {
                    Absorbed::Crashed => continue,
                    Absorbed::Fatal(o, d) => return Some((o, d)),
                },
            }
        }
        // Close the instant-restart drain window: the final oracle pass
        // compares full states, which requires every deferred redo entry
        // retired. A crash mid-drain replans; the loop converges because
        // the fault plan is finite.
        while self.db.redo_pending() > 0 {
            let Some(&host) = self.db.machine().surviving_nodes().first() else {
                return Some(("driver".into(), "no surviving nodes".into()));
            };
            match self.db.drain_redo(host, 8) {
                Ok(n) => self.events.push(format!("dr {n}")),
                Err(e) => match self.absorb(e) {
                    Absorbed::Crashed => continue,
                    Absorbed::Fatal(o, d) => return Some((o, d)),
                },
            }
        }
        self.oracles(true).err()
    }
}

/// Run one schedule: scenario `cfg`, per-transaction op streams from
/// `seed`, transactions in `skip` dropped, fault `plan` armed, scheduler
/// driven per `input`.
pub fn run_schedule(
    cfg: &VoprConfig,
    seed: u64,
    skip: &BTreeSet<usize>,
    plan: &FaultPlan,
    input: SchedInput,
) -> RunOutcome {
    run_schedule_with(cfg, seed, skip, plan, input, None)
}

/// [`run_schedule`] with an extra per-round oracle (test hook).
pub fn run_schedule_with(
    cfg: &VoprConfig,
    seed: u64,
    skip: &BTreeSet<usize>,
    plan: &FaultPlan,
    input: SchedInput,
    extra: Option<ExtraOracle<'_>>,
) -> RunOutcome {
    let mut db = SmDb::new(cfg.db_config());
    let fault = FaultInjector::new();
    let sched = Scheduler::new();
    db.set_fault_injector(fault.clone());
    db.set_scheduler(sched.clone());
    match input {
        SchedInput::Record(s) => sched.start_recording(s),
        SchedInput::Replay(tape) => sched.start_replay(tape),
    }
    if !plan.points.is_empty() {
        fault.arm(plan.clone());
    }
    let records = db.record_count() as u64;
    let mut d = Driver {
        cfg,
        seed,
        db,
        sched: sched.clone(),
        fault,
        events: Vec::new(),
        fired: Vec::new(),
        committed: 0,
        stalls: 0,
        records,
        extra,
    };
    let failure = d.run(skip);
    let tape = sched.take_tape();
    RunOutcome {
        failure,
        events: d.events,
        tape,
        committed: d.committed,
        stalls: d.stalls,
        fired: d.fired,
    }
}
