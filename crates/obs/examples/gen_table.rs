fn main() {
    print!("{}", smdb_obs::names::markdown_table());
}
