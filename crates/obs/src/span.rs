//! Per-transaction spans with simulated-cycle stage attribution.
//!
//! The engine opens a span at `begin`, charges cycles to one of five
//! stages as the transaction executes (`lock-wait → execute → log-append
//! → force-wait → commit`), and closes the span at commit or abort. The
//! tracker aggregates finished spans into a per-stage cycle breakdown and
//! a log₂ latency [`Histogram`] (p50/p99/p999), and keeps a bounded ring
//! of recent [`FinishedSpan`]s for the Chrome trace exporter.
//!
//! Like the bus and registry, the tracker is a shared handle gated on a
//! relaxed [`AtomicBool`]: while disabled every mutator is a single load
//! plus branch, verified by the `obs_overhead` micro-benchmark.

use crate::metrics::Histogram;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Number of attribution stages.
pub const STAGES: usize = 5;

/// Default capacity of the finished-span ring.
pub const DEFAULT_SPAN_CAPACITY: usize = 1024;

/// One attribution stage of a transaction's lifetime. Cycles a span does
/// not explicitly charge to a stage are unattributed (the gap between
/// the stage sum and the end-to-end latency).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Stage {
    /// Waiting in the lock manager (record/key lock acquisition).
    LockWait,
    /// Reading/writing records and index pages (coherence traffic).
    Execute,
    /// Appending log records to the in-memory tail.
    LogAppend,
    /// Stalled on a physical log force (durability I/O).
    ForceWait,
    /// Commit/abort finalisation: tag clears, reclaim, lock release, undo.
    Commit,
}

impl Stage {
    /// All stages, in canonical order.
    pub const ALL: [Stage; STAGES] =
        [Stage::LockWait, Stage::Execute, Stage::LogAppend, Stage::ForceWait, Stage::Commit];

    /// Index into a `[u64; STAGES]` stage array.
    pub fn index(self) -> usize {
        match self {
            Stage::LockWait => 0,
            Stage::Execute => 1,
            Stage::LogAppend => 2,
            Stage::ForceWait => 3,
            Stage::Commit => 4,
        }
    }

    /// Stable snake_case name, used in CSV headers and trace args.
    pub fn name(self) -> &'static str {
        match self {
            Stage::LockWait => "lock_wait",
            Stage::Execute => "execute",
            Stage::LogAppend => "log_append",
            Stage::ForceWait => "force_wait",
            Stage::Commit => "commit",
        }
    }
}

/// A closed transaction span: end-to-end simulated latency on the home
/// node plus the per-stage cycle attribution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FinishedSpan {
    /// Raw transaction id (the emitting layer's `TxnId` bits).
    pub txn: u64,
    /// Home node the span's clock readings came from.
    pub node: u16,
    /// Home-node simulated clock at `begin`.
    pub begin_at: u64,
    /// Home-node simulated clock when the span closed.
    pub end_at: u64,
    /// Whether the transaction committed (else aborted).
    pub committed: bool,
    /// Cycles charged per [`Stage`], indexed by [`Stage::index`].
    pub stage_cycles: [u64; STAGES],
}

impl FinishedSpan {
    /// End-to-end simulated latency.
    pub fn latency(&self) -> u64 {
        self.end_at.saturating_sub(self.begin_at)
    }

    /// Sum of the explicitly attributed stage cycles.
    pub fn attributed(&self) -> u64 {
        self.stage_cycles.iter().sum()
    }
}

/// Aggregate over every finished span since enable/reset.
#[derive(Clone, Debug, Default)]
pub struct SpanAggregate {
    /// Spans opened.
    pub started: u64,
    /// Spans closed (committed + aborted).
    pub finished: u64,
    /// Spans closed by commit.
    pub committed: u64,
    /// Spans closed by abort.
    pub aborted: u64,
    /// Sum of end-to-end latencies across finished spans.
    pub total_latency_cycles: u128,
    /// Cycles charged per stage across finished spans.
    pub stage_cycles: [u64; STAGES],
    /// Latency distribution of finished spans.
    pub latency: Histogram,
    /// Latency distribution of committed spans only.
    pub commit_latency: Histogram,
}

struct OpenSpan {
    node: u16,
    begin_at: u64,
    stage_cycles: [u64; STAGES],
}

struct SpanInner {
    open: BTreeMap<u64, OpenSpan>,
    finished: VecDeque<FinishedSpan>,
    capacity: usize,
    agg: SpanAggregate,
}

impl Default for SpanInner {
    fn default() -> Self {
        SpanInner {
            open: BTreeMap::new(),
            finished: VecDeque::new(),
            capacity: DEFAULT_SPAN_CAPACITY,
            agg: SpanAggregate::default(),
        }
    }
}

/// Shared per-transaction span tracker. `Clone` shares the storage.
#[derive(Clone, Default)]
pub struct SpanTracker {
    enabled: Arc<AtomicBool>,
    inner: Arc<Mutex<SpanInner>>,
}

impl SpanTracker {
    /// New disabled tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether spans currently record. A disabled tracker makes every
    /// mutator a single relaxed load + branch.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Start recording, keeping up to `capacity` finished spans (0 means
    /// [`DEFAULT_SPAN_CAPACITY`]). Aggregates persist across re-enables.
    pub fn enable(&self, capacity: usize) {
        let capacity = if capacity == 0 { DEFAULT_SPAN_CAPACITY } else { capacity };
        let mut g = self.inner.lock().unwrap();
        g.capacity = capacity;
        while g.finished.len() > capacity {
            g.finished.pop_front();
        }
        drop(g);
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Stop recording; finished spans and aggregates remain readable.
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Discard all open spans, finished spans, and aggregates.
    pub fn reset(&self) {
        let mut g = self.inner.lock().unwrap();
        let capacity = g.capacity;
        *g = SpanInner { capacity, ..SpanInner::default() };
    }

    /// Open a span for `txn` on home node `node` at simulated time `at`.
    #[inline]
    pub fn begin(&self, txn: u64, node: u16, at: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let mut g = self.inner.lock().unwrap();
        g.agg.started += 1;
        g.open.insert(txn, OpenSpan { node, begin_at: at, stage_cycles: [0; STAGES] });
    }

    /// Charge `cycles` to `stage` of `txn`'s open span (no-op for unknown
    /// transactions, so emission sites need no liveness checks).
    #[inline]
    pub fn add(&self, txn: u64, stage: Stage, cycles: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        if let Some(s) = self.inner.lock().unwrap().open.get_mut(&txn) {
            s.stage_cycles[stage.index()] += cycles;
        }
    }

    /// Close `txn`'s span at simulated time `at` and fold it into the
    /// aggregates. Returns the finished span (None if unknown/disabled).
    pub fn end(&self, txn: u64, at: u64, committed: bool) -> Option<FinishedSpan> {
        if !self.enabled.load(Ordering::Relaxed) {
            return None;
        }
        let mut g = self.inner.lock().unwrap();
        let open = g.open.remove(&txn)?;
        let span = FinishedSpan {
            txn,
            node: open.node,
            begin_at: open.begin_at,
            end_at: at.max(open.begin_at),
            committed,
            stage_cycles: open.stage_cycles,
        };
        g.agg.finished += 1;
        if committed {
            g.agg.committed += 1;
            g.agg.commit_latency.record(span.latency());
        } else {
            g.agg.aborted += 1;
        }
        g.agg.total_latency_cycles += span.latency() as u128;
        for (total, c) in g.agg.stage_cycles.iter_mut().zip(span.stage_cycles) {
            *total += c;
        }
        g.agg.latency.record(span.latency());
        if g.finished.len() >= g.capacity {
            g.finished.pop_front();
        }
        g.finished.push_back(span.clone());
        Some(span)
    }

    /// Drop `txn`'s open span without aggregating it (crashed
    /// transactions whose latency is meaningless).
    #[inline]
    pub fn discard(&self, txn: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.inner.lock().unwrap().open.remove(&txn);
    }

    /// Number of currently open spans.
    pub fn open_count(&self) -> usize {
        self.inner.lock().unwrap().open.len()
    }

    /// Copy of the aggregates over all finished spans.
    pub fn aggregate(&self) -> SpanAggregate {
        self.inner.lock().unwrap().agg.clone()
    }

    /// Copy of the retained finished spans, oldest first.
    pub fn finished(&self) -> Vec<FinishedSpan> {
        self.inner.lock().unwrap().finished.iter().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracker_records_nothing() {
        let t = SpanTracker::new();
        t.begin(1, 0, 10);
        t.add(1, Stage::Execute, 5);
        assert!(t.end(1, 20, true).is_none());
        assert_eq!(t.aggregate().started, 0);
    }

    #[test]
    fn stages_accumulate_and_aggregate() {
        let t = SpanTracker::new();
        t.enable(8);
        t.begin(7, 2, 100);
        t.add(7, Stage::LockWait, 10);
        t.add(7, Stage::Execute, 30);
        t.add(7, Stage::Execute, 5);
        t.add(7, Stage::ForceWait, 1000);
        t.add(7, Stage::Commit, 4);
        let span = t.end(7, 1200, true).expect("span closes");
        assert_eq!(span.latency(), 1100);
        assert_eq!(span.attributed(), 1049);
        assert_eq!(span.stage_cycles[Stage::Execute.index()], 35);
        let agg = t.aggregate();
        assert_eq!((agg.started, agg.finished, agg.committed, agg.aborted), (1, 1, 1, 0));
        assert_eq!(agg.stage_cycles[Stage::ForceWait.index()], 1000);
        assert_eq!(agg.latency.count(), 1);
        assert_eq!(agg.commit_latency.count(), 1);
    }

    #[test]
    fn aborts_and_discards_are_distinguished() {
        let t = SpanTracker::new();
        t.enable(8);
        t.begin(1, 0, 0);
        t.begin(2, 0, 0);
        assert_eq!(t.open_count(), 2);
        t.end(1, 50, false);
        t.discard(2);
        assert_eq!(t.open_count(), 0);
        let agg = t.aggregate();
        assert_eq!((agg.finished, agg.aborted), (1, 1));
        assert_eq!(agg.commit_latency.count(), 0, "aborts stay out of commit latency");
        assert_eq!(t.finished().len(), 1, "discarded spans are not retained");
    }

    #[test]
    fn finished_ring_is_bounded_but_aggregate_is_not() {
        let t = SpanTracker::new();
        t.enable(2);
        for i in 0..5u64 {
            t.begin(i, 0, i * 10);
            t.end(i, i * 10 + 1, true);
        }
        assert_eq!(t.finished().len(), 2, "ring bounded at capacity");
        assert_eq!(t.finished()[0].txn, 3, "oldest evicted");
        assert_eq!(t.aggregate().finished, 5, "aggregate counts everything");
    }

    #[test]
    fn unknown_txn_charges_are_dropped() {
        let t = SpanTracker::new();
        t.enable(4);
        t.add(99, Stage::Execute, 1_000);
        assert!(t.end(99, 10, true).is_none());
        assert_eq!(t.aggregate().stage_cycles[Stage::Execute.index()], 0);
    }
}
