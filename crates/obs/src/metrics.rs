//! Named counters, gauges, and fixed-bucket log₂ histograms.
//!
//! The [`Registry`] is a shared handle (`Clone` = same storage) guarded by
//! an enabled flag: while disabled every mutator is a single relaxed
//! atomic load + branch. Histograms use 65 power-of-two buckets, so a
//! recorded value costs one `leading_zeros` plus a few adds, and
//! percentile queries resolve to the upper bound of the containing bucket
//! (≤ 2× relative error, plenty for latency distributions).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

const BUCKETS: usize = 65;

fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        (64 - v.leading_zeros()) as usize
    }
}

fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// Fixed-bucket log₂ histogram of `u64` samples.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram { buckets: [0; BUCKETS], count: 0, sum: 0, min: u64::MAX, max: 0 }
    }
}

impl Histogram {
    /// Record one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[bucket_of(v)] += 1;
        self.count += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Smallest sample (0 when empty).
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest sample (0 when empty).
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Value at percentile `p` (0–100): the upper bound of the log₂ bucket
    /// containing the p-th sample, clamped to the observed `[min, max]`
    /// range. Degenerate inputs resolve exactly: an empty histogram is 0,
    /// a single-bucket histogram answers every percentile with a value
    /// inside the observed range, and samples in the saturating top
    /// bucket (`≥ 2^63`) clamp to the observed max instead of `u64::MAX`.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 100.0);
        let rank = ((p / 100.0 * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Point-in-time summary.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            count: self.count,
            sum: self.sum,
            min: self.min(),
            max: self.max,
            mean: self.mean(),
            p50: self.percentile(50.0),
            p95: self.percentile(95.0),
            p99: self.percentile(99.0),
            p999: self.percentile(99.9),
        }
    }
}

/// Summary statistics of one histogram.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct HistogramSnapshot {
    /// Sample count.
    pub count: u64,
    /// Sample sum.
    pub sum: u128,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (log₂-bucket resolution).
    pub p50: u64,
    /// 95th percentile.
    pub p95: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

#[derive(Default)]
struct RegInner {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, i64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

/// Shared metrics registry. `Clone` yields a handle to the same storage.
#[derive(Clone, Default)]
pub struct Registry {
    enabled: Arc<AtomicBool>,
    inner: Arc<Mutex<RegInner>>,
}

impl Registry {
    /// New disabled registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether mutators currently record.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Start recording.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Stop recording; accumulated values remain readable.
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Discard all recorded values.
    pub fn reset(&self) {
        *self.inner.lock().unwrap() = RegInner::default();
    }

    /// Increment counter `name` by 1.
    #[inline]
    pub fn inc(&self, name: &'static str) {
        self.add(name, 1);
    }

    /// Increment counter `name` by `delta`.
    #[inline]
    pub fn add(&self, name: &'static str, delta: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        *self.inner.lock().unwrap().counters.entry(name).or_insert(0) += delta;
    }

    /// Set gauge `name` to `value`.
    #[inline]
    pub fn gauge_set(&self, name: &'static str, value: i64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.inner.lock().unwrap().gauges.insert(name, value);
    }

    /// Record `value` into histogram `name`.
    #[inline]
    pub fn observe(&self, name: &'static str, value: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.inner.lock().unwrap().histograms.entry(name).or_default().record(value);
    }

    /// Current value of counter `name` (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner.lock().unwrap().counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of gauge `name`.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.inner.lock().unwrap().gauges.get(name).copied()
    }

    /// Summary of histogram `name`, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<HistogramSnapshot> {
        self.inner.lock().unwrap().histograms.get(name).map(Histogram::snapshot)
    }

    /// Point-in-time snapshot of everything, names sorted.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let g = self.inner.lock().unwrap();
        MetricsSnapshot {
            counters: g.counters.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            gauges: g.gauges.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            histograms: g.histograms.iter().map(|(k, h)| (k.to_string(), h.snapshot())).collect(),
        }
    }
}

/// Exportable snapshot of a [`Registry`].
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Counter name → value, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge name → value, sorted by name.
    pub gauges: Vec<(String, i64)>,
    /// Histogram name → summary, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

impl MetricsSnapshot {
    /// CSV with one row per metric:
    /// `kind,name,value,count,sum,min,max,mean,p50,p95,p99,p999`.
    /// Counters and gauges fill only `value`; histograms fill the rest.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("kind,name,value,count,sum,min,max,mean,p50,p95,p99,p999\n");
        for (name, v) in &self.counters {
            let _ = writeln!(out, "counter,{name},{v},,,,,,,,,");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "gauge,{name},{v},,,,,,,,,");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "histogram,{name},,{},{},{},{},{:.2},{},{},{},{}",
                h.count, h.sum, h.min, h.max, h.mean, h.p50, h.p95, h.p99, h.p999
            );
        }
        out
    }

    /// JSON object `{"counters":{...},"gauges":{...},"histograms":{...}}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (name, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", json_escape(name));
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{v}", json_escape(name));
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{:.2},\"p50\":{},\"p95\":{},\"p99\":{},\"p999\":{}}}",
                json_escape(name), h.count, h.sum, h.min, h.max, h.mean, h.p50, h.p95, h.p99, h.p999
            );
        }
        out.push_str("}}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn percentiles_bound_samples() {
        let mut h = Histogram::default();
        for v in [1u64, 2, 3, 100, 1000, 1000, 1000, 4000, 4000, 60_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 60_000);
        let p50 = h.percentile(50.0);
        assert!((100..=1023).contains(&p50), "median in the 1000s bucket: {p50}");
        assert!(h.percentile(99.0) >= 4000);
        assert!(h.percentile(100.0) <= 60_000, "clamped to observed max");
        assert_eq!(h.percentile(0.0), 1, "lowest sample's bucket, clamped by rank 1");
    }

    #[test]
    fn empty_histogram_is_zeroes() {
        let h = Histogram::default();
        assert_eq!(h.percentile(50.0), 0);
        assert_eq!(h.percentile(99.9), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.mean(), 0.0);
        let snap = h.snapshot();
        assert_eq!((snap.p50, snap.p99, snap.p999), (0, 0, 0));
    }

    #[test]
    fn single_sample_answers_every_percentile_exactly() {
        let mut h = Histogram::default();
        h.record(777);
        for p in [0.0, 50.0, 95.0, 99.0, 99.9, 100.0] {
            assert_eq!(h.percentile(p), 777, "p{p} of a single sample is that sample");
        }
    }

    #[test]
    fn single_bucket_percentiles_stay_inside_observed_range() {
        // All samples land in the [512, 1023] bucket; the bucket upper
        // bound (1023) exceeds the observed max and the lower bound of
        // the bucket undershoots the observed min — percentiles must
        // clamp to [600, 900].
        let mut h = Histogram::default();
        for v in [600u64, 700, 800, 900] {
            h.record(v);
        }
        for p in [0.0, 50.0, 99.0, 99.9, 100.0] {
            let got = h.percentile(p);
            assert!((600..=900).contains(&got), "p{p}={got} outside observed range");
        }
    }

    #[test]
    fn saturating_top_bucket_clamps_to_observed_max() {
        // Samples ≥ 2^63 fall into the saturating top bucket whose upper
        // bound is u64::MAX; percentiles still report the observed max.
        let mut h = Histogram::default();
        h.record(1u64 << 63);
        h.record((1u64 << 63) + 5);
        assert_eq!(h.percentile(50.0), (1u64 << 63) + 5);
        assert_eq!(h.percentile(99.9), (1u64 << 63) + 5);
        assert_eq!(h.snapshot().p999, (1u64 << 63) + 5);
        h.record(u64::MAX);
        assert_eq!(h.percentile(100.0), u64::MAX);
    }

    #[test]
    fn p999_separates_the_tail() {
        let mut h = Histogram::default();
        for _ in 0..998 {
            h.record(100);
        }
        h.record(1 << 20);
        h.record(1 << 30);
        let s = h.snapshot();
        assert!(s.p50 < 1 << 20, "p50 ({}) stays in the body", s.p50);
        assert!(s.p99 < 1 << 20, "p99 ({}) stays in the body", s.p99);
        assert!(s.p999 >= 1 << 20, "p999 ({}) reaches the outlier bucket", s.p999);
        assert!(s.p999 <= s.max);
    }

    #[test]
    fn registry_gates_on_enabled() {
        let r = Registry::new();
        r.inc("a");
        r.observe("h", 5);
        assert_eq!(r.counter("a"), 0, "disabled registry records nothing");
        r.enable();
        r.inc("a");
        r.add("a", 4);
        r.gauge_set("g", -3);
        r.observe("h", 5);
        assert_eq!(r.counter("a"), 5);
        assert_eq!(r.gauge("g"), Some(-3));
        assert_eq!(r.histogram("h").unwrap().count, 1);
        r.disable();
        r.inc("a");
        assert_eq!(r.counter("a"), 5, "values retained but frozen");
    }

    #[test]
    fn csv_and_json_exports() {
        let r = Registry::new();
        r.enable();
        r.add("ops", 7);
        r.gauge_set("depth", 2);
        r.observe("lat", 8);
        r.observe("lat", 9);
        let snap = r.snapshot();
        let csv = snap.to_csv();
        assert!(csv.starts_with("kind,name,value,"));
        assert!(csv.contains("counter,ops,7,"));
        assert!(csv.contains("gauge,depth,2,"));
        assert!(csv.contains("histogram,lat,,2,17,8,9,"));
        let json = snap.to_json();
        assert!(json.contains("\"ops\":7"));
        assert!(json.contains("\"depth\":2"));
        assert!(json.contains("\"count\":2"));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }
}
