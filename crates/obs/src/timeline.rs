//! The availability timeline: a fixed-capacity ring of simulated-time
//! buckets sampling throughput, in-flight transactions, commit latency,
//! and recovery progress — the substrate for latency-through-crash and
//! time-to-first-transaction curves.
//!
//! Every sample is stamped with the machine-wide makespan (`max_clock`),
//! the only clock that is monotone across nodes, and lands in the bucket
//! `at / bucket_cycles`. The ring holds the newest `capacity` buckets;
//! older buckets are evicted, so a long run degrades into a sliding
//! window instead of growing without bound.
//!
//! Besides the buckets, the timeline latches three exact markers — the
//! last crash injection, the last recovery completion, and the first
//! commit after that recovery — from which [`Timeline::time_to_first_txn`]
//! answers the availability question directly: how many simulated cycles
//! passed between the crash and the first post-recovery commit.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Default number of retained buckets.
pub const DEFAULT_TIMELINE_CAPACITY: usize = 512;

/// Default bucket width in simulated cycles (10 ms at 100 cycles/µs).
pub const DEFAULT_BUCKET_CYCLES: u64 = 1_000_000;

/// One simulated-time bucket of the availability timeline.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TimelineBucket {
    /// Bucket start, simulated cycles.
    pub start: u64,
    /// Transactions begun in this bucket.
    pub begins: u64,
    /// Transactions committed in this bucket.
    pub commits: u64,
    /// Transactions aborted in this bucket.
    pub aborts: u64,
    /// Crash injections in this bucket.
    pub crashes: u64,
    /// Maximum in-flight transactions sampled in this bucket.
    pub in_flight_max: u64,
    /// Sum of commit latencies (simulated cycles) in this bucket.
    pub latency_sum: u128,
    /// Number of latency samples in this bucket.
    pub latency_count: u64,
    /// Cumulative `restart.scan_records` at the last sample.
    pub scan_records: u64,
    /// Cumulative `restart.redo_applied` at the last sample.
    pub redo_applied: u64,
    /// Redo candidates planned by the analysis scan (progress target).
    pub redo_planned: u64,
}

struct TlInner {
    bucket_cycles: u64,
    capacity: usize,
    /// Bucket index (`at / bucket_cycles`) of `buckets[0]`.
    base_index: u64,
    buckets: VecDeque<TimelineBucket>,
    last_crash_at: Option<u64>,
    last_recovery_end: Option<u64>,
    first_commit_after: Option<u64>,
    /// Latched by a recovery completion; the next commit resolves it.
    awaiting_first_commit: bool,
}

impl Default for TlInner {
    fn default() -> Self {
        TlInner {
            bucket_cycles: DEFAULT_BUCKET_CYCLES,
            capacity: DEFAULT_TIMELINE_CAPACITY,
            base_index: 0,
            buckets: VecDeque::new(),
            last_crash_at: None,
            last_recovery_end: None,
            first_commit_after: None,
            awaiting_first_commit: false,
        }
    }
}

impl TlInner {
    /// The bucket containing `at`, creating/evicting as needed. Returns
    /// None for samples older than the retained window.
    fn bucket_mut(&mut self, at: u64) -> Option<&mut TimelineBucket> {
        let idx = at / self.bucket_cycles;
        if self.buckets.is_empty() {
            self.base_index = idx;
            self.buckets.push_back(TimelineBucket {
                start: idx * self.bucket_cycles,
                ..Default::default()
            });
        }
        if idx < self.base_index {
            return None;
        }
        // A gap wider than the whole ring: drop the stale window outright
        // rather than pushing (and immediately evicting) filler buckets.
        if idx >= self.base_index + self.buckets.len() as u64 + self.capacity as u64 {
            self.buckets.clear();
            self.base_index = idx;
            self.buckets.push_back(TimelineBucket {
                start: idx * self.bucket_cycles,
                ..Default::default()
            });
        }
        while self.base_index + (self.buckets.len() as u64) <= idx {
            let next = self.base_index + self.buckets.len() as u64;
            if self.buckets.len() >= self.capacity {
                self.buckets.pop_front();
                self.base_index += 1;
            }
            self.buckets.push_back(TimelineBucket {
                start: next * self.bucket_cycles,
                ..Default::default()
            });
        }
        let off = (idx - self.base_index) as usize;
        self.buckets.get_mut(off)
    }
}

/// Shared availability timeline. `Clone` shares the ring.
#[derive(Clone, Default)]
pub struct Timeline {
    enabled: Arc<AtomicBool>,
    inner: Arc<Mutex<TlInner>>,
}

impl Timeline {
    /// New disabled timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the timeline currently samples. Disabled, every sampler is
    /// a single relaxed load + branch.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Start sampling with the given bucket width in simulated cycles and
    /// ring capacity (0 means the respective default).
    pub fn enable(&self, bucket_cycles: u64, capacity: usize) {
        let mut g = self.inner.lock().unwrap();
        g.bucket_cycles = if bucket_cycles == 0 { DEFAULT_BUCKET_CYCLES } else { bucket_cycles };
        g.capacity = if capacity == 0 { DEFAULT_TIMELINE_CAPACITY } else { capacity };
        while g.buckets.len() > g.capacity {
            g.buckets.pop_front();
            g.base_index += 1;
        }
        drop(g);
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Stop sampling; buckets and markers remain readable.
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Discard all buckets and markers, keeping the configuration.
    pub fn reset(&self) {
        let mut g = self.inner.lock().unwrap();
        let (w, c) = (g.bucket_cycles, g.capacity);
        *g = TlInner { bucket_cycles: w, capacity: c, ..TlInner::default() };
    }

    /// Bucket width, simulated cycles.
    pub fn bucket_cycles(&self) -> u64 {
        self.inner.lock().unwrap().bucket_cycles
    }

    /// Sample a transaction begin at makespan `at` with `in_flight`
    /// transactions active (this one included).
    #[inline]
    pub fn on_begin(&self, at: u64, in_flight: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let mut g = self.inner.lock().unwrap();
        if let Some(b) = g.bucket_mut(at) {
            b.begins += 1;
            b.in_flight_max = b.in_flight_max.max(in_flight);
        }
    }

    /// Sample a commit: `latency` is the transaction's end-to-end
    /// simulated latency (0 when spans are off), `in_flight` the count of
    /// still-active transactions.
    #[inline]
    pub fn on_commit(&self, at: u64, latency: u64, in_flight: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let mut g = self.inner.lock().unwrap();
        if g.awaiting_first_commit {
            g.awaiting_first_commit = false;
            g.first_commit_after = Some(at);
        }
        if let Some(b) = g.bucket_mut(at) {
            b.commits += 1;
            b.latency_sum += latency as u128;
            b.latency_count += 1;
            b.in_flight_max = b.in_flight_max.max(in_flight);
        }
    }

    /// Sample an abort.
    #[inline]
    pub fn on_abort(&self, at: u64, in_flight: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let mut g = self.inner.lock().unwrap();
        if let Some(b) = g.bucket_mut(at) {
            b.aborts += 1;
            b.in_flight_max = b.in_flight_max.max(in_flight);
        }
    }

    /// Mark a crash injection: starts a fresh time-to-first-txn window.
    #[inline]
    pub fn on_crash(&self, at: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let mut g = self.inner.lock().unwrap();
        g.last_crash_at = Some(at);
        g.first_commit_after = None;
        g.awaiting_first_commit = false;
        if let Some(b) = g.bucket_mut(at) {
            b.crashes += 1;
        }
    }

    /// Sample recovery progress: cumulative analysis/redo counters against
    /// the planned redo volume.
    #[inline]
    pub fn recovery_progress(
        &self,
        at: u64,
        scan_records: u64,
        redo_applied: u64,
        redo_planned: u64,
    ) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let mut g = self.inner.lock().unwrap();
        if let Some(b) = g.bucket_mut(at) {
            b.scan_records = scan_records;
            b.redo_applied = redo_applied;
            b.redo_planned = redo_planned;
        }
    }

    /// Mark recovery completion: the next commit closes the
    /// time-to-first-txn window opened by [`Timeline::on_crash`].
    #[inline]
    pub fn on_recovery_end(&self, at: u64) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        let mut g = self.inner.lock().unwrap();
        g.last_recovery_end = Some(at);
        if g.last_crash_at.is_some() && g.first_commit_after.is_none() {
            g.awaiting_first_commit = true;
        }
    }

    /// Simulated cycles from the last crash injection to the first commit
    /// after the recovery that followed it (None until both happened).
    /// This is the availability gap a client would see through the crash:
    /// outage + recovery + the first transaction's own latency.
    pub fn time_to_first_txn(&self) -> Option<u64> {
        let g = self.inner.lock().unwrap();
        Some(g.first_commit_after?.saturating_sub(g.last_crash_at?))
    }

    /// Makespan of the last crash injection.
    pub fn last_crash_at(&self) -> Option<u64> {
        self.inner.lock().unwrap().last_crash_at
    }

    /// Makespan when the last recovery completed.
    pub fn last_recovery_end(&self) -> Option<u64> {
        self.inner.lock().unwrap().last_recovery_end
    }

    /// Copy of the retained buckets, oldest first.
    pub fn snapshot(&self) -> Vec<TimelineBucket> {
        self.inner.lock().unwrap().buckets.iter().cloned().collect()
    }

    /// The timeline as CSV, one row per retained bucket:
    /// `bucket_start,begins,commits,aborts,crashes,in_flight_max,latency_sum,latency_count,scan_records,redo_applied,redo_planned`.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "bucket_start,begins,commits,aborts,crashes,in_flight_max,latency_sum,latency_count,scan_records,redo_applied,redo_planned\n",
        );
        for b in self.snapshot() {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{},{},{}",
                b.start,
                b.begins,
                b.commits,
                b.aborts,
                b.crashes,
                b.in_flight_max,
                b.latency_sum,
                b.latency_count,
                b.scan_records,
                b.redo_applied,
                b.redo_planned
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_timeline_samples_nothing() {
        let t = Timeline::new();
        t.on_begin(10, 1);
        t.on_commit(20, 10, 0);
        t.on_crash(30);
        assert!(t.snapshot().is_empty());
        assert!(t.time_to_first_txn().is_none());
    }

    #[test]
    fn samples_land_in_width_sized_buckets() {
        let t = Timeline::new();
        t.enable(100, 8);
        t.on_begin(10, 1);
        t.on_begin(50, 2);
        t.on_commit(150, 140, 1);
        t.on_commit(199, 149, 0);
        let snap = t.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!((snap[0].start, snap[0].begins, snap[0].in_flight_max), (0, 2, 2));
        assert_eq!((snap[1].start, snap[1].commits, snap[1].latency_sum), (100, 2, 289));
    }

    #[test]
    fn ring_evicts_oldest_and_survives_giant_gaps() {
        let t = Timeline::new();
        t.enable(10, 3);
        for at in [5u64, 15, 25, 35] {
            t.on_begin(at, 1);
        }
        let snap = t.snapshot();
        assert_eq!(snap.len(), 3, "ring bounded");
        assert_eq!(snap[0].start, 10, "oldest bucket evicted");
        // Out-of-order sample older than the window is dropped silently.
        t.on_begin(2, 1);
        assert_eq!(t.snapshot()[0].start, 10);
        // A gap far beyond the ring restarts the window.
        t.on_begin(10_000, 1);
        let snap = t.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(snap[0].start, 10_000);
    }

    #[test]
    fn time_to_first_txn_spans_crash_to_first_post_recovery_commit() {
        let t = Timeline::new();
        t.enable(100, 16);
        t.on_commit(50, 10, 0);
        assert!(t.time_to_first_txn().is_none(), "no crash yet");
        t.on_crash(1_000);
        t.recovery_progress(1_500, 40, 10, 12);
        t.on_recovery_end(2_000);
        assert!(t.time_to_first_txn().is_none(), "no commit yet");
        t.on_commit(2_600, 300, 0);
        t.on_commit(2_900, 300, 0);
        assert_eq!(t.time_to_first_txn(), Some(1_600), "crash → first commit");
        assert_eq!(t.last_recovery_end(), Some(2_000));
        let csv = t.to_csv();
        assert!(csv.starts_with("bucket_start,begins,commits,"));
        assert!(
            csv.contains("1500,0,0,0,0,0,0,0,40,10,12")
                || t.snapshot().iter().any(|b| b.scan_records == 40 && b.redo_planned == 12)
        );
    }

    #[test]
    fn a_second_crash_restarts_the_window() {
        let t = Timeline::new();
        t.enable(100, 16);
        t.on_crash(1_000);
        t.on_recovery_end(1_500);
        t.on_commit(1_800, 10, 0);
        assert_eq!(t.time_to_first_txn(), Some(800));
        t.on_crash(5_000);
        assert!(t.time_to_first_txn().is_none(), "window reset by new crash");
        t.on_recovery_end(6_000);
        t.on_commit(6_300, 10, 0);
        assert_eq!(t.time_to_first_txn(), Some(1_300));
    }
}
