//! Chrome trace-event JSON exporter (Perfetto / `chrome://tracing`).
//!
//! Renders the event bus and the finished transaction spans into the
//! trace-event format: bus records become instant events (`ph:"i"`) on
//! pid 0, transaction spans become complete events (`ph:"X"`) on pid 1
//! with one track (`tid`) per node. Timestamps are raw simulated cycles
//! written into the `ts` field (one trace-µs per simulated cycle) — the
//! viewer's absolute units are wrong but every relative distance is
//! exact, which is what matters for a simulator.
//!
//! The output is deterministic for a deterministic run: fields are
//! written in a fixed order, one event per line, and wall-clock values
//! (the one nondeterministic field the bus carries) are excluded —
//! golden-file tests diff the bytes.

use crate::bus::{Event, ForceReason, Record};
use crate::span::{FinishedSpan, Stage};
use std::fmt::Write as _;

fn reason_str(r: ForceReason) -> &'static str {
    match r {
        ForceReason::Commit => "commit",
        ForceReason::Lbm => "lbm",
        ForceReason::PageFlush => "page_flush",
        ForceReason::Checkpoint => "checkpoint",
    }
}

/// The node a bus event is charged to (its `tid` track); machine-wide
/// events (crash, recovery) run on track 0.
fn event_tid(e: &Event) -> u16 {
    match e {
        Event::ReadHit { node, .. }
        | Event::ReadRemote { node, .. }
        | Event::WriteLocal { node, .. }
        | Event::WriteTake { node, .. }
        | Event::WriteBroadcast { node, .. }
        | Event::LineLock { node, .. }
        | Event::LineUnlock { node, .. }
        | Event::Install { node, .. }
        | Event::LockAcquire { node, .. }
        | Event::LockWouldBlock { node, .. }
        | Event::LockRelease { node, .. }
        | Event::WalAppend { node, .. }
        | Event::WalForce { node, .. }
        | Event::BufSteal { node, .. }
        | Event::BufFlush { node, .. } => *node,
        Event::LbmTriggeredForce { owner, .. } => *owner,
        Event::CrashInjected { .. }
        | Event::RecoveryBegin { .. }
        | Event::RecoveryPhaseBegin { .. }
        | Event::RecoveryPhaseEnd { .. }
        | Event::RecoveryEnd { .. } => 0,
    }
}

/// Event payload as deterministic JSON args (fixed field order, `wall_ns`
/// deliberately omitted).
fn write_event_args(out: &mut String, e: &Event) {
    match e {
        Event::ReadHit { line, .. }
        | Event::WriteLocal { line, .. }
        | Event::LineLock { line, .. }
        | Event::LineUnlock { line, .. }
        | Event::Install { line, .. } => {
            let _ = write!(out, "\"line\":{line}");
        }
        Event::ReadRemote { line, downgraded, .. } => {
            let _ = write!(out, "\"line\":{line},\"downgraded\":{}", *downgraded as u8);
        }
        Event::WriteTake { line, invalidated, migration, .. } => {
            let _ = write!(
                out,
                "\"line\":{line},\"invalidated\":{invalidated},\"migration\":{}",
                *migration as u8
            );
        }
        Event::WriteBroadcast { line, updated, .. } => {
            let _ = write!(out, "\"line\":{line},\"updated\":{updated}");
        }
        Event::CrashInjected { nodes, lost_lines } => {
            let _ = write!(out, "\"nodes\":{nodes},\"lost_lines\":{lost_lines}");
        }
        Event::LockAcquire { txn, name, exclusive, .. } => {
            let _ = write!(out, "\"txn\":{txn},\"lock\":{name},\"exclusive\":{}", *exclusive as u8);
        }
        Event::LockWouldBlock { txn, name, .. } => {
            let _ = write!(out, "\"txn\":{txn},\"lock\":{name}");
        }
        Event::LockRelease { txn, name, held_cycles, .. } => {
            let _ = write!(out, "\"txn\":{txn},\"lock\":{name},\"held_cycles\":{held_cycles}");
        }
        Event::WalAppend { lsn, .. } => {
            let _ = write!(out, "\"lsn\":{lsn}");
        }
        Event::WalForce { records, reason, .. } => {
            let _ = write!(out, "\"records\":{records},\"reason\":\"{}\"", reason_str(*reason));
        }
        Event::LbmTriggeredForce { line, .. } => {
            let _ = write!(out, "\"line\":{line}");
        }
        Event::BufSteal { page, .. } | Event::BufFlush { page, .. } => {
            let _ = write!(out, "\"page\":{page}");
        }
        Event::RecoveryBegin { crashed, protocol } => {
            let _ = write!(out, "\"crashed\":{crashed},\"protocol\":\"{protocol}\"");
        }
        Event::RecoveryPhaseBegin { phase } => {
            let _ = write!(out, "\"phase\":\"{phase}\"");
        }
        Event::RecoveryPhaseEnd { phase, sim_cycles, .. } => {
            // wall_ns omitted: host wall-clock would break determinism.
            let _ = write!(out, "\"phase\":\"{phase}\",\"sim_cycles\":{sim_cycles}");
        }
        Event::RecoveryEnd { sim_cycles } => {
            let _ = write!(out, "\"sim_cycles\":{sim_cycles}");
        }
    }
}

fn write_record(out: &mut String, r: &Record) {
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"cat\":\"bus\",\"ph\":\"i\",\"ts\":{},\"pid\":0,\"tid\":{},\"s\":\"t\",\"args\":{{\"seq\":{}",
        r.event.kind(),
        r.at,
        event_tid(&r.event),
        r.seq
    );
    let mut args = String::new();
    write_event_args(&mut args, &r.event);
    if !args.is_empty() {
        out.push(',');
        out.push_str(&args);
    }
    out.push_str("}}");
}

fn write_span(out: &mut String, s: &FinishedSpan) {
    // TxnId packs the home node in the high 16 bits and a per-node
    // sequence in the low 48; mirror core's `tN.S` display for readable
    // slice names without depending on the sim crate.
    let seq = s.txn & ((1u64 << 48) - 1);
    let _ = write!(
        out,
        "{{\"name\":\"t{}.{}\",\"cat\":\"txn\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\"committed\":{}",
        s.node,
        seq,
        s.begin_at,
        s.latency(),
        s.node,
        s.committed as u8
    );
    for stage in Stage::ALL {
        let _ = write!(out, ",\"{}\":{}", stage.name(), s.stage_cycles[stage.index()]);
    }
    let _ = write!(out, ",\"attributed\":{}}}}}", s.attributed());
}

/// Render bus records and finished spans as one Chrome trace-event JSON
/// document (`{"displayTimeUnit":"ms","traceEvents":[...]}`), loadable in
/// Perfetto. Output is byte-deterministic for a deterministic run.
pub fn chrome_trace(records: &[Record], spans: &[FinishedSpan]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push_str(",\n");
        }
    };
    sep(&mut out);
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"event bus\"}}",
    );
    sep(&mut out);
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"transactions\"}}",
    );
    for r in records {
        sep(&mut out);
        write_record(&mut out, r);
    }
    for s in spans {
        sep(&mut out);
        write_span(&mut out, s);
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::STAGES;

    fn record(seq: u64, at: u64, event: Event) -> Record {
        Record { seq, at, event }
    }

    #[test]
    fn trace_has_metadata_instants_and_spans() {
        let records = vec![
            record(0, 10, Event::LineLock { node: 2, line: 7 }),
            record(1, 20, Event::WalForce { node: 2, records: 3, reason: ForceReason::Commit }),
        ];
        let spans = vec![FinishedSpan {
            txn: (2u64 << 48) | 5,
            node: 2,
            begin_at: 5,
            end_at: 105,
            committed: true,
            stage_cycles: [1, 2, 3, 4, 5],
        }];
        let json = chrome_trace(&records, &spans);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}\n"));
        assert!(json.contains("\"name\":\"line_lock\""));
        assert!(json.contains("\"reason\":\"commit\""));
        assert!(json.contains("\"name\":\"t2.5\""));
        assert!(json.contains("\"dur\":100"));
        assert!(json.contains("\"force_wait\":4"));
        assert!(json.contains("\"attributed\":15"));
    }

    #[test]
    fn wall_clock_fields_are_excluded() {
        let records = vec![record(
            3,
            99,
            Event::RecoveryPhaseEnd { phase: "redo", sim_cycles: 42, wall_ns: 123_456 },
        )];
        let json = chrome_trace(&records, &[]);
        assert!(json.contains("\"sim_cycles\":42"));
        assert!(!json.contains("123456"), "wall_ns must not leak into the trace");
    }

    #[test]
    fn output_is_deterministic() {
        let records = vec![record(0, 1, Event::ReadRemote { node: 1, line: 9, downgraded: true })];
        let spans = vec![FinishedSpan {
            txn: 1,
            node: 0,
            begin_at: 0,
            end_at: 10,
            committed: false,
            stage_cycles: [0; STAGES],
        }];
        assert_eq!(chrome_trace(&records, &spans), chrome_trace(&records, &spans));
    }
}
