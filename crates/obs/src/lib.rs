//! Unified cross-layer observability for the shared-memory database.
//!
//! Three pieces, all dependency-free and cheap when disabled:
//!
//! - [`Bus`] — a machine-wide, sequence-numbered, bounded timeline of typed
//!   [`Event`]s from every layer (coherence transitions, lock traffic, WAL
//!   appends and forces, LBM migration-triggered forces, buffer steals,
//!   crash injection, recovery phases). Generalizes the coherence-only
//!   `sim::Trace` ring: one global sequence numbering means events from
//!   different layers can be causally ordered against each other.
//! - [`Registry`] — named counters, gauges, and fixed-bucket log₂
//!   [`Histogram`]s with percentile queries and CSV/JSON export.
//! - [`PhaseSpan`] / [`PhaseTiming`] — paired simulated-cost and wall-clock
//!   spans for the phases of IFA crash recovery.
//!
//! The [`Obs`] handle bundles a bus and a registry; it is `Clone` (shared
//! handle semantics) so the engine can own one copy and hand another to the
//! caller. Every emission site compiles to a single relaxed atomic load
//! plus branch while observability is disabled — verified by the
//! `obs_overhead` micro-benchmark in `crates/bench`.

mod bus;
mod metrics;
mod phase;

pub use bus::{Bus, Event, ForceReason, Record};
pub use metrics::{Histogram, HistogramSnapshot, MetricsSnapshot, Registry};
pub use phase::{PhaseSpan, PhaseTiming};

/// Shared observability handle: event bus + metrics registry.
///
/// Cloning yields another handle to the same underlying bus and registry.
/// Both start disabled; [`Obs::enable`] switches them on together.
#[derive(Clone, Default)]
pub struct Obs {
    /// The machine-wide event timeline.
    pub bus: Bus,
    /// Counters, gauges, and histograms.
    pub metrics: Registry,
}

impl Obs {
    /// New disabled handle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enable both bus (with the given ring capacity) and metrics.
    pub fn enable(&self, bus_capacity: usize) {
        self.bus.enable(bus_capacity);
        self.metrics.enable();
    }

    /// Disable both; buffered events and accumulated metrics are retained.
    pub fn disable(&self) {
        self.bus.disable();
        self.metrics.disable();
    }

    /// Whether either half is currently recording.
    pub fn is_enabled(&self) -> bool {
        self.bus.is_enabled() || self.metrics.is_enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_is_shared_across_clones() {
        let a = Obs::new();
        let b = a.clone();
        assert!(!b.is_enabled());
        a.enable(16);
        assert!(b.is_enabled());
        b.bus.emit(5, || Event::WriteLocal { node: 1, line: 2 });
        a.metrics.inc("x");
        assert_eq!(a.bus.len(), 1);
        assert_eq!(b.metrics.counter("x"), 1);
        a.disable();
        assert!(!b.is_enabled());
        b.bus.emit(6, || Event::WriteLocal { node: 1, line: 2 });
        assert_eq!(a.bus.len(), 1, "disabled bus drops events");
    }
}
