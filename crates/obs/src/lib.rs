//! Unified cross-layer observability for the shared-memory database.
//!
//! Three pieces, all dependency-free and cheap when disabled:
//!
//! - [`Bus`] — a machine-wide, sequence-numbered, bounded timeline of typed
//!   [`Event`]s from every layer (coherence transitions, lock traffic, WAL
//!   appends and forces, LBM migration-triggered forces, buffer steals,
//!   crash injection, recovery phases). Generalizes the coherence-only
//!   `sim::Trace` ring: one global sequence numbering means events from
//!   different layers can be causally ordered against each other.
//! - [`Registry`] — named counters, gauges, and fixed-bucket log₂
//!   [`Histogram`]s with percentile queries and CSV/JSON export. Every
//!   metric name lives in the [`names`] catalog.
//! - [`SpanTracker`] — per-transaction spans with simulated-cycle stage
//!   attribution (`lock-wait → execute → log-append → force-wait →
//!   commit`), aggregated into a cycles-by-stage breakdown and latency
//!   histograms with p50/p99/p999.
//! - [`Timeline`] — the availability timeline: a fixed-capacity ring of
//!   simulated-time buckets sampling throughput, in-flight transactions,
//!   and recovery progress, plus exact crash/recovery/first-commit
//!   markers for time-to-first-transaction.
//! - [`chrome_trace`] — Chrome trace-event JSON exporter (Perfetto) over
//!   the bus and the finished spans.
//! - [`PhaseSpan`] / [`PhaseTiming`] — paired simulated-cost and wall-clock
//!   spans for the phases of IFA crash recovery.
//!
//! The [`Obs`] handle bundles all of them; it is `Clone` (shared handle
//! semantics) so the engine can own one copy and hand another to the
//! caller. Every emission site compiles to a single relaxed atomic load
//! plus branch while observability is disabled — verified by the
//! `obs_overhead` micro-benchmark in `crates/bench`.

mod bus;
mod chrome;
mod metrics;
pub mod names;
mod phase;
mod span;
mod timeline;

pub use bus::{Bus, Event, ForceReason, Record};
pub use chrome::chrome_trace;
pub use metrics::{Histogram, HistogramSnapshot, MetricsSnapshot, Registry};
pub use phase::{PhaseSpan, PhaseTiming};
pub use span::{FinishedSpan, SpanAggregate, SpanTracker, Stage, DEFAULT_SPAN_CAPACITY, STAGES};
pub use timeline::{Timeline, TimelineBucket, DEFAULT_BUCKET_CYCLES, DEFAULT_TIMELINE_CAPACITY};

/// Shared observability handle: event bus, metrics registry, transaction
/// spans, and the availability timeline.
///
/// Cloning yields another handle to the same underlying state. All four
/// start disabled; [`Obs::enable`] switches them on together (the
/// timeline with default bucketing — call [`Timeline::enable`] directly
/// for a custom bucket width).
#[derive(Clone, Default)]
pub struct Obs {
    /// The machine-wide event timeline.
    pub bus: Bus,
    /// Counters, gauges, and histograms.
    pub metrics: Registry,
    /// Per-transaction spans with stage attribution.
    pub spans: SpanTracker,
    /// The availability timeline (throughput / in-flight / recovery
    /// progress per simulated-time bucket).
    pub timeline: Timeline,
}

impl Obs {
    /// New disabled handle.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enable every half: the bus (with the given ring capacity), the
    /// metrics registry, the span tracker, and the timeline (default
    /// bucket width and capacity).
    pub fn enable(&self, bus_capacity: usize) {
        self.bus.enable(bus_capacity);
        self.metrics.enable();
        self.spans.enable(0);
        self.timeline.enable(0, 0);
    }

    /// Disable everything; buffered events, accumulated metrics, spans,
    /// and timeline buckets are retained.
    pub fn disable(&self) {
        self.bus.disable();
        self.metrics.disable();
        self.spans.disable();
        self.timeline.disable();
    }

    /// Whether any half is currently recording.
    pub fn is_enabled(&self) -> bool {
        self.bus.is_enabled()
            || self.metrics.is_enabled()
            || self.spans.is_enabled()
            || self.timeline.is_enabled()
    }

    /// Render the bus backlog and the retained finished spans as a Chrome
    /// trace-event JSON document (see [`chrome_trace`]).
    pub fn export_chrome_trace(&self) -> String {
        chrome_trace(&self.bus.snapshot(), &self.spans.finished())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handle_is_shared_across_clones() {
        let a = Obs::new();
        let b = a.clone();
        assert!(!b.is_enabled());
        a.enable(16);
        assert!(b.is_enabled());
        b.bus.emit(5, || Event::WriteLocal { node: 1, line: 2 });
        a.metrics.inc("x");
        assert_eq!(a.bus.len(), 1);
        assert_eq!(b.metrics.counter("x"), 1);
        a.disable();
        assert!(!b.is_enabled());
        b.bus.emit(6, || Event::WriteLocal { node: 1, line: 2 });
        assert_eq!(a.bus.len(), 1, "disabled bus drops events");
    }
}
