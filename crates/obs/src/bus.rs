//! The machine-wide event bus: a sequence-numbered, bounded timeline of
//! typed events from every layer.
//!
//! Unlike `sim::Trace` (coherence-only, owned by the machine), the bus is a
//! shared handle that lock, WAL, buffer, and recovery code all emit into,
//! so one global sequence numbering orders events *across* layers: a line
//! lock, the cache-line migration it allowed, and the log force that
//! migration triggered appear in causal order.
//!
//! Field types are raw integers (`u16` nodes, `u64` lines/pages/txns) to
//! keep this crate dependency-free; the emitting layers unwrap their
//! newtypes at the call site.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Default ring capacity when enabling without an explicit size.
pub const DEFAULT_CAPACITY: usize = 4096;

/// One typed cross-layer event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    // -- Cache coherence (mirrors `sim::TraceEvent`) --------------------
    /// Read served from the local cache.
    ReadHit {
        /// Reading node.
        node: u16,
        /// Line read.
        line: u64,
    },
    /// Read fetched the line from a remote cache (`H_wr` when `downgraded`).
    ReadRemote {
        /// Reading node.
        node: u16,
        /// Line read.
        line: u64,
        /// Whether an exclusive owner was downgraded.
        downgraded: bool,
    },
    /// Write that stayed local.
    WriteLocal {
        /// Writing node.
        node: u16,
        /// Line written.
        line: u64,
    },
    /// Write that took the line from other caches (`H_ww1` when `migration`).
    WriteTake {
        /// Writing node.
        node: u16,
        /// Line written.
        line: u64,
        /// Remote copies invalidated.
        invalidated: u16,
        /// Whether the line migrated from a remote exclusive owner.
        migration: bool,
    },
    /// Write-broadcast update of remote copies.
    WriteBroadcast {
        /// Writing node.
        node: u16,
        /// Line written.
        line: u64,
        /// Remote copies updated.
        updated: u16,
    },
    /// Line lock (`getline`) acquired.
    LineLock {
        /// Acquiring node.
        node: u16,
        /// Locked line.
        line: u64,
    },
    /// Line lock (`releaseline`) released.
    LineUnlock {
        /// Releasing node.
        node: u16,
        /// Unlocked line.
        line: u64,
    },
    /// Line (re)installed by recovery or page fault.
    Install {
        /// Installing node.
        node: u16,
        /// Installed line.
        line: u64,
    },
    /// Crash injected: nodes failed, lines whose every copy died.
    CrashInjected {
        /// How many nodes failed.
        nodes: u16,
        /// Lines destroyed machine-wide.
        lost_lines: u64,
    },

    // -- Lock manager ---------------------------------------------------
    /// Logical lock granted.
    LockAcquire {
        /// Requesting node.
        node: u16,
        /// Requesting transaction.
        txn: u64,
        /// Lock name.
        name: u64,
        /// Exclusive vs shared mode.
        exclusive: bool,
    },
    /// Lock request blocked behind an incompatible holder.
    LockWouldBlock {
        /// Requesting node.
        node: u16,
        /// Requesting transaction.
        txn: u64,
        /// Lock name.
        name: u64,
    },
    /// Lock released; `held_cycles` is the simulated hold time.
    LockRelease {
        /// Releasing node.
        node: u16,
        /// Releasing transaction.
        txn: u64,
        /// Lock name.
        name: u64,
        /// Simulated cycles the lock was held.
        held_cycles: u64,
    },

    // -- WAL / LBM ------------------------------------------------------
    /// Log record appended to a node's in-memory WAL tail.
    WalAppend {
        /// Appending node.
        node: u16,
        /// Assigned LSN.
        lsn: u64,
    },
    /// A node's WAL forced to stable storage.
    WalForce {
        /// Forcing node.
        node: u16,
        /// Records made durable by this force.
        records: u64,
        /// What prompted the force.
        reason: ForceReason,
    },
    /// Stable-LBM bookkeeping forced a *remote* node's log before a line
    /// migration could proceed (the triggered-force path).
    LbmTriggeredForce {
        /// Node whose log was forced.
        owner: u16,
        /// Migrating line that triggered it.
        line: u64,
    },

    // -- Buffer manager -------------------------------------------------
    /// Dirty page stolen (written back before commit).
    BufSteal {
        /// Stealing node.
        node: u16,
        /// Page written back.
        page: u64,
    },
    /// Page flushed to stable storage.
    BufFlush {
        /// Flushing node.
        node: u16,
        /// Page flushed.
        page: u64,
    },

    // -- Crash recovery -------------------------------------------------
    /// IFA restart began for the given crashed nodes.
    RecoveryBegin {
        /// How many nodes are being recovered.
        crashed: u16,
        /// Protocol name (e.g. `"VolatileRedoAll"`).
        protocol: &'static str,
    },
    /// A recovery phase started.
    RecoveryPhaseBegin {
        /// Phase name (e.g. `"redo"`).
        phase: &'static str,
    },
    /// A recovery phase finished.
    RecoveryPhaseEnd {
        /// Phase name.
        phase: &'static str,
        /// Simulated cycles the phase consumed.
        sim_cycles: u64,
        /// Host wall-clock nanoseconds the phase consumed.
        wall_ns: u64,
    },
    /// IFA restart finished.
    RecoveryEnd {
        /// Total simulated recovery cycles.
        sim_cycles: u64,
    },
}

/// Why a WAL force happened.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ForceReason {
    /// Commit-time force.
    Commit,
    /// Stable-LBM eager or triggered force.
    Lbm,
    /// WAL ahead of a page flush (write-ahead rule).
    PageFlush,
    /// Checkpoint force.
    Checkpoint,
}

impl Event {
    /// Short stable name of the variant, for filtering and CSV output.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::ReadHit { .. } => "read_hit",
            Event::ReadRemote { .. } => "read_remote",
            Event::WriteLocal { .. } => "write_local",
            Event::WriteTake { .. } => "write_take",
            Event::WriteBroadcast { .. } => "write_broadcast",
            Event::LineLock { .. } => "line_lock",
            Event::LineUnlock { .. } => "line_unlock",
            Event::Install { .. } => "install",
            Event::CrashInjected { .. } => "crash_injected",
            Event::LockAcquire { .. } => "lock_acquire",
            Event::LockWouldBlock { .. } => "lock_would_block",
            Event::LockRelease { .. } => "lock_release",
            Event::WalAppend { .. } => "wal_append",
            Event::WalForce { .. } => "wal_force",
            Event::LbmTriggeredForce { .. } => "lbm_triggered_force",
            Event::BufSteal { .. } => "buf_steal",
            Event::BufFlush { .. } => "buf_flush",
            Event::RecoveryBegin { .. } => "recovery_begin",
            Event::RecoveryPhaseBegin { .. } => "recovery_phase_begin",
            Event::RecoveryPhaseEnd { .. } => "recovery_phase_end",
            Event::RecoveryEnd { .. } => "recovery_end",
        }
    }
}

/// One bus entry: global sequence number, simulated timestamp, event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record {
    /// Global, monotonically increasing sequence number. Survives ring
    /// eviction and drains, so gaps reveal evicted history.
    pub seq: u64,
    /// Simulated clock (max across nodes) when the event was emitted.
    pub at: u64,
    /// The event itself.
    pub event: Event,
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:>6} t={:>8}] {:?}", self.seq, self.at, self.event)
    }
}

#[derive(Default)]
struct BusInner {
    ring: VecDeque<Record>,
    capacity: usize,
    next_seq: u64,
}

/// Bounded, sequence-numbered event timeline. `Clone` shares the ring.
#[derive(Clone)]
pub struct Bus {
    enabled: Arc<AtomicBool>,
    inner: Arc<Mutex<BusInner>>,
}

impl Default for Bus {
    fn default() -> Self {
        Bus {
            enabled: Arc::new(AtomicBool::new(false)),
            inner: Arc::new(Mutex::new(BusInner {
                ring: VecDeque::new(),
                capacity: DEFAULT_CAPACITY,
                next_seq: 0,
            })),
        }
    }
}

impl Bus {
    /// New disabled bus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether the bus is recording. A disabled bus makes [`Bus::emit`]
    /// a single relaxed load + branch; the closure is never called.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Start recording with the given ring capacity (0 means
    /// [`DEFAULT_CAPACITY`]). Shrinking below the current backlog drops
    /// the *oldest* entries; sequence numbering continues unchanged.
    pub fn enable(&self, capacity: usize) {
        let capacity = if capacity == 0 { DEFAULT_CAPACITY } else { capacity };
        let mut g = self.inner.lock().unwrap();
        g.capacity = capacity;
        while g.ring.len() > capacity {
            g.ring.pop_front();
        }
        drop(g);
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Stop recording; buffered records remain readable.
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Record an event. `at` is the simulated timestamp; the closure is
    /// only evaluated when the bus is enabled, so emission sites pay one
    /// branch when observability is off.
    #[inline]
    pub fn emit(&self, at: u64, event: impl FnOnce() -> Event) {
        if !self.enabled.load(Ordering::Relaxed) {
            return;
        }
        self.emit_slow(at, event());
    }

    fn emit_slow(&self, at: u64, event: Event) {
        let mut g = self.inner.lock().unwrap();
        let seq = g.next_seq;
        g.next_seq += 1;
        if g.ring.len() >= g.capacity {
            g.ring.pop_front();
        }
        g.ring.push_back(Record { seq, at, event });
    }

    /// Copy of the current backlog, oldest first.
    pub fn snapshot(&self) -> Vec<Record> {
        self.inner.lock().unwrap().ring.iter().cloned().collect()
    }

    /// Take the backlog, leaving the ring empty (sequence numbers keep
    /// increasing across drains).
    pub fn drain(&self) -> Vec<Record> {
        self.inner.lock().unwrap().ring.drain(..).collect()
    }

    /// Buffered record count.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().ring.len()
    }

    /// Whether no records are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Current ring capacity.
    pub fn capacity(&self) -> usize {
        self.inner.lock().unwrap().capacity
    }

    /// Total events ever emitted (= next sequence number).
    pub fn emitted(&self) -> u64 {
        self.inner.lock().unwrap().next_seq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(line: u64) -> Event {
        Event::WriteLocal { node: 0, line }
    }

    #[test]
    fn disabled_bus_never_calls_closure() {
        let bus = Bus::new();
        bus.emit(1, || panic!("closure evaluated while disabled"));
        assert!(bus.is_empty());
        assert_eq!(bus.emitted(), 0);
    }

    #[test]
    fn eviction_preserves_global_seq_ordering() {
        let bus = Bus::new();
        bus.enable(4);
        for i in 0..10 {
            bus.emit(i, || ev(i));
        }
        let snap = bus.snapshot();
        assert_eq!(snap.len(), 4, "ring bounded at capacity");
        let seqs: Vec<u64> = snap.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9], "oldest evicted, newest kept");
        assert!(seqs.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
        assert_eq!(bus.emitted(), 10, "eviction does not rewind numbering");
    }

    #[test]
    fn seq_numbering_survives_drain_and_reenable() {
        let bus = Bus::new();
        bus.enable(8);
        bus.emit(0, || ev(1));
        bus.emit(0, || ev(2));
        let first = bus.drain();
        assert_eq!(first.len(), 2);
        bus.emit(0, || ev(3));
        let second = bus.drain();
        assert_eq!(second[0].seq, 2, "drain does not reset seq");
        bus.disable();
        bus.enable(8);
        bus.emit(0, || ev(4));
        assert_eq!(bus.snapshot()[0].seq, 3, "re-enable does not reset seq");
    }

    #[test]
    fn shrinking_capacity_trims_oldest() {
        let bus = Bus::new();
        bus.enable(8);
        for i in 0..8 {
            bus.emit(i, || ev(i));
        }
        bus.enable(3);
        let snap = bus.snapshot();
        assert_eq!(snap.len(), 3);
        assert_eq!(snap[0].seq, 5, "kept the newest three");
        assert_eq!(bus.capacity(), 3);
    }

    #[test]
    fn zero_capacity_means_default() {
        let bus = Bus::new();
        bus.enable(0);
        assert_eq!(bus.capacity(), DEFAULT_CAPACITY);
    }
}
