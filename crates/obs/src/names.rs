//! The metric-name catalog: one compile-time constant per counter,
//! gauge, and histogram name emitted anywhere in the workspace.
//!
//! Dotted metric names are stringly-typed at the [`crate::Registry`] API,
//! so a typo'd name would silently split a metric in two. Every emitting
//! layer imports its names from here, [`CATALOG`] lists them all with
//! kind and layer, and a workspace-level test asserts that every name
//! observed in a representative run is catalogued. The DESIGN.md metric
//! table is generated from [`markdown_table`] and checked by a test, so
//! docs cannot drift from the catalog.

/// Kind of a catalogued metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing `u64`.
    Counter,
    /// Last-write-wins `i64`.
    Gauge,
    /// Fixed-bucket log₂ histogram of `u64` samples.
    Histogram,
}

impl MetricKind {
    /// Lowercase kind name, matching the CSV export's `kind` column.
    pub fn name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One catalogued metric: name, kind, emitting layer, one-line meaning.
#[derive(Clone, Copy, Debug)]
pub struct MetricDef {
    /// The dotted metric name (the registry key).
    pub name: &'static str,
    /// Counter, gauge, or histogram.
    pub kind: MetricKind,
    /// The crate/layer that emits it.
    pub layer: &'static str,
    /// One-line description.
    pub help: &'static str,
}

// -- core / engine ------------------------------------------------------
/// Epochs in which a node's next transaction could not be admitted
/// because its stripe footprint or lock names collided with another
/// node's admitted work.
pub const ENGINE_EPOCH_WAITS: &str = "engine.epoch_waits";
/// Simulated cycles per completed record update.
pub const ENGINE_UPDATE_CYCLES: &str = "engine.update_cycles";
/// Transactions finished by abort (voluntary or retry).
pub const TXN_ABORTED: &str = "txn.aborted";
/// Transactions finished by commit.
pub const TXN_COMMITTED: &str = "txn.committed";
/// Commit-LSN dependencies inherited through violated locks.
pub const TXN_COMMIT_DEPS: &str = "txn.commit_deps";
/// Cascade aborts caused by a crashed commit-dependency predecessor.
pub const TXN_DEP_ABORTS: &str = "txn.dep_aborts";
/// End-to-end simulated cycles from `begin` to commit, per transaction.
pub const TXN_LATENCY_CYCLES: &str = "txn.latency_cycles";

// -- lock ---------------------------------------------------------------
/// Write locks released early at commit-record append (controlled lock
/// violation).
pub const LOCK_EARLY_RELEASED: &str = "lock.early_released";
/// Flat lock-table fast-path grants (no LCB chain walk).
pub const LOCK_FAST_HITS: &str = "lock.fast_hits";
/// Simulated cycles each logical lock was held.
pub const LOCK_HOLD_CYCLES: &str = "lock.hold_cycles";
/// Epoch admissions rejected because a record lock was still held by a
/// transaction admitted for another node (cross-node name collision in
/// the striped lock space).
pub const LOCK_SHARD_CONFLICTS: &str = "lock.shard_conflicts";

// -- sim ----------------------------------------------------------------
/// Buffer-pool line reuses that avoided a stable read.
pub const SIM_BUF_REUSE: &str = "sim.buf_reuse";
/// Open-addressed line-index probe steps.
pub const SIM_INDEX_PROBES: &str = "sim.index_probes";
/// Epoch admissions rejected because a data-page stripe was already
/// claimed by another node's execution lane.
pub const SIM_SHARD_CONFLICTS: &str = "sim.shard_conflicts";

// -- wal ----------------------------------------------------------------
/// Undo+redo image bytes appended to in-memory log tails.
pub const WAL_APPEND_BYTES: &str = "wal.append_bytes";
/// Per-node WAL appender synchronous drains: a lane commit (or the epoch
/// barrier) had to drain a pending coalesced-force window physically
/// before proceeding.
pub const WAL_APPENDER_STALLS: &str = "wal.appender_stalls";
/// Records made durable per physical force.
pub const WAL_FORCE_RECORDS: &str = "wal.force_records";
/// Force requests absorbed into the coalescing window.
pub const WAL_FORCES_COALESCED: &str = "wal.forces_coalesced";
/// Physical log forces that reached stable storage.
pub const WAL_PHYSICAL_FORCES: &str = "wal.physical_forces";

// -- recovery / restart -------------------------------------------------
/// Highest checkpoint LSN that bounded the last redo scan.
pub const RESTART_CKPT_BOUND_LSN: &str = "restart.ckpt_bound_lsn";
/// Analysis scans performed (exactly one per recovery).
pub const RESTART_ANALYSIS_SCANS: &str = "restart.analysis_scans";
/// Simulated cycles to reach the open point of an instant restart (the
/// database serves transactions from here; heap redo is still pending).
pub const RESTART_OPEN_EARLY_CYCLES: &str = "restart.open_early_cycles";
/// Redo writes applied by recoveries.
pub const RESTART_REDO_APPLIED: &str = "restart.redo_applied";
/// Deferred heap redo entries applied by the background drain.
pub const RESTART_REDO_BACKGROUND: &str = "restart.redo_background";
/// Deferred heap redo entries applied inline on first forward-path access.
pub const RESTART_REDO_ON_DEMAND: &str = "restart.redo_on_demand";
/// Redo candidates skipped (cached / stable / superseded).
pub const RESTART_REDO_SKIPPED: &str = "restart.redo_skipped";
/// Log records visited by analysis scans.
pub const RESTART_SCAN_RECORDS: &str = "restart.scan_records";
/// Redo candidates per recovery (heap + index), before pruning.
pub const RECOVERY_REDO_BATCH: &str = "recovery.redo_batch";
/// Whole-recovery simulated cycles (makespan delta).
pub const RECOVERY_TOTAL_CYCLES: &str = "recovery.total_cycles";
/// Per-phase simulated cycles: stable-undo patching.
pub const RECOVERY_PHASE_STABLE_UNDO: &str = "recovery.phase.stable_undo";
/// Per-phase simulated cycles: lost-line reinstall.
pub const RECOVERY_PHASE_REINSTALL: &str = "recovery.phase.reinstall";
/// Per-phase simulated cycles: stale-cache discard.
pub const RECOVERY_PHASE_CACHE_DISCARD: &str = "recovery.phase.cache_discard";
/// Per-phase simulated cycles: redo.
pub const RECOVERY_PHASE_REDO: &str = "recovery.phase.redo";
/// Per-phase simulated cycles: undo of doomed transactions.
pub const RECOVERY_PHASE_UNDO: &str = "recovery.phase.undo";
/// Per-phase simulated cycles: lock-table reconstruction.
pub const RECOVERY_PHASE_LOCK_RECOVERY: &str = "recovery.phase.lock_recovery";
/// Per-phase simulated cycles: transaction-table cleanup.
pub const RECOVERY_PHASE_TXN_TABLE: &str = "recovery.phase.txn_table";
/// Per-phase simulated cycles: unrecognised phase names (fallback).
pub const RECOVERY_PHASE_OTHER: &str = "recovery.phase.other";

/// Every catalogued metric, sorted by name.
pub const CATALOG: &[MetricDef] = &[
    MetricDef {
        name: ENGINE_EPOCH_WAITS,
        kind: MetricKind::Counter,
        layer: "core",
        help: "Node-epochs stalled by a stripe or lock admission conflict",
    },
    MetricDef {
        name: ENGINE_UPDATE_CYCLES,
        kind: MetricKind::Histogram,
        layer: "core",
        help: "Simulated cycles per completed record update",
    },
    MetricDef {
        name: LOCK_EARLY_RELEASED,
        kind: MetricKind::Counter,
        layer: "lock",
        help: "Write locks released early at commit-record append",
    },
    MetricDef {
        name: LOCK_FAST_HITS,
        kind: MetricKind::Counter,
        layer: "lock",
        help: "Flat lock-table fast-path grants (no LCB chain walk)",
    },
    MetricDef {
        name: LOCK_HOLD_CYCLES,
        kind: MetricKind::Histogram,
        layer: "lock",
        help: "Simulated cycles each logical lock was held",
    },
    MetricDef {
        name: LOCK_SHARD_CONFLICTS,
        kind: MetricKind::Counter,
        layer: "lock",
        help: "Epoch admissions rejected by a cross-node lock-name collision",
    },
    MetricDef {
        name: RECOVERY_PHASE_CACHE_DISCARD,
        kind: MetricKind::Histogram,
        layer: "core",
        help: "Recovery phase cycles: stale-cache discard",
    },
    MetricDef {
        name: RECOVERY_PHASE_LOCK_RECOVERY,
        kind: MetricKind::Histogram,
        layer: "core",
        help: "Recovery phase cycles: lock-table reconstruction",
    },
    MetricDef {
        name: RECOVERY_PHASE_OTHER,
        kind: MetricKind::Histogram,
        layer: "core",
        help: "Recovery phase cycles: unrecognised phase names",
    },
    MetricDef {
        name: RECOVERY_PHASE_REDO,
        kind: MetricKind::Histogram,
        layer: "core",
        help: "Recovery phase cycles: redo",
    },
    MetricDef {
        name: RECOVERY_PHASE_REINSTALL,
        kind: MetricKind::Histogram,
        layer: "core",
        help: "Recovery phase cycles: lost-line reinstall",
    },
    MetricDef {
        name: RECOVERY_PHASE_STABLE_UNDO,
        kind: MetricKind::Histogram,
        layer: "core",
        help: "Recovery phase cycles: stable-undo patching",
    },
    MetricDef {
        name: RECOVERY_PHASE_TXN_TABLE,
        kind: MetricKind::Histogram,
        layer: "core",
        help: "Recovery phase cycles: transaction-table cleanup",
    },
    MetricDef {
        name: RECOVERY_PHASE_UNDO,
        kind: MetricKind::Histogram,
        layer: "core",
        help: "Recovery phase cycles: undo of doomed transactions",
    },
    MetricDef {
        name: RECOVERY_REDO_BATCH,
        kind: MetricKind::Histogram,
        layer: "core",
        help: "Redo candidates per recovery (heap + index), before pruning",
    },
    MetricDef {
        name: RECOVERY_TOTAL_CYCLES,
        kind: MetricKind::Histogram,
        layer: "core",
        help: "Whole-recovery simulated cycles (makespan delta)",
    },
    MetricDef {
        name: RESTART_ANALYSIS_SCANS,
        kind: MetricKind::Counter,
        layer: "core",
        help: "Analysis scans performed (exactly one per recovery)",
    },
    MetricDef {
        name: RESTART_CKPT_BOUND_LSN,
        kind: MetricKind::Gauge,
        layer: "core",
        help: "Highest checkpoint LSN that bounded the last redo scan",
    },
    MetricDef {
        name: RESTART_OPEN_EARLY_CYCLES,
        kind: MetricKind::Counter,
        layer: "core",
        help: "Simulated cycles to reach the open point of an instant restart",
    },
    MetricDef {
        name: RESTART_REDO_APPLIED,
        kind: MetricKind::Counter,
        layer: "core",
        help: "Redo writes applied by recoveries",
    },
    MetricDef {
        name: RESTART_REDO_BACKGROUND,
        kind: MetricKind::Counter,
        layer: "core",
        help: "Deferred heap redo entries applied by the background drain",
    },
    MetricDef {
        name: RESTART_REDO_ON_DEMAND,
        kind: MetricKind::Counter,
        layer: "core",
        help: "Deferred heap redo entries applied inline on first access",
    },
    MetricDef {
        name: RESTART_REDO_SKIPPED,
        kind: MetricKind::Counter,
        layer: "core",
        help: "Redo candidates skipped (cached / stable / superseded)",
    },
    MetricDef {
        name: RESTART_SCAN_RECORDS,
        kind: MetricKind::Counter,
        layer: "core",
        help: "Log records visited by analysis scans",
    },
    MetricDef {
        name: SIM_BUF_REUSE,
        kind: MetricKind::Counter,
        layer: "sim",
        help: "Buffer-pool line reuses that avoided a stable read",
    },
    MetricDef {
        name: SIM_INDEX_PROBES,
        kind: MetricKind::Counter,
        layer: "sim",
        help: "Open-addressed line-index probe steps",
    },
    MetricDef {
        name: SIM_SHARD_CONFLICTS,
        kind: MetricKind::Counter,
        layer: "sim",
        help: "Epoch admissions rejected by a claimed data-page stripe",
    },
    MetricDef {
        name: TXN_ABORTED,
        kind: MetricKind::Counter,
        layer: "core",
        help: "Transactions finished by abort (voluntary or retry)",
    },
    MetricDef {
        name: TXN_COMMIT_DEPS,
        kind: MetricKind::Counter,
        layer: "core",
        help: "Commit-LSN dependencies inherited through violated locks",
    },
    MetricDef {
        name: TXN_COMMITTED,
        kind: MetricKind::Counter,
        layer: "core",
        help: "Transactions finished by commit",
    },
    MetricDef {
        name: TXN_DEP_ABORTS,
        kind: MetricKind::Counter,
        layer: "core",
        help: "Cascade aborts caused by a crashed commit-dependency predecessor",
    },
    MetricDef {
        name: TXN_LATENCY_CYCLES,
        kind: MetricKind::Histogram,
        layer: "core",
        help: "End-to-end simulated cycles from begin to commit/abort",
    },
    MetricDef {
        name: WAL_APPEND_BYTES,
        kind: MetricKind::Counter,
        layer: "wal",
        help: "Undo+redo image bytes appended to in-memory log tails",
    },
    MetricDef {
        name: WAL_APPENDER_STALLS,
        kind: MetricKind::Counter,
        layer: "wal",
        help: "Per-node appender drains of a pending coalesced-force window",
    },
    MetricDef {
        name: WAL_FORCE_RECORDS,
        kind: MetricKind::Histogram,
        layer: "wal",
        help: "Records made durable per physical force",
    },
    MetricDef {
        name: WAL_FORCES_COALESCED,
        kind: MetricKind::Counter,
        layer: "wal",
        help: "Force requests absorbed into the coalescing window",
    },
    MetricDef {
        name: WAL_PHYSICAL_FORCES,
        kind: MetricKind::Counter,
        layer: "wal",
        help: "Physical log forces that reached stable storage",
    },
];

/// Whether `name` is in the catalog.
pub fn is_catalogued(name: &str) -> bool {
    CATALOG.iter().any(|d| d.name == name)
}

/// The catalog entry for `name`, if any.
pub fn lookup(name: &str) -> Option<&'static MetricDef> {
    CATALOG.iter().find(|d| d.name == name)
}

/// The catalog rendered as a GitHub-flavored markdown table (the DESIGN.md
/// metric table is this output verbatim; a test keeps them in sync).
pub fn markdown_table() -> String {
    let mut out = String::from("| name | kind | layer | meaning |\n|---|---|---|---|\n");
    for d in CATALOG {
        out.push_str(&format!("| `{}` | {} | {} | {} |\n", d.name, d.kind.name(), d.layer, d.help));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_sorted_and_unique() {
        for w in CATALOG.windows(2) {
            assert!(w[0].name < w[1].name, "{} must sort before {}", w[0].name, w[1].name);
        }
    }

    #[test]
    fn lookup_and_membership_agree() {
        assert!(is_catalogued(LOCK_HOLD_CYCLES));
        assert_eq!(lookup(LOCK_HOLD_CYCLES).unwrap().kind, MetricKind::Histogram);
        assert!(!is_catalogued("lock.hold_cycle"), "typo'd names are rejected");
        assert!(lookup("no.such.metric").is_none());
    }

    #[test]
    fn markdown_table_lists_every_name() {
        let table = markdown_table();
        assert!(table.starts_with("| name | kind | layer | meaning |"));
        for d in CATALOG {
            assert!(table.contains(d.name), "{} missing from table", d.name);
        }
    }
}
