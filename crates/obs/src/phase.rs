//! Paired simulated-cost and wall-clock spans for recovery phases.
//!
//! IFA restart is phased (undo stolen writes, reinstall, structural
//! restore, cache discard, redo, undo, lock-space recovery, …). Each phase
//! is bracketed with a [`PhaseSpan`], producing a [`PhaseTiming`] that
//! carries both the simulated machine cycles the phase consumed (the
//! paper's cost model) and host wall-clock nanoseconds (this
//! implementation's cost).

use std::time::Instant;

/// How long one named recovery phase took.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PhaseTiming {
    /// Phase name (stable identifier, e.g. `"redo"`).
    pub phase: &'static str,
    /// Simulated machine cycles consumed by the phase.
    pub sim_cycles: u64,
    /// Host wall-clock nanoseconds consumed by the phase.
    pub wall_ns: u64,
}

/// An open phase span; [`PhaseSpan::end`] closes it into a [`PhaseTiming`].
#[derive(Debug)]
pub struct PhaseSpan {
    phase: &'static str,
    sim_start: u64,
    wall_start: Instant,
}

impl PhaseSpan {
    /// Open a span at simulated time `sim_now`.
    pub fn begin(phase: &'static str, sim_now: u64) -> Self {
        PhaseSpan { phase, sim_start: sim_now, wall_start: Instant::now() }
    }

    /// The phase name this span was opened with.
    pub fn phase(&self) -> &'static str {
        self.phase
    }

    /// Close the span at simulated time `sim_now`.
    pub fn end(self, sim_now: u64) -> PhaseTiming {
        PhaseTiming {
            phase: self.phase,
            sim_cycles: sim_now.saturating_sub(self.sim_start),
            wall_ns: self.wall_start.elapsed().as_nanos() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_measures_both_clocks() {
        let span = PhaseSpan::begin("redo", 100);
        assert_eq!(span.phase(), "redo");
        let t = span.end(350);
        assert_eq!(t.phase, "redo");
        assert_eq!(t.sim_cycles, 250);
        // Wall time is monotonic; just check it was populated sanely.
        assert!(t.wall_ns < 1_000_000_000, "a span over nothing took {}ns", t.wall_ns);
    }

    #[test]
    fn backwards_sim_clock_saturates() {
        let span = PhaseSpan::begin("undo", 500);
        assert_eq!(span.end(400).sim_cycles, 0);
    }
}
