//! Property tests for page geometry and the stable page store.

use proptest::prelude::*;
use smdb_storage::{PageGeometry, PageId, StableDb};

proptest! {
    /// line_addr / page_of_addr are inverse bijections over any geometry.
    #[test]
    fn geometry_addressing_round_trips(
        line_size in 16usize..512,
        lines_per_page in 1usize..64,
        page in 0u32..10_000,
        idx in 0usize..64,
    ) {
        let g = PageGeometry::new(line_size, lines_per_page);
        let idx = idx % lines_per_page;
        let addr = g.line_addr(PageId(page), idx);
        prop_assert_eq!(g.page_of_addr(addr), (PageId(page), idx));
        // Addresses of consecutive pages are contiguous and disjoint.
        let next = g.line_addr(PageId(page + 1), 0);
        prop_assert_eq!(next, g.line_addr(PageId(page), lines_per_page - 1) + 1);
        // Byte offsets stay within the page.
        prop_assert!(g.line_offset(idx) + line_size <= g.page_size());
    }

    /// Writes to the stable db read back exactly; patches modify only the
    /// targeted range.
    #[test]
    fn stable_db_write_patch_read(
        seed_byte in any::<u8>(),
        patch_off in 0usize..256,
        patch in proptest::collection::vec(any::<u8>(), 1..32),
    ) {
        let g = PageGeometry::new(64, 8); // 512-byte pages
        let mut db = StableDb::new(g);
        db.format(2);
        let img = vec![seed_byte; g.page_size()];
        db.write_page(PageId(1), &img);
        let patch_off = patch_off.min(g.page_size() - patch.len());
        db.patch(PageId(1), patch_off, &patch);
        let got = db.read_page(PageId(1)).unwrap().to_vec();
        prop_assert_eq!(&got[patch_off..patch_off + patch.len()], &patch[..]);
        for (i, b) in got.iter().enumerate() {
            if i < patch_off || i >= patch_off + patch.len() {
                prop_assert_eq!(*b, seed_byte, "byte {} clobbered", i);
            }
        }
        // The untouched page stays zero.
        prop_assert!(db.read_page(PageId(0)).unwrap().iter().all(|b| *b == 0));
    }
}
