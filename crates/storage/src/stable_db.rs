//! The stable database: a durable page store on the shared disks.

use crate::page::{PageGeometry, PageId};
use serde::{Deserialize, Serialize};
use smdb_fault::{FaultCrash, FaultInjector};
use std::collections::BTreeMap;

/// Fault site: visited once per cache-line-sized sector of a page flush.
/// Firing at ordinal `k` within a flush leaves a **torn page**: the first
/// `k` sectors carry the new image, the rest keep the old one (zeroes if
/// the page was never written). The acting node is the flusher.
pub const FAULT_FLUSH_LINE: &str = "storage.flush.line";

/// I/O counters for the stable database.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StableDbStats {
    /// Page reads served.
    pub page_reads: u64,
    /// Page writes (flushes) performed.
    pub page_writes: u64,
}

/// A durable page store. Contents survive any combination of node crashes
/// (the disks are shared and independent of node memory — paper §2).
///
/// In-place updating is modelled faithfully: a page write replaces the
/// stable image wholesale, so flushing a page containing uncommitted data
/// (a *steal*) really does overwrite the last committed image — which is
/// why the WAL protocol must force undo log records first.
#[derive(Clone, Debug)]
pub struct StableDb {
    geometry: PageGeometry,
    pages: BTreeMap<PageId, Box<[u8]>>,
    stats: StableDbStats,
    fault: FaultInjector,
}

impl StableDb {
    /// Create an empty stable database with the given geometry.
    pub fn new(geometry: PageGeometry) -> Self {
        StableDb {
            geometry,
            pages: BTreeMap::new(),
            stats: StableDbStats::default(),
            fault: FaultInjector::new(),
        }
    }

    /// Install a fault injector; the stable database hosts the torn-write
    /// crash point ([`FAULT_FLUSH_LINE`]).
    pub fn set_fault_injector(&mut self, fault: FaultInjector) {
        self.fault = fault;
    }

    /// The page geometry.
    pub fn geometry(&self) -> PageGeometry {
        self.geometry
    }

    /// Format `count` pages of zeroes starting at page 0 (initial database
    /// load). Does not count toward I/O statistics.
    pub fn format(&mut self, count: u32) {
        let size = self.geometry.page_size();
        for p in 0..count {
            self.pages.insert(PageId(p), vec![0u8; size].into_boxed_slice());
        }
    }

    /// Number of allocated pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Read a page image. Returns `None` for an unallocated page.
    /// Increments the read counter; the caller charges the disk latency to
    /// the acting node's clock.
    pub fn read_page(&mut self, page: PageId) -> Option<&[u8]> {
        self.stats.page_reads += 1;
        self.pages.get(&page).map(|b| &b[..])
    }

    /// Write (flush) a full page image. `data` must be exactly one page.
    pub fn write_page(&mut self, page: PageId, data: &[u8]) {
        assert_eq!(data.len(), self.geometry.page_size(), "page image size mismatch");
        self.stats.page_writes += 1;
        self.pages.insert(page, data.to_vec().into_boxed_slice());
    }

    /// Write (flush) a full page image on behalf of `node`, visiting the
    /// [`FAULT_FLUSH_LINE`] crash point once per line-sized sector. If the
    /// point fires at sector `k`, the flush is **torn**: sectors `< k`
    /// carry the new image, the rest keep the old contents (zeroes if the
    /// page was never allocated), and the error demands that `node` be
    /// crashed. Disk sectors are assumed atomic at line granularity — the
    /// same assumption the paper's in-place update model makes — so a torn
    /// flush never splices *within* a line.
    pub fn write_page_checked(
        &mut self,
        node: u16,
        page: PageId,
        data: &[u8],
    ) -> Result<(), FaultCrash> {
        assert_eq!(data.len(), self.geometry.page_size(), "page image size mismatch");
        let ls = self.geometry.line_size;
        let sectors = self.geometry.lines_per_page;
        for k in 0..sectors {
            if let Some(c) = self.fault.hit(FAULT_FLUSH_LINE, node) {
                if k > 0 {
                    let old = self
                        .pages
                        .entry(page)
                        .or_insert_with(|| vec![0u8; data.len()].into_boxed_slice());
                    old[..k * ls].copy_from_slice(&data[..k * ls]);
                    self.stats.page_writes += 1;
                }
                return Err(c);
            }
        }
        self.write_page(page, data);
        Ok(())
    }

    /// Overwrite a single record-sized byte range within a stable page
    /// image *without* counting as a page write. Restart recovery uses this
    /// to apply undo's of stolen uncommitted updates directly to the stable
    /// database (the I/O cost is charged by the caller as a page
    /// read-modify-write).
    pub fn patch(&mut self, page: PageId, offset: usize, bytes: &[u8]) {
        let img = self.pages.get_mut(&page).expect("patching unallocated page");
        img[offset..offset + bytes.len()].copy_from_slice(bytes);
    }

    /// Zero-cost snapshot of a page image for oracles and tests.
    pub fn peek_page(&self, page: PageId) -> Option<&[u8]> {
        self.pages.get(&page).map(|b| &b[..])
    }

    /// I/O statistics.
    pub fn stats(&self) -> &StableDbStats {
        &self.stats
    }

    /// Reset I/O statistics.
    pub fn reset_stats(&mut self) {
        self.stats = StableDbStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn db() -> StableDb {
        let mut db = StableDb::new(PageGeometry::new(64, 4));
        db.format(2);
        db
    }

    #[test]
    fn format_zeroes_pages() {
        let mut db = db();
        assert_eq!(db.page_count(), 2);
        assert!(db.read_page(PageId(0)).unwrap().iter().all(|b| *b == 0));
    }

    #[test]
    fn write_then_read_round_trips() {
        let mut db = db();
        let img = vec![7u8; 256];
        db.write_page(PageId(1), &img);
        assert_eq!(db.read_page(PageId(1)).unwrap(), &img[..]);
        assert_eq!(db.stats().page_writes, 1);
        assert_eq!(db.stats().page_reads, 1);
    }

    #[test]
    fn unallocated_page_reads_none() {
        let mut db = db();
        assert!(db.read_page(PageId(9)).is_none());
    }

    #[test]
    fn patch_modifies_in_place() {
        let mut db = db();
        db.patch(PageId(0), 10, &[1, 2, 3]);
        let img = db.peek_page(PageId(0)).unwrap();
        assert_eq!(&img[10..13], &[1, 2, 3]);
        assert_eq!(db.stats().page_writes, 0, "patch is not a counted page write");
    }

    #[test]
    #[should_panic(expected = "size mismatch")]
    fn wrong_size_write_rejected() {
        let mut db = db();
        db.write_page(PageId(0), &[0u8; 100]);
    }
}
