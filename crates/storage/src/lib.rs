//! # smdb-storage — stable storage for the shared-memory database
//!
//! Models the shared disks of the paper's system model (§2): every node is
//! connected to all disks. Two durable facilities are provided:
//!
//! * [`StableDb`] — the stable database: a page store with page-granularity
//!   I/O. The unit of I/O is a page; the unit of coherence is a cache line
//!   (smaller than a page), so a page spans several lines — captured by
//!   [`PageGeometry`].
//! * Disk-latency accounting: operations report their simulated cost so the
//!   caller can charge the acting node's clock.
//!
//! Durability semantics: anything written here survives *any* set of node
//! crashes. The stable log devices live in `smdb-wal` (they are
//! log-structured and tightly coupled to LSN bookkeeping).

mod page;
mod stable_db;

pub use page::{PageGeometry, PageId};
pub use stable_db::{StableDb, StableDbStats, FAULT_FLUSH_LINE};

/// Byte offset of the Page-LSN field within every page (§6 of the paper:
/// by convention the Page-LSN lives in the *first cache line* of the page;
/// we place it in the first 8 bytes).
pub const PAGE_LSN_OFFSET: usize = 0;
/// Size of the Page-LSN field, bytes.
pub const PAGE_LSN_SIZE: usize = 8;
/// First byte of page payload, after the Page-LSN field.
pub const PAGE_DATA_OFFSET: usize = PAGE_LSN_OFFSET + PAGE_LSN_SIZE;
