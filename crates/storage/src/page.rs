//! Page identifiers and page ↔ cache-line geometry.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A database page: the unit of I/O against the stable database.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct PageId(pub u32);

impl fmt::Debug for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Geometry relating pages to cache lines.
///
/// The paper (§2): *"While the unit of I/O is a page, the unit of coherency
/// is a cache line, and is typically smaller than a page."* A page occupies
/// `lines_per_page` consecutive cache-line addresses; line index 0 of every
/// page holds, by convention (§6), the Page-LSN field.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct PageGeometry {
    /// Cache line size, bytes.
    pub line_size: usize,
    /// Cache lines per page.
    pub lines_per_page: usize,
}

impl PageGeometry {
    /// Standard geometry: 128-byte lines, 32 lines per page → 4 KiB pages.
    pub const STANDARD: PageGeometry = PageGeometry { line_size: 128, lines_per_page: 32 };

    /// Create a geometry. Both dimensions must be non-zero.
    pub fn new(line_size: usize, lines_per_page: usize) -> Self {
        assert!(line_size > 0 && lines_per_page > 0, "degenerate page geometry");
        PageGeometry { line_size, lines_per_page }
    }

    /// Page size in bytes.
    pub fn page_size(&self) -> usize {
        self.line_size * self.lines_per_page
    }

    /// The cache-line address of line `idx` within `page`.
    ///
    /// Statically addressed: heap pages occupy the line-address range below
    /// `smdb_sim::LineId::DYNAMIC_BASE` — that is, `LineId` =
    /// `page * lines_per_page + idx`. (We avoid a dependency on `smdb-sim`
    /// here by returning the raw address; callers wrap it in `LineId`.)
    pub fn line_addr(&self, page: PageId, idx: usize) -> u64 {
        assert!(idx < self.lines_per_page, "line index out of page");
        page.0 as u64 * self.lines_per_page as u64 + idx as u64
    }

    /// Inverse of [`PageGeometry::line_addr`]: which page and line index a
    /// raw line address belongs to.
    pub fn page_of_addr(&self, addr: u64) -> (PageId, usize) {
        let page = (addr / self.lines_per_page as u64) as u32;
        let idx = (addr % self.lines_per_page as u64) as usize;
        (PageId(page), idx)
    }

    /// Byte offset of line `idx` within the page image.
    pub fn line_offset(&self, idx: usize) -> usize {
        assert!(idx < self.lines_per_page, "line index out of page");
        idx * self.line_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_geometry_is_4k() {
        assert_eq!(PageGeometry::STANDARD.page_size(), 4096);
    }

    #[test]
    fn line_addr_round_trips() {
        let g = PageGeometry::new(128, 8);
        for page in [0u32, 1, 77] {
            for idx in 0..8 {
                let addr = g.line_addr(PageId(page), idx);
                assert_eq!(g.page_of_addr(addr), (PageId(page), idx));
            }
        }
    }

    #[test]
    fn pages_do_not_overlap() {
        let g = PageGeometry::new(64, 4);
        let last_of_p0 = g.line_addr(PageId(0), 3);
        let first_of_p1 = g.line_addr(PageId(1), 0);
        assert_eq!(first_of_p1, last_of_p0 + 1);
    }

    #[test]
    #[should_panic(expected = "out of page")]
    fn line_index_bounds_checked() {
        let g = PageGeometry::new(64, 4);
        let _ = g.line_addr(PageId(0), 4);
    }
}
