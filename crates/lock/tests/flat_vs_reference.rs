//! Differential testing: the flat-slot lock manager (placement-hint cache,
//! inline entry arrays, per-txn chain arena, re-acquire fast lane) against
//! the pure-logic [`ReferenceLockManager`].
//!
//! Random schedules of acquire / poll / upgrade / cancel / release /
//! release-all / early-release-all must produce *identical* outcomes
//! (grant / already-held / queue / capacity error), identical promotion
//! lists, identical per-transaction chains, identical violation-edge
//! inheritance, and — because the lock log is what recovery replays —
//! identical per-node lock-record streams.

use proptest::prelude::*;
use smdb_lock::reference::{RefLockRecord, ReferenceLockManager};
use smdb_lock::{LcbGeometry, LockManager, LockMode, LockOutcome, LockTable, ViolationTable};
use smdb_sim::{Machine, NodeId, SimConfig, TxnId};
use smdb_wal::{LogPayload, LogSet, Lsn};
use std::collections::BTreeSet;

const NODES: u16 = 4;
const SEQS: u64 = 4;
const NAMES: u64 = 10;

#[derive(Clone, Debug)]
enum Op {
    Acquire { node: u16, seq: u64, name: u64, exclusive: bool },
    Poll { node: u16, seq: u64, name: u64, exclusive: bool },
    Release { node: u16, seq: u64, name: u64 },
    CancelWait { node: u16, seq: u64, name: u64 },
    ReleaseAll { node: u16, seq: u64 },
    EarlyReleaseAll { node: u16, seq: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let ids = (0..NODES, 1..SEQS + 1);
    prop_oneof![
        5 => (ids.clone(), 1..NAMES + 1, any::<bool>()).prop_map(|((node, seq), name, exclusive)| {
            Op::Acquire { node, seq, name, exclusive }
        }),
        3 => (ids.clone(), 1..NAMES + 1, any::<bool>()).prop_map(|((node, seq), name, exclusive)| {
            Op::Poll { node, seq, name, exclusive }
        }),
        2 => (ids.clone(), 1..NAMES + 1)
            .prop_map(|((node, seq), name)| Op::Release { node, seq, name }),
        1 => (ids.clone(), 1..NAMES + 1)
            .prop_map(|((node, seq), name)| Op::CancelWait { node, seq, name }),
        1 => ids.clone().prop_map(|(node, seq)| Op::ReleaseAll { node, seq }),
        1 => ids.prop_map(|(node, seq)| Op::EarlyReleaseAll { node, seq }),
    ]
}

fn setup() -> (Machine, LogSet, LockManager, ReferenceLockManager) {
    let mut m = Machine::new(SimConfig::new(NODES));
    let logs = LogSet::new(NODES);
    let geom = LcbGeometry::co_located();
    let reference = ReferenceLockManager::new(geom.max_holders, geom.max_waiters);
    let table = LockTable::create(&mut m, NodeId(0), 9000, 8, geom).expect("create table");
    (m, logs, LockManager::new(table), reference)
}

fn t(node: u16, seq: u64) -> TxnId {
    TxnId::new(NodeId(node), seq)
}

/// The real manager's logical lock-record stream for `node` (recovery's
/// input), in the reference model's vocabulary.
fn lock_stream(logs: &LogSet, node: NodeId) -> Vec<RefLockRecord> {
    logs.log(node)
        .records()
        .iter()
        .filter_map(|r| match &r.payload {
            LogPayload::LockAcquire { txn, name, mode, queued } => Some(RefLockRecord::Acquire {
                txn: *txn,
                name: *name,
                mode: LockMode::from(*mode),
                queued: *queued,
            }),
            LogPayload::LockRelease { txn, name, wait_only } => {
                Some(RefLockRecord::Release { txn: *txn, name: *name, wait_only: *wait_only })
            }
            _ => None,
        })
        .collect()
}

fn run_schedule(
    ops: &[Op],
    m: &mut Machine,
    logs: &mut LogSet,
    mgr: &mut LockManager,
    reference: &mut ReferenceLockManager,
) -> Result<(), TestCaseError> {
    // Violation-edge lockstep: one table fed by the real manager's
    // early releases, one by the model's. Granted acquires must then
    // inherit identical dependency edges from both.
    let mut real_viol = ViolationTable::new();
    let mut model_viol = ViolationTable::new();
    let mut next_lsn = 1u64;
    for op in ops {
        match *op {
            Op::Acquire { node, seq, name, exclusive } => {
                let txn = t(node, seq);
                let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
                let real = mgr.acquire(m, logs, txn, name, mode);
                let model = reference.acquire_from(txn, name, mode, txn.node());
                prop_assert_eq!(&real, &model, "acquire {:?} {} {:?}", txn, name, mode);
                if real == Ok(LockOutcome::Granted) {
                    prop_assert_eq!(
                        real_viol.deps_for(name, txn),
                        model_viol.deps_for(name, txn),
                        "inherited deps of {:?} on {}",
                        txn,
                        name
                    );
                }
            }
            Op::Poll { node, seq, name, exclusive } => {
                let txn = t(node, seq);
                let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
                let real = mgr.poll_from(m, logs, txn, name, mode, txn.node());
                let model = reference.poll_from(txn, name, mode, txn.node());
                prop_assert_eq!(&real, &model, "poll {:?} {} {:?}", txn, name, mode);
                if real == Ok(LockOutcome::Granted) {
                    prop_assert_eq!(
                        real_viol.deps_for(name, txn),
                        model_viol.deps_for(name, txn),
                        "inherited deps of {:?} on {} (poll)",
                        txn,
                        name
                    );
                }
            }
            Op::EarlyReleaseAll { node, seq } => {
                let txn = t(node, seq);
                let real = mgr.early_release_all(m, logs, txn);
                let model = reference.early_release_all(txn);
                prop_assert_eq!(&real, &model, "early_release_all {:?}", txn);
                if let Ok((released, _)) = real {
                    let lsn = Lsn(next_lsn);
                    next_lsn += 1;
                    let xnames: Vec<u64> = released
                        .iter()
                        .filter(|(_, m)| *m == LockMode::Exclusive)
                        .map(|(n, _)| *n)
                        .collect();
                    real_viol.record_release(txn, lsn, &xnames);
                    let (model_released, _) = model.expect("compared equal to Ok");
                    let model_xnames: Vec<u64> = model_released
                        .iter()
                        .filter(|(_, m)| *m == LockMode::Exclusive)
                        .map(|(n, _)| *n)
                        .collect();
                    model_viol.record_release(txn, lsn, &model_xnames);
                }
            }
            Op::Release { node, seq, name } => {
                let txn = t(node, seq);
                let real = mgr.release(m, logs, txn, name);
                let model = reference.release(txn, name);
                prop_assert_eq!(&real, &model, "release {:?} {}", txn, name);
            }
            Op::CancelWait { node, seq, name } => {
                let txn = t(node, seq);
                let real = mgr.cancel_wait(m, logs, txn, name);
                let model = reference.cancel_wait(txn, name);
                prop_assert_eq!(&real, &model, "cancel {:?} {}", txn, name);
            }
            Op::ReleaseAll { node, seq } => {
                let txn = t(node, seq);
                let real = mgr.release_all(m, logs, txn);
                let model = reference.release_all(txn);
                prop_assert_eq!(&real, &model, "release_all {:?}", txn);
                // The engine resolves a releaser's violation edges when its
                // commit is acknowledged (or its cascade handled); the
                // final lock release stands in for that here.
                real_viol.resolve(txn);
                model_viol.resolve(txn);
            }
        }
    }
    prop_assert_eq!(real_viol.edges_recorded(), model_viol.edges_recorded(), "edge totals");
    prop_assert_eq!(real_viol.violated_names(), model_viol.violated_names(), "violated names");
    Ok(())
}

fn assert_equivalent_state(
    m: &mut Machine,
    mgr: &LockManager,
    reference: &ReferenceLockManager,
    query_node: NodeId,
    sorted: bool,
) -> Result<(), TestCaseError> {
    let mgr2 = mgr.clone();
    for name in 1..=NAMES {
        let mut real_h = mgr2.holders_of(m, query_node, name).expect("holders_of");
        let mut real_w = mgr2.waiters_of(m, query_node, name).expect("waiters_of");
        let mut model_h = reference.holders_of(name);
        let mut model_w = reference.waiters_of(name);
        if sorted {
            real_h.sort_by_key(|e| e.txn);
            real_w.sort_by_key(|e| e.txn);
            model_h.sort_by_key(|e| e.txn);
            model_w.sort_by_key(|e| e.txn);
        }
        prop_assert_eq!(&real_h, &model_h, "holders of {}", name);
        prop_assert_eq!(&real_w, &model_w, "waiters of {}", name);
    }
    for node in 0..NODES {
        for seq in 1..=SEQS {
            let txn = t(node, seq);
            let real = mgr.held_locks(txn);
            let model = reference.held_locks(txn);
            if sorted {
                let real: BTreeSet<u64> = real.into_iter().collect();
                let model: BTreeSet<u64> = model.into_iter().collect();
                prop_assert_eq!(real, model, "chain of {:?}", txn);
            } else {
                prop_assert_eq!(real, model, "chain of {:?}", txn);
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn flat_lock_table_matches_reference(
        ops in proptest::collection::vec(op_strategy(), 1..120),
    ) {
        let (mut m, mut logs, mut mgr, mut reference) = setup();
        run_schedule(&ops, &mut m, &mut logs, &mut mgr, &mut reference)?;
        // Identical lock state, chain state (order included), and — the
        // part recovery depends on — identical per-node lock-log streams.
        assert_equivalent_state(&mut m, &mgr, &reference, NodeId(0), false)?;
        for node in 0..NODES {
            prop_assert_eq!(
                lock_stream(&logs, NodeId(node)),
                reference.log_of(NodeId(node)).to_vec(),
                "lock-record stream of node {}",
                node
            );
        }
    }

    #[test]
    fn flat_lock_table_matches_reference_across_crash(
        ops in proptest::collection::vec(op_strategy(), 1..100),
        crash_node in 0..NODES,
    ) {
        let (mut m, mut logs, mut mgr, mut reference) = setup();
        run_schedule(&ops, &mut m, &mut logs, &mut mgr, &mut reference)?;
        // Wait-queue order is not durable state (§4.2.2 reconstructs queued
        // requests from per-node logs, losing global FIFO order), so a
        // promotion race between two queued waiters after the crash could
        // resolve differently in the two implementations. Drain all waiters
        // first — the no-wait engines abort waiting transactions anyway —
        // then the post-crash state is uniquely determined.
        loop {
            let mut cancelled = false;
            for name in 1..=NAMES {
                for w in reference.waiters_of(name) {
                    let real = mgr.cancel_wait(&mut m, &mut logs, w.txn, name);
                    let model = reference.cancel_wait(w.txn, name);
                    prop_assert_eq!(&real, &model, "drain {:?} {}", w.txn, name);
                    cancelled = true;
                }
            }
            if !cancelled {
                break;
            }
        }
        let crashed = NodeId(crash_node);
        m.crash(&[crashed]);
        logs.crash(&[crashed]);
        reference.crash_node(crashed);
        let recovery_node = m.surviving_nodes()[0];
        let active: BTreeSet<TxnId> = (0..NODES)
            .filter(|n| *n != crash_node)
            .flat_map(|n| (1..=SEQS).map(move |s| t(n, s)))
            .collect();
        mgr.recover(&mut m, &mut logs, &[crashed], &active, recovery_node)
            .map_err(|e| TestCaseError::fail(format!("recover: {e}")))?;
        // Reconstruction packs multi-holder LCBs in log-scan order, so
        // compare entry *sets* (with modes), not entry order.
        assert_equivalent_state(&mut m, &mgr, &reference, recovery_node, true)?;
        // The fast lane must stay truthful after recovery: every grant the
        // reference still sees is answerable from the rebuilt chains.
        for name in 1..=NAMES {
            for h in reference.holders_of(name) {
                prop_assert_eq!(
                    mgr.held_mode(h.txn, name),
                    Some(h.mode),
                    "chain mode of {:?} on {}",
                    h.txn,
                    name
                );
            }
        }
    }
}

/// Deterministic §4.2.2 promotion-across-crash scenario with a single
/// waiter (no ordering ambiguity): the holder's node crashes *and* takes
/// the only copy of the LCB line with it, so the waiter's promotion must
/// come out of log reconstruction, not a surviving-line scrub.
#[test]
fn lost_line_promotion_matches_reference() {
    let (mut m, mut logs, mut mgr, mut reference) = setup();
    let holder = t(2, 1); // crashes
    let waiter = t(1, 1); // survives
    let toucher = t(2, 2); // crashes; its queued request pulls the line to n2
    assert_eq!(
        mgr.acquire(&mut m, &mut logs, holder, 7, LockMode::Exclusive).unwrap(),
        LockOutcome::Granted
    );
    assert_eq!(
        mgr.acquire(&mut m, &mut logs, waiter, 7, LockMode::Exclusive).unwrap(),
        LockOutcome::Waiting
    );
    assert_eq!(
        mgr.acquire(&mut m, &mut logs, toucher, 7, LockMode::Shared).unwrap(),
        LockOutcome::Waiting
    );
    reference.acquire_from(holder, 7, LockMode::Exclusive, holder.node()).unwrap();
    reference.acquire_from(waiter, 7, LockMode::Exclusive, waiter.node()).unwrap();
    reference.acquire_from(toucher, 7, LockMode::Shared, toucher.node()).unwrap();
    // The last touch came from n2, so n2's crash destroys the only copy of
    // the LCB line — holder's grant included.
    assert_eq!(m.exclusive_owner(mgr.table().bucket_line(7)), Some(NodeId(2)));
    m.crash(&[NodeId(2)]);
    logs.crash(&[NodeId(2)]);
    reference.crash_node(NodeId(2));
    let active: BTreeSet<TxnId> = [waiter].into_iter().collect();
    let st = mgr.recover(&mut m, &mut logs, &[NodeId(2)], &active, NodeId(1)).unwrap();
    assert_eq!(st.promotions, 1, "waiter promoted out of the reconstructed LCB");
    let holders = mgr.holders_of(&mut m, NodeId(1), 7).unwrap();
    assert_eq!(holders, reference.holders_of(7));
    assert_eq!(holders.len(), 1);
    assert_eq!(holders[0].txn, waiter);
    assert_eq!(mgr.held_mode(waiter, 7), Some(LockMode::Exclusive));
}
