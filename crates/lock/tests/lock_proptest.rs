//! Property tests for the shared-memory lock manager: compatibility
//! invariants under random acquire/release traffic, and §4.2.2 recovery
//! invariants under random crashes.

use proptest::prelude::*;
use smdb_lock::{LcbGeometry, LockManager, LockMode, LockOutcome, LockTable};
use smdb_sim::{Machine, NodeId, SimConfig, TxnId};
use smdb_wal::LogSet;
use std::collections::{BTreeMap, BTreeSet};

#[derive(Clone, Debug)]
enum Op {
    Acquire { node: u16, seq: u64, name: u64, exclusive: bool },
    ReleaseAll { node: u16, seq: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (0u16..4, 1u64..4, 1u64..12, any::<bool>())
            .prop_map(|(node, seq, name, exclusive)| Op::Acquire { node, seq, name, exclusive }),
        2 => (0u16..4, 1u64..4).prop_map(|(node, seq)| Op::ReleaseAll { node, seq }),
    ]
}

fn check_lcb_invariants(
    m: &mut Machine,
    mgr: &LockManager,
    names: impl Iterator<Item = u64>,
) -> Result<(), TestCaseError> {
    for name in names {
        let mut holders = Vec::new();
        // Scan via the public query path (node 0 acts).
        let mgr2 = mgr.clone();
        if let Ok(h) = mgr2.holders_of(m, NodeId(0), name) {
            holders = h;
        }
        let exclusive = holders.iter().filter(|e| e.mode == LockMode::Exclusive).count();
        if exclusive > 0 {
            prop_assert_eq!(holders.len(), 1, "X lock on {} must be sole", name);
        }
        // Every holder appears in its transaction's chain.
        for e in &holders {
            prop_assert!(
                mgr.held_locks(e.txn).contains(&name),
                "chain of {:?} missing lock {}",
                e.txn,
                name
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn lock_invariants_under_random_traffic(
        ops in proptest::collection::vec(op_strategy(), 1..80),
        crash_node in 0u16..4,
    ) {
        let mut m = Machine::new(SimConfig::new(4));
        let mut logs = LogSet::new(4);
        let table = LockTable::create(&mut m, NodeId(0), 9000, 8, LcbGeometry::co_located())
            .expect("create table");
        let mut mgr = LockManager::new(table);
        // Model: which (txn) → granted names, to know who is active.
        let mut granted: BTreeMap<TxnId, BTreeSet<u64>> = BTreeMap::new();
        for op in &ops {
            match *op {
                Op::Acquire { node, seq, name, exclusive } => {
                    let txn = TxnId::new(NodeId(node), seq);
                    let mode = if exclusive { LockMode::Exclusive } else { LockMode::Shared };
                    match mgr.acquire(&mut m, &mut logs, txn, name, mode) {
                        Ok(LockOutcome::Granted) => {
                            granted.entry(txn).or_default().insert(name);
                        }
                        Ok(LockOutcome::AlreadyHeld) => {
                            prop_assert!(granted.get(&txn).map(|g| g.contains(&name)).unwrap_or(false));
                        }
                        Ok(LockOutcome::Waiting) => {}
                        Err(smdb_lock::LockError::CapacityExceeded { .. }) => {}
                        Err(e) => return Err(TestCaseError::fail(format!("acquire: {e}"))),
                    }
                }
                Op::ReleaseAll { node, seq } => {
                    let txn = TxnId::new(NodeId(node), seq);
                    let promoted = mgr
                        .release_all(&mut m, &mut logs, txn)
                        .map_err(|e| TestCaseError::fail(format!("release: {e}")))?;
                    granted.remove(&txn);
                    for (name, p) in promoted {
                        granted.entry(p.txn).or_default().insert(name);
                    }
                }
            }
            check_lcb_invariants(&mut m, &mgr, 1..12)?;
        }
        // Crash a node and recover: afterwards no lock is held by any of
        // its transactions, and invariants still hold.
        let crashed = NodeId(crash_node);
        m.crash(&[crashed]);
        logs.crash(&[crashed]);
        let survivors: Vec<NodeId> = m.surviving_nodes();
        let recovery_node = survivors[0];
        // Active survivors: every txn with a chain whose node survived.
        let active: BTreeSet<TxnId> = (0..4u16)
            .filter(|n| *n != crash_node)
            .flat_map(|n| (1u64..4).map(move |s| TxnId::new(NodeId(n), s)))
            .collect();
        mgr.recover(&mut m, &mut logs, &[crashed], &active, recovery_node)
            .map_err(|e| TestCaseError::fail(format!("recover: {e}")))?;
        for name in 1..12u64 {
            let holders = mgr.holders_of(&mut m, recovery_node, name)
                .map_err(|e| TestCaseError::fail(format!("holders_of: {e}")))?;
            for e in &holders {
                prop_assert!(e.txn.node() != crashed, "crashed holder survived recovery");
            }
            let waiters = mgr.waiters_of(&mut m, recovery_node, name)
                .map_err(|e| TestCaseError::fail(format!("waiters_of: {e}")))?;
            for e in &waiters {
                prop_assert!(e.txn.node() != crashed, "crashed waiter survived recovery");
            }
        }
        check_lcb_invariants(&mut m, &mgr, 1..12)?;
    }
}
