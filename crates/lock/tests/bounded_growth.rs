//! Regression test for unbounded lock-manager growth: the old
//! `BTreeMap<TxnId, Vec<u64>>` chain map and `BTreeMap<(TxnId, u64), u64>`
//! acquire-time map kept one entry per transaction/lock *ever seen*. The
//! flat chain arena must recycle slots, so footprint tracks the peak number
//! of concurrently lock-holding transactions — not total transactions run.

use smdb_lock::{LcbGeometry, LockManager, LockMode, LockOutcome, LockTable};
use smdb_sim::{Machine, NodeId, SimConfig, TxnId};
use smdb_wal::LogSet;

#[test]
fn ten_thousand_transactions_reuse_chain_slots() {
    let mut m = Machine::new(SimConfig::new(4));
    // Observability on: acquire timestamps are recorded per held lock, and
    // must be reclaimed with the chain slot (the old acquired_at map leaked
    // precisely here).
    m.obs().enable(64);
    let mut logs = LogSet::new(4);
    let table = LockTable::create(&mut m, NodeId(0), 5000, 16, LcbGeometry::co_located()).unwrap();
    let mut mgr = LockManager::new(table);

    // 10_000 transactions across 4 nodes; up to 4 concurrently (one per
    // node). Each takes 3 locks, does a re-acquire (fast hit), and ends.
    let mut peak_live = 0;
    for round in 0..2500u64 {
        let txns: Vec<TxnId> = (0..4u16).map(|n| TxnId::new(NodeId(n), round + 1)).collect();
        for (i, &txn) in txns.iter().enumerate() {
            // Disjoint name ranges per node so every acquire is granted.
            let base = 1 + i as u64 * 100;
            for name in base..base + 3 {
                assert_eq!(
                    mgr.acquire(&mut m, &mut logs, txn, name, LockMode::Exclusive).unwrap(),
                    LockOutcome::Granted
                );
            }
            assert_eq!(
                mgr.acquire(&mut m, &mut logs, txn, base, LockMode::Shared).unwrap(),
                LockOutcome::AlreadyHeld
            );
        }
        peak_live = peak_live.max(mgr.transactions_with_locks());
        for &txn in &txns {
            mgr.release_all(&mut m, &mut logs, txn).unwrap();
            assert!(mgr.held_locks(txn).is_empty());
        }
    }

    assert_eq!(peak_live, 4, "all four nodes held locks concurrently");
    assert_eq!(mgr.transactions_with_locks(), 0, "everything released");
    let (slots, live) = mgr.chain_footprint();
    assert_eq!(live, 0);
    assert!(
        slots <= 4,
        "chain arena grew with transaction count: {slots} slots allocated for \
         a peak concurrency of 4"
    );
    assert_eq!(mgr.stats().fast_hits, 10_000, "one fast re-acquire per transaction");
    assert_eq!(mgr.stats().acquires, 30_000);
    assert_eq!(mgr.stats().releases, 30_000);
}
