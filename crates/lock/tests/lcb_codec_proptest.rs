//! LCB wire-codec round trips under both geometries, for arbitrary
//! holder/waiter populations within capacity.

use proptest::prelude::*;
use smdb_lock::{
    decode_slot, encode_slot, read_overflow, write_overflow, Lcb, LcbGeometry, LockEntry, LockMode,
};
use smdb_sim::{NodeId, TxnId};

fn entry_strategy() -> impl Strategy<Value = LockEntry> {
    (0u16..1024, 1u64..1_000_000, any::<bool>()).prop_map(|(node, seq, x)| LockEntry {
        txn: TxnId::new(NodeId(node), seq),
        mode: if x { LockMode::Exclusive } else { LockMode::Shared },
    })
}

proptest! {
    #[test]
    fn slot_round_trips(
        one_per_line in any::<bool>(),
        name in 1u64..u64::MAX,
        holders in proptest::collection::vec(entry_strategy(), 0..3),
        waiters in proptest::collection::vec(entry_strategy(), 0..2),
    ) {
        let geom = if one_per_line { LcbGeometry::one_per_line() } else { LcbGeometry::co_located() };
        let mut lcb = Lcb::new(name);
        for h in holders {
            lcb.holders.push(h);
        }
        for w in waiters {
            lcb.waiters.push(w);
        }
        let mut buf = vec![0u8; geom.slot_size()];
        encode_slot(&geom, &lcb, &mut buf);
        prop_assert_eq!(decode_slot(&geom, &buf), Some(lcb));
    }

    #[test]
    fn overflow_pointer_round_trips(ptr in any::<u64>(), line_size in 128usize..512) {
        let geom = LcbGeometry::co_located();
        let mut line = vec![0u8; line_size];
        write_overflow(&geom, &mut line, ptr);
        prop_assert_eq!(read_overflow(&geom, &line), ptr);
    }
}
