//! Lock modes and compatibility.

use serde::{Deserialize, Serialize};
use smdb_wal::LockModeRepr;

/// Basic lock modes of the paper's concurrency-control model (§2):
/// *"An exclusive lock on a record r guarantees that no other transaction
/// will read or modify r, while a shared lock on r ensures that no other
/// transaction will modify r."*
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum LockMode {
    /// Shared (read). Multiple shared holders may coexist.
    Shared,
    /// Exclusive (write). Sole holder.
    Exclusive,
}

impl LockMode {
    /// Whether a new request in mode `self` is compatible with an existing
    /// grant in mode `other`.
    pub fn compatible(self, other: LockMode) -> bool {
        matches!((self, other), (LockMode::Shared, LockMode::Shared))
    }

    /// Encode as a wire byte for the LCB line layout.
    pub fn to_byte(self) -> u8 {
        match self {
            LockMode::Shared => 1,
            LockMode::Exclusive => 2,
        }
    }

    /// Decode from a wire byte.
    pub fn from_byte(b: u8) -> Option<LockMode> {
        match b {
            1 => Some(LockMode::Shared),
            2 => Some(LockMode::Exclusive),
            _ => None,
        }
    }
}

impl From<LockMode> for LockModeRepr {
    fn from(m: LockMode) -> LockModeRepr {
        match m {
            LockMode::Shared => LockModeRepr::Shared,
            LockMode::Exclusive => LockModeRepr::Exclusive,
        }
    }
}

impl From<LockModeRepr> for LockMode {
    fn from(m: LockModeRepr) -> LockMode {
        match m {
            LockModeRepr::Shared => LockMode::Shared,
            LockModeRepr::Exclusive => LockMode::Exclusive,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compatibility_matrix() {
        use LockMode::*;
        assert!(Shared.compatible(Shared));
        assert!(!Shared.compatible(Exclusive));
        assert!(!Exclusive.compatible(Shared));
        assert!(!Exclusive.compatible(Exclusive));
    }

    #[test]
    fn byte_round_trip() {
        for m in [LockMode::Shared, LockMode::Exclusive] {
            assert_eq!(LockMode::from_byte(m.to_byte()), Some(m));
        }
        assert_eq!(LockMode::from_byte(0), None);
        assert_eq!(LockMode::from_byte(7), None);
    }

    #[test]
    fn repr_round_trip() {
        for m in [LockMode::Shared, LockMode::Exclusive] {
            let r: LockModeRepr = m.into();
            assert_eq!(LockMode::from(r), m);
        }
    }
}
