//! Canonical logical lock-name encoding.
//!
//! Record and key locks share one flat `u64` name space: record locks are
//! even (`2 + slot * 2`), key locks odd (`3 + key * 2`). The encoding lives
//! here — not in the engine — because recovery code on both sides of the
//! crate boundary must agree on it: lock-space recovery replays lock-log
//! records by name, contamination analysis decodes names back to record
//! slots, and instant restart must map a just-granted record lock to the
//! heap line whose pending redo it would otherwise bypass.

/// Lock name protecting heap record `slot`.
pub fn name_for_rec(slot: u64) -> u64 {
    2 + slot * 2
}

/// Lock name protecting index key `key`.
pub fn name_for_key(key: u64) -> u64 {
    3u64.wrapping_add(key.wrapping_mul(2))
}

/// Decode a lock name back to a record slot, if it is a record-lock name.
/// Key locks (odd names) and the reserved names 0/1 decode to `None`.
pub fn rec_slot_of_name(name: u64) -> Option<u64> {
    (name.is_multiple_of(2) && name >= 2).then(|| (name - 2) / 2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rec_and_key_names_are_disjoint_and_decodable() {
        for slot in [0u64, 1, 7, 4095] {
            let n = name_for_rec(slot);
            assert_eq!(n % 2, 0);
            assert_eq!(rec_slot_of_name(n), Some(slot));
        }
        for key in [0u64, 1, 7, 4095] {
            let n = name_for_key(key);
            assert_eq!(n % 2, 1);
            assert_eq!(rec_slot_of_name(n), None);
        }
        assert_eq!(rec_slot_of_name(0), None);
        assert_eq!(rec_slot_of_name(1), None);
    }
}
