//! Violation-edge bookkeeping for early lock release (controlled lock
//! violation).
//!
//! When a committing transaction releases its write locks at commit-record
//! *append* time (before the covering log force), the released names are
//! **violated**: the data they guard carries a not-yet-durable commit. Any
//! transaction that subsequently acquires a violated name inherits a
//! **commit-LSN dependency** on the releaser — it may only be acknowledged
//! once the releaser's commit record (and transitively the whole chain) is
//! durable, and it must abort in cascade if the releaser's node crashes
//! before that force.
//!
//! The table is volatile engine state: a crash of the whole machine loses
//! it, which is fine — the same dependencies also ride in the log as
//! [`CommitDep`](smdb_wal::CommitDep) lists on Commit records, so restart
//! recovery never needs this table.

use smdb_sim::TxnId;
use smdb_wal::Lsn;
use std::collections::BTreeMap;

/// One outstanding violation: a releaser whose commit is not yet durable.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ViolationEdge {
    /// The transaction that released the lock early.
    pub releaser: TxnId,
    /// LSN of the releaser's commit record on its home node's log.
    pub commit_lsn: Lsn,
}

/// Tracks which lock names are currently violated and by whom.
///
/// A name can be violated by several releasers at once (a chain of
/// unacknowledged writers); an acquirer inherits a dependency on each.
#[derive(Clone, Debug, Default)]
pub struct ViolationTable {
    by_name: BTreeMap<u64, Vec<ViolationEdge>>,
    edges_recorded: u64,
}

impl ViolationTable {
    /// Create an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record that `releaser` (commit record at `commit_lsn`) released
    /// `names` before its covering force.
    pub fn record_release(&mut self, releaser: TxnId, commit_lsn: Lsn, names: &[u64]) {
        for &name in names {
            let edges = self.by_name.entry(name).or_default();
            if !edges.iter().any(|e| e.releaser == releaser) {
                edges.push(ViolationEdge { releaser, commit_lsn });
                self.edges_recorded += 1;
            }
        }
    }

    /// The outstanding violations on `name` that `acquirer` inherits
    /// dependencies from (its own edges excluded — re-acquiring a name one
    /// violated oneself creates no self-dependency).
    pub fn deps_for(&self, name: u64, acquirer: TxnId) -> Vec<ViolationEdge> {
        self.by_name
            .get(&name)
            .map(|v| v.iter().copied().filter(|e| e.releaser != acquirer).collect())
            .unwrap_or_default()
    }

    /// Whether `name` currently carries any violation edge.
    pub fn is_violated(&self, name: u64) -> bool {
        self.by_name.get(&name).is_some_and(|v| !v.is_empty())
    }

    /// Remove every edge of `releaser` (it was acknowledged or its cascade
    /// was resolved).
    pub fn resolve(&mut self, releaser: TxnId) {
        self.by_name.retain(|_, edges| {
            edges.retain(|e| e.releaser != releaser);
            !edges.is_empty()
        });
    }

    /// Total violation edges ever recorded.
    pub fn edges_recorded(&self) -> u64 {
        self.edges_recorded
    }

    /// Number of names currently violated.
    pub fn violated_names(&self) -> usize {
        self.by_name.len()
    }

    /// Drop everything (machine-wide restart).
    pub fn clear(&mut self) {
        self.by_name.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smdb_sim::NodeId;

    fn t(node: u16, seq: u64) -> TxnId {
        TxnId::new(NodeId(node), seq)
    }

    #[test]
    fn edges_accumulate_and_resolve() {
        let mut v = ViolationTable::new();
        v.record_release(t(0, 1), Lsn(5), &[7, 9]);
        v.record_release(t(1, 1), Lsn(3), &[7]);
        assert!(v.is_violated(7));
        assert_eq!(v.deps_for(7, t(2, 1)).len(), 2, "both releasers constrain 7");
        assert_eq!(v.deps_for(9, t(2, 1)).len(), 1);
        assert_eq!(v.deps_for(9, t(0, 1)).len(), 0, "no self-dependency");
        v.resolve(t(0, 1));
        assert!(!v.is_violated(9));
        assert_eq!(
            v.deps_for(7, t(2, 1)),
            vec![ViolationEdge { releaser: t(1, 1), commit_lsn: Lsn(3) }]
        );
        assert_eq!(v.edges_recorded(), 3);
    }

    #[test]
    fn duplicate_release_records_one_edge() {
        let mut v = ViolationTable::new();
        v.record_release(t(0, 1), Lsn(5), &[7]);
        v.record_release(t(0, 1), Lsn(5), &[7]);
        assert_eq!(v.deps_for(7, t(1, 1)).len(), 1);
        assert_eq!(v.edges_recorded(), 1);
    }
}
