//! Lock-space restart recovery (§4.2.2).
//!
//! Guarantees, for every transaction active at crash time:
//!
//! 1. all locks acquired by transactions on **crashed** nodes are released
//!    (undo — their entries are scrubbed from surviving LCBs);
//! 2. no locks acquired by transactions on **surviving** nodes are lost
//!    (redo — LCBs destroyed with a crashed node are reconstructed from
//!    the surviving nodes' lock logs, which record *read locks and queued
//!    requests too*).
//!
//! Per-transaction lock chains are pointer-derived data and are rebuilt
//! *after* the underlying LCB data is restored, per the paper's guidance on
//! pointer-based structures.

use crate::lcb::{Lcb, LockEntry};
use crate::manager::LockManager;
use crate::mode::LockMode;
use serde::{Deserialize, Serialize};
use smdb_sim::{LineId, Machine, MemError, NodeId, TxnId};
use smdb_wal::{LogPayload, LogSet, StructuralKind};
use std::collections::{BTreeMap, BTreeSet};

/// Counters describing one lock-space recovery pass.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LockRecoveryStats {
    /// Entries (grants or waits) of crashed-node transactions removed from
    /// surviving LCBs.
    pub crashed_entries_released: u64,
    /// Lock-table lines that had been destroyed and were reinstalled.
    pub lines_reinstalled: u64,
    /// LCBs re-created from surviving logs.
    pub lcbs_reconstructed: u64,
    /// Surviving transactions' lock entries restored into reconstructed
    /// LCBs.
    pub survivor_entries_restored: u64,
    /// Waiters promoted because a crashed transaction's grant was
    /// released.
    pub promotions: u64,
    /// Overflow lines relinked from structural log records.
    pub overflow_relinked: u64,
}

/// Replay one node's lock-log records into the desired per-name lock state
/// for its *surviving active* transactions.
fn replay_node_lock_log(
    logs: &LogSet,
    node: NodeId,
    active: &BTreeSet<TxnId>,
    desired: &mut BTreeMap<u64, Lcb>,
) {
    for rec in logs.log(node).records() {
        match &rec.payload {
            LogPayload::LockAcquire { txn, name, mode, queued } if active.contains(txn) => {
                let lcb = desired.entry(*name).or_insert_with(|| Lcb::new(*name));
                let mode = LockMode::from(*mode);
                if *queued {
                    if !lcb.waiters.iter().any(|w| w.txn == *txn) {
                        lcb.waiters.push(LockEntry { txn: *txn, mode });
                    }
                } else {
                    // A grant (possibly a promotion of an earlier queued
                    // request, or an upgrade): drop any waiter entry and
                    // any weaker grant first.
                    lcb.waiters.retain(|w| w.txn != *txn);
                    lcb.holders.retain(|h| h.txn != *txn);
                    lcb.holders.push(LockEntry { txn: *txn, mode });
                }
            }
            LogPayload::LockRelease { txn, name, wait_only } if active.contains(txn) => {
                if let Some(lcb) = desired.get_mut(name) {
                    if *wait_only {
                        // A withdrawn queued request (no-wait cancel): the
                        // transaction's grant, if it holds one, stands.
                        lcb.waiters.retain(|w| w.txn != *txn);
                    } else {
                        lcb.remove(*txn);
                    }
                    if lcb.is_empty() {
                        desired.remove(name);
                    }
                }
            }
            _ => {}
        }
    }
}

impl LockManager {
    /// Restore the lock space after the crash of `crashed` nodes.
    ///
    /// * `active_surviving` — transactions that were active at crash time
    ///   and ran on surviving nodes (their lock state must be preserved).
    /// * `recovery_node` — the surviving node performing reconstruction
    ///   writes (in a real system each survivor shares the work; charging
    ///   one node keeps the accounting simple and conservative).
    pub fn recover(
        &mut self,
        m: &mut Machine,
        logs: &mut LogSet,
        crashed: &[NodeId],
        active_surviving: &BTreeSet<TxnId>,
        recovery_node: NodeId,
    ) -> Result<LockRecoveryStats, MemError> {
        let mut stats = LockRecoveryStats::default();
        let crashed: BTreeSet<NodeId> = crashed.iter().copied().collect();
        let line_size = m.line_size();

        // The placement hint cache may point at lines that died with the
        // crashed nodes or at slots recovery will repack; drop it wholesale
        // (it re-warms on first use).
        self.table().invalidate_placement();

        // Phase 0: restore the overflow-chain skeleton from structural log
        // records. Structural changes were committed early (forced), so
        // every allocation appears in some node's *stable* log even if that
        // node crashed; survivors' volatile logs cover the rest.
        let mut links: Vec<(LineId, LineId)> = Vec::new();
        for node in m.node_ids().collect::<Vec<_>>() {
            let recs: Vec<_> = if m.is_crashed(node) {
                logs.log(node).stable_records().to_vec()
            } else {
                logs.log(node).records().to_vec()
            };
            for rec in recs {
                if let LogPayload::Structural {
                    kind: StructuralKind::LockSpaceAlloc { line, parent },
                    ..
                } = rec.payload
                {
                    links.push((LineId(parent), LineId(line)));
                }
            }
        }
        // The log scan alone is not enough: a link allocated long before
        // the crash may have had its structural record reclaimed by
        // checkpoint truncation. The registration list itself lives in
        // shared memory and survives, so it is the authoritative union.
        // (Found by the schedule fuzzer: a truncated alloc record left a
        // reinstalled parent's overflow pointer null, orphaning the
        // surviving overflow LCBs.)
        links.extend(self.table().overflow_links().iter().copied());
        let links: BTreeSet<(LineId, LineId)> = links.into_iter().collect();
        for (parent, line) in links {
            self.table_mut().restore_overflow_registration(parent, line);
            // Reinstall whichever end of the link died with the crash —
            // the *parent* included. Leaving a lost parent to the phase-2
            // zero-fill would null its overflow pointer, orphaning the
            // surviving overflow LCBs: `find` (which walks the in-line
            // pointers) stops seeing them while the lockstep oracle (which
            // walks the registration list) still does, and releases then
            // operate on a reconstructed duplicate, stranding stale holder
            // entries in the orphaned line. (Found by the schedule
            // fuzzer.)
            for l in [line, parent] {
                if !m.probe_cached(l) {
                    m.install_line(recovery_node, l, &vec![0u8; line_size])?;
                    stats.lines_reinstalled += 1;
                }
            }
            // Relink the pointer unconditionally: the parent's surviving
            // copy may predate the allocation, and a parent reinstalled
            // empty above carries a null pointer.
            let geom = *self.table().geometry();
            let off = geom.overflow_offset(line_size);
            m.write(recovery_node, parent, off, &line.0.to_le_bytes())?;
            stats.overflow_relinked += 1;
        }

        // Phase 1 (undo): scrub crashed transactions' entries from
        // surviving lines, promoting any waiters their departure unblocks.
        let all_lines = self.table().all_lines();
        for line in &all_lines {
            if !m.probe_cached(*line) {
                continue;
            }
            let lcbs =
                m.read_line_with(recovery_node, *line, |img| self.table().decode_line(img))?;
            for (slot, mut lcb) in lcbs {
                let before = lcb.holders.len() + lcb.waiters.len();
                lcb.holders.retain(|e| !crashed.contains(&e.txn.node()));
                lcb.waiters.retain(|e| !crashed.contains(&e.txn.node()));
                let removed = before - (lcb.holders.len() + lcb.waiters.len());
                if removed == 0 {
                    continue;
                }
                stats.crashed_entries_released += removed as u64;
                let promoted = lcb.promote_waiters(self.table().geometry().max_holders);
                for p in &promoted {
                    logs.append(
                        p.txn.node(),
                        LogPayload::LockAcquire {
                            txn: p.txn,
                            name: lcb.name,
                            mode: p.mode.into(),
                            queued: false,
                        },
                    );
                }
                stats.promotions += promoted.len() as u64;
                if lcb.is_empty() {
                    self.table().clear_lcb(m, recovery_node, *line, slot)?;
                } else {
                    self.table().write_lcb(m, recovery_node, *line, slot, &lcb)?;
                }
            }
        }

        // Phase 2 (redo): reconstruct lock state destroyed with crashed
        // nodes. Compute the desired state of every surviving active
        // transaction from the surviving logs, reinstall lost lines, and
        // re-insert any LCB that no longer resolves.
        let mut desired: BTreeMap<u64, Lcb> = BTreeMap::new();
        for node in m.surviving_nodes() {
            replay_node_lock_log(logs, node, active_surviving, &mut desired);
        }
        // Reinstall base-table lines that were destroyed.
        for line in &all_lines {
            if m.is_lost(*line) || !m.line_exists(*line) {
                m.install_line(recovery_node, *line, &vec![0u8; line_size])?;
                stats.lines_reinstalled += 1;
            }
        }
        for (name, want) in &desired {
            let have = self.table().find(m, recovery_node, *name)?;
            match have {
                Some((line, slot, mut existing)) => {
                    // The LCB survived (phase 1 already scrubbed crashed
                    // entries). Ensure every surviving entry is present —
                    // entries can be missing if the surviving copy of the
                    // line predates a later acquisition that lived only on
                    // the crashed node.
                    let mut changed = false;
                    for h in &want.holders {
                        if !existing.holders.iter().any(|e| e.txn == h.txn) {
                            existing.holders.push(*h);
                            existing.waiters.retain(|w| w.txn != h.txn);
                            stats.survivor_entries_restored += 1;
                            changed = true;
                        }
                    }
                    for w in &want.waiters {
                        if !existing.waiters.iter().any(|e| e.txn == w.txn)
                            && !existing.holders.iter().any(|e| e.txn == w.txn)
                        {
                            existing.waiters.push(*w);
                            stats.survivor_entries_restored += 1;
                            changed = true;
                        }
                    }
                    let promoted = existing.promote_waiters(self.table().geometry().max_holders);
                    for p in &promoted {
                        logs.append(
                            p.txn.node(),
                            LogPayload::LockAcquire {
                                txn: p.txn,
                                name: *name,
                                mode: p.mode.into(),
                                queued: false,
                            },
                        );
                        changed = true;
                    }
                    stats.promotions += promoted.len() as u64;
                    if changed {
                        self.table().write_lcb(m, recovery_node, line, slot, &existing)?;
                    }
                }
                None => {
                    let (line, slot) =
                        match self.table().find_empty_slot(m, recovery_node, *name)? {
                            Some(found) => found,
                            None => {
                                // The chain is full (reconstruction packs LCBs
                                // in a different order than the original
                                // inserts): extend it, early-committing the
                                // structural change exactly as normal
                                // operation would.
                                let chain = self.table().chain_for(m, recovery_node, *name)?;
                                let tail = *chain.last().ok_or(MemError::Corrupted {
                                    what: "lock bucket chain empty during reconstruction",
                                })?;
                                let new_line =
                                    self.table_mut().alloc_overflow(m, recovery_node, tail)?;
                                let recovery_txn = TxnId::new(recovery_node, 0);
                                let lsn = logs.append(
                                    recovery_node,
                                    LogPayload::Structural {
                                        txn: recovery_txn,
                                        kind: StructuralKind::LockSpaceAlloc {
                                            line: new_line.0,
                                            parent: tail.0,
                                        },
                                    },
                                );
                                // Checked force: a mid-recovery crash point —
                                // the recovery node itself can die here.
                                if logs
                                    .force_to_checked(recovery_node, lsn)
                                    .map_err(MemError::FaultCrash)?
                                {
                                    let cost = m.config().cost.log_force;
                                    m.advance(recovery_node, cost);
                                }
                                (new_line, 0)
                            }
                        };
                    // The reconstructed LCB may be headed by waiters whose
                    // blocker died with the crash (the grant lived only in
                    // the destroyed line): promote them now, exactly as
                    // phase 1 does for surviving lines.
                    let mut rebuilt = want.clone();
                    stats.survivor_entries_restored +=
                        (rebuilt.holders.len() + rebuilt.waiters.len()) as u64;
                    let promoted = rebuilt.promote_waiters(self.table().geometry().max_holders);
                    for p in &promoted {
                        logs.append(
                            p.txn.node(),
                            LogPayload::LockAcquire {
                                txn: p.txn,
                                name: *name,
                                mode: p.mode.into(),
                                queued: false,
                            },
                        );
                    }
                    stats.promotions += promoted.len() as u64;
                    self.table().write_lcb(m, recovery_node, line, slot, &rebuilt)?;
                    stats.lcbs_reconstructed += 1;
                }
            }
        }

        // Phase 3: rebuild the per-transaction chains from the restored
        // LCB data (pointers reconstructed from the data they derive from).
        // Grant modes come straight from the reconstructed holder entries,
        // which keeps the re-acquire fast lane truthful after recovery.
        let lines = self.table().all_lines();
        let mut grants: Vec<(TxnId, u64, LockMode)> = Vec::new();
        for line in lines {
            if let Some(img) = m.peek(line).map(|d| d.to_vec()) {
                for (_, lcb) in self.table().decode_line(&img) {
                    for e in &lcb.holders {
                        grants.push((e.txn, lcb.name, e.mode));
                    }
                }
            }
        }
        self.rebuild_chains(&grants);
        self.stats_mut().promotions += stats.promotions;
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lcb::LcbGeometry;
    use crate::manager::LockOutcome;
    use crate::table::LockTable;
    use smdb_sim::SimConfig;

    const N0: NodeId = NodeId(0);
    const N1: NodeId = NodeId(1);
    const N2: NodeId = NodeId(2);

    fn setup() -> (Machine, LogSet, LockManager) {
        let mut m = Machine::new(SimConfig::new(4));
        let logs = LogSet::new(4);
        let table = LockTable::create(&mut m, N0, 5000, 16, LcbGeometry::co_located()).unwrap();
        (m, logs, LockManager::new(table))
    }

    fn t(node: u16, seq: u64) -> TxnId {
        TxnId::new(NodeId(node), seq)
    }

    #[test]
    fn crashed_txn_locks_released_from_surviving_lcb() {
        let (mut m, mut logs, mut mgr) = setup();
        let tx = t(0, 1); // will crash
        let ty = t(1, 1); // survives
        mgr.acquire(&mut m, &mut logs, tx, 7, LockMode::Shared).unwrap();
        mgr.acquire(&mut m, &mut logs, ty, 7, LockMode::Shared).unwrap();
        // LCB line now lives on n1 (survivor); crash n0.
        m.crash(&[N0]);
        logs.crash(&[N0]);
        let active: BTreeSet<TxnId> = [ty].into_iter().collect();
        let st = mgr.recover(&mut m, &mut logs, &[N0], &active, N1).unwrap();
        assert_eq!(st.crashed_entries_released, 1);
        let holders = mgr.holders_of(&mut m, N1, 7).unwrap();
        assert_eq!(holders.len(), 1);
        assert_eq!(holders[0].txn, ty);
        assert_eq!(mgr.held_locks(ty), &[7]);
    }

    #[test]
    fn survivor_locks_reconstructed_when_lcb_destroyed() {
        // The inverse §3.1 scenario: the last toucher of the LCB line
        // crashes, destroying the only copy — including the survivor's
        // grant. Redo from the survivor's lock log must restore it.
        let (mut m, mut logs, mut mgr) = setup();
        let tx = t(1, 1); // survives
        let ty = t(2, 1); // crashes, and was last to touch the LCB line
        mgr.acquire(&mut m, &mut logs, tx, 7, LockMode::Shared).unwrap();
        mgr.acquire(&mut m, &mut logs, ty, 7, LockMode::Shared).unwrap();
        let line = mgr.table().bucket_line(7);
        assert_eq!(m.exclusive_owner(line), Some(N2));
        m.crash(&[N2]);
        logs.crash(&[N2]);
        assert!(m.is_lost(line));
        let active: BTreeSet<TxnId> = [tx].into_iter().collect();
        let st = mgr.recover(&mut m, &mut logs, &[N2], &active, N1).unwrap();
        assert!(st.lines_reinstalled >= 1);
        assert_eq!(st.lcbs_reconstructed, 1);
        let holders = mgr.holders_of(&mut m, N1, 7).unwrap();
        assert_eq!(holders.len(), 1);
        assert_eq!(holders[0].txn, tx);
        assert_eq!(holders[0].mode, LockMode::Shared);
    }

    #[test]
    fn read_lock_logging_is_what_enables_redo() {
        // Without read-lock log records the reconstruction above would be
        // impossible: verify the reconstruction really came from a Shared
        // acquire record.
        let (mut m, mut logs, mut mgr) = setup();
        let tx = t(1, 1);
        mgr.acquire(&mut m, &mut logs, tx, 9, LockMode::Shared).unwrap();
        assert_eq!(logs.log(N1).stats().read_lock_records, 1);
        // Destroy the LCB line by migrating it to n2 and crashing n2.
        let ty = t(2, 1);
        mgr.acquire(&mut m, &mut logs, ty, 9, LockMode::Shared).unwrap();
        m.crash(&[N2]);
        logs.crash(&[N2]);
        let active: BTreeSet<TxnId> = [tx].into_iter().collect();
        mgr.recover(&mut m, &mut logs, &[N2], &active, N1).unwrap();
        let holders = mgr.holders_of(&mut m, N1, 9).unwrap();
        assert_eq!(holders.len(), 1, "shared lock redone from read-lock log record");
    }

    #[test]
    fn released_locks_stay_released_after_recovery() {
        let (mut m, mut logs, mut mgr) = setup();
        let tx = t(1, 1);
        mgr.acquire(&mut m, &mut logs, tx, 5, LockMode::Exclusive).unwrap();
        mgr.release(&mut m, &mut logs, tx, 5).unwrap();
        // Lose the (now empty) bucket line with a crash of its owner.
        let line = mgr.table().bucket_line(5);
        let owner = m.exclusive_owner(line).unwrap();
        if owner != N1 {
            m.crash(&[owner]);
            logs.crash(&[owner]);
            let active: BTreeSet<TxnId> = [tx].into_iter().collect();
            mgr.recover(&mut m, &mut logs, &[owner], &active, N1).unwrap();
        }
        assert!(mgr.holders_of(&mut m, N1, 5).unwrap().is_empty());
    }

    #[test]
    fn waiter_of_crashed_holder_gets_promoted() {
        let (mut m, mut logs, mut mgr) = setup();
        let tx = t(0, 1); // holder, will crash
        let ty = t(1, 1); // waiter, survives
        mgr.acquire(&mut m, &mut logs, tx, 7, LockMode::Exclusive).unwrap();
        assert_eq!(
            mgr.acquire(&mut m, &mut logs, ty, 7, LockMode::Exclusive).unwrap(),
            LockOutcome::Waiting
        );
        m.crash(&[N0]);
        logs.crash(&[N0]);
        let active: BTreeSet<TxnId> = [ty].into_iter().collect();
        let st = mgr.recover(&mut m, &mut logs, &[N0], &active, N1).unwrap();
        assert_eq!(st.promotions, 1);
        let holders = mgr.holders_of(&mut m, N1, 7).unwrap();
        assert_eq!(holders.len(), 1);
        assert_eq!(holders[0].txn, ty);
        assert_eq!(mgr.held_locks(ty), &[7]);
    }

    #[test]
    fn queued_request_of_survivor_reconstructed() {
        let (mut m, mut logs, mut mgr) = setup();
        let tx = t(1, 1); // holder, survives
        let ty = t(2, 1); // waiter, survives
        let tz = t(0, 1); // toucher that takes the line and crashes
        mgr.acquire(&mut m, &mut logs, tx, 7, LockMode::Exclusive).unwrap();
        mgr.acquire(&mut m, &mut logs, ty, 7, LockMode::Exclusive).unwrap();
        // tz takes an unrelated lock that co-locates in the same line: use
        // the same name's bucket by locking name 7 in shared — simpler: tz
        // just touches the LCB line via a conflicting request.
        assert_eq!(
            mgr.acquire(&mut m, &mut logs, tz, 7, LockMode::Shared).unwrap(),
            LockOutcome::Waiting
        );
        let line = mgr.table().bucket_line(7);
        assert_eq!(m.exclusive_owner(line), Some(N0));
        m.crash(&[N0]);
        logs.crash(&[N0]);
        let active: BTreeSet<TxnId> = [tx, ty].into_iter().collect();
        mgr.recover(&mut m, &mut logs, &[N0], &active, N1).unwrap();
        let holders = mgr.holders_of(&mut m, N1, 7).unwrap();
        let waiters = mgr.waiters_of(&mut m, N1, 7).unwrap();
        assert_eq!(holders.len(), 1);
        assert_eq!(holders[0].txn, tx);
        assert_eq!(waiters.len(), 1);
        assert_eq!(waiters[0].txn, ty);
    }

    #[test]
    fn multi_node_crash_recovery() {
        let (mut m, mut logs, mut mgr) = setup();
        let survivors: Vec<TxnId> = (0..2).map(|s| t(1, s + 1)).collect();
        for (i, &txn) in survivors.iter().enumerate() {
            mgr.acquire(&mut m, &mut logs, txn, 100 + i as u64, LockMode::Exclusive).unwrap();
        }
        let doomed_a = t(0, 1);
        let doomed_b = t(2, 1);
        mgr.acquire(&mut m, &mut logs, doomed_a, 100, LockMode::Shared).unwrap();
        mgr.acquire(&mut m, &mut logs, doomed_b, 101, LockMode::Shared).unwrap();
        m.crash(&[N0, N2]);
        logs.crash(&[N0, N2]);
        let active: BTreeSet<TxnId> = survivors.iter().copied().collect();
        mgr.recover(&mut m, &mut logs, &[N0, N2], &active, N1).unwrap();
        for (i, &txn) in survivors.iter().enumerate() {
            let holders = mgr.holders_of(&mut m, N1, 100 + i as u64).unwrap();
            assert_eq!(holders.len(), 1, "lock {} has exactly the survivor", 100 + i);
            assert_eq!(holders[0].txn, txn);
        }
    }
}
