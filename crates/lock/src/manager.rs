//! The shared-memory lock manager.
//!
//! Every LCB update happens inside a line-lock critical section, with the
//! logical lock-log record written *before* the updated line is released —
//! so lock state can never migrate to another node without the acquiring
//! node's log describing it (the Volatile LBM discipline applied to the
//! lock table, §4.2.2 + §5.1).

use crate::lcb::{Lcb, LockEntry};
use crate::mode::LockMode;
use crate::table::LockTable;
use serde::{Deserialize, Serialize};
use smdb_obs::Event as ObsEvent;
use smdb_sim::{LineId, Machine, MemError, NodeId, TxnId};
use smdb_wal::{LogPayload, LogSet, StructuralKind};
use std::collections::BTreeMap;
use std::fmt;

/// Histogram of simulated cycles each logical lock was held, recorded on
/// release when observability is enabled.
pub const HOLD_CYCLES_HISTOGRAM: &str = "lock.hold_cycles";

/// Result of a lock request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LockOutcome {
    /// The lock was granted.
    Granted,
    /// The transaction already held the lock in a sufficient mode.
    AlreadyHeld,
    /// The request conflicts and was queued; the paper logs queued
    /// requests too (§4.2.2). The caller decides whether to block or (as
    /// the no-wait engines in this reproduction do) abort and retry.
    Waiting,
}

/// Lock-manager errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LockError {
    /// Underlying memory error (stall, lost line, crashed node...).
    Mem(MemError),
    /// The LCB's fixed-capacity holder or waiter array is full.
    CapacityExceeded {
        /// The lock whose LCB overflowed.
        name: u64,
    },
    /// Release of a lock the transaction does not hold.
    NotHolder {
        /// The releasing transaction.
        txn: TxnId,
        /// The lock it does not hold.
        name: u64,
    },
}

impl From<MemError> for LockError {
    fn from(e: MemError) -> Self {
        LockError::Mem(e)
    }
}

impl fmt::Display for LockError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockError::Mem(e) => write!(f, "memory error: {e}"),
            LockError::CapacityExceeded { name } => {
                write!(f, "LCB capacity exceeded for lock {name}")
            }
            LockError::NotHolder { txn, name } => write!(f, "{txn} does not hold lock {name}"),
        }
    }
}

impl std::error::Error for LockError {}

/// Lock-manager counters (several feed the Table 1 overhead report).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LockStats {
    /// Granted acquisitions.
    pub acquires: u64,
    /// Granted shared-mode acquisitions.
    pub shared_acquires: u64,
    /// Granted exclusive-mode acquisitions.
    pub exclusive_acquires: u64,
    /// Requests that were queued.
    pub waits: u64,
    /// Releases.
    pub releases: u64,
    /// Waiters promoted to holders by releases.
    pub promotions: u64,
    /// Overflow lines allocated (early-committed structural changes).
    pub overflow_allocs: u64,
}

/// The shared-memory lock manager (*SM locking*).
#[derive(Clone, Debug)]
pub struct LockManager {
    table: LockTable,
    /// Per-transaction chains of held lock names. Volatile derived state:
    /// reconstructible from the LCBs themselves (each entry carries its
    /// transaction id), exactly as §4.2.2 prescribes for pointer-based
    /// structures: *"first restore the data that the pointers are derived
    /// from, then reconstruct the pointers"*.
    chains: BTreeMap<TxnId, Vec<u64>>,
    stats: LockStats,
    /// Simulated acquire timestamps for currently-held locks, kept only
    /// while observability is enabled, to compute hold time on release.
    /// Purely observational — never consulted by the locking protocol.
    acquired_at: BTreeMap<(TxnId, u64), u64>,
}

impl LockManager {
    /// Wrap a created [`LockTable`].
    pub fn new(table: LockTable) -> Self {
        LockManager {
            table,
            chains: BTreeMap::new(),
            stats: LockStats::default(),
            acquired_at: BTreeMap::new(),
        }
    }

    /// The underlying table.
    pub fn table(&self) -> &LockTable {
        &self.table
    }

    /// Manager statistics.
    pub fn stats(&self) -> &LockStats {
        &self.stats
    }

    /// Locks currently held by `txn` (from the volatile chain).
    pub fn held_locks(&self, txn: TxnId) -> &[u64] {
        self.chains.get(&txn).map(|v| &v[..]).unwrap_or(&[])
    }

    /// Number of transactions with at least one held lock.
    pub fn transactions_with_locks(&self) -> usize {
        self.chains.len()
    }

    /// Acquire `name` in `mode` on behalf of `txn`, executing on its home
    /// node.
    pub fn acquire(
        &mut self,
        m: &mut Machine,
        logs: &mut LogSet,
        txn: TxnId,
        name: u64,
        mode: LockMode,
    ) -> Result<LockOutcome, LockError> {
        self.acquire_from(m, logs, txn, name, mode, txn.node())
    }

    /// Acquire `name` in `mode` on behalf of `txn`, with the lock-table
    /// work (and the logical log record) executed on `acting` — used by
    /// parallel transactions (§9), whose operations run on several nodes.
    ///
    /// Protocol per §4.2.2/§5.1: locate the LCB; *log the request* (read
    /// locks and queued requests included) on the acting node's log;
    /// update the LCB inside a `getline` critical section; release the
    /// line.
    pub fn acquire_from(
        &mut self,
        m: &mut Machine,
        logs: &mut LogSet,
        txn: TxnId,
        name: u64,
        mode: LockMode,
        acting: NodeId,
    ) -> Result<LockOutcome, LockError> {
        assert!(name != 0, "lock name 0 is reserved");
        let node = acting;
        // Locate or make room (may allocate an early-committed overflow
        // line).
        let (line, slot, mut lcb) = match self.table.find(m, node, name)? {
            Some(found) => found,
            None => {
                let (line, slot) = self.ensure_empty_slot(m, logs, txn, name, node)?;
                (line, slot, Lcb::new(name))
            }
        };
        // Critical section: the LCB line cannot migrate between the log
        // write and the LCB update.
        m.getline(node, line)?;
        let result = (|| {
            // Re-read under the line lock (the pre-lock find raced with
            // nothing in this deterministic simulator, but the discipline
            // is the real protocol's).
            if let Some((l2, s2, fresh)) = self.table.find(m, node, name)? {
                debug_assert_eq!((l2, s2), (line, slot));
                lcb = fresh;
            }
            if lcb.holds(txn) {
                let held = lcb.holders.iter().find(|e| e.txn == txn).expect("holds() checked").mode;
                if held >= mode {
                    return Ok(LockOutcome::AlreadyHeld);
                }
                // Upgrade S→X: only if sole holder.
                if lcb.holders.len() == 1 && lcb.waiters.is_empty() {
                    logs.append(
                        node,
                        LogPayload::LockAcquire { txn, name, mode: mode.into(), queued: false },
                    );
                    lcb.holders[0].mode = mode;
                    self.table.write_lcb(m, node, line, slot, &lcb)?;
                    self.stats.acquires += 1;
                    self.stats.exclusive_acquires += 1;
                    return Ok(LockOutcome::Granted);
                }
                // Conflicting upgrade: queue it.
                if lcb.waiters.len() >= self.table.geometry().max_waiters {
                    return Err(LockError::CapacityExceeded { name });
                }
                logs.append(
                    node,
                    LogPayload::LockAcquire { txn, name, mode: mode.into(), queued: true },
                );
                lcb.waiters.push(LockEntry { txn, mode });
                self.table.write_lcb(m, node, line, slot, &lcb)?;
                self.stats.waits += 1;
                return Ok(LockOutcome::Waiting);
            }
            if lcb.can_grant(txn, mode) {
                if lcb.holders.len() >= self.table.geometry().max_holders {
                    return Err(LockError::CapacityExceeded { name });
                }
                logs.append(
                    node,
                    LogPayload::LockAcquire { txn, name, mode: mode.into(), queued: false },
                );
                lcb.holders.push(LockEntry { txn, mode });
                self.table.write_lcb(m, node, line, slot, &lcb)?;
                self.chains.entry(txn).or_default().push(name);
                self.stats.acquires += 1;
                match mode {
                    LockMode::Shared => self.stats.shared_acquires += 1,
                    LockMode::Exclusive => self.stats.exclusive_acquires += 1,
                }
                Ok(LockOutcome::Granted)
            } else {
                if lcb.waiters.len() >= self.table.geometry().max_waiters {
                    return Err(LockError::CapacityExceeded { name });
                }
                logs.append(
                    node,
                    LogPayload::LockAcquire { txn, name, mode: mode.into(), queued: true },
                );
                lcb.waiters.push(LockEntry { txn, mode });
                self.table.write_lcb(m, node, line, slot, &lcb)?;
                self.stats.waits += 1;
                Ok(LockOutcome::Waiting)
            }
        })();
        m.releaseline(node, line)?;
        if m.obs().bus.is_enabled() || m.obs().metrics.is_enabled() {
            let now = m.now(node);
            match &result {
                Ok(LockOutcome::Granted) => {
                    self.acquired_at.entry((txn, name)).or_insert(now);
                    m.obs().bus.emit(now, || ObsEvent::LockAcquire {
                        node: node.0,
                        txn: txn.0,
                        name,
                        exclusive: mode == LockMode::Exclusive,
                    });
                }
                Ok(LockOutcome::Waiting) => {
                    m.obs().bus.emit(now, || ObsEvent::LockWouldBlock {
                        node: node.0,
                        txn: txn.0,
                        name,
                    });
                }
                _ => {}
            }
        }
        result
    }

    /// Make room for a new LCB, allocating an overflow line if the chain
    /// is full. Overflow allocation is a structural change: it is logged
    /// and *forced* (early commit, §4.2) before the new space is linked,
    /// so no transaction can become dependent on volatile structural
    /// state.
    fn ensure_empty_slot(
        &mut self,
        m: &mut Machine,
        logs: &mut LogSet,
        txn: TxnId,
        name: u64,
        acting: NodeId,
    ) -> Result<(LineId, usize), LockError> {
        let node = acting;
        if let Some(found) = self.table.find_empty_slot(m, node, name)? {
            return Ok(found);
        }
        let chain = self.table.chain_for(m, node, name)?;
        let tail = *chain.last().expect("chain non-empty");
        let new_line = self.table.alloc_overflow(m, node, tail)?;
        let lsn = logs.append(
            node,
            LogPayload::Structural {
                txn,
                kind: StructuralKind::LockSpaceAlloc { line: new_line.0, parent: tail.0 },
            },
        );
        if logs.log_mut(node).force_to(lsn) {
            let force_cost = m.config().cost.log_force;
            m.advance(node, force_cost);
        }
        self.stats.overflow_allocs += 1;
        Ok((new_line, 0))
    }

    /// Release `name` held by `txn`; grants any waiters that become
    /// compatible. Returns the promoted entries (the engine resumes those
    /// transactions). Each promotion is logged on the *promoted*
    /// transaction's node so its lock state remains redoable.
    pub fn release(
        &mut self,
        m: &mut Machine,
        logs: &mut LogSet,
        txn: TxnId,
        name: u64,
    ) -> Result<Vec<LockEntry>, LockError> {
        let node = txn.node();
        let (line, slot, mut lcb) =
            self.table.find(m, node, name)?.ok_or(LockError::NotHolder { txn, name })?;
        if !lcb.holds(txn) {
            return Err(LockError::NotHolder { txn, name });
        }
        m.getline(node, line)?;
        let result = (|| {
            logs.append(node, LogPayload::LockRelease { txn, name });
            lcb.remove(txn);
            let promoted = lcb.promote_waiters();
            for p in &promoted {
                logs.append(
                    p.txn.node(),
                    LogPayload::LockAcquire {
                        txn: p.txn,
                        name,
                        mode: p.mode.into(),
                        queued: false,
                    },
                );
                // A promoted *upgrade* already has the name in its chain.
                let chain = self.chains.entry(p.txn).or_default();
                if !chain.contains(&name) {
                    chain.push(name);
                }
            }
            if lcb.is_empty() {
                self.table.clear_lcb(m, node, line, slot)?;
            } else {
                self.table.write_lcb(m, node, line, slot, &lcb)?;
            }
            self.stats.releases += 1;
            self.stats.promotions += promoted.len() as u64;
            Ok(promoted)
        })();
        m.releaseline(node, line)?;
        if m.obs().bus.is_enabled() || m.obs().metrics.is_enabled() {
            let now = m.now(node);
            if let Ok(promoted) = &result {
                let held = self
                    .acquired_at
                    .remove(&(txn, name))
                    .map(|t0| now.saturating_sub(t0))
                    .unwrap_or(0);
                m.obs().metrics.observe(HOLD_CYCLES_HISTOGRAM, held);
                m.obs().bus.emit(now, || ObsEvent::LockRelease {
                    node: node.0,
                    txn: txn.0,
                    name,
                    held_cycles: held,
                });
                for p in promoted {
                    self.acquired_at.entry((p.txn, name)).or_insert(now);
                    m.obs().bus.emit(now, || ObsEvent::LockAcquire {
                        node: p.txn.node().0,
                        txn: p.txn.0,
                        name,
                        exclusive: p.mode == LockMode::Exclusive,
                    });
                }
            }
        } else {
            self.acquired_at.remove(&(txn, name));
        }
        if let Some(chain) = self.chains.get_mut(&txn) {
            chain.retain(|n| *n != name);
            if chain.is_empty() {
                self.chains.remove(&txn);
            }
        }
        result
    }

    /// Cancel a *queued* (waiting) request by `txn` on `name`. Used by the
    /// engine's no-wait policy: a transaction that would block is aborted,
    /// and its queued request — which was logged — must be withdrawn (with
    /// a matching release record, so log replay converges).
    pub fn cancel_wait(
        &mut self,
        m: &mut Machine,
        logs: &mut LogSet,
        txn: TxnId,
        name: u64,
    ) -> Result<bool, LockError> {
        let node = txn.node();
        let Some((line, slot, mut lcb)) = self.table.find(m, node, name)? else {
            return Ok(false);
        };
        if !lcb.waiters.iter().any(|w| w.txn == txn) {
            return Ok(false);
        }
        m.getline(node, line)?;
        let result = (|| {
            logs.append(node, LogPayload::LockRelease { txn, name });
            lcb.waiters.retain(|w| w.txn != txn);
            let promoted = lcb.promote_waiters();
            for p in &promoted {
                logs.append(
                    p.txn.node(),
                    LogPayload::LockAcquire {
                        txn: p.txn,
                        name,
                        mode: p.mode.into(),
                        queued: false,
                    },
                );
                let chain = self.chains.entry(p.txn).or_default();
                if !chain.contains(&name) {
                    chain.push(name);
                }
            }
            self.stats.promotions += promoted.len() as u64;
            if lcb.is_empty() {
                self.table.clear_lcb(m, node, line, slot)?;
            } else {
                self.table.write_lcb(m, node, line, slot, &lcb)?;
            }
            Ok(true)
        })();
        m.releaseline(node, line)?;
        result
    }

    /// Release every lock held by `txn` (commit/abort path under strict
    /// 2PL: locks are not released until the transaction ends — §2).
    /// Returns all promoted entries with the lock they were granted.
    pub fn release_all(
        &mut self,
        m: &mut Machine,
        logs: &mut LogSet,
        txn: TxnId,
    ) -> Result<Vec<(u64, LockEntry)>, LockError> {
        let names: Vec<u64> = self.held_locks(txn).to_vec();
        let mut promoted = Vec::new();
        for name in names {
            promoted.extend(self.release(m, logs, txn, name)?.into_iter().map(|e| (name, e)));
        }
        Ok(promoted)
    }

    /// Forget a transaction's volatile chain without touching LCBs. Used
    /// when the transaction's node crashed (its chain is gone anyway) after
    /// recovery has scrubbed the LCBs.
    pub fn drop_chain(&mut self, txn: TxnId) {
        self.chains.remove(&txn);
    }

    /// Current holders of `name` (coherent read by `node`).
    pub fn holders_of(
        &self,
        m: &mut Machine,
        node: NodeId,
        name: u64,
    ) -> Result<Vec<LockEntry>, LockError> {
        Ok(self.table.find(m, node, name)?.map(|(_, _, l)| l.holders).unwrap_or_default())
    }

    /// Current waiters on `name`.
    pub fn waiters_of(
        &self,
        m: &mut Machine,
        node: NodeId,
        name: u64,
    ) -> Result<Vec<LockEntry>, LockError> {
        Ok(self.table.find(m, node, name)?.map(|(_, _, l)| l.waiters).unwrap_or_default())
    }

    pub(crate) fn table_mut(&mut self) -> &mut LockTable {
        &mut self.table
    }

    /// Drop observability acquire-timestamps for transactions on crashed
    /// nodes (they will never release).
    pub(crate) fn drop_acquire_times(&mut self, crashed: &std::collections::BTreeSet<NodeId>) {
        self.acquired_at.retain(|(txn, _), _| !crashed.contains(&txn.node()));
    }

    pub(crate) fn chains_mut(&mut self) -> &mut BTreeMap<TxnId, Vec<u64>> {
        &mut self.chains
    }

    pub(crate) fn stats_mut(&mut self) -> &mut LockStats {
        &mut self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lcb::LcbGeometry;
    use smdb_sim::SimConfig;

    const N0: NodeId = NodeId(0);
    const N1: NodeId = NodeId(1);

    fn setup() -> (Machine, LogSet, LockManager) {
        let mut m = Machine::new(SimConfig::new(4));
        let logs = LogSet::new(4);
        let table = LockTable::create(&mut m, N0, 5000, 16, LcbGeometry::co_located()).unwrap();
        (m, logs, LockManager::new(table))
    }

    fn t(node: u16, seq: u64) -> TxnId {
        TxnId::new(NodeId(node), seq)
    }

    #[test]
    fn exclusive_grant_then_conflict_queues() {
        let (mut m, mut logs, mut mgr) = setup();
        let tx = t(0, 1);
        let ty = t(1, 1);
        assert_eq!(
            mgr.acquire(&mut m, &mut logs, tx, 7, LockMode::Exclusive).unwrap(),
            LockOutcome::Granted
        );
        assert_eq!(
            mgr.acquire(&mut m, &mut logs, ty, 7, LockMode::Exclusive).unwrap(),
            LockOutcome::Waiting
        );
        assert_eq!(mgr.stats().acquires, 1);
        assert_eq!(mgr.stats().waits, 1);
        assert_eq!(mgr.held_locks(tx), &[7]);
        assert!(mgr.held_locks(ty).is_empty());
    }

    #[test]
    fn shared_locks_coexist() {
        let (mut m, mut logs, mut mgr) = setup();
        for node in 0..3 {
            let txn = t(node, 1);
            assert_eq!(
                mgr.acquire(&mut m, &mut logs, txn, 7, LockMode::Shared).unwrap(),
                LockOutcome::Granted
            );
        }
        let holders = mgr.holders_of(&mut m, N0, 7).unwrap();
        assert_eq!(holders.len(), 3);
    }

    #[test]
    fn release_promotes_waiter() {
        let (mut m, mut logs, mut mgr) = setup();
        let tx = t(0, 1);
        let ty = t(1, 1);
        mgr.acquire(&mut m, &mut logs, tx, 7, LockMode::Exclusive).unwrap();
        mgr.acquire(&mut m, &mut logs, ty, 7, LockMode::Exclusive).unwrap();
        let promoted = mgr.release(&mut m, &mut logs, tx, 7).unwrap();
        assert_eq!(promoted.len(), 1);
        assert_eq!(promoted[0].txn, ty);
        assert_eq!(mgr.held_locks(ty), &[7]);
        let holders = mgr.holders_of(&mut m, N0, 7).unwrap();
        assert_eq!(holders.len(), 1);
        assert_eq!(holders[0].txn, ty);
    }

    #[test]
    fn release_not_held_is_error() {
        let (mut m, mut logs, mut mgr) = setup();
        let tx = t(0, 1);
        assert_eq!(
            mgr.release(&mut m, &mut logs, tx, 7),
            Err(LockError::NotHolder { txn: tx, name: 7 })
        );
    }

    #[test]
    fn already_held_is_idempotent() {
        let (mut m, mut logs, mut mgr) = setup();
        let tx = t(0, 1);
        mgr.acquire(&mut m, &mut logs, tx, 7, LockMode::Exclusive).unwrap();
        assert_eq!(
            mgr.acquire(&mut m, &mut logs, tx, 7, LockMode::Shared).unwrap(),
            LockOutcome::AlreadyHeld
        );
        assert_eq!(
            mgr.acquire(&mut m, &mut logs, tx, 7, LockMode::Exclusive).unwrap(),
            LockOutcome::AlreadyHeld
        );
    }

    #[test]
    fn upgrade_when_sole_holder() {
        let (mut m, mut logs, mut mgr) = setup();
        let tx = t(0, 1);
        mgr.acquire(&mut m, &mut logs, tx, 7, LockMode::Shared).unwrap();
        assert_eq!(
            mgr.acquire(&mut m, &mut logs, tx, 7, LockMode::Exclusive).unwrap(),
            LockOutcome::Granted
        );
        let holders = mgr.holders_of(&mut m, N0, 7).unwrap();
        assert_eq!(holders[0].mode, LockMode::Exclusive);
    }

    #[test]
    fn upgrade_with_other_sharer_waits() {
        let (mut m, mut logs, mut mgr) = setup();
        let tx = t(0, 1);
        let ty = t(1, 1);
        mgr.acquire(&mut m, &mut logs, tx, 7, LockMode::Shared).unwrap();
        mgr.acquire(&mut m, &mut logs, ty, 7, LockMode::Shared).unwrap();
        assert_eq!(
            mgr.acquire(&mut m, &mut logs, tx, 7, LockMode::Exclusive).unwrap(),
            LockOutcome::Waiting
        );
    }

    #[test]
    fn read_locks_are_logged() {
        // Table 1's "Logging of Read Locks" overhead: the shared request
        // must appear in the acquiring node's log.
        let (mut m, mut logs, mut mgr) = setup();
        let tx = t(1, 1);
        mgr.acquire(&mut m, &mut logs, tx, 7, LockMode::Shared).unwrap();
        assert_eq!(logs.log(N1).stats().read_lock_records, 1);
        assert_eq!(logs.log(N0).stats().read_lock_records, 0);
    }

    #[test]
    fn queued_requests_are_logged() {
        let (mut m, mut logs, mut mgr) = setup();
        mgr.acquire(&mut m, &mut logs, t(0, 1), 7, LockMode::Exclusive).unwrap();
        mgr.acquire(&mut m, &mut logs, t(1, 1), 7, LockMode::Exclusive).unwrap();
        let queued = logs
            .log(N1)
            .records()
            .iter()
            .any(|r| matches!(r.payload, LogPayload::LockAcquire { queued: true, .. }));
        assert!(queued);
    }

    #[test]
    fn release_all_clears_chain() {
        let (mut m, mut logs, mut mgr) = setup();
        let tx = t(0, 1);
        for name in [3u64, 4, 5] {
            mgr.acquire(&mut m, &mut logs, tx, name, LockMode::Exclusive).unwrap();
        }
        assert_eq!(mgr.held_locks(tx).len(), 3);
        mgr.release_all(&mut m, &mut logs, tx).unwrap();
        assert!(mgr.held_locks(tx).is_empty());
        for name in [3u64, 4, 5] {
            assert!(mgr.holders_of(&mut m, N0, name).unwrap().is_empty());
        }
    }

    #[test]
    fn lcb_line_migrates_to_last_toucher() {
        // The §3.1 failure-effect scenario: the last node to acquire a lock
        // holds the only copy of the LCB line.
        let (mut m, mut logs, mut mgr) = setup();
        mgr.acquire(&mut m, &mut logs, t(0, 1), 7, LockMode::Shared).unwrap();
        mgr.acquire(&mut m, &mut logs, t(1, 1), 7, LockMode::Shared).unwrap();
        let line = mgr.table().bucket_line(7);
        assert_eq!(m.exclusive_owner(line), Some(N1));
    }

    #[test]
    fn observability_records_hold_times_and_events() {
        let (mut m, mut logs, mut mgr) = setup();
        m.obs().enable(64);
        let tx = t(0, 1);
        let ty = t(1, 1);
        mgr.acquire(&mut m, &mut logs, tx, 7, LockMode::Exclusive).unwrap();
        m.advance(N0, 500);
        assert_eq!(
            mgr.acquire(&mut m, &mut logs, ty, 7, LockMode::Exclusive).unwrap(),
            LockOutcome::Waiting
        );
        mgr.release(&mut m, &mut logs, tx, 7).unwrap();
        let h = m.obs().metrics.histogram(HOLD_CYCLES_HISTOGRAM).unwrap();
        assert_eq!(h.count, 1, "one completed hold (the promoted waiter still holds)");
        assert!(h.max >= 500, "hold time includes the advanced cycles: {}", h.max);
        let kinds: Vec<&str> = m.obs().bus.snapshot().iter().map(|r| r.event.kind()).collect();
        for expected in ["lock_acquire", "lock_would_block", "lock_release"] {
            assert!(kinds.contains(&expected), "missing {expected} in {kinds:?}");
        }
    }

    #[test]
    fn overflow_alloc_is_forced_structural_commit() {
        let (mut m, mut logs, mut mgr) = setup();
        // Grab many names colliding into the same bucket until overflow.
        // With 16 buckets and 2 slots each, 33+ distinct names guarantee
        // some bucket overflows.
        for i in 0..64u64 {
            let txn = t(0, i + 1);
            mgr.acquire(&mut m, &mut logs, txn, i + 1, LockMode::Exclusive).unwrap();
        }
        assert!(mgr.stats().overflow_allocs > 0, "expected at least one overflow");
        assert_eq!(logs.log(N0).stats().structural_records, mgr.stats().overflow_allocs);
        // Each structural record was forced (early commit).
        let stable = logs.log(N0).stable_records();
        let forced_structural =
            stable.iter().filter(|r| matches!(r.payload, LogPayload::Structural { .. })).count()
                as u64;
        assert_eq!(forced_structural, mgr.stats().overflow_allocs);
    }
}
